"""Translation regimes: composing stage-1 and stage-2.

Section 4: "ARM hardware supports only two stages of address translation
via Stage-1 and Stage-2 page tables.  Nested virtualization requires at
least three: L2 VM virtual address (VA) to L2 VM physical address (PA),
L2 VM PA to L1 VM PA, L1 VM PA to L0 PA."  :func:`translate` walks an
arbitrary chain of tables so tests can check that collapsing (shadow
tables) is equivalent to the full chain.
"""

from dataclasses import dataclass, field

from repro.memory.pagetable import PageTable, Permission


@dataclass
class TranslationRegime:
    """The tables in effect for one running context.

    ``stage1`` may be None (MMU off / identity), ``stage2`` may be None
    (hypervisor context, or stage-2 disabled).
    """

    stage1: PageTable = None
    stage2: PageTable = None
    vmid: int = 0
    label: str = ""

    def translate(self, va, perm=Permission.R, tlb=None):
        """VA -> final PA through this regime, optionally via a TLB."""
        if tlb is not None:
            hit = tlb.lookup(self.vmid, va)
            if hit is not None:
                return hit | (va & 0xFFF)
        ipa = va if self.stage1 is None else self.stage1.translate(va, perm)
        pa = ipa if self.stage2 is None else self.stage2.translate(ipa, perm)
        if tlb is not None:
            tlb.fill(self.vmid, va, pa & ~0xFFF)
        return pa


def translate(address, tables, perm=Permission.R):
    """Walk *address* through a chain of page tables in order.

    Used to express the three-stage nested translation the hardware cannot
    do directly: ``translate(va, [l2_stage1, l1_stage2, l0_stage2])``.
    """
    out = address
    for table in tables:
        if table is None:
            continue
        out = table.translate(out, perm)
    return out


@dataclass
class WalkStats:
    """Counts table walks, for the TLB-behaviour tests."""

    walks: int = 0
    by_stage: dict = field(default_factory=dict)

    def record(self, stage):
        self.walks += 1
        self.by_stage[stage] = self.by_stage.get(stage, 0) + 1
