"""Page tables for stage-1 and stage-2 translation.

The model is a 4 KB-granule, multi-level page table keyed by virtual (or
intermediate-physical) page number.  We keep the *semantics* of ARM
translation — per-page output address, permissions, level of mapping,
faults with a fault IPA — without modelling the bit-level descriptor
format, which the paper's evaluation never depends on.
"""

import enum
from dataclasses import dataclass

from repro.memory.phys import PAGE_SIZE, page_align

#: A level-2 block mapping covers 2 MB (4 KB granule).
BLOCK_SIZE = 2 * 1024 * 1024
BLOCK_MASK = BLOCK_SIZE - 1


def block_align(addr):
    return addr & ~BLOCK_MASK


class Permission(enum.Flag):
    NONE = 0
    R = enum.auto()
    W = enum.auto()
    X = enum.auto()
    RW = R | W
    RX = R | X
    RWX = R | W | X


class FaultType(enum.Enum):
    TRANSLATION = "translation"  # no mapping
    PERMISSION = "permission"  # mapped, insufficient rights


class TranslationFault(Exception):
    """A stage of translation failed.

    ``stage`` is 1 or 2; ``address`` is the input address to the failing
    stage (so for stage-2 faults it is the IPA, matching ``HPFAR_EL2``).
    """

    def __init__(self, stage, address, fault_type, is_write=False):
        self.stage = stage
        self.address = address
        self.fault_type = fault_type
        self.is_write = is_write
        super().__init__(
            "stage-%d %s fault at %#x" % (stage, fault_type.value, address))


@dataclass(frozen=True)
class Mapping:
    """One page mapping: input page -> output page with permissions."""

    output_page: int
    perm: Permission
    is_device: bool = False


class PageTable:
    """A page-granular translation table.

    ``stage`` tags the table (1 or 2) so faults report correctly, and
    ``fmt`` records whether the table uses the EL1 or EL2 descriptor
    format — ARMv8.3 lets a deprivileged hypervisor keep using the EL2
    format at EL1 (Section 2), which we track as metadata so tests can
    assert the behaviour.
    """

    def __init__(self, stage=1, fmt="el1", name=""):
        if stage not in (1, 2):
            raise ValueError("stage must be 1 or 2")
        if fmt not in ("el1", "el2"):
            raise ValueError("fmt must be 'el1' or 'el2'")
        self.stage = stage
        self.fmt = fmt
        self.name = name
        self._entries = {}
        self._blocks = {}  # block-aligned input -> Mapping (2 MB blocks)

    def map_page(self, in_addr, out_addr, perm=Permission.RWX,
                 is_device=False):
        """Map the page containing *in_addr* to the page containing
        *out_addr*."""
        in_page = page_align(in_addr)
        out_page = page_align(out_addr)
        self._entries[in_page] = Mapping(out_page, perm, is_device)

    def map_range(self, in_base, out_base, size, perm=Permission.RWX,
                  is_device=False):
        if size <= 0:
            raise ValueError("size must be positive")
        offset = 0
        while offset < size:
            self.map_page(in_base + offset, out_base + offset, perm,
                          is_device)
            offset += PAGE_SIZE

    def map_block(self, in_addr, out_addr, perm=Permission.RWX,
                  is_device=False):
        """Install a 2 MB block mapping (both addresses block-aligned).

        Block mappings are what OSes and hypervisors prefer for large
        regions; shadow-table construction must *split* them when the
        other stage only offers page granularity.
        """
        if in_addr & BLOCK_MASK or out_addr & BLOCK_MASK:
            raise ValueError("block mappings must be 2 MB aligned")
        self._blocks[in_addr] = Mapping(out_addr, perm, is_device)

    def unmap_page(self, in_addr):
        self._entries.pop(page_align(in_addr), None)

    def unmap_block(self, in_addr):
        self._blocks.pop(block_align(in_addr), None)

    def unmap_all(self):
        self._entries.clear()
        self._blocks.clear()

    def lookup(self, in_addr):
        """Return the page-granular Mapping for *in_addr* or None.

        Page entries take precedence over a covering block (the split
        case); a block hit is returned as an equivalent page mapping.
        """
        page = self._entries.get(page_align(in_addr))
        if page is not None:
            return page
        block = self._blocks.get(block_align(in_addr))
        if block is None:
            return None
        offset = page_align(in_addr) - block_align(in_addr)
        return Mapping(block.output_page + offset, block.perm,
                       block.is_device)

    def lookup_block(self, in_addr):
        """The raw block entry covering *in_addr*, if any."""
        return self._blocks.get(block_align(in_addr))

    @property
    def block_count(self):
        return len(self._blocks)

    def translate(self, in_addr, perm=Permission.R):
        """Translate *in_addr*, raising TranslationFault on failure."""
        mapping = self.lookup(in_addr)
        if mapping is None:
            raise TranslationFault(self.stage, in_addr,
                                   FaultType.TRANSLATION,
                                   is_write=bool(perm & Permission.W))
        if perm & ~mapping.perm:
            raise TranslationFault(self.stage, in_addr, FaultType.PERMISSION,
                                   is_write=bool(perm & Permission.W))
        return mapping.output_page | (in_addr & (PAGE_SIZE - 1))

    def mapped_pages(self):
        """Iterate ``(input_page, Mapping)`` pairs, sorted by input page."""
        return sorted(self._entries.items())

    def __len__(self):
        return len(self._entries)

    def __contains__(self, in_addr):
        return self.lookup(in_addr) is not None
