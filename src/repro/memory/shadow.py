"""Shadow stage-2 page tables for nested virtualization.

Section 4: "the host hypervisor creates shadow Stage-2 page tables to map
from L2 VM PAs to L0 PAs by collapsing Stage-2 page tables from the guest
and host hypervisors".  :class:`ShadowStage2` maintains that collapsed
table lazily, the way a real hypervisor does: entries are faulted in on
first access (stage-2 abort), and invalidated when either input table
changes.
"""

from repro.memory.pagetable import PageTable, Permission, TranslationFault
from repro.memory.phys import PAGE_SIZE, page_align


class ShadowStage2:
    """Collapsed L2PA -> L0PA table derived from guest and host stage-2.

    ``guest_stage2`` translates L2 PA -> L1 PA (maintained by the L1 guest
    hypervisor); ``host_stage2`` translates L1 PA -> L0 PA (maintained by
    the L0 host hypervisor).  The shadow table is what the hardware
    actually walks while the L2 VM runs.
    """

    def __init__(self, guest_stage2, host_stage2, name="shadow-s2"):
        self.guest_stage2 = guest_stage2
        self.host_stage2 = host_stage2
        self.table = PageTable(stage=2, fmt="el2", name=name)
        self.faults_handled = 0

    def translate(self, l2_pa, perm=Permission.R):
        """Translate through the shadow table, faulting entries in."""
        mapping = self.table.lookup(l2_pa)
        if mapping is None:
            self.handle_fault(l2_pa, perm)
        return self.table.translate(l2_pa, perm)

    def handle_fault(self, l2_pa, perm=Permission.R):
        """Populate the shadow entry for *l2_pa* (stage-2 abort path).

        Raises TranslationFault(stage=2) against the *guest* table if the
        guest hypervisor has no mapping — that fault must be forwarded to
        the guest hypervisor, exactly as in Section 4 — and against the
        host table if the host has none (host allocates memory then).
        """
        self.faults_handled += 1
        l1_pa = self.guest_stage2.translate(l2_pa, perm)  # may raise
        l0_pa = self.host_stage2.translate(l1_pa, perm)  # may raise
        combined = self._combined_permissions(l2_pa, l1_pa)
        guest_mapping = self.guest_stage2.lookup(l2_pa)
        host_mapping = self.host_stage2.lookup(l1_pa)
        is_device = guest_mapping.is_device or host_mapping.is_device
        self.table.map_page(l2_pa, l0_pa, combined, is_device)

    def _combined_permissions(self, l2_pa, l1_pa):
        """Shadow permissions are the intersection of both stages'."""
        guest_mapping = self.guest_stage2.lookup(l2_pa)
        host_mapping = self.host_stage2.lookup(l1_pa)
        return guest_mapping.perm & host_mapping.perm

    # -- invalidation ------------------------------------------------------

    def invalidate_l2_range(self, l2_base, size):
        """The guest hypervisor changed its stage-2 (e.g. a TLBI trap)."""
        offset = 0
        while offset < size:
            self.table.unmap_page(l2_base + offset)
            offset += PAGE_SIZE

    def invalidate_for_l1_page(self, l1_pa):
        """The host changed a mapping for an L1 page: drop every shadow
        entry whose intermediate address lands in that page."""
        target = page_align(l1_pa)
        stale = []
        for l2_page, _mapping in self.table.mapped_pages():
            try:
                mid = self.guest_stage2.translate(l2_page, Permission.NONE)
            except TranslationFault:
                stale.append(l2_page)
                continue
            if page_align(mid) == target:
                stale.append(l2_page)
        for l2_page in stale:
            self.table.unmap_page(l2_page)

    def invalidate_all(self):
        self.table.unmap_all()

    def verify_against_chain(self):
        """Every populated shadow entry must equal the two-step walk.

        Used by property-based tests: the collapsed table is only correct
        if it is extensionally equal to guest∘host translation.
        """
        for l2_page, mapping in self.table.mapped_pages():
            l1_pa = self.guest_stage2.translate(l2_page, Permission.NONE)
            l0_pa = self.host_stage2.translate(l1_pa, Permission.NONE)
            if page_align(l0_pa) != mapping.output_page:
                raise AssertionError(
                    "shadow entry %#x -> %#x, chain gives %#x"
                    % (l2_page, mapping.output_page, page_align(l0_pa)))
        return True
