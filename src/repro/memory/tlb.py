"""A VMID-tagged TLB model.

Stage-2 translations are tagged with the VMID in ``VTTBR_EL2`` so the
hypervisor can switch VMs without flushing.  Nested virtualization makes
VMID management interesting: the L1 guest hypervisor's VMID allocations
are virtual and must be mapped onto L0 VMIDs (the hypervisor layer does
that; the TLB just honours tags).
"""

from collections import OrderedDict

from repro.memory.phys import page_align


class Tlb:
    """A finite, LRU, VMID-tagged translation cache."""

    def __init__(self, capacity=512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries = OrderedDict()  # (vmid, va_page) -> pa_page
        self.hits = 0
        self.misses = 0

    def lookup(self, vmid, va):
        key = (vmid, page_align(va))
        pa_page = self._entries.get(key)
        if pa_page is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return pa_page

    def fill(self, vmid, va, pa_page):
        key = (vmid, page_align(va))
        self._entries[key] = page_align(pa_page)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- invalidation (TLBI instructions) ---------------------------------

    def invalidate_all(self):
        """TLBI VMALLS12E1-for-everyone."""
        self._entries.clear()

    def invalidate_vmid(self, vmid):
        """TLBI VMALLS12E1: drop everything for one VMID."""
        stale = [key for key in self._entries if key[0] == vmid]
        for key in stale:
            del self._entries[key]

    def invalidate_page(self, vmid, va):
        self._entries.pop((vmid, page_align(va)), None)

    def __len__(self):
        return len(self._entries)

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
