"""Memory virtualization substrate.

Implements the pieces Section 4 ("Memory virtualization") depends on:
physical memory, stage-1 and stage-2 page tables, translation walks, the
shadow stage-2 tables the host hypervisor builds by collapsing the guest
and host stage-2 tables, and a VMID-tagged TLB model.
"""

from repro.memory.pagetable import PageTable, Permission, TranslationFault
from repro.memory.phys import MemoryRegion, PhysicalMemory
from repro.memory.shadow import ShadowStage2
from repro.memory.tlb import Tlb
from repro.memory.translation import TranslationRegime, translate

__all__ = [
    "MemoryRegion",
    "PageTable",
    "Permission",
    "PhysicalMemory",
    "ShadowStage2",
    "Tlb",
    "TranslationFault",
    "TranslationRegime",
    "translate",
]
