"""Physical memory and the machine memory map.

Memory is sparse: only words that were ever written occupy space, so a
simulated machine can expose many gigabytes of address space (the paper's
VMs use 12-20 GB) without allocating it.
"""

from dataclasses import dataclass

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1
WORD_SIZE = 8


def page_align(addr):
    return addr & ~PAGE_MASK


def is_page_aligned(addr):
    return (addr & PAGE_MASK) == 0


@dataclass(frozen=True)
class MemoryRegion:
    """A named region of the physical or intermediate-physical map."""

    name: str
    base: int
    size: int
    is_mmio: bool = False

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("region %s has non-positive size" % self.name)
        if self.base < 0:
            raise ValueError("region %s has negative base" % self.name)

    @property
    def end(self):
        return self.base + self.size

    def contains(self, addr):
        return self.base <= addr < self.end

    def overlaps(self, other):
        return self.base < other.end and other.base < self.end


class PhysicalMemory:
    """Sparse word-addressed physical memory with named regions.

    Regions are optional metadata; reads and writes outside any region are
    allowed (the machine model decides what is a fault) unless
    ``strict=True``.
    """

    def __init__(self, strict=False):
        self._words = {}
        self._regions = []
        self.strict = strict

    # -- regions ---------------------------------------------------------

    def add_region(self, region):
        for existing in self._regions:
            if existing.overlaps(region):
                raise ValueError(
                    "region %s overlaps %s" % (region.name, existing.name))
        self._regions.append(region)
        return region

    def region_at(self, addr):
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def is_mmio(self, addr):
        region = self.region_at(addr)
        return region is not None and region.is_mmio

    # -- access ----------------------------------------------------------

    def _check(self, addr):
        if addr % WORD_SIZE:
            raise ValueError("unaligned word access at %#x" % addr)
        if self.strict and self.region_at(addr) is None:
            raise ValueError("access outside any region at %#x" % addr)

    def read_word(self, addr):
        self._check(addr)
        return self._words.get(addr, 0)

    def write_word(self, addr, value):
        self._check(addr)
        self._words[addr] = value & 0xFFFFFFFFFFFFFFFF

    def read_page(self, base):
        if not is_page_aligned(base):
            raise ValueError("page base %#x not aligned" % base)
        return [self.read_word(base + off) for off in range(0, PAGE_SIZE,
                                                            WORD_SIZE)]

    def zero_page(self, base):
        if not is_page_aligned(base):
            raise ValueError("page base %#x not aligned" % base)
        for off in range(0, PAGE_SIZE, WORD_SIZE):
            self._words.pop(base + off, None)

    @property
    def footprint_words(self):
        """Number of words actually stored (sparseness check)."""
        return len(self._words)


class FrameAllocator:
    """Hands out page-aligned physical frames from a region."""

    def __init__(self, base, size):
        if not is_page_aligned(base):
            raise ValueError("allocator base must be page aligned")
        self._base = base
        self._next = base
        self._end = base + size

    def alloc(self, pages=1):
        frame = self._next
        self._next += pages * PAGE_SIZE
        if self._next > self._end:
            raise MemoryError("frame allocator exhausted")
        return frame

    @property
    def allocated_bytes(self):
        return self._next - self._base
