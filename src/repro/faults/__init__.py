"""Deterministic fault injection and recovery for the nested stack.

A campaign (``python -m repro faults``) derives a :class:`~repro.faults.
plan.FaultPlan` from a seed, arms a :class:`~repro.faults.points.
FaultInjector` at named points threaded through the hot layers (CPU
system-register dispatch, the deferred access page, world switches,
virtio notification), runs the standard nested scenario under the
runtime sanitizer, and drives every injected fault to an explicit
outcome through :class:`~repro.faults.recovery.RecoveryManager`:
recovered in place, superseded by later correct state, or a graceful
degradation of NEVE back to ARMv8.3 trap-and-emulate.  Nothing is
allowed to fail silently.
"""

from repro.faults.plan import FaultClass, FaultPlan, PlannedFault
from repro.faults.points import FaultEvent, FaultInjector
from repro.faults.recovery import IntegrityMonitor, RecoveryManager

__all__ = [
    "FaultClass",
    "FaultPlan",
    "PlannedFault",
    "FaultEvent",
    "FaultInjector",
    "IntegrityMonitor",
    "RecoveryManager",
]
