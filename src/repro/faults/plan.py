"""Seed-driven fault plans.

A plan is generated *before* the scenario runs, entirely from
``random.Random(seed)``: a list of :class:`PlannedFault` entries, each
naming an injection point, the occurrence count at which it fires (the
``trigger``), and class-specific parameters (which register, which bit,
how many replays must fail).  Because the scenario itself is a
deterministic discrete-event simulation, the same seed always produces
the same faults at the same virtual instants — campaigns are replayable
bit for bit, which the property tests assert.
"""

import enum
import random
from dataclasses import dataclass, field


class FaultClass(enum.Enum):
    """What kind of damage a planned fault inflicts."""

    SYSREG_BITFLIP = "sysreg_bitflip"  # msr value corrupted in flight
    SERROR = "serror"  # spurious asynchronous external abort
    PAGE_CORRUPTION = "page_corruption"  # deferred page slot overwritten
    TORN_WRITE = "torn_write"  # deferred store commits only low half
    STALE_CACHED_COPY = "stale_cached_copy"  # cached-copy refresh dropped
    MIGRATION = "migration"  # VM migrated between save and restore
    DROPPED_LR = "dropped_lr"  # vGIC list register lost during save
    LOST_KICK = "lost_kick"  # virtio notification swallowed


#: EL1 registers whose value is pure data along the save/restore flows:
#: flipping a bit corrupts state the recovery layer must repair but does
#: not derail the scenario's control flow (unlike, say, HCR_EL2.VM).
SAFE_FLIP_REGS = (
    "TTBR0_EL1",
    "TTBR1_EL1",
    "MAIR_EL1",
    "AMAIR_EL1",
    "FAR_EL1",
    "TPIDR_EL1",
    "CONTEXTIDR_EL1",
    "AFSR0_EL1",
    "AFSR1_EL1",
    "PAR_EL1",
)

#: Deferred-page slots the scenario never rewrites after boot — a
#: corruption there stays visible until the recovery layer repairs it.
PERSISTENT_VICTIMS = ("PMUSERENR_EL0", "PMSELR_EL0")

#: Slots rewritten by the normal flows — a corruption is usually
#: *absorbed* (superseded by a later correct write), which the recovery
#: layer must classify as such rather than double-repair.
VOLATILE_VICTIMS = ("FAR_EL1", "TPIDR_EL1", "CONTEXTIDR_EL1", "PAR_EL1")

#: EL2 control slots where corruption is NOT silently repairable: the
#: guest hypervisor's execution may already have depended on the bad
#: value, so the only honest recovery is degradation to trap-and-emulate.
CRITICAL_VICTIMS = ("VNCR_EL2",)

#: How often each point is reached in one campaign scenario (measured:
#: e.g. ~190 msr, ~970 deferred accesses, ~350 world-switch saves);
#: triggers are drawn from [1, N] with N below the measured count so
#: most planned faults actually fire, while an early degradation can
#: still legitimately leave a late trigger unreached.
_TRIGGER_RANGES = {
    "cpu.msr": 160,
    "cpu.mrs": 150,
    "cpu.serror": 1000,
    "vncr.store": 400,
    "vncr.page": 800,
    "neve.cached-copy": 180,
    "ws.after-save": 300,
    "ws.before-restore": 300,
    "ws.vgic-lr": 200,
    "virtio.kick": 6,
}

_CLASS_POINTS = {
    FaultClass.SYSREG_BITFLIP: "cpu.msr",
    FaultClass.SERROR: "cpu.serror",
    FaultClass.PAGE_CORRUPTION: "vncr.page",
    FaultClass.TORN_WRITE: "vncr.store",
    FaultClass.STALE_CACHED_COPY: "neve.cached-copy",
    FaultClass.DROPPED_LR: "ws.vgic-lr",
    FaultClass.LOST_KICK: "virtio.kick",
}


@dataclass(frozen=True)
class PlannedFault:
    """One armed fault: fires the ``trigger``-th time ``point`` is hit."""

    fault_id: int
    fault_class: FaultClass
    point: str
    trigger: int
    params: dict = field(default_factory=dict)

    def describe(self):
        return "#%d %s @%s[%d]" % (self.fault_id, self.fault_class.value,
                                   self.point, self.trigger)


class FaultPlan:
    """An ordered set of planned faults derived from one seed."""

    def __init__(self, seed, faults):
        self.seed = seed
        self.faults = tuple(faults)

    def by_point(self):
        """point -> {trigger: fault} for the injector's dispatch."""
        armed = {}
        for fault in self.faults:
            armed.setdefault(fault.point, {})[fault.trigger] = fault
        return armed

    def classes(self):
        return sorted({f.fault_class.value for f in self.faults})

    def has_class(self, fault_class):
        return any(f.fault_class is fault_class for f in self.faults)

    def describe(self):
        return "; ".join(f.describe() for f in self.faults)

    @classmethod
    def generate_smp(cls, seed, cpus):
        """Seed-split plans for a multi-vCPU campaign: one independent
        deterministic plan per vCPU, all derived from the one campaign
        seed.  vCPU 0 keeps the plan ``generate(seed)`` would produce, so
        a single-CPU campaign is the exact degenerate case."""
        return [cls.generate(split_seed(seed, index))
                for index in range(cpus)]

    @classmethod
    def generate(cls, seed):
        """Derive a plan from *seed*: 3-6 faults of distinct classes."""
        rng = random.Random(seed)
        count = rng.randint(3, 6)
        classes = rng.sample(list(FaultClass), count)
        faults = []
        taken = set()  # (point, trigger) pairs already armed
        for fault_id, fault_class in enumerate(classes):
            point = _CLASS_POINTS.get(fault_class)
            if fault_class is FaultClass.MIGRATION:
                point = rng.choice(["ws.after-save", "ws.before-restore"])
            elif fault_class is FaultClass.SYSREG_BITFLIP:
                point = rng.choice(["cpu.msr", "cpu.mrs"])
            trigger = rng.randint(1, _TRIGGER_RANGES[point])
            while (point, trigger) in taken:
                trigger += 1
            taken.add((point, trigger))
            params = _params_for(rng, fault_class)
            faults.append(PlannedFault(fault_id, fault_class, point,
                                       trigger, params))
        return cls(seed, faults)


def split_seed(seed, cpu_index):
    """Derive vCPU *cpu_index*'s plan seed from the campaign seed.

    Knuth multiplicative mixing keeps the per-CPU streams statistically
    independent while staying a pure function of ``(seed, cpu_index)``;
    index 0 maps to the campaign seed itself so single-CPU campaigns are
    unchanged.

    The fleet layer reuses this for *machine* indexes in the thousands,
    where a silently wrapped float or negative index would quietly give
    two machines the same plan — so the inputs are validated loudly.
    """
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValueError("split_seed: seed must be an int, got %r"
                         % (seed,))
    if isinstance(cpu_index, bool) or not isinstance(cpu_index, int):
        raise ValueError("split_seed: cpu_index must be an int, got %r"
                         % (cpu_index,))
    if cpu_index < 0:
        raise ValueError("split_seed: cpu_index must be >= 0, got %d"
                         % cpu_index)
    if cpu_index == 0:
        return seed
    return (seed + cpu_index * 2654435761) % (1 << 32)


def _params_for(rng, fault_class):
    if fault_class is FaultClass.SYSREG_BITFLIP:
        return {"bit": rng.randint(0, 47)}
    if fault_class is FaultClass.PAGE_CORRUPTION:
        kind = rng.random()
        if kind < 0.25:
            victim = rng.choice(CRITICAL_VICTIMS)
            critical = True
        elif kind < 0.6:
            victim = rng.choice(PERSISTENT_VICTIMS)
            critical = False
        else:
            victim = rng.choice(VOLATILE_VICTIMS)
            critical = False
        return {"victim": victim, "critical": critical,
                "garbage": rng.getrandbits(48)}
    if fault_class in (FaultClass.TORN_WRITE, FaultClass.STALE_CACHED_COPY):
        # With some probability the first replay attempts also fail,
        # exercising the bounded-retry path and, at 3, its exhaustion.
        weights = [0.55, 0.15, 0.15, 0.15]
        return {"replay_failures": rng.choices(range(4), weights)[0]}
    return {}
