"""``python -m repro faults`` — run seeded fault campaigns.

Exit status 0 means every campaign was clean: every injected fault
ended recovered or explicitly degraded, the sanitizer saw no invariant
violations, and the post-recovery probe behaved like the surviving
configuration.  Any silent fault fails the run.
"""

import argparse
import sys

from repro.faults.campaign import run_campaign
from repro.faults.plan import FaultClass


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="deterministic fault-injection campaigns over the "
                    "nested stack")
    parser.add_argument("--seeds", type=int, default=20, metavar="N",
                        help="number of seeds to run (default 20)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (campaign i runs seed base+i)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-fault outcomes for every seed")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="run each campaign under the causal tracer "
                             "and write per-seed Chrome trace JSON into "
                             "DIR (injected faults appear as annotated "
                             "events; digests are unaffected)")
    args = parser.parse_args(argv)

    results = []
    for index in range(args.seeds):
        result = run_campaign(args.seed_base + index,
                              trace=args.trace is not None)
        if args.trace is not None:
            _write_trace(args.trace, result)
        results.append(result)

    _print_class_table(results)
    print()
    failed = [r for r in results if not r.ok]
    for result in results:
        marker = "ok" if result.ok else "FAIL"
        line = ("seed %4d  %s  degraded=%-5s probe=%3d  sanitizer %d/%d  "
                "digest %s" % (result.seed, marker, result.degraded,
                               result.probe_traps,
                               result.sanitizer_violations,
                               result.sanitizer_checks,
                               result.digest[:16]))
        if args.verbose or not result.ok:
            print(line)
            for entry in result.outcomes:
                print("    #%(fault_id)d %(class)-18s @%(point)-17s"
                      "[%(trigger)3d]  %(outcome)s (%(recovery)s)"
                      % entry)
            for silent in result.silent:
                print("    SILENT: %s" % silent)
        else:
            print(line)

    print()
    print("%d/%d campaigns clean" % (len(results) - len(failed),
                                     len(results)))
    return 1 if failed else 0


def _write_trace(out_dir, result):
    import os

    from repro.trace.export import write_chrome_trace

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "campaign-seed-%d.json" % result.seed)
    write_chrome_trace(result.tracer, path,
                       label="campaign/seed-%d" % result.seed)
    return path


def _print_class_table(results):
    """Aggregate per fault class: planned / fired / recovered / degraded
    / not-triggered across all seeds."""
    rows = {fc.value: {"planned": 0, "fired": 0, "recovered": 0,
                       "degraded": 0, "not-triggered": 0}
            for fc in FaultClass}
    for result in results:
        for entry in result.outcomes:
            row = rows[entry["class"]]
            row["planned"] += 1
            if entry["fired"]:
                row["fired"] += 1
                if entry["outcome"] in row:
                    row[entry["outcome"]] += 1
            else:
                row["not-triggered"] += 1
    header = ("%-20s %8s %6s %10s %9s %8s"
              % ("fault class", "planned", "fired", "recovered",
                 "degraded", "missed"))
    print(header)
    print("-" * len(header))
    for name in sorted(rows):
        row = rows[name]
        print("%-20s %8d %6d %10d %9d %8d"
              % (name, row["planned"], row["fired"], row["recovered"],
                 row["degraded"], row["not-triggered"]))


if __name__ == "__main__":
    sys.exit(main())
