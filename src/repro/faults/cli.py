"""``python -m repro faults`` — run seeded fault campaigns.

Exit status 0 means every campaign was clean: every injected fault
ended recovered, explicitly degraded, or re-promoted after cooling off;
the sanitizer saw no invariant violations; no cross-CPU recovery
ordering rule was broken; and the post-recovery probes behaved like the
surviving configuration (including the re-probe after a re-promotion,
which must be back to NEVE's trap count).  Any silent fault fails the
run.

With ``--cpus N`` every campaign boots N pinned vCPUs with independent
seed-split fault plans and reports a per-vCPU verdict column; see
``docs/faults.md`` for how to read the output.
"""

import argparse
import sys

from repro.faults.campaign import run_campaign
from repro.faults.plan import FaultClass
from repro.hypervisor.scheduler import INTERLEAVE_POLICIES


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="deterministic fault-injection campaigns over the "
                    "nested stack")
    parser.add_argument("--seeds", type=int, default=20, metavar="N",
                        help="number of seeds to run (default 20)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (campaign i runs seed base+i)")
    parser.add_argument("--cpus", type=int, default=1, metavar="N",
                        help="vCPUs per campaign; each gets its own "
                             "seed-split fault plan (default 1)")
    parser.add_argument("--interleave", default="roundrobin",
                        choices=INTERLEAVE_POLICIES,
                        help="per-round vcpu execution order (the "
                             "determinism tests perturb this; verdicts "
                             "must converge)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-fault outcomes for every seed")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="run each campaign under the causal tracer "
                             "and write per-seed Chrome trace JSON into "
                             "DIR (injected faults appear as annotated "
                             "events; digests are unaffected)")
    args = parser.parse_args(argv)

    results = []
    for index in range(args.seeds):
        result = run_campaign(args.seed_base + index,
                              trace=args.trace is not None,
                              cpus=args.cpus, interleave=args.interleave)
        if args.trace is not None:
            _write_trace(args.trace, result)
        results.append(result)

    _print_class_table(results)
    print()
    failed = [r for r in results if not r.ok]
    for result in results:
        marker = "ok" if result.ok else "FAIL"
        line = ("seed %4d  %s  degraded=%-5s repromoted=%-5s probe=%3d  "
                "sanitizer %d/%d  digest %s"
                % (result.seed, marker, result.degraded,
                   result.repromoted, result.probe_traps,
                   result.sanitizer_violations,
                   result.sanitizer_checks,
                   result.digest[:16]))
        print(line)
        if args.cpus > 1 and (args.verbose or not result.ok):
            for row in result.per_vcpu:
                reprobe = ("reprobe=%3d" % row["reprobe"]
                           if row["reprobe"] is not None else "")
                print("    vcpu%(vcpu)d %(verdict)-10s "
                      "probe=%(probe)3d " % row + reprobe)
        if args.verbose or not result.ok:
            for entry in result.outcomes:
                print("    cpu%(cpu)s #%(fault_id)d %(class)-18s "
                      "@%(point)-17s[%(trigger)3d]  %(outcome)s "
                      "(%(recovery)s)" % entry)
            for violation in result.ordering_violations:
                print("    ORDERING: %s" % violation)
            for silent in result.silent:
                print("    SILENT: %s" % silent)

    print()
    print("%d/%d campaigns clean" % (len(results) - len(failed),
                                     len(results)))
    return 1 if failed else 0


def _write_trace(out_dir, result):
    import os

    from repro.trace.export import write_chrome_trace

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "campaign-seed-%d.json" % result.seed)
    write_chrome_trace(result.tracer, path,
                       label="campaign/seed-%d" % result.seed)
    return path


def _print_class_table(results):
    """Aggregate per fault class: planned / fired / recovered / degraded
    / re-promoted / not-triggered across all seeds."""
    rows = {fc.value: {"planned": 0, "fired": 0, "recovered": 0,
                       "degraded": 0, "repromoted": 0, "not-triggered": 0}
            for fc in FaultClass}
    for result in results:
        for entry in result.outcomes:
            row = rows[entry["class"]]
            row["planned"] += 1
            if entry["fired"]:
                row["fired"] += 1
                if entry["outcome"] in row:
                    row[entry["outcome"]] += 1
            else:
                row["not-triggered"] += 1
    header = ("%-20s %8s %6s %10s %9s %11s %8s"
              % ("fault class", "planned", "fired", "recovered",
                 "degraded", "repromoted", "missed"))
    print(header)
    print("-" * len(header))
    for name in sorted(rows):
        row = rows[name]
        print("%-20s %8d %6d %10d %9d %11d %8d"
              % (name, row["planned"], row["fired"], row["recovered"],
                 row["degraded"], row["repromoted"],
                 row["not-triggered"]))


if __name__ == "__main__":
    sys.exit(main())
