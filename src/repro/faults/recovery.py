"""VNCR recovery paths: audit, resync, replay, degrade, re-promote.

The cooperating pieces:

* :class:`IntegrityMonitor` shadows one deferred access page.  It wraps
  the physical memory's word store so every *legitimate* write inside
  the page updates a reference copy; the injector's corruption goes
  through :meth:`IntegrityMonitor.raw_write` and bypasses it.  An
  ``audit()`` then reports exactly the slots that diverged — the model's
  stand-in for the hash/ECC check a real host would run.

* :class:`MachineIntegrityMonitor` is the SMP form: one ``write_word``
  wrapper covering *every* vCPU's page as a tracked window, so the
  integrity check is machine-wide (a write that lands in any vCPU's
  page updates that window's reference).  Each window exposes the
  single-page :class:`IntegrityMonitor` interface, so the per-vCPU
  :class:`RecoveryManager` is oblivious to which form it drives.

* :class:`RecoveryCoordinator` serialises recovery across vCPUs: a
  vCPU mid-recovery holds the machine-wide recovery lock, its page is
  quarantined, and a deferred access from *another* CPU into that page
  is recorded as an ordering violation (via the ``Cpu.recovery_guard``
  hook).  Settlement always runs in vcpu-id order, so the recovery
  order is itself deterministic and part of the campaign digest.

* :class:`RecoveryManager` turns injector journal entries and audit
  mismatches into explicit outcomes.  The ladder, cheapest first:

  1. **Superseded** — the corrupt value was already overwritten by later
     correct state (common for volatile slots); nothing to do but
     classify.
  2. **Repair / replay** — write the known-good value back, bounded at
     ``MAX_REPLAY_TRIES`` attempts (a replay itself may fail).
  3. **Degrade** — for critical control slots (``VNCR_EL2`` itself) or
     replay exhaustion, take NEVE down to ARMv8.3 trap-and-emulate:
     slower (the exit multiplication returns) but correct.
  4. **Re-promote** — degradation is *not* terminal: once the fault
     burst subsides for :data:`COOLING_OFF_CYCLES` of virtual time,
     :meth:`RecoveryManager.maybe_repromote` re-arms a fresh deferred
     access page from the banked contexts and hands the vcpu back to
     NEVE.  Hysteresis: each re-promotion doubles the next required
     quiet window (``REPROMOTE_BACKOFF``) and after
     ``MAX_REPROMOTIONS`` flaps the vcpu stays degraded, so a flapping
     fault source cannot oscillate the machine.

  Every action is charged to the cycle ledger under ``recovery`` and
  counted in :class:`repro.metrics.counters.RecoveryCounter`, so
  resilience has a visible price like everything else in the model.
"""

from contextlib import contextmanager
from dataclasses import dataclass

from repro.arch.registers import RegClass, deferred_page_size
from repro.core.vncr import deferred_registers
from repro.faults.plan import FaultClass
from repro.memory.phys import PAGE_SIZE
from repro.metrics.counters import RecoveryEvent
from repro.trace.spans import cpu_span

#: Slots whose corruption may already have steered guest-hypervisor
#: execution: silently rewriting them could hide a wrong decision, so
#: the only honest recovery is degradation.
CRITICAL_SLOTS = frozenset(["HCR_EL2", "VTTBR_EL2", "VNCR_EL2"])

#: A replay (rewriting a slot from the journal) may itself fail; give up
#: and degrade after this many attempts.
MAX_REPLAY_TRIES = 3

#: Base cooling-off window (virtual cycles): a degraded vcpu may be
#: re-promoted to NEVE only after this much quiet time — no fault
#: firing on its injector — has elapsed since the degradation (or since
#: the last fault, whichever is later).
COOLING_OFF_CYCLES = 1_000_000

#: Hysteresis: each re-promotion multiplies the *next* required quiet
#: window by this factor, so a fault source that keeps flapping pays an
#: exponentially growing cooling-off.
REPROMOTE_BACKOFF = 2

#: Hard hysteresis stop: after this many re-promotions the vcpu stays
#: degraded for the rest of its life — a flapping source cannot
#: oscillate the machine indefinitely.
MAX_REPROMOTIONS = 3


@dataclass(frozen=True)
class RecoveryCosts:
    """Cycle prices for recovery actions, charged per action.

    Derived from the platform :class:`~repro.metrics.cycles.CostModel`
    by :func:`derive_recovery_costs` — the prices scale with the memory
    costs and the deferred-page geometry instead of being free-standing
    constants, so a recalibrated cost model recalibrates recovery too.
    """

    audit: int  # full walk over the page, one load per slot
    repair: int  # one slot rewrite + verify read + barriers
    replay: int  # journal lookup + repair + verify
    migration: int  # page copy + VNCR reprogram + TLB maintenance
    degrade: int  # evacuate live slots + mode switch + TLB
    repromote: int  # repopulate a fresh page + re-arm VNCR + TLB
    serror_triage: int  # RAS syndrome triage at EL2
    requeue: int  # re-inject one lost virtual interrupt
    rekick: int  # watchdog-driven virtio notification


def derive_recovery_costs(costs, page_size=PAGE_SIZE):
    """Price the recovery ladder from a platform cost model.

    Every term is memory traffic over the deferred access page (8-byte
    slots) plus the barriers/maintenance the operation architecturally
    requires; the fixed instruction counts model the surrounding
    dispatch code.
    """
    slots = page_size // 8  # 8-byte slots across the whole page
    live_slots = deferred_page_size() // 8  # slots the registry uses
    repair = (costs.mem_store + costs.mem_load + 2 * costs.dsb_isb
              + 16 * costs.instr)
    return RecoveryCosts(
        audit=slots * costs.mem_load + costs.dsb_isb,
        repair=repair,
        replay=repair + 2 * costs.mem_load + 12 * costs.instr,
        migration=(slots * (costs.mem_load + costs.mem_store)
                   + costs.sysreg_write + costs.tlb_maintenance),
        degrade=(live_slots * (costs.mem_load + costs.mem_store)
                 + costs.sysreg_write + costs.tlb_maintenance
                 + 2 * costs.dsb_isb + 256 * costs.instr),
        # The mirror image of degrade: every live slot is read back out
        # of the banked contexts and stored into the fresh page, then
        # VNCR_EL2 is reprogrammed and the stage-1 mapping flushed.
        repromote=(live_slots * (costs.mem_load + costs.mem_store)
                   + costs.sysreg_write + costs.tlb_maintenance
                   + 2 * costs.dsb_isb + 192 * costs.instr),
        serror_triage=(16 * costs.cache_miss + 32 * costs.instr
                       + costs.dsb_isb),
        requeue=(4 * (costs.mem_load + costs.mem_store)
                 + 2 * costs.dsb_isb + 80 * costs.instr),
        rekick=(costs.userspace_roundtrip + costs.irq_delivery_wire
                + 100 * costs.instr),
    )


class IntegrityMonitor:
    """Reference copy of the deferred access page, offset-keyed.

    Installing the monitor wraps ``memory.write_word``; writes inside
    ``[baddr, baddr + PAGE_SIZE)`` update the reference.  Keying by
    *offset* (not absolute address) makes migration cheap: after the
    page moves, :meth:`rebase` re-aims the window and the reference
    carries over unchanged.
    """

    def __init__(self, memory, baddr):
        self.memory = memory
        self.baddr = baddr
        self.expected = {}  # page offset -> expected word
        self._orig_write = None

    @property
    def installed(self):
        return self._orig_write is not None

    def install(self):
        if self.installed:
            raise RuntimeError("integrity monitor already installed")
        for reg in deferred_registers():
            self.expected[reg.vncr_offset] = self.memory.read_word(
                self.baddr + reg.vncr_offset)
        self._orig_write = self.memory.write_word
        self.memory.write_word = self._tracked_write
        return self

    def uninstall(self):
        if self.installed:
            self.memory.write_word = self._orig_write
            self._orig_write = None

    def _tracked_write(self, addr, value):
        self._orig_write(addr, value)
        if self.baddr <= addr < self.baddr + PAGE_SIZE:
            self.expected[addr - self.baddr] = value & 0xFFFFFFFFFFFFFFFF

    def raw_write(self, addr, value):
        """Corruption channel: hits memory without updating the
        reference, so ``audit`` can see the divergence."""
        (self._orig_write or self.memory.write_word)(addr, value)

    def rebase(self, new_baddr):
        """The page moved (migration): re-aim the tracked window."""
        self.baddr = new_baddr

    def retrack(self, new_baddr):
        """Re-promotion: start shadowing a *fresh* page.  The reference
        is re-snapshotted from the page's current (just-repopulated)
        contents; the wrapper is re-installed if degrade removed it."""
        self.baddr = new_baddr
        if not self.installed:
            self._orig_write = self.memory.write_word
            self.memory.write_word = self._tracked_write
        self.expected = {}
        for reg in deferred_registers():
            self.expected[reg.vncr_offset] = self.memory.read_word(
                self.baddr + reg.vncr_offset)

    def audit(self):
        """Return ``[(offset, expected, actual)]`` for diverged slots."""
        mismatches = []
        for offset in sorted(self.expected):
            actual = self.memory.read_word(self.baddr + offset)
            if actual != self.expected[offset]:
                mismatches.append((offset, self.expected[offset], actual))
        return mismatches


class _PageWindow:
    """One vCPU's tracked page inside a :class:`MachineIntegrityMonitor`.

    Presents the single-page :class:`IntegrityMonitor` surface (audit /
    rebase / retrack / raw_write / uninstall / installed) so a
    :class:`RecoveryManager` drives either form identically.
    """

    def __init__(self, owner, vcpu_id, baddr):
        self.owner = owner
        self.vcpu_id = vcpu_id
        self.baddr = baddr
        self.expected = {}  # page offset -> expected word
        self.tracked = True
        self._snapshot()

    def _snapshot(self):
        self.expected = {}
        for reg in deferred_registers():
            self.expected[reg.vncr_offset] = self.owner.memory.read_word(
                self.baddr + reg.vncr_offset)

    @property
    def installed(self):
        return self.tracked and self.owner.installed

    def raw_write(self, addr, value):
        self.owner.raw_write(addr, value)

    def rebase(self, new_baddr):
        self.baddr = new_baddr

    def retrack(self, new_baddr):
        self.baddr = new_baddr
        self.tracked = True
        self._snapshot()

    def uninstall(self):
        """Degrade drops only this window; the machine-wide wrapper
        stays (other vCPUs' pages are still shadowed)."""
        self.tracked = False

    def audit(self):
        mismatches = []
        for offset in sorted(self.expected):
            actual = self.owner.memory.read_word(self.baddr + offset)
            if actual != self.expected[offset]:
                mismatches.append((offset, self.expected[offset], actual))
        return mismatches


class MachineIntegrityMonitor:
    """Machine-wide page integrity: one ``write_word`` wrapper, one
    tracked window per vCPU's deferred access page.

    Chaining per-page :class:`IntegrityMonitor` wrappers would break on
    mid-chain uninstall (a degrade would splice the wrong original
    back); wrapping once and dispatching by address keeps install and
    uninstall order-independent, which SMP campaigns need.
    """

    def __init__(self, memory):
        self.memory = memory
        self.windows = {}  # vcpu_id -> _PageWindow
        self._orig_write = None

    @property
    def installed(self):
        return self._orig_write is not None

    def install(self):
        if self.installed:
            raise RuntimeError("machine integrity monitor already installed")
        self._orig_write = self.memory.write_word
        self.memory.write_word = self._tracked_write
        return self

    def uninstall(self):
        if self.installed:
            self.memory.write_word = self._orig_write
            self._orig_write = None

    def track(self, vcpu_id, baddr):
        """Start shadowing one vCPU's page; returns its window facade."""
        window = _PageWindow(self, vcpu_id, baddr)
        self.windows[vcpu_id] = window
        return window

    def _tracked_write(self, addr, value):
        self._orig_write(addr, value)
        for window in self.windows.values():
            if window.tracked and \
                    window.baddr <= addr < window.baddr + PAGE_SIZE:
                window.expected[addr - window.baddr] = \
                    value & 0xFFFFFFFFFFFFFFFF

    def raw_write(self, addr, value):
        """Corruption channel: hits memory without updating any window's
        reference, so ``audit`` sees the divergence."""
        (self._orig_write or self.memory.write_word)(addr, value)

    def audit_all(self):
        """Machine-wide audit: ``{vcpu_id: [(offset, expected, actual)]}``
        over every still-tracked window."""
        return {vcpu_id: window.audit()
                for vcpu_id, window in sorted(self.windows.items())
                if window.tracked}


def _offset_to_reg():
    return {r.vncr_offset: r for r in deferred_registers()}


class RecoveryCoordinator:
    """Cross-CPU recovery ordering for SMP campaigns.

    At most one vCPU's recovery runs at a time (the discrete-event model
    is single-threaded, but the *rule* is what a real SMP host needs and
    the guard makes breaking it visible): while a manager holds the
    recovery lock its page is quarantined, and a deferred access from a
    different physical CPU into that page is recorded as an ordering
    violation.  ``settle_all`` fixes the settlement order to ascending
    vcpu id, and every exclusive section is journalled into
    ``recovery_order`` — which feeds the campaign digest, so the
    determinism tests cover the ordering too.
    """

    def __init__(self, machine):
        self.machine = machine
        self.managers = {}  # vcpu_id -> RecoveryManager
        self.recovery_order = []  # (vcpu_id, action), outermost only
        self.violations = []
        self._active = None

    def register(self, manager):
        self.managers[manager.vcpu.vcpu_id] = manager
        manager.coordinator = self
        return manager

    def install_guards(self):
        """Point every physical CPU's ``recovery_guard`` here."""
        for cpu in self.machine.cpus:
            cpu.recovery_guard = self

    def remove_guards(self):
        for cpu in self.machine.cpus:
            cpu.recovery_guard = None

    # -- the guard hook (called from Cpu._deferred_access) ---------------

    def on_deferred_access(self, cpu, addr):
        """A vCPU mid-recovery must not have its half-repaired page
        observed by another CPU: any deferred access that lands in the
        quarantined window from a different CPU is an ordering bug."""
        active = self._active
        if active is None:
            return
        baddr = active.quarantined_baddr()
        if baddr is None or not (baddr <= addr < baddr + PAGE_SIZE):
            return
        if cpu is not active.vcpu.cpu:
            self.violations.append(
                "cpu%d touched vcpu%d's page at %#x during its recovery"
                % (cpu.cpu_id, active.vcpu.vcpu_id, addr))

    # -- exclusivity ------------------------------------------------------

    @contextmanager
    def exclusive(self, manager, action):
        """Serialise one recovery action.  Re-entrant for the same
        manager (the ladder nests: settle -> resync -> degrade); a
        *different* manager entering mid-recovery is an ordering
        violation, recorded rather than raised so the campaign can
        report it."""
        if self._active is manager:
            yield
            return
        if self._active is not None:
            self.violations.append(
                "vcpu%d began '%s' while vcpu%d was mid-recovery"
                % (manager.vcpu.vcpu_id, action,
                   self._active.vcpu.vcpu_id))
        previous = self._active
        self._active = manager
        self.recovery_order.append((manager.vcpu.vcpu_id, action))
        try:
            yield
        finally:
            self._active = previous

    # -- machine-wide entry points ----------------------------------------

    def on_serror(self, cpu, vcpu):
        """``KvmHypervisor.serror_policy`` for SMP: dispatch to the
        faulting vcpu's own manager under the machine-wide lock."""
        manager = self.managers.get(vcpu.vcpu_id)
        if manager is not None:
            manager.on_serror(cpu, vcpu)

    def settle_all(self):
        """End-of-run settlement in ascending vcpu-id order — the
        deterministic cross-CPU recovery order."""
        for vcpu_id in sorted(self.managers):
            manager = self.managers[vcpu_id]
            manager.settle(manager.vcpu.cpu)

    def repromote_all(self, now=None):
        """Offer re-promotion to every degraded vcpu, in vcpu-id order;
        returns the ids that came back to NEVE."""
        repromoted = []
        for vcpu_id in sorted(self.managers):
            manager = self.managers[vcpu_id]
            if manager.maybe_repromote(manager.vcpu.cpu, now=now):
                repromoted.append(vcpu_id)
        return repromoted


class RecoveryManager:
    """Drives every injected fault on one vcpu to an explicit outcome.

    With a :class:`RecoveryCoordinator` attached (SMP campaigns), every
    mutating ladder action runs inside the machine-wide exclusive
    section; without one (single-vCPU use, unit tests) the manager is
    self-contained and behaves exactly as before.
    """

    def __init__(self, machine, vcpu, monitor, injector, coordinator=None):
        self.machine = machine
        self.vcpu = vcpu
        self.monitor = monitor
        self.injector = injector
        self.costs = derive_recovery_costs(machine.costs)
        self.degraded = False
        self.degrade_reason = None
        # Re-promotion state: when the degradation happened (virtual
        # cycles), how often this vcpu has already flapped back, and why
        # the last re-promotion attempt was refused (for reporting).
        self.degraded_at = None
        self.repromotions = 0
        self.repromote_refused = None
        self.coordinator = None
        injector.corrupt_word = monitor.raw_write
        injector.on_migration = self.on_migration
        if coordinator is not None:
            coordinator.register(self)

    # -- accounting --------------------------------------------------------

    def _charge(self, cycles):
        self.machine.ledger.charge(cycles, "recovery")
        metrics = getattr(self.machine, "metrics", None)
        if metrics is not None:
            metrics.observe_recovery_cycles(cycles)

    def _count(self, event):
        self.machine.recoveries.record(event)
        metrics = getattr(self.machine, "metrics", None)
        if metrics is not None:
            metrics.count_cpu_recovery(self.vcpu.cpu.cpu_id, event)

    def _exclusive(self, action):
        """The machine-wide recovery lock, when coordinated."""
        if self.coordinator is None:
            return _null_context()
        return self.coordinator.exclusive(self, action)

    def quarantined_baddr(self):
        """The page other CPUs must not observe while this manager is
        mid-recovery (None once degraded: the page is gone)."""
        if self.degraded or self.vcpu.neve is None:
            return None
        return self.vcpu.neve.page.baddr

    # -- slot access (page while NEVE lives, banked contexts after) --------

    def _slot_read(self, cpu, reg_name):
        reg = _reg(reg_name)
        if not self.degraded:
            return self.vcpu.neve.page.read_reg(reg_name)
        if reg.reg_class is RegClass.GIC_HYP:
            return self.vcpu.shadow_ich.peek(reg_name)
        if reg.el == 2:
            return self.vcpu.vel2_ctx.peek(reg_name)
        return self.vcpu.vel1_shadow.peek(reg_name)

    def _slot_write(self, cpu, reg_name, value):
        reg = _reg(reg_name)
        if not self.degraded:
            with cpu.host_mode():
                self.vcpu.neve.write_deferred(reg_name, value)
            return
        if reg.reg_class is RegClass.GIC_HYP:
            self.vcpu.shadow_ich.poke(reg_name, value)
        elif reg.el == 2:
            self.vcpu.vel2_ctx.poke(reg_name, value)
        else:
            self.vcpu.vel1_shadow.poke(reg_name, value)

    # -- the recovery paths ------------------------------------------------

    def resync(self, cpu):
        """Audit the page against the reference and repair divergences
        (the VNCR flush/resync a host runs after migration or SError)."""
        if self.degraded:
            return
        with self._exclusive("resync"), \
                cpu_span(cpu, "recovery.resync", kind="recovery"):
            self._charge(self.costs.audit)
            by_offset = _offset_to_reg()
            for offset, expected, _actual in self.monitor.audit():
                reg = by_offset[offset]
                if reg.name in CRITICAL_SLOTS:
                    self.degrade(cpu, "critical slot %s inconsistent"
                                 % reg.name)
                    return
                self._slot_write(cpu, reg.name, expected)
                self._charge(self.costs.repair)
                self._count(RecoveryEvent.SLOT_REPAIR)
            self._count(RecoveryEvent.VNCR_RESYNC)

    def on_migration(self, cpu, event):
        """The VM migrated mid-world-switch: the destination host gives
        the vcpu a fresh deferred access page, the runner copies the
        slots across and reprograms VNCR_EL2, and a resync proves the
        new page consistent before the guest hypervisor touches it."""
        if self.degraded:
            event.resolve("recovered", "migrated-degraded")
            return
        with self._exclusive("migration"), \
                cpu_span(cpu, "recovery.migration", kind="recovery"):
            with cpu.host_mode():
                new_baddr = self.machine.kvm.alloc_vncr_page()
                self.vcpu.neve.relocate(new_baddr)
            self.monitor.rebase(new_baddr)
            self._charge(self.costs.migration)
            self._count(RecoveryEvent.MIGRATION_FLUSH)
            self.resync(cpu)
        event.resolve("degraded" if self.degraded else "recovered",
                      "migrated")

    def on_serror(self, cpu, vcpu):
        """``KvmHypervisor.serror_policy``: triage the SError, resync the
        page, and mark the pending SError events survived."""
        with self._exclusive("serror"), \
                cpu_span(cpu, "recovery.serror_triage", kind="recovery"):
            self._charge(self.costs.serror_triage)
            if not self.degraded:
                self.resync(cpu)
            for event in self.injector.pending():
                if event.fault.fault_class is FaultClass.SERROR:
                    event.resolve("recovered", "triaged")
                    self._count(RecoveryEvent.SERROR_RECOVERED)

    def degrade(self, cpu, reason):
        """Graceful degradation: take NEVE down to ARMv8.3 trap-and-
        emulate.  The page's last state is evacuated into the banked
        software contexts (the GIC shadow interface is already
        authoritative), VNCR_EL2.Enable is cleared, and the vcpu runs on
        without the deferred access page — every vEL2 access traps
        again, which is slow but cannot be silently corrupted.

        Degradation is not terminal: once the fault burst subsides,
        :meth:`maybe_repromote` re-arms NEVE after the cooling-off
        window."""
        if self.degraded:
            return
        with self._exclusive("degrade"), \
                cpu_span(cpu, "recovery.degrade", kind="recovery",
                         reason=reason):
            runner = self.vcpu.neve
            with cpu.host_mode():
                for reg in deferred_registers():
                    value = runner.page.read_reg(reg.name)
                    if reg.reg_class is RegClass.GIC_HYP:
                        continue  # shadow_ich is authoritative
                    if reg.el == 2:
                        self.vcpu.vel2_ctx.poke(reg.name, value)
                    else:
                        self.vcpu.vel1_shadow.poke(reg.name, value)
                runner.disable()
            # The dispatch fast path must not keep serving NEVE-era
            # verdicts (defer/cached-copy) once every vEL2 access traps
            # again: drop the verdict cache with the runner.
            cpu.invalidate_verdict_cache()
            self.vcpu.neve = None
            if all(v.neve is None for v in self.vcpu.vm.vcpus):
                self.vcpu.vm.nested = "nv"
            self.monitor.uninstall()
            self.degraded = True
            self.degrade_reason = reason
            self.degraded_at = self.machine.ledger.total
            self._charge(self.costs.degrade)
            self._count(RecoveryEvent.NEVE_DEGRADE)
            metrics = getattr(self.machine, "metrics", None)
            if metrics is not None:
                metrics.set_neve_state(cpu.cpu_id, 0)

    # -- re-promotion ------------------------------------------------------

    def cooling_off_required(self):
        """The quiet window this vcpu currently owes before the next
        re-promotion (hysteresis: doubles per flap)."""
        return COOLING_OFF_CYCLES * (REPROMOTE_BACKOFF ** self.repromotions)

    def cooling_off_remaining(self, now=None):
        """Virtual cycles of quiet time still owed (0 = eligible now).
        ``None`` when the vcpu is not degraded or is permanently capped."""
        if not self.degraded:
            return None
        if self.repromotions >= MAX_REPROMOTIONS:
            return None
        if now is None:
            now = self.machine.ledger.total
        quiet_since = max(self.degraded_at or 0,
                          self.injector.last_fired_cycle())
        return max(0, quiet_since + self.cooling_off_required() - now)

    def maybe_repromote(self, cpu, now=None):
        """Re-arm NEVE if the fault burst has cooled off; returns True
        when the vcpu was re-promoted.

        The hysteresis rules, in order: a vcpu past ``MAX_REPROMOTIONS``
        stays degraded forever; otherwise the quiet window (no fault
        firing on this vcpu's injector) must be at least
        ``COOLING_OFF_CYCLES * REPROMOTE_BACKOFF**repromotions`` virtual
        cycles, measured from the degradation or the last firing,
        whichever is later."""
        if not self.degraded:
            return False
        if self.repromotions >= MAX_REPROMOTIONS:
            self.repromote_refused = ("flapping: %d re-promotions spent"
                                      % self.repromotions)
            return False
        remaining = self.cooling_off_remaining(now)
        if remaining:
            self.repromote_refused = ("cooling off: %d cycles remaining"
                                      % remaining)
            return False
        self._repromote(cpu)
        return True

    def _repromote(self, cpu):
        """The actual re-arm: a fresh page from the host's pool,
        repopulated from the banked contexts (which were authoritative
        while degraded), integrity window re-snapshotted, runner
        re-attached.  The next virtual-EL2 entry re-enables VNCR_EL2
        through the normal host workflow."""
        with self._exclusive("repromote"), \
                cpu_span(cpu, "recovery.repromote", kind="recovery",
                         reason=self.degrade_reason):
            dwell = self.machine.ledger.total - (self.degraded_at or 0)
            # Read every slot's current value out of the banked contexts
            # *before* flipping state: _slot_read serves the degraded
            # sources while self.degraded holds.
            values = {reg.name: self._slot_read(cpu, reg.name)
                      for reg in deferred_registers()}
            runner = self.machine.kvm.rearm_neve(self.vcpu)
            with cpu.host_mode():
                for name, value in values.items():
                    runner.write_deferred(name, value)
            self.monitor.retrack(runner.page.baddr)
            # Mirror of degrade(): trap-era verdicts cached while
            # degraded are stale the moment NEVE re-arms.
            cpu.invalidate_verdict_cache()
            self.degraded = False
            self.vcpu.vm.nested = "neve"
            self.repromotions += 1
            self.repromote_refused = None
            runner.fault_hook = self.vcpu.cpu.fault_hook
            self._charge(self.costs.repromote)
            self._count(RecoveryEvent.NEVE_REPROMOTE)
            metrics = getattr(self.machine, "metrics", None)
            if metrics is not None:
                metrics.set_neve_state(cpu.cpu_id, 1)
                metrics.observe_degradation_dwell(dwell)

    # -- end-of-run settlement ---------------------------------------------

    def settle(self, cpu):
        """Resolve every journalled fault that is still pending, then
        prove the page consistent one last time."""
        with self._exclusive("settle"), \
                cpu_span(cpu, "recovery.settle", kind="recovery"):
            for event in list(self.injector.events):
                if event.outcome != "pending":
                    continue
                fc = event.fault.fault_class
                if fc in (FaultClass.SYSREG_BITFLIP,
                          FaultClass.TORN_WRITE,
                          FaultClass.STALE_CACHED_COPY):
                    self._settle_replayable(cpu, event)
                elif fc is FaultClass.PAGE_CORRUPTION:
                    self._settle_corruption(cpu, event)
                elif fc is FaultClass.SERROR:
                    # The SError exit itself recovered it; classify.
                    event.resolve("recovered", "triaged")
                    self._count(RecoveryEvent.SERROR_RECOVERED)
                elif fc is FaultClass.MIGRATION:
                    event.resolve("recovered", "migrated")
                elif fc is FaultClass.DROPPED_LR:
                    # The interrupt the lost list register carried is
                    # re-injected through the normal pending queue.
                    self.vcpu.queue_virq(event.detail["vintid"])
                    self._charge(self.costs.requeue)
                    self._count(RecoveryEvent.LR_REQUEUE)
                    event.resolve("recovered", "requeued")
                # LOST_KICK is settled by the campaign's virtio phase,
                # which owns the queue statistics.
            if not self.degraded:
                self.resync(cpu)

    def _settle_replayable(self, cpu, event):
        """Journal-based repair for faults the monitor cannot see (the
        corrupt value arrived through a tracked write, so the reference
        copy matches it): compare the slot against the journal."""
        reg_name = event.detail["reg"]
        intended = event.detail["intended"]
        observed = event.detail["observed"]
        current = self._slot_read(cpu, reg_name)
        if current != observed:
            # Later correct state already overwrote the damage.
            event.resolve("recovered", "superseded")
            return
        failures_left = event.detail.get("replay_failures", 0)
        for _attempt in range(MAX_REPLAY_TRIES):
            self._charge(self.costs.replay)
            self._count(RecoveryEvent.REPLAY)
            if failures_left > 0:
                failures_left -= 1
                continue  # this replay attempt itself failed
            self._slot_write(cpu, reg_name, intended)
            if self._slot_read(cpu, reg_name) == intended:
                self._count(RecoveryEvent.SLOT_REPAIR)
                event.resolve("recovered", "replayed")
                return
        self.degrade(cpu, "replay exhausted for %s" % reg_name)
        event.resolve("degraded", "replay-exhausted")

    def _settle_corruption(self, cpu, event):
        reg_name = event.detail["reg"]
        expected = event.detail["expected"]
        observed = event.detail["observed"]
        current = self._slot_read(cpu, reg_name)
        if current != observed:
            event.resolve("recovered", "superseded")
            return
        if event.detail.get("critical"):
            if not self.degraded:
                self.degrade(cpu, "critical slot %s corrupted" % reg_name)
            event.resolve("degraded", "critical-corruption")
            return
        self._slot_write(cpu, reg_name, expected)
        self._charge(self.costs.repair)
        self._count(RecoveryEvent.SLOT_REPAIR)
        event.resolve("recovered", "repaired")


@contextmanager
def _null_context():
    yield


def _reg(name):
    from repro.arch.registers import lookup_register
    return lookup_register(name)
