"""VNCR recovery paths: audit, resync, replay, degrade.

Two cooperating pieces:

* :class:`IntegrityMonitor` shadows the deferred access page.  It wraps
  the physical memory's word store so every *legitimate* write inside
  the page updates a reference copy; the injector's corruption goes
  through :meth:`IntegrityMonitor.raw_write` and bypasses it.  An
  ``audit()`` then reports exactly the slots that diverged — the model's
  stand-in for the hash/ECC check a real host would run.

* :class:`RecoveryManager` turns injector journal entries and audit
  mismatches into explicit outcomes.  The ladder, cheapest first:

  1. **Superseded** — the corrupt value was already overwritten by later
     correct state (common for volatile slots); nothing to do but
     classify.
  2. **Repair / replay** — write the known-good value back, bounded at
     ``MAX_REPLAY_TRIES`` attempts (a replay itself may fail).
  3. **Degrade** — for critical control slots (``VNCR_EL2`` itself) or
     replay exhaustion, tear NEVE down to ARMv8.3 trap-and-emulate:
     slower (the exit multiplication returns) but correct.

  Every action is charged to the cycle ledger under ``recovery`` and
  counted in :class:`repro.metrics.counters.RecoveryCounter`, so
  resilience has a visible price like everything else in the model.
"""

from dataclasses import dataclass

from repro.arch.registers import RegClass, deferred_page_size
from repro.core.vncr import deferred_registers
from repro.faults.plan import FaultClass
from repro.memory.phys import PAGE_SIZE
from repro.metrics.counters import RecoveryEvent
from repro.trace.spans import cpu_span

#: Slots whose corruption may already have steered guest-hypervisor
#: execution: silently rewriting them could hide a wrong decision, so
#: the only honest recovery is degradation.
CRITICAL_SLOTS = frozenset(["HCR_EL2", "VTTBR_EL2", "VNCR_EL2"])

#: A replay (rewriting a slot from the journal) may itself fail; give up
#: and degrade after this many attempts.
MAX_REPLAY_TRIES = 3


@dataclass(frozen=True)
class RecoveryCosts:
    """Cycle prices for recovery actions, charged per action.

    Derived from the platform :class:`~repro.metrics.cycles.CostModel`
    by :func:`derive_recovery_costs` — the prices scale with the memory
    costs and the deferred-page geometry instead of being free-standing
    constants, so a recalibrated cost model recalibrates recovery too.
    """

    audit: int  # full walk over the page, one load per slot
    repair: int  # one slot rewrite + verify read + barriers
    replay: int  # journal lookup + repair + verify
    migration: int  # page copy + VNCR reprogram + TLB maintenance
    degrade: int  # evacuate live slots + mode switch + TLB
    serror_triage: int  # RAS syndrome triage at EL2
    requeue: int  # re-inject one lost virtual interrupt
    rekick: int  # watchdog-driven virtio notification


def derive_recovery_costs(costs, page_size=PAGE_SIZE):
    """Price the recovery ladder from a platform cost model.

    Every term is memory traffic over the deferred access page (8-byte
    slots) plus the barriers/maintenance the operation architecturally
    requires; the fixed instruction counts model the surrounding
    dispatch code.
    """
    slots = page_size // 8  # 8-byte slots across the whole page
    live_slots = deferred_page_size() // 8  # slots the registry uses
    repair = (costs.mem_store + costs.mem_load + 2 * costs.dsb_isb
              + 16 * costs.instr)
    return RecoveryCosts(
        audit=slots * costs.mem_load + costs.dsb_isb,
        repair=repair,
        replay=repair + 2 * costs.mem_load + 12 * costs.instr,
        migration=(slots * (costs.mem_load + costs.mem_store)
                   + costs.sysreg_write + costs.tlb_maintenance),
        degrade=(live_slots * (costs.mem_load + costs.mem_store)
                 + costs.sysreg_write + costs.tlb_maintenance
                 + 2 * costs.dsb_isb + 256 * costs.instr),
        serror_triage=(16 * costs.cache_miss + 32 * costs.instr
                       + costs.dsb_isb),
        requeue=(4 * (costs.mem_load + costs.mem_store)
                 + 2 * costs.dsb_isb + 80 * costs.instr),
        rekick=(costs.userspace_roundtrip + costs.irq_delivery_wire
                + 100 * costs.instr),
    )


class IntegrityMonitor:
    """Reference copy of the deferred access page, offset-keyed.

    Installing the monitor wraps ``memory.write_word``; writes inside
    ``[baddr, baddr + PAGE_SIZE)`` update the reference.  Keying by
    *offset* (not absolute address) makes migration cheap: after the
    page moves, :meth:`rebase` re-aims the window and the reference
    carries over unchanged.
    """

    def __init__(self, memory, baddr):
        self.memory = memory
        self.baddr = baddr
        self.expected = {}  # page offset -> expected word
        self._orig_write = None

    @property
    def installed(self):
        return self._orig_write is not None

    def install(self):
        if self.installed:
            raise RuntimeError("integrity monitor already installed")
        for reg in deferred_registers():
            self.expected[reg.vncr_offset] = self.memory.read_word(
                self.baddr + reg.vncr_offset)
        self._orig_write = self.memory.write_word
        self.memory.write_word = self._tracked_write
        return self

    def uninstall(self):
        if self.installed:
            self.memory.write_word = self._orig_write
            self._orig_write = None

    def _tracked_write(self, addr, value):
        self._orig_write(addr, value)
        if self.baddr <= addr < self.baddr + PAGE_SIZE:
            self.expected[addr - self.baddr] = value & 0xFFFFFFFFFFFFFFFF

    def raw_write(self, addr, value):
        """Corruption channel: hits memory without updating the
        reference, so ``audit`` can see the divergence."""
        (self._orig_write or self.memory.write_word)(addr, value)

    def rebase(self, new_baddr):
        """The page moved (migration): re-aim the tracked window."""
        self.baddr = new_baddr

    def audit(self):
        """Return ``[(offset, expected, actual)]`` for diverged slots."""
        mismatches = []
        for offset in sorted(self.expected):
            actual = self.memory.read_word(self.baddr + offset)
            if actual != self.expected[offset]:
                mismatches.append((offset, self.expected[offset], actual))
        return mismatches


def _offset_to_reg():
    return {r.vncr_offset: r for r in deferred_registers()}


class RecoveryManager:
    """Drives every injected fault to an explicit outcome."""

    def __init__(self, machine, vcpu, monitor, injector):
        self.machine = machine
        self.vcpu = vcpu
        self.monitor = monitor
        self.injector = injector
        self.costs = derive_recovery_costs(machine.costs)
        self.degraded = False
        self.degrade_reason = None
        injector.corrupt_word = monitor.raw_write
        injector.on_migration = self.on_migration

    # -- accounting --------------------------------------------------------

    def _charge(self, cycles):
        self.machine.ledger.charge(cycles, "recovery")
        metrics = getattr(self.machine, "metrics", None)
        if metrics is not None:
            metrics.observe_recovery_cycles(cycles)

    def _count(self, event):
        self.machine.recoveries.record(event)

    # -- slot access (page while NEVE lives, banked contexts after) --------

    def _slot_read(self, cpu, reg_name):
        reg = _reg(reg_name)
        if not self.degraded:
            return self.vcpu.neve.page.read_reg(reg_name)
        if reg.reg_class is RegClass.GIC_HYP:
            return self.vcpu.shadow_ich.peek(reg_name)
        if reg.el == 2:
            return self.vcpu.vel2_ctx.peek(reg_name)
        return self.vcpu.vel1_shadow.peek(reg_name)

    def _slot_write(self, cpu, reg_name, value):
        reg = _reg(reg_name)
        if not self.degraded:
            with cpu.host_mode():
                self.vcpu.neve.write_deferred(reg_name, value)
            return
        if reg.reg_class is RegClass.GIC_HYP:
            self.vcpu.shadow_ich.poke(reg_name, value)
        elif reg.el == 2:
            self.vcpu.vel2_ctx.poke(reg_name, value)
        else:
            self.vcpu.vel1_shadow.poke(reg_name, value)

    # -- the recovery paths ------------------------------------------------

    def resync(self, cpu):
        """Audit the page against the reference and repair divergences
        (the VNCR flush/resync a host runs after migration or SError)."""
        if self.degraded:
            return
        with cpu_span(cpu, "recovery.resync", kind="recovery"):
            self._charge(self.costs.audit)
            by_offset = _offset_to_reg()
            for offset, expected, _actual in self.monitor.audit():
                reg = by_offset[offset]
                if reg.name in CRITICAL_SLOTS:
                    self.degrade(cpu, "critical slot %s inconsistent"
                                 % reg.name)
                    return
                self._slot_write(cpu, reg.name, expected)
                self._charge(self.costs.repair)
                self._count(RecoveryEvent.SLOT_REPAIR)
            self._count(RecoveryEvent.VNCR_RESYNC)

    def on_migration(self, cpu, event):
        """The VM migrated mid-world-switch: the destination host gives
        the vcpu a fresh deferred access page, the runner copies the
        slots across and reprograms VNCR_EL2, and a resync proves the
        new page consistent before the guest hypervisor touches it."""
        if self.degraded:
            event.resolve("recovered", "migrated-degraded")
            return
        with cpu_span(cpu, "recovery.migration", kind="recovery"):
            with cpu.host_mode():
                new_baddr = self.machine.kvm.alloc_vncr_page()
                self.vcpu.neve.relocate(new_baddr)
            self.monitor.rebase(new_baddr)
            self._charge(self.costs.migration)
            self._count(RecoveryEvent.MIGRATION_FLUSH)
            self.resync(cpu)
        event.resolve("degraded" if self.degraded else "recovered",
                      "migrated")

    def on_serror(self, cpu, vcpu):
        """``KvmHypervisor.serror_policy``: triage the SError, resync the
        page, and mark the pending SError events survived."""
        with cpu_span(cpu, "recovery.serror_triage", kind="recovery"):
            self._charge(self.costs.serror_triage)
            if not self.degraded:
                self.resync(cpu)
            for event in self.injector.pending():
                if event.fault.fault_class is FaultClass.SERROR:
                    event.resolve("recovered", "triaged")
                    self._count(RecoveryEvent.SERROR_RECOVERED)

    def degrade(self, cpu, reason):
        """Graceful degradation: tear NEVE down to ARMv8.3 trap-and-
        emulate.  The page's last state is evacuated into the banked
        software contexts (the GIC shadow interface is already
        authoritative), VNCR_EL2.Enable is cleared, and the vcpu runs on
        without the deferred access page — every vEL2 access traps
        again, which is slow but cannot be silently corrupted."""
        if self.degraded:
            return
        with cpu_span(cpu, "recovery.degrade", kind="recovery",
                      reason=reason):
            runner = self.vcpu.neve
            with cpu.host_mode():
                for reg in deferred_registers():
                    value = runner.page.read_reg(reg.name)
                    if reg.reg_class is RegClass.GIC_HYP:
                        continue  # shadow_ich is authoritative
                    if reg.el == 2:
                        self.vcpu.vel2_ctx.poke(reg.name, value)
                    else:
                        self.vcpu.vel1_shadow.poke(reg.name, value)
                runner.disable()
            self.vcpu.neve = None
            self.vcpu.vm.nested = "nv"
            self.monitor.uninstall()
            self.degraded = True
            self.degrade_reason = reason
            self._charge(self.costs.degrade)
            self._count(RecoveryEvent.NEVE_DEGRADE)

    # -- end-of-run settlement ---------------------------------------------

    def settle(self, cpu):
        """Resolve every journalled fault that is still pending, then
        prove the page consistent one last time."""
        with cpu_span(cpu, "recovery.settle", kind="recovery"):
            for event in list(self.injector.events):
                if event.outcome != "pending":
                    continue
                fc = event.fault.fault_class
                if fc in (FaultClass.SYSREG_BITFLIP,
                          FaultClass.TORN_WRITE,
                          FaultClass.STALE_CACHED_COPY):
                    self._settle_replayable(cpu, event)
                elif fc is FaultClass.PAGE_CORRUPTION:
                    self._settle_corruption(cpu, event)
                elif fc is FaultClass.SERROR:
                    # The SError exit itself recovered it; classify.
                    event.resolve("recovered", "triaged")
                    self._count(RecoveryEvent.SERROR_RECOVERED)
                elif fc is FaultClass.MIGRATION:
                    event.resolve("recovered", "migrated")
                elif fc is FaultClass.DROPPED_LR:
                    # The interrupt the lost list register carried is
                    # re-injected through the normal pending queue.
                    self.vcpu.queue_virq(event.detail["vintid"])
                    self._charge(self.costs.requeue)
                    self._count(RecoveryEvent.LR_REQUEUE)
                    event.resolve("recovered", "requeued")
                # LOST_KICK is settled by the campaign's virtio phase,
                # which owns the queue statistics.
            if not self.degraded:
                self.resync(cpu)

    def _settle_replayable(self, cpu, event):
        """Journal-based repair for faults the monitor cannot see (the
        corrupt value arrived through a tracked write, so the reference
        copy matches it): compare the slot against the journal."""
        reg_name = event.detail["reg"]
        intended = event.detail["intended"]
        observed = event.detail["observed"]
        current = self._slot_read(cpu, reg_name)
        if current != observed:
            # Later correct state already overwrote the damage.
            event.resolve("recovered", "superseded")
            return
        failures_left = event.detail.get("replay_failures", 0)
        for _attempt in range(MAX_REPLAY_TRIES):
            self._charge(self.costs.replay)
            self._count(RecoveryEvent.REPLAY)
            if failures_left > 0:
                failures_left -= 1
                continue  # this replay attempt itself failed
            self._slot_write(cpu, reg_name, intended)
            if self._slot_read(cpu, reg_name) == intended:
                self._count(RecoveryEvent.SLOT_REPAIR)
                event.resolve("recovered", "replayed")
                return
        self.degrade(cpu, "replay exhausted for %s" % reg_name)
        event.resolve("degraded", "replay-exhausted")

    def _settle_corruption(self, cpu, event):
        reg_name = event.detail["reg"]
        expected = event.detail["expected"]
        observed = event.detail["observed"]
        current = self._slot_read(cpu, reg_name)
        if current != observed:
            event.resolve("recovered", "superseded")
            return
        if event.detail.get("critical"):
            if not self.degraded:
                self.degrade(cpu, "critical slot %s corrupted" % reg_name)
            event.resolve("degraded", "critical-corruption")
            return
        self._slot_write(cpu, reg_name, expected)
        self._charge(self.costs.repair)
        self._count(RecoveryEvent.SLOT_REPAIR)
        event.resolve("recovered", "repaired")


def _reg(name):
    from repro.arch.registers import lookup_register
    return lookup_register(name)
