"""The fault injector: named points threaded through the hot layers.

``FaultInjector`` implements the hook protocol the runtime layers call
into (``Cpu.fault_hook``, ``NeveRunner.fault_hook``, the world-switch
``fault_point``s, ``VirtioQueue.fault_hook``).  Each hook names an
injection point; the injector counts how often the point is hit and
fires the planned fault whose trigger matches the count.  Every firing
appends a :class:`FaultEvent` carrying enough detail (register, true
value, observed value) for the recovery layer to audit and repair —
the journal is what makes "never silent" checkable.

Points:

==================  ====================================================
``cpu.msr``         system-register write from virtual EL2 (bit-flip)
``cpu.mrs``         system-register read from virtual EL2 (bit-flip)
``cpu.serror``      after a guest sysreg access (spurious SError)
``vncr.store``      deferred store to the page (torn write)
``vncr.page``       any deferred access (background slot corruption)
``neve.cached-copy``  host refresh of a cached copy (dropped → stale)
``ws.after-save``   world switch, EL1 state just saved (migration)
``ws.before-restore``  world switch, about to restore (migration)
``ws.vgic-lr``      vGIC list-register save (dropped LR)
``virtio.kick``     virtio notification attempt (lost kick)
==================  ====================================================
"""

from dataclasses import dataclass, field

from repro.arch.gic import ListRegister
from repro.faults.plan import SAFE_FLIP_REGS, FaultClass

_WORD_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass
class FaultEvent:
    """One fired fault, journalled for the recovery layer."""

    fault: object  # the PlannedFault that fired
    point: str
    seq: int  # firing order within the campaign
    detail: dict = field(default_factory=dict)
    outcome: str = "pending"  # pending | recovered | degraded | repromoted
    recovery: str = ""  # how it was resolved (replayed, superseded, ...)
    at_cycle: int = None  # virtual time of the firing (when clock is set)

    def resolve(self, outcome, recovery):
        self.outcome = outcome
        self.recovery = recovery


class FaultInjector:
    """Arms a :class:`~repro.faults.plan.FaultPlan` at the named points."""

    def __init__(self, plan):
        self.plan = plan
        self.armed = plan.by_point()
        self.hits = {}  # point -> times reached
        self.events = []  # FaultEvent, in firing order
        # The recovery layer supplies these: a raw page write that
        # bypasses the integrity monitor (so corruption is *detectable*)
        # and a callback that performs the simulated migration.
        self.corrupt_word = None
        self.on_migration = None
        # Optional tracer (repro.trace): fired faults become annotated
        # instant events, so recovery ladders in the causal tree show
        # which injected fault they answer.
        self.tracer = None
        # Optional virtual-time source (the campaign points it at the
        # machine's cycle ledger).  When set, every fired fault is
        # stamped with the cycle it fired at — the re-promotion path's
        # cooling-off window measures quiet time from the last stamp.
        self.clock = None

    # -- bookkeeping -------------------------------------------------------

    def _hit(self, point):
        """Count a hit; return the planned fault firing now, if any."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        return self.armed.get(point, {}).get(count)

    def _fire(self, fault, detail):
        event = FaultEvent(fault=fault, point=fault.point,
                           seq=len(self.events), detail=detail,
                           at_cycle=(self.clock() if self.clock is not None
                                     else None))
        self.events.append(event)
        tracer = self.tracer
        if tracer is not None:
            annotated = {"point": fault.point, "seq": event.seq,
                         "fault_class": fault.fault_class}
            annotated.update(detail)
            tracer.instant("fault:%s@%s"
                           % (fault.fault_class.value, fault.point),
                           kind="fault", detail=annotated)
        return event

    def pending(self):
        return [e for e in self.events if e.outcome == "pending"]

    def last_fired_cycle(self):
        """Virtual time of the most recent firing (0 when nothing fired
        or no clock was attached) — the re-promotion hysteresis measures
        its cooling-off window from here."""
        stamps = [e.at_cycle for e in self.events if e.at_cycle is not None]
        return max(stamps) if stamps else 0

    # -- Cpu hooks ---------------------------------------------------------

    def filter_sysreg_write(self, cpu, reg, value):
        """Point ``cpu.msr``: flip one bit of an in-flight write."""
        if not cpu.at_virtual_el2 or reg.name not in SAFE_FLIP_REGS:
            return value
        fault = self._hit("cpu.msr")
        if fault is None or fault.fault_class is not FaultClass.SYSREG_BITFLIP:
            return value
        flipped = (value ^ (1 << fault.params["bit"])) & _WORD_MASK
        self._fire(fault, {"reg": reg.name, "intended": value,
                           "observed": flipped})
        return flipped

    def filter_sysreg_read(self, cpu, reg, value):
        """Point ``cpu.mrs``: flip one bit of a completed read."""
        if not cpu.at_virtual_el2 or reg.name not in SAFE_FLIP_REGS:
            return value
        fault = self._hit("cpu.mrs")
        if fault is None or fault.fault_class is not FaultClass.SYSREG_BITFLIP:
            return value
        flipped = (value ^ (1 << fault.params["bit"])) & _WORD_MASK
        self._fire(fault, {"reg": reg.name, "intended": value,
                           "observed": flipped})
        return flipped

    def serror_pending(self, cpu):
        """Point ``cpu.serror``: raise a spurious SError after a guest
        access (never while the host handler runs — SErrors are masked
        at EL2 until ERET, as PSTATE.A would have it)."""
        if not cpu.at_virtual_el2 or cpu._in_host_handler:
            return False
        fault = self._hit("cpu.serror")
        if fault is None or fault.fault_class is not FaultClass.SERROR:
            return False
        self._fire(fault, {"el": int(cpu.current_el)})
        return True

    def on_deferred_access(self, cpu, reg, is_write):
        """Point ``vncr.page``: background corruption of a page slot,
        timed to a deferred access (a DMA scribble or bit rot would be
        asynchronous; pinning it to an access keeps the sim deterministic
        while still being invisible to the accessor)."""
        fault = self._hit("vncr.page")
        if fault is None or fault.fault_class is not FaultClass.PAGE_CORRUPTION:
            return
        victim = fault.params["victim"]
        from repro.core.vncr import deferred_offset
        addr = cpu.vncr_baddr + deferred_offset(victim)
        expected = cpu.memory.read_word(addr)
        garbage = fault.params["garbage"] & _WORD_MASK
        if garbage == expected:
            garbage ^= 1  # ensure the slot actually changes
        if self.corrupt_word is not None:
            self.corrupt_word(addr, garbage)
        else:
            cpu.memory.write_word(addr, garbage)
        self._fire(fault, {"reg": victim, "expected": expected,
                           "observed": garbage,
                           "critical": fault.params["critical"],
                           "baddr": cpu.vncr_baddr})

    def filter_deferred_store(self, cpu, reg, addr, value):
        """Point ``vncr.store``: tear the store — only the low half of
        the doubleword reaches the page."""
        fault = self._hit("vncr.store")
        if fault is None or fault.fault_class is not FaultClass.TORN_WRITE:
            return value
        old = cpu.memory.read_word(addr)
        torn = (old & 0xFFFFFFFF00000000) | (value & 0xFFFFFFFF)
        self._fire(fault, {"reg": reg.name, "intended": value,
                           "observed": torn,
                           "replay_failures": fault.params.get(
                               "replay_failures", 0),
                           "baddr": cpu.vncr_baddr})
        return torn

    # -- NeveRunner hook ---------------------------------------------------

    def drop_cached_copy(self, runner, reg_name, value):
        """Point ``neve.cached-copy``: the host's refresh of a cached
        copy never reaches the page, leaving the guest hypervisor
        reading a stale value."""
        fault = self._hit("neve.cached-copy")
        if fault is None \
                or fault.fault_class is not FaultClass.STALE_CACHED_COPY:
            return False
        stale = runner.page.read_reg(reg_name)
        self._fire(fault, {"reg": reg_name, "intended": value,
                           "observed": stale,
                           "replay_failures": fault.params.get(
                               "replay_failures", 0)})
        return True

    # -- world-switch hooks --------------------------------------------------

    def at_point(self, cpu, name):
        """Points ``ws.after-save`` / ``ws.before-restore``: the VM is
        migrated between saving and restoring state."""
        fault = self._hit(name)
        if fault is None or fault.fault_class is not FaultClass.MIGRATION:
            return
        event = self._fire(fault, {"at": name})
        if self.on_migration is not None:
            self.on_migration(cpu, event)

    def filter_lr_save(self, cpu, name, value):
        """Point ``ws.vgic-lr``: a live list register is lost during the
        vGIC save (returns the value that actually gets saved)."""
        fault = self._hit("ws.vgic-lr")
        if fault is None or fault.fault_class is not FaultClass.DROPPED_LR:
            return value
        lr = ListRegister.decode(value)
        self._fire(fault, {"lr": name, "value": value, "vintid": lr.vintid})
        return 0

    # -- virtio hook ---------------------------------------------------------

    def drop_kick(self, queue, t):
        """Point ``virtio.kick``: the frontend's notification is lost."""
        fault = self._hit("virtio.kick")
        if fault is None or fault.fault_class is not FaultClass.LOST_KICK:
            return False
        self._fire(fault, {"t": t})
        return True
