"""Seeded fault campaigns over the nested stack.

``run_campaign(seed)`` derives a plan from the seed, boots the standard
NEVE nested scenario under the runtime sanitizer with the injector
armed, drives hypercalls, SGIs and (when planned) a virtio stream, then
settles: every journalled fault must end *recovered* or *degraded* —
a pending event at the end of the run is a silent failure and fails the
campaign.  A final probe hypercall checks the survivor actually behaves
like the mode it claims (NEVE's few exits, or the ARMv8.3 exit
multiplication after degradation), and a three-level recursive pass
exercises the per-level runner recovery path.

Everything is a pure function of the seed; ``CampaignResult.digest``
hashes the canonical outcome so replays can be compared bit for bit.
"""

import hashlib
import random
from dataclasses import dataclass, field

from repro.analysis.sanitizer import SanitizerReport, sanitized
from repro.arch.features import ArchConfig, ArchVersion, GicVersion
from repro.faults.plan import FaultClass, FaultPlan
from repro.faults.points import FaultInjector
from repro.faults.recovery import (
    IntegrityMonitor,
    RecoveryManager,
    derive_recovery_costs,
)
from repro.hypervisor.kvm import Machine
from repro.hypervisor.nested import GUEST_IPI_SGI
from repro.hypervisor.recursive import RecursiveHost
from repro.hypervisor.virtio import VirtioQueue
from repro.metrics.counters import RecoveryEvent
from repro.metrics.cycles import ARM_COSTS

#: Hypercall rounds the scenario drives after boot.
ROUNDS = 3

#: Exit-count envelope for the probe hypercall: NEVE stays well under,
#: a degraded (trap-and-emulate) vcpu lands well over.
PROBE_NEVE_MAX = 60
PROBE_DEGRADED_MIN = 60

_VIRTIO_SERVICE = 800
_VIRTIO_WAKEUP = 1200
_VIRTIO_REKICK_TIMEOUT = 6000
_VIRTIO_PACKETS = 40
_VIRTIO_INTERVAL = 1000


@dataclass
class CampaignResult:
    """Everything one seeded campaign produced."""

    seed: int
    plan: str
    outcomes: list = field(default_factory=list)
    recovery_counts: dict = field(default_factory=dict)
    degraded: bool = False
    degrade_reason: str = None
    sanitizer_checks: int = 0
    sanitizer_violations: int = 0
    probe_traps: int = 0
    probe_ok: bool = True
    silent: list = field(default_factory=list)
    total_cycles: int = 0
    total_traps: int = 0

    @property
    def ok(self):
        return (not self.silent and self.sanitizer_violations == 0
                and self.probe_ok)

    def canonical(self):
        """Stable text form of the outcome, the digest input."""
        lines = ["seed=%d" % self.seed, "plan=%s" % self.plan]
        for entry in self.outcomes:
            lines.append("fault %(fault_id)d %(class)s @%(point)s"
                         "[%(trigger)d] fired=%(fired)s "
                         "outcome=%(outcome)s recovery=%(recovery)s"
                         % entry)
        for name in sorted(self.recovery_counts):
            lines.append("recovery %s=%d"
                         % (name, self.recovery_counts[name]))
        lines.append("degraded=%s reason=%s"
                     % (self.degraded, self.degrade_reason))
        lines.append("sanitizer=%d/%d" % (self.sanitizer_violations,
                                          self.sanitizer_checks))
        lines.append("probe=%d ok=%s" % (self.probe_traps, self.probe_ok))
        lines.append("cycles=%d traps=%d" % (self.total_cycles,
                                             self.total_traps))
        return "\n".join(lines)

    @property
    def digest(self):
        return hashlib.sha256(self.canonical().encode()).hexdigest()


def run_campaign(seed, trace=False):
    """Run one seeded campaign end to end; returns a CampaignResult.

    With ``trace=True`` a :class:`repro.trace.spans.Tracer` observes the
    run (the result's ``tracer`` attribute holds it afterwards): every
    trap, world-switch phase, recovery action and injected fault appears
    in the causal trace.  Tracing never charges cycles, so the digest of
    a traced run is bit-identical to the untraced one.
    """
    plan = FaultPlan.generate(seed)
    injector = FaultInjector(plan)
    machine = Machine(
        arch=ArchConfig(version=ArchVersion.V8_4, gic=GicVersion.V3),
        num_cpus=1, costs=ARM_COSTS)
    vm = machine.kvm.create_vm(num_vcpus=1, nested="neve")
    vcpu = vm.vcpus[0]
    cpu = vcpu.cpu
    runner = vcpu.neve

    monitor = IntegrityMonitor(machine.memory, runner.page.baddr).install()
    recovery = RecoveryManager(machine, vcpu, monitor, injector)
    machine.kvm.serror_policy = recovery.on_serror
    cpu.fault_hook = injector
    runner.fault_hook = injector

    tracer = None
    root = None
    if trace:
        from repro.trace.spans import Tracer
        tracer = Tracer()
        tracer.attach_machine(machine)
        tracer.attach_to(injector)
        root = tracer.begin("campaign/seed-%d" % seed, kind="root")

    try:
        report = SanitizerReport()
        with sanitized(cpus=machine.cpus, runners=[runner],
                       report=report):
            machine.kvm.boot_nested(vcpu)
            for round_index in range(ROUNDS):
                cpu.hvc(round_index)
                cpu.msr("ICC_SGI1R_EL1", (GUEST_IPI_SGI << 24) | 0)
                cpu.hvc(round_index)
            _virtio_phase(machine, plan, injector)
            recovery.settle(cpu)
            # Disarm before probing: the probe measures the surviving
            # configuration, it is not part of the fault schedule.
            cpu.fault_hook = None
            if vcpu.neve is not None:
                vcpu.neve.fault_hook = None
            probe_before = machine.traps.total
            cpu.hvc(0)
            probe_traps = machine.traps.total - probe_before

        result = CampaignResult(seed=seed, plan=plan.describe())
        result.degraded = recovery.degraded
        result.degrade_reason = recovery.degrade_reason
        result.probe_traps = probe_traps
        if recovery.degraded:
            result.probe_ok = probe_traps >= PROBE_DEGRADED_MIN
        else:
            result.probe_ok = probe_traps <= PROBE_NEVE_MAX
        _collect_outcomes(result, plan, injector)
        _recursive_phase(result, machine, seed, report)
        result.recovery_counts = machine.recoveries.as_dict()
        result.sanitizer_checks = report.checks
        result.sanitizer_violations = len(report.violations)
        result.total_cycles = machine.ledger.total
        result.total_traps = machine.traps.total
    finally:
        if tracer is not None:
            tracer.end(root)
            tracer.stop()
    result.tracer = tracer
    return result


def _virtio_phase(machine, plan, injector):
    """Stream packets through a virtqueue with the injector attached;
    lost notifications must be covered by a later kick or the watchdog
    re-kick, both charged as recovery."""
    if not plan.has_class(FaultClass.LOST_KICK):
        return
    queue = VirtioQueue(backend_service_cycles=_VIRTIO_SERVICE,
                        wakeup_latency_cycles=_VIRTIO_WAKEUP,
                        rekick_timeout_cycles=_VIRTIO_REKICK_TIMEOUT)
    queue.fault_hook = injector
    stats = queue.simulate([i * _VIRTIO_INTERVAL
                            for i in range(_VIRTIO_PACKETS)])
    if stats.recovered_by_kick != stats.lost_kicks:
        raise RuntimeError("virtio stranded %d buffers unrecovered"
                           % (stats.lost_kicks - stats.recovered_by_kick))
    rekick_cost = derive_recovery_costs(machine.costs).rekick
    for _ in range(stats.recovery_kicks):
        machine.ledger.charge(rekick_cost, "recovery")
        machine.recoveries.record(RecoveryEvent.VIRTIO_REKICK)
    how = "rekicked" if stats.recovery_kicks else "piggybacked"
    for event in injector.pending():
        if event.fault.fault_class is FaultClass.LOST_KICK:
            event.resolve("recovered", how)


def _collect_outcomes(result, plan, injector):
    """One outcome row per planned fault — including the ones whose
    trigger the run never reached — plus the silent list."""
    fired = {}
    for event in injector.events:
        fired.setdefault(event.fault.fault_id, event)
    for fault in plan.faults:
        event = fired.get(fault.fault_id)
        result.outcomes.append({
            "fault_id": fault.fault_id,
            "class": fault.fault_class.value,
            "point": fault.point,
            "trigger": fault.trigger,
            "fired": event is not None,
            "outcome": event.outcome if event else "not-triggered",
            "recovery": event.recovery if event else "-",
        })
    result.silent = [e.fault.describe() for e in injector.pending()]


def _recursive_phase(result, machine, seed, report):
    """Three-level pass: run the Section 6.2 fragment, corrupt one slot
    of the *L2* hypervisor's deferred page, and repair it through the
    per-level runner — the same audit-against-snapshot resync, one
    nesting level deeper."""
    rng = random.Random(seed * 2654435761 % (1 << 32))
    host = RecursiveHost(neve=True)
    with sanitized(cpus=[host.cpu], report=report):
        host.run_l2_hypervisor_fragment()
    snapshot = host.l2_runner.page.as_dict()
    victim = rng.choice(["SCTLR_EL1", "TTBR0_EL1", "VTTBR_EL2"])
    garbage = rng.getrandbits(48)
    if garbage == snapshot[victim]:
        garbage ^= 1
    host.l2_runner.page.write_reg(victim, garbage)
    # Audit against the snapshot and repair through the runner (the cpu
    # is back at EL2 after the fragment).
    repaired = []
    repair_cost = derive_recovery_costs(machine.costs).repair
    for name in sorted(snapshot):
        if host.l2_runner.page.read_reg(name) != snapshot[name]:
            host.l2_runner.write_deferred(name, snapshot[name])
            machine.ledger.charge(repair_cost, "recovery")
            machine.recoveries.record(RecoveryEvent.SLOT_REPAIR)
            repaired.append(name)
    machine.recoveries.record(RecoveryEvent.VNCR_RESYNC)
    if repaired != [victim] \
            or host.l2_runner.page.read_reg(victim) != snapshot[victim]:
        result.silent.append("recursive resync failed for %s" % victim)
