"""Seeded fault campaigns over the nested stack, single-CPU or SMP.

``run_campaign(seed, cpus=N)`` derives one seed-split plan per vCPU,
boots an N-vCPU NEVE nested machine under the runtime sanitizer with a
per-vCPU injector armed, drives interleaved hypercall/IPI rounds (the
interleaving order is deterministic and selectable — the determinism
tests perturb it), then settles in vcpu-id order under the machine-wide
recovery coordinator: every journalled fault must end *recovered*,
*degraded* or *re-promoted* — a pending event at the end of the run is
a silent failure and fails the campaign.

A probe hypercall per vCPU checks the survivor actually behaves like
the mode it claims (NEVE's few exits, or the ARMv8.3 exit
multiplication after degradation).  Degraded vCPUs then cool off: the
driver idles virtual time past the cooling-off window, offers
re-promotion, and re-probes — a re-promoted vCPU must be back to NEVE's
trap count.  Finally a three-level recursive pass injects into the L1
``NeveRunner``'s own page traffic and recovers through the per-level
runners.

Everything is a pure function of ``(seed, cpus, interleave)``;
``CampaignResult.digest`` hashes the canonical outcome so replays can
be compared bit for bit.
"""

import hashlib
import random
from dataclasses import dataclass, field

from repro.analysis.sanitizer import SanitizerReport, sanitized
from repro.arch.features import ArchConfig, ArchVersion, GicVersion
from repro.faults.plan import (
    PERSISTENT_VICTIMS,
    FaultClass,
    FaultPlan,
    PlannedFault,
    split_seed,
)
from repro.faults.points import FaultInjector
from repro.faults.recovery import (
    MachineIntegrityMonitor,
    RecoveryCoordinator,
    RecoveryManager,
    derive_recovery_costs,
)
from repro.hypervisor.kvm import Machine
from repro.hypervisor.nested import GUEST_IPI_SGI
from repro.hypervisor.recursive import RecursiveHost
from repro.hypervisor.scheduler import interleave_order
from repro.hypervisor.virtio import VirtioQueue
from repro.metrics.counters import RecoveryEvent
from repro.metrics.cycles import ARM_COSTS

#: Hypercall rounds the scenario drives after boot.
ROUNDS = 3

#: Exit-count envelope for the probe hypercall: NEVE stays well under,
#: a degraded (trap-and-emulate) vcpu lands well over.
PROBE_NEVE_MAX = 60
PROBE_DEGRADED_MIN = 60

_VIRTIO_SERVICE = 800
_VIRTIO_WAKEUP = 1200
_VIRTIO_REKICK_TIMEOUT = 6000
_VIRTIO_PACKETS = 40
_VIRTIO_INTERVAL = 1000


@dataclass
class CampaignResult:
    """Everything one seeded campaign produced."""

    seed: int
    plan: str
    cpus: int = 1
    interleave: str = "roundrobin"
    outcomes: list = field(default_factory=list)
    recovery_counts: dict = field(default_factory=dict)
    degraded: bool = False  # any vcpu degraded at settle time
    degrade_reason: str = None
    repromoted: bool = False  # any vcpu re-promoted after cooling off
    per_vcpu: list = field(default_factory=list)
    recovery_order: list = field(default_factory=list)
    ordering_violations: list = field(default_factory=list)
    sanitizer_checks: int = 0
    sanitizer_violations: int = 0
    probe_traps: int = 0  # vcpu 0's post-settle probe
    probe_ok: bool = True
    silent: list = field(default_factory=list)
    total_cycles: int = 0
    total_traps: int = 0

    @property
    def ok(self):
        return (not self.silent and self.sanitizer_violations == 0
                and not self.ordering_violations and self.probe_ok)

    def canonical(self):
        """Stable text form of the outcome, the digest input."""
        lines = ["seed=%d" % self.seed,
                 "cpus=%d interleave=%s" % (self.cpus, self.interleave),
                 "plan=%s" % self.plan]
        for entry in self.outcomes:
            lines.append("cpu%(cpu)s fault %(fault_id)d %(class)s "
                         "@%(point)s[%(trigger)d] fired=%(fired)s "
                         "outcome=%(outcome)s recovery=%(recovery)s"
                         % entry)
        for name in sorted(self.recovery_counts):
            lines.append("recovery %s=%d"
                         % (name, self.recovery_counts[name]))
        for entry in self.per_vcpu:
            lines.append("vcpu%(vcpu)d verdict=%(verdict)s "
                         "probe=%(probe)d reprobe=%(reprobe)s "
                         "repromotions=%(repromotions)d" % entry)
        lines.append("order=%s" % ",".join(
            "%d:%s" % pair for pair in self.recovery_order))
        for violation in self.ordering_violations:
            lines.append("ordering-violation %s" % violation)
        lines.append("degraded=%s reason=%s repromoted=%s"
                     % (self.degraded, self.degrade_reason,
                        self.repromoted))
        lines.append("sanitizer=%d/%d" % (self.sanitizer_violations,
                                          self.sanitizer_checks))
        lines.append("probe=%d ok=%s" % (self.probe_traps, self.probe_ok))
        lines.append("cycles=%d traps=%d" % (self.total_cycles,
                                             self.total_traps))
        return "\n".join(lines)

    @property
    def digest(self):
        return hashlib.sha256(self.canonical().encode()).hexdigest()


def run_campaign(seed, trace=False, cpus=1, interleave="roundrobin",
                 metrics=None, profiler=None):
    """Run one seeded campaign end to end; returns a CampaignResult.

    ``cpus`` boots that many pinned vCPUs with independent seed-split
    plans; ``interleave`` picks the deterministic per-round execution
    order (see :func:`repro.hypervisor.scheduler.interleave_order`).

    With ``trace=True`` a :class:`repro.trace.spans.Tracer` observes the
    run (the result's ``tracer`` attribute holds it afterwards): every
    trap, world-switch phase, recovery action and injected fault appears
    in the causal trace.  Tracing never charges cycles, so the digest of
    a traced run is bit-identical to the untraced one.

    ``metrics`` optionally attaches a
    :class:`~repro.metrics.instrument.MachineMetrics` facade to the
    machine before any work happens — the fleet layer uses this to give
    every simulated machine its own ``config`` label in a shared
    registry.  Telemetry is observe-only (``san-metrics-ledger``), so
    the digest is unchanged.

    ``profiler`` optionally arms a
    :class:`~repro.profile.profiler.HostProfiler`'s redundancy
    observatory on the machine (the caller owns the profiling window
    itself).  Observe-only like the other hooks
    (``san-profile-zero-cycles``), so the digest is unchanged.
    """
    if cpus < 1:
        raise ValueError("cpus must be >= 1")
    plans = FaultPlan.generate_smp(seed, cpus)
    machine = Machine(
        arch=ArchConfig(version=ArchVersion.V8_4, gic=GicVersion.V3),
        num_cpus=cpus, costs=ARM_COSTS)
    if metrics is not None:
        metrics.attach_machine(machine)
    if profiler is not None:
        profiler.attach_machine(machine, config="campaign-seed-%d" % seed)
    vm = machine.kvm.create_vm(num_vcpus=cpus, nested="neve")

    monitor = MachineIntegrityMonitor(machine.memory).install()
    coordinator = RecoveryCoordinator(machine)
    coordinator.install_guards()
    clock = lambda ledger=machine.ledger: ledger.total  # noqa: E731
    injectors = []
    for vcpu in vm.vcpus:
        injector = FaultInjector(plans[vcpu.vcpu_id])
        injector.clock = clock
        window = monitor.track(vcpu.vcpu_id, vcpu.neve.page.baddr)
        RecoveryManager(machine, vcpu, window, injector,
                        coordinator=coordinator)
        vcpu.cpu.fault_hook = injector
        vcpu.neve.fault_hook = injector
        injectors.append(injector)
    machine.kvm.serror_policy = coordinator.on_serror

    tracer = None
    root = None
    if trace:
        from repro.trace.spans import Tracer
        tracer = Tracer()
        tracer.attach_machine(machine)
        for injector in injectors:
            tracer.attach_to(injector)
        root = tracer.begin("campaign/seed-%d" % seed, kind="root")

    try:
        report = SanitizerReport()
        with sanitized(cpus=machine.cpus,
                       runners=[v.neve for v in vm.vcpus],
                       report=report):
            for vcpu in vm.vcpus:
                machine.kvm.boot_nested(vcpu)
            for round_index in range(ROUNDS):
                for index in interleave_order(cpus, round_index,
                                              interleave):
                    vcpu = vm.vcpus[index]
                    vcpu.cpu.hvc(round_index)
                    target = (index + 1) % cpus
                    vcpu.cpu.msr("ICC_SGI1R_EL1",
                                 (GUEST_IPI_SGI << 24) | target)
                    vcpu.cpu.hvc(round_index)
            for vcpu in vm.vcpus:
                _virtio_phase(machine, plans[vcpu.vcpu_id],
                              injectors[vcpu.vcpu_id])
            # Settlement and the final machine-wide audit run in
            # vcpu-id order under the coordinator's exclusive lock.
            coordinator.settle_all()
            stray = {vcpu_id: bad for vcpu_id, bad
                     in monitor.audit_all().items() if bad}
            # Disarm before probing: the probe measures the surviving
            # configuration, it is not part of the fault schedule.
            for vcpu in vm.vcpus:
                vcpu.cpu.fault_hook = None
                if vcpu.neve is not None:
                    vcpu.neve.fault_hook = None
            probes = {}
            for vcpu in vm.vcpus:
                before = machine.traps.total
                vcpu.cpu.hvc(0)
                probes[vcpu.vcpu_id] = machine.traps.total - before
            # Cooling off: idle virtual time until every degraded vcpu
            # has served its quiet window, then offer re-promotion and
            # re-probe the vcpus that came back to NEVE.
            owed = [m.cooling_off_remaining()
                    for m in coordinator.managers.values()]
            owed = [cycles for cycles in owed if cycles]
            if owed:
                machine.ledger.charge(max(owed), "idle")
            repromoted_ids = coordinator.repromote_all()
            reprobes = {}
            for vcpu_id in repromoted_ids:
                vcpu = vm.vcpus[vcpu_id]
                before = machine.traps.total
                vcpu.cpu.hvc(0)
                reprobes[vcpu_id] = machine.traps.total - before
                for event in injectors[vcpu_id].events:
                    if event.outcome == "degraded":
                        event.resolve("repromoted", event.recovery)

        result = CampaignResult(seed=seed, cpus=cpus,
                                interleave=interleave,
                                plan=" | ".join("cpu%d: %s"
                                                % (i, plans[i].describe())
                                                for i in range(cpus)))
        _collect_verdicts(result, coordinator, probes, reprobes)
        for vcpu_id, bad in sorted(stray.items()):
            result.silent.append(
                "vcpu%d page diverged after settle: %s" % (vcpu_id, bad))
        for vcpu in vm.vcpus:
            _collect_outcomes(result, vcpu.vcpu_id,
                              plans[vcpu.vcpu_id],
                              injectors[vcpu.vcpu_id])
        _recursive_phase(result, machine, seed, report)
        coordinator.remove_guards()
        result.recovery_counts = machine.recoveries.as_dict()
        result.recovery_order = list(coordinator.recovery_order)
        result.ordering_violations = list(coordinator.violations)
        result.sanitizer_checks = report.checks
        result.sanitizer_violations = len(report.violations)
        result.total_cycles = machine.ledger.total
        result.total_traps = machine.traps.total
    finally:
        if tracer is not None:
            tracer.end(root)
            tracer.stop()
    result.tracer = tracer
    return result


def _collect_verdicts(result, coordinator, probes, reprobes):
    """Per-vCPU verdicts and the machine-level roll-ups the single-CPU
    result surface keeps exposing (vcpu 0's probe, first degrade)."""
    probe_ok = True
    for vcpu_id in sorted(coordinator.managers):
        manager = coordinator.managers[vcpu_id]
        was_degraded = manager.degraded or manager.repromotions > 0
        if manager.degraded:
            verdict = "degraded"
        elif manager.repromotions > 0:
            verdict = "repromoted"
        else:
            verdict = "clean"
        probe = probes.get(vcpu_id, 0)
        reprobe = reprobes.get(vcpu_id)
        if was_degraded:
            if probe < PROBE_DEGRADED_MIN:
                probe_ok = False
        elif probe > PROBE_NEVE_MAX:
            probe_ok = False
        if reprobe is not None and reprobe > PROBE_NEVE_MAX:
            # A re-promoted vcpu must be back to NEVE's trap count.
            probe_ok = False
        result.per_vcpu.append({
            "vcpu": vcpu_id,
            "verdict": verdict,
            "probe": probe,
            "reprobe": reprobe,
            "repromotions": manager.repromotions,
            "degrade_reason": manager.degrade_reason,
        })
        if was_degraded and not result.degraded:
            result.degraded = True
        if manager.degrade_reason and result.degrade_reason is None:
            result.degrade_reason = manager.degrade_reason
        if manager.repromotions > 0:
            result.repromoted = True
    result.probe_traps = probes.get(0, 0)
    result.probe_ok = probe_ok


def _virtio_phase(machine, plan, injector):
    """Stream packets through a virtqueue with the injector attached;
    lost notifications must be covered by a later kick or the watchdog
    re-kick, both charged as recovery."""
    if not plan.has_class(FaultClass.LOST_KICK):
        return
    queue = VirtioQueue(backend_service_cycles=_VIRTIO_SERVICE,
                        wakeup_latency_cycles=_VIRTIO_WAKEUP,
                        rekick_timeout_cycles=_VIRTIO_REKICK_TIMEOUT)
    queue.fault_hook = injector
    stats = queue.simulate([i * _VIRTIO_INTERVAL
                            for i in range(_VIRTIO_PACKETS)])
    if stats.recovered_by_kick != stats.lost_kicks:
        raise RuntimeError("virtio stranded %d buffers unrecovered"
                           % (stats.lost_kicks - stats.recovered_by_kick))
    rekick_cost = derive_recovery_costs(machine.costs).rekick
    for _ in range(stats.recovery_kicks):
        machine.ledger.charge(rekick_cost, "recovery")
        machine.recoveries.record(RecoveryEvent.VIRTIO_REKICK)
    how = "rekicked" if stats.recovery_kicks else "piggybacked"
    for event in injector.pending():
        if event.fault.fault_class is FaultClass.LOST_KICK:
            event.resolve("recovered", how)


def _collect_outcomes(result, vcpu_id, plan, injector):
    """One outcome row per planned fault — including the ones whose
    trigger the run never reached — plus the silent list."""
    fired = {}
    for event in injector.events:
        fired.setdefault(event.fault.fault_id, event)
    for fault in plan.faults:
        event = fired.get(fault.fault_id)
        result.outcomes.append({
            "cpu": vcpu_id,
            "fault_id": fault.fault_id,
            "class": fault.fault_class.value,
            "point": fault.point,
            "trigger": fault.trigger,
            "fired": event is not None,
            "outcome": event.outcome if event else "not-triggered",
            "recovery": event.recovery if event else "-",
        })
    result.silent.extend("cpu%d %s" % (vcpu_id, e.fault.describe())
                         for e in injector.pending())


def _recursive_plan(seed):
    """A small deterministic plan for the recursive phase: faults that
    land in the per-level runners' page traffic (torn deferred stores,
    background slot corruption) — the L1 ``NeveRunner`` is a first-class
    injection target, not just a post-hoc repair surface.  Triggers stay
    within the deferred accesses the Section 6.2 fragment performs."""
    rng = random.Random(split_seed(seed, 3) ^ 0x5EC)
    faults = [
        PlannedFault(100, FaultClass.TORN_WRITE, "vncr.store",
                     rng.randint(1, 6), {"replay_failures": 0}),
        PlannedFault(101, FaultClass.PAGE_CORRUPTION, "vncr.page",
                     rng.randint(1, 6),
                     {"victim": rng.choice(PERSISTENT_VICTIMS),
                      "critical": False,
                      "garbage": rng.getrandbits(48)}),
    ]
    return FaultPlan(seed, faults)


def _recursive_phase(result, machine, seed, report):
    """Three-level pass with live injection: run the Section 6.2
    fragment with an injector armed on the recursive stack (the CPU and
    both per-level runners), so faults land in the L1 and L2 runners'
    *own* page traffic; then repair through whichever runner owns the
    damaged page, plus the original post-hoc L2 snapshot corruption."""
    rng = random.Random(seed * 2654435761 % (1 << 32))
    host = RecursiveHost(neve=True)
    rec_injector = FaultInjector(_recursive_plan(seed))
    host.arm_fault_hook(rec_injector)
    with sanitized(cpus=[host.cpu], report=report):
        host.run_l2_hypervisor_fragment()
    host.disarm_fault_hook()
    repair_cost = derive_recovery_costs(machine.costs).repair
    # Journal-driven repair through the owning runner: each event names
    # the page (baddr) it damaged; the runner whose page that is writes
    # the journalled value back.
    runners_by_page = {runner.page.baddr: runner
                      for runner in host.runners}
    for event in rec_injector.pending():
        runner = runners_by_page.get(event.detail.get("baddr"))
        if runner is None:
            result.silent.append("recursive fault hit unknown page: %s"
                                 % event.fault.describe())
            continue
        good = event.detail.get("intended",
                                event.detail.get("expected"))
        runner.write_deferred(event.detail["reg"], good)
        machine.ledger.charge(repair_cost, "recovery")
        machine.recoveries.record(RecoveryEvent.SLOT_REPAIR)
        event.resolve("recovered", "runner-repaired")
    # The original post-hoc exercise: corrupt one slot of the *L2*
    # hypervisor's page behind the runner's back and resync it against
    # a snapshot — one nesting level deeper than the main campaign.
    snapshot = host.l2_runner.page.as_dict()
    victim = rng.choice(["SCTLR_EL1", "TTBR0_EL1", "VTTBR_EL2"])
    garbage = rng.getrandbits(48)
    if garbage == snapshot[victim]:
        garbage ^= 1
    host.l2_runner.page.write_reg(victim, garbage)
    repaired = []
    for name in sorted(snapshot):
        if host.l2_runner.page.read_reg(name) != snapshot[name]:
            host.l2_runner.write_deferred(name, snapshot[name])
            machine.ledger.charge(repair_cost, "recovery")
            machine.recoveries.record(RecoveryEvent.SLOT_REPAIR)
            repaired.append(name)
    machine.recoveries.record(RecoveryEvent.VNCR_RESYNC)
    if repaired != [victim] \
            or host.l2_runner.page.read_reg(victim) != snapshot[victim]:
        result.silent.append("recursive resync failed for %s" % victim)
