"""Span recorder with cycle-exact attribution.

Design constraints, in order:

* **Exact reconciliation.**  The tracer installs itself as the
  :class:`~repro.metrics.cycles.CycleLedger` observer, so every single
  ``charge()`` is attributed to the innermost open span (its
  ``self_cycles``).  The invariant — enforced by
  :func:`repro.analysis.sanitizer.check_trace_reconciliation` — is::

      recorded + dropped + open + unattributed == ledger.total - base

  and it holds *by construction*: cycles land in exactly one of the
  four buckets, even when the bounded ring buffer evicts old spans
  (their cycles move to ``dropped_cycles``) and even for charges made
  outside any span (``unattributed_cycles``).

* **Near-zero-cost disabled path.**  Instrumentation sites check a
  plain attribute (``cpu.tracer is None`` / ``ledger.observer is
  None``) and fall through; :func:`cpu_span` returns a shared null
  context manager.  The tracer itself never charges the ledger, so
  tracing adds **zero** cycles to any benchmark, enabled or not.

* **Determinism.**  Timestamps are virtual — the ledger total at the
  time of the event, relative to the attach point — and span ids are
  sequential.  The same seed and workload therefore produce the same
  spans, byte for byte, in the exported JSON.

This module deliberately imports nothing from :mod:`repro` so the hot
layers (``arch/cpu.py`` is the bottom of the import graph) can use it
without cycles.
"""

import enum
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass


def _clean(value):
    """Coerce *value* to a deterministic JSON-friendly primitive."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        inner = value.value
        return inner if isinstance(inner, (str, int)) else value.name
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _clean(val) for key, val in value.items()}
    return str(value)


def _clean_detail(detail):
    if not detail:
        return None
    return {str(key): _clean(val) for key, val in detail.items()}


class Span:
    """One traced operation: a trap, a world-switch phase, a recovery
    action, or a synthetic root/iteration grouping.

    ``self_cycles`` counts only cycles charged while this span was the
    *innermost* open span; the span's total extent is
    ``end_cycle - start_cycle`` (which includes its children, because
    timestamps are ledger totals).
    """

    __slots__ = ("span_id", "parent_id", "name", "kind", "el", "cpu_id",
                 "reason", "detail", "start_cycle", "end_cycle",
                 "self_cycles")

    def __init__(self, span_id, parent_id, name, kind, el, cpu_id,
                 reason, detail, start_cycle):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.el = el
        self.cpu_id = cpu_id
        self.reason = reason
        self.detail = detail
        self.start_cycle = start_cycle
        self.end_cycle = start_cycle
        self.self_cycles = 0

    @property
    def duration(self):
        return self.end_cycle - self.start_cycle

    def __repr__(self):
        return ("Span(id=%d parent=%r name=%r kind=%r cycles=%d self=%d)"
                % (self.span_id, self.parent_id, self.name, self.kind,
                   self.duration, self.self_cycles))


class Instant:
    """A point event (fault annotation, deferred-page access, ...)."""

    __slots__ = ("event_id", "parent_id", "name", "kind", "cpu_id", "ts",
                 "detail")

    def __init__(self, event_id, parent_id, name, kind, cpu_id, ts,
                 detail):
        self.event_id = event_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.cpu_id = cpu_id
        self.ts = ts
        self.detail = detail

    def __repr__(self):
        return ("Instant(id=%d parent=%r name=%r ts=%d)"
                % (self.event_id, self.parent_id, self.name, self.ts))


@dataclass(frozen=True)
class TraceReconciliation:
    """Outcome of checking ``sum(span.cycles) == ledger.total``."""

    recorded_cycles: int
    dropped_cycles: int
    open_cycles: int
    unattributed_cycles: int
    ledger_delta: int

    @property
    def attributed_cycles(self):
        return (self.recorded_cycles + self.dropped_cycles
                + self.open_cycles + self.unattributed_cycles)

    @property
    def exact(self):
        return self.attributed_cycles == self.ledger_delta

    def describe(self):
        return ("span cycles %d (recorded %d + dropped %d + open %d + "
                "unattributed %d) vs ledger delta %d: %s"
                % (self.attributed_cycles, self.recorded_cycles,
                   self.dropped_cycles, self.open_cycles,
                   self.unattributed_cycles, self.ledger_delta,
                   "exact" if self.exact else "MISMATCH"))


class _NullContext:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullContext()


class Tracer:
    """Bounded-ring-buffer span recorder.

    Attach to the shared machine ledger (and point the cpus' ``tracer``
    attributes here) with :meth:`attach_machine`; detach — closing any
    spans left open — with :meth:`stop`.
    """

    def __init__(self, capacity=65536, instant_capacity=65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1: %r" % capacity)
        self.capacity = capacity
        self.instant_capacity = instant_capacity
        self.buffer = deque()
        self.instant_buffer = deque()
        self.dropped_spans = 0
        self.dropped_cycles = 0
        self.dropped_instants = 0
        self.unattributed_cycles = 0
        self.ledger = None
        self.base = 0
        self._stack = []
        self._next_id = 0
        self._attached = []  # objects whose .tracer we set

    # -- attachment -------------------------------------------------

    def attach(self, ledger):
        """Observe every charge on *ledger*; timestamps become the
        ledger total relative to this point."""
        if self.ledger is not None:
            raise RuntimeError("tracer already attached to a ledger")
        self.ledger = ledger
        self.base = ledger.total
        ledger.observer = self._on_charge
        return self

    def detach(self):
        if self.ledger is not None and self.ledger.observer == self._on_charge:
            self.ledger.observer = None
        for obj in self._attached:
            if getattr(obj, "tracer", None) is self:
                obj.tracer = None
        self._attached = []

    def attach_machine(self, machine):
        """Attach to *machine*'s shared ledger and install ``tracer``
        on every cpu (plus any NeveRunner deferred pages reachable via
        the machine's VMs)."""
        self.attach(machine.ledger)
        for cpu in machine.cpus:
            self.attach_to(cpu)
        for vm in getattr(machine.kvm, "vms", []) or []:
            for vcpu in vm.vcpus:
                runner = getattr(vcpu, "neve", None)
                if runner is not None and getattr(runner, "page", None) is not None:
                    self.attach_to(runner.page)
        return self

    def attach_to(self, obj):
        """Point *obj*.tracer at this tracer (restored by stop())."""
        obj.tracer = self
        self._attached.append(obj)
        return self

    def stop(self):
        """Close any open spans (innermost first) and detach."""
        while self._stack:
            self.end(self._stack[-1])
        self.detach()
        return self

    # -- clock / attribution ----------------------------------------

    def now(self):
        if self.ledger is None:
            return 0
        return self.ledger.total - self.base

    def _on_charge(self, cycles, category):
        if self._stack:
            self._stack[-1].self_cycles += cycles
        else:
            self.unattributed_cycles += cycles

    # -- span lifecycle ---------------------------------------------

    def begin(self, name, kind="span", cpu=None, el=None, reason=None,
              detail=None):
        parent_id = self._stack[-1].span_id if self._stack else None
        if el is None and cpu is not None:
            el = getattr(cpu, "current_el", None)
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            el=_clean(el),
            cpu_id=getattr(cpu, "cpu_id", None) if cpu is not None else None,
            reason=_clean(reason),
            detail=_clean_detail(detail),
            start_cycle=self.now(),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, span):
        if span is None or span not in self._stack:
            return
        # Defensive: also close any children left open (an exception
        # unwound past their instrumentation) so attribution stays
        # exact — their self_cycles are already counted.
        while self._stack:
            top = self._stack.pop()
            top.end_cycle = self.now()
            self._record(top)
            if top is span:
                return

    def _record(self, span):
        self.buffer.append(span)
        while len(self.buffer) > self.capacity:
            evicted = self.buffer.popleft()
            self.dropped_spans += 1
            self.dropped_cycles += evicted.self_cycles

    @contextmanager
    def span(self, name, kind="span", cpu=None, el=None, reason=None,
             detail=None):
        opened = self.begin(name, kind=kind, cpu=cpu, el=el,
                            reason=reason, detail=detail)
        try:
            yield opened
        finally:
            self.end(opened)

    def begin_trap(self, cpu, syndrome, reason):
        """Open a span for one trap to the host hypervisor.  Exactly one
        trap span exists per :meth:`TrapCounter.record`, so the tree's
        trap count *is* the exit-multiplication factor."""
        detail = {"ec": getattr(syndrome.ec, "name", syndrome.ec)}
        if syndrome.register is not None:
            detail["register"] = syndrome.register
        if syndrome.is_write is not None:
            detail["is_write"] = syndrome.is_write
        if syndrome.imm is not None:
            detail["imm"] = syndrome.imm
        if syndrome.fault_ipa is not None:
            detail["fault_ipa"] = syndrome.fault_ipa
        encoding = getattr(syndrome, "encoding", None)
        if encoding is not None and getattr(encoding, "name", "NORMAL") != "NORMAL":
            detail["encoding"] = encoding
        if getattr(cpu, "at_virtual_el2", False):
            detail["virtual_el2"] = True
        name = "trap:%s" % _clean(reason)
        if syndrome.register is not None:
            name = "%s:%s" % (name, syndrome.register)
        return self.begin(name, kind="trap", cpu=cpu, reason=reason,
                          detail=detail)

    def instant(self, name, kind="event", cpu=None, detail=None):
        event = Instant(
            event_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            cpu_id=getattr(cpu, "cpu_id", None) if cpu is not None else None,
            ts=self.now(),
            detail=_clean_detail(detail),
        )
        self._next_id += 1
        self.instant_buffer.append(event)
        while len(self.instant_buffer) > self.instant_capacity:
            self.instant_buffer.popleft()
            self.dropped_instants += 1
        return event

    # -- inspection -------------------------------------------------

    def spans(self):
        """Completed spans, oldest first (completion order)."""
        return list(self.buffer)

    def instants(self):
        return list(self.instant_buffer)

    def open_spans(self):
        return list(self._stack)

    def reconcile(self):
        """Check the cycle-exactness invariant against the ledger."""
        recorded = sum(span.self_cycles for span in self.buffer)
        open_cycles = sum(span.self_cycles for span in self._stack)
        delta = 0 if self.ledger is None else self.ledger.total - self.base
        return TraceReconciliation(
            recorded_cycles=recorded,
            dropped_cycles=self.dropped_cycles,
            open_cycles=open_cycles,
            unattributed_cycles=self.unattributed_cycles,
            ledger_delta=delta,
        )

    def assert_reconciled(self):
        recon = self.reconcile()
        if not recon.exact:
            raise AssertionError(recon.describe())
        return recon


# -- instrumentation helpers (hot-path, disabled-path friendly) -----


class _PairedContext:
    """Enters two context managers, exits them in reverse order (for a
    phase observed by both the tracer and the metrics registry)."""

    __slots__ = ("first", "second")

    def __init__(self, first, second):
        self.first = first
        self.second = second

    def __enter__(self):
        self.first.__enter__()
        self.second.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.second.__exit__(exc_type, exc, tb)
        self.first.__exit__(exc_type, exc, tb)
        return False


def cpu_span(cpu, name, kind="phase", **detail):
    """Context manager opening a span on *cpu*'s tracer and/or a phase
    timer on *cpu*'s metrics facade; a shared no-op when both are
    disabled (the common case)."""
    tracer = getattr(cpu, "tracer", None)
    metrics = getattr(cpu, "metrics", None)
    if tracer is None and metrics is None:
        return NULL_SPAN
    if metrics is None:
        return tracer.span(name, kind=kind, cpu=cpu, detail=detail or None)
    if tracer is None:
        return metrics.phase(cpu, name)
    return _PairedContext(
        tracer.span(name, kind=kind, cpu=cpu, detail=detail or None),
        metrics.phase(cpu, name))


def cpu_instant(cpu, name, kind="event", **detail):
    """Record a point event on *cpu*'s tracer, if any."""
    tracer = getattr(cpu, "tracer", None)
    if tracer is not None:
        tracer.instant(name, kind=kind, cpu=cpu, detail=detail or None)
