"""Trace artifacts: Chrome ``trace_event`` JSON, breakdown tree,
per-``ExitReason`` latency histograms.

The JSON export follows the Trace Event Format's *JSON Object Format*
(``{"traceEvents": [...]}``) using complete events (``ph: "X"``) for
spans and instant events (``ph: "i"``) for point annotations, so the
file loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Timestamps are **virtual cycles** (the ledger
total relative to tracer attach), not microseconds — the timeline is
deterministic, and byte-identical across runs of the same seed and
workload (``sort_keys`` + fixed separators, sequential span ids, no
wall clock anywhere).
"""

import json

#: Keys the Trace Event Format requires on every event we emit.
REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def _tid(cpu_id):
    return 0 if cpu_id is None else cpu_id


def trace_events(tracer):
    """The tracer's buffers as a list of trace_event dicts."""
    events = []
    for span in tracer.spans():
        args = {"span_id": span.span_id, "self_cycles": span.self_cycles}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.el is not None:
            args["el"] = span.el
        if span.reason is not None:
            args["reason"] = span.reason
        if span.detail:
            args.update(span.detail)
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": span.start_cycle,
            "dur": span.duration,
            "pid": 0,
            "tid": _tid(span.cpu_id),
            "args": args,
        })
    for event in tracer.instants():
        args = {"event_id": event.event_id}
        if event.parent_id is not None:
            args["parent_id"] = event.parent_id
        if event.detail:
            args.update(event.detail)
        events.append({
            "name": event.name,
            "cat": event.kind,
            "ph": "i",
            "s": "t",
            "ts": event.ts,
            "pid": 0,
            "tid": _tid(event.cpu_id),
            "args": args,
        })
    events.sort(key=lambda ev: (ev["ts"], ev["args"].get("span_id",
                                ev["args"].get("event_id", -1))))
    return events


def chrome_trace(tracer, label=None):
    """The full JSON-object-format document."""
    recon = tracer.reconcile()
    meta = {
        "cycles_total": recon.ledger_delta,
        "recorded_cycles": recon.recorded_cycles,
        "dropped_spans": tracer.dropped_spans,
        "dropped_cycles": tracer.dropped_cycles,
        "unattributed_cycles": recon.unattributed_cycles,
        "reconciled": recon.exact,
        "clock": "virtual-cycles",
    }
    if label is not None:
        meta["label"] = label
    return {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": meta,
    }


def chrome_trace_json(tracer, label=None):
    """Deterministic serialization (byte-identical for identical runs)."""
    return json.dumps(chrome_trace(tracer, label=label), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(tracer, path, label=None):
    payload = chrome_trace_json(tracer, label=label)
    with open(path, "w") as fh:
        fh.write(payload)
        fh.write("\n")
    return path


def validate_chrome_trace(document):
    """Check *document* (a parsed JSON object) against the format's
    required keys; returns ``{"events": n, "spans": n, "instants": n,
    "metadata": n}`` or raises ``ValueError``."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a JSON-object-format trace: missing "
                         "'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    spans = instants = metadata = 0
    for index, event in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError("event %d missing required key %r"
                                 % (index, key))
        if event["ph"] == "X":
            if "dur" not in event:
                raise ValueError("complete event %d missing 'dur'" % index)
            spans += 1
        elif event["ph"] == "i":
            instants += 1
        elif event["ph"] == "M":
            # Metadata events (process_name / process_sort_index lanes
            # the fleet merge emits).
            metadata += 1
        else:
            raise ValueError("event %d has unexpected phase %r"
                             % (index, event["ph"]))
    return {"events": len(events), "spans": spans, "instants": instants,
            "metadata": metadata}


# -- fleet payloads (per-machine ring-buffer export) ----------------


def tracer_payload(tracer):
    """One machine's trace ring-buffer as a JSON-clean payload.

    This is the unit the fleet workers ship alongside their metrics
    document: the trace events plus the reconciliation the tracer can
    still compute while it owns the ledger — downstream consumers (the
    fleet merge) only see the payload, so the reconciliation rides with
    the events and :func:`verify_machine_trace` re-derives the recorded
    cycle sum from the events themselves to keep the payload honest.
    """
    recon = tracer.reconcile()
    return {
        "events": trace_events(tracer),
        "dropped_spans": tracer.dropped_spans,
        "dropped_instants": tracer.dropped_instants,
        "reconciliation": {
            "recorded_cycles": recon.recorded_cycles,
            "dropped_cycles": recon.dropped_cycles,
            "open_cycles": recon.open_cycles,
            "unattributed_cycles": recon.unattributed_cycles,
            "ledger_delta": recon.ledger_delta,
            "exact": recon.exact,
        },
    }


def verify_machine_trace(payload):
    """Check one machine's trace payload: the reconciliation must be
    exact, and the recorded-cycle sum recomputed from the span events
    must equal the reconciliation's claim.  Returns a list of problem
    strings (empty means the payload reconciles)."""
    problems = []
    recon = payload.get("reconciliation")
    if not isinstance(recon, dict):
        return ["payload has no reconciliation block"]
    if not recon.get("exact"):
        problems.append(
            "span cycle attribution does not reconcile: recorded %s + "
            "dropped %s + open %s + unattributed %s != ledger delta %s"
            % (recon.get("recorded_cycles"), recon.get("dropped_cycles"),
               recon.get("open_cycles"), recon.get("unattributed_cycles"),
               recon.get("ledger_delta")))
    recomputed = sum(event["args"].get("self_cycles", 0)
                     for event in payload.get("events", ())
                     if event.get("ph") == "X")
    if recomputed != recon.get("recorded_cycles"):
        problems.append(
            "events claim %d recorded cycles, reconciliation says %s"
            % (recomputed, recon.get("recorded_cycles")))
    return problems


# -- breakdown tree -------------------------------------------------


def build_tree(tracer):
    """Rebuild the causal forest from the span buffer.

    Returns ``(roots, children)`` where *children* maps span id to the
    child spans in id (creation) order.  Spans whose parent was evicted
    from the ring buffer surface as extra roots.
    """
    spans = sorted(tracer.spans(), key=lambda span: span.span_id)
    by_id = {span.span_id: span for span in spans}
    children = {}
    roots = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children


def trap_stats(tracer):
    """Trap-span counts: the exit-multiplication factor.

    ``trap_spans`` counts every trap to the host hypervisor in the
    buffer (one span per ``TrapCounter.record``); ``leaf_traps`` counts
    trap spans with no trap descendants (the tree's leaves).
    """
    roots, children = build_tree(tracer)
    trap_spans = [span for span in tracer.spans() if span.kind == "trap"]

    def has_trap_descendant(span):
        for child in children.get(span.span_id, []):
            if child.kind == "trap" or has_trap_descendant(child):
                return True
        return False

    leaves = [span for span in trap_spans if not has_trap_descendant(span)]
    by_reason = {}
    for span in trap_spans:
        by_reason[span.reason] = by_reason.get(span.reason, 0) + 1
    return {
        "trap_spans": len(trap_spans),
        "leaf_traps": len(leaves),
        "by_reason": by_reason,
    }


def render_breakdown(tracer, max_depth=None):
    """Text rendering of the causal tree with per-span cycles."""
    roots, children = build_tree(tracer)
    recon = tracer.reconcile()
    stats = trap_stats(tracer)
    lines = []
    lines.append("trace breakdown (cycles = span extent; self = cycles "
                 "charged in the span itself)")

    def walk(span, depth):
        if max_depth is not None and depth > max_depth:
            return
        label = span.name
        if span.kind not in ("trap",) and span.kind != "span":
            label = "%s [%s]" % (label, span.kind)
        extra = ""
        if span.el is not None:
            extra += "  el=%s" % span.el
        lines.append("%s%s  cycles=%d self=%d%s"
                     % ("  " * depth, label, span.duration,
                        span.self_cycles, extra))
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if tracer.dropped_spans:
        lines.append("(... %d older spans evicted from the ring buffer, "
                     "%d cycles)" % (tracer.dropped_spans,
                                     tracer.dropped_cycles))
    reasons = ", ".join("%s=%d" % (reason, count) for reason, count in
                        sorted(stats["by_reason"].items(),
                               key=lambda item: (-item[1], str(item[0]))))
    lines.append("traps to host hypervisor: %d (%d leaves)%s"
                 % (stats["trap_spans"], stats["leaf_traps"],
                    "  [%s]" % reasons if reasons else ""))
    lines.append(recon.describe())
    return "\n".join(lines)


# -- latency histograms ---------------------------------------------


def latency_histograms(tracer):
    """Per-``ExitReason`` latency (span extent, cycles) of trap spans.

    Buckets are powers of two: bucket *k* holds durations in
    ``[2**k, 2**(k+1))`` (bucket 0 holds 0- and 1-cycle spans).
    """
    out = {}
    for span in tracer.spans():
        if span.kind != "trap":
            continue
        stats = out.setdefault(span.reason, {
            "count": 0, "total": 0, "min": None, "max": None,
            "buckets": {},
        })
        duration = span.duration
        stats["count"] += 1
        stats["total"] += duration
        stats["min"] = (duration if stats["min"] is None
                        else min(stats["min"], duration))
        stats["max"] = (duration if stats["max"] is None
                        else max(stats["max"], duration))
        bucket = max(duration, 1).bit_length() - 1
        stats["buckets"][bucket] = stats["buckets"].get(bucket, 0) + 1
    return out


def render_histograms(tracer):
    histograms = latency_histograms(tracer)
    if not histograms:
        return "per-ExitReason latency: no trap spans recorded"
    lines = ["per-ExitReason trap latency (cycles):"]
    widest = max(len(str(reason)) for reason in histograms)
    for reason in sorted(histograms, key=str):
        stats = histograms[reason]
        mean = stats["total"] // stats["count"]
        lines.append("  %-*s  n=%-5d min=%-7d avg=%-7d max=%d"
                     % (widest, reason, stats["count"], stats["min"],
                        mean, stats["max"]))
        for bucket in sorted(stats["buckets"]):
            count = stats["buckets"][bucket]
            lines.append("  %-*s    [%7d, %7d)  %-4d %s"
                         % (widest, "", 1 << bucket, 1 << (bucket + 1),
                            count, "#" * min(count, 40)))
    return "\n".join(lines)
