"""``python -m repro trace`` — run a microbenchmark under the tracer.

Runs the chosen microbenchmark on each requested platform configuration
with the causal tracer attached, then emits:

* a Chrome ``trace_event`` JSON file per configuration (loadable in
  Perfetto or ``chrome://tracing``),
* the text breakdown tree, whose trap-span count *is* the
  exit-multiplication factor (Table 7: 16 for NEVE vs ~126 for ARMv8.3
  trap-and-emulate on the hypercall),
* per-``ExitReason`` latency histograms,
* the span/ledger reconciliation line (must be exact).

Exit status 0 means every configuration produced a valid, non-empty,
exactly-reconciled trace.
"""

import argparse
import json
import os
import sys

from repro.analysis.sanitizer import check_trace_reconciliation
from repro.harness.configs import ALL_CONFIGS, make_microbench
from repro.trace.export import (
    chrome_trace_json,
    render_breakdown,
    render_histograms,
    trap_stats,
    validate_chrome_trace,
)
from repro.trace.spans import Tracer
from repro.workloads.microbench import MICROBENCHMARKS

#: Configurations the tracer can drive (the ARM machine model; the x86
#: model exists for Table 1 parity but is not span-instrumented).
ARM_CONFIG_NAMES = tuple(name for name, config in ALL_CONFIGS.items()
                         if config.platform == "arm")

#: Default pair: the two columns of Table 7 side by side.
DEFAULT_CONFIGS = ("neve-nested", "arm-nested")


def trace_microbench(config_name, workload, iterations=1,
                     capacity=65536):
    """Run *workload* on *config_name* under a fresh tracer.

    The suite is warmed up untraced first (steady-state trap counts,
    like :meth:`ArmMicrobench.run`), then each traced iteration runs
    inside an ``iteration`` span under one root span.  Returns
    ``(suite, tracer)`` with the tracer already stopped.
    """
    suite = make_microbench(config_name)
    once = {
        "hypercall": suite.hypercall_once,
        "device_io": suite.device_io_once,
        "virtual_ipi": suite.virtual_ipi_once,
        "virtual_eoi": suite.virtual_eoi_once,
    }[workload]
    prime = suite._prime_eoi if workload == "virtual_eoi" else None

    # Warm up untraced: populates contexts and shadow structures.
    if prime:
        prime()
    once()

    tracer = Tracer(capacity=capacity)
    tracer.attach_machine(suite.machine)
    root = tracer.begin("%s/%s" % (config_name, workload), kind="root")
    try:
        for index in range(iterations):
            if prime:
                with tracer.span("prime_eoi", kind="setup"):
                    prime()
            with tracer.span("iteration", kind="iteration",
                             detail={"index": index}):
                once()
    finally:
        tracer.end(root)
        tracer.stop()
    return suite, tracer


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="run a microbenchmark under the causal "
                    "exit-multiplication tracer and export artifacts")
    parser.add_argument("--workload", choices=MICROBENCHMARKS,
                        default="hypercall",
                        help="microbenchmark to trace (default hypercall)")
    parser.add_argument("--config", action="append", dest="configs",
                        choices=ARM_CONFIG_NAMES, metavar="NAME",
                        help="platform configuration (repeatable; "
                             "default: neve-nested and arm-nested)")
    parser.add_argument("--iterations", type=int, default=1, metavar="N",
                        help="traced iterations per configuration "
                             "(default 1)")
    parser.add_argument("--out", default="traces", metavar="DIR",
                        help="directory for trace JSON files "
                             "(default ./traces)")
    parser.add_argument("--capacity", type=int, default=65536,
                        help="span ring-buffer capacity (default 65536)")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="limit breakdown tree depth")
    args = parser.parse_args(argv)
    configs = list(args.configs or DEFAULT_CONFIGS)

    os.makedirs(args.out, exist_ok=True)
    failures = []
    for config_name in configs:
        label = "%s/%s" % (config_name, args.workload)
        suite, tracer = trace_microbench(
            config_name, args.workload, iterations=args.iterations,
            capacity=args.capacity)
        payload = chrome_trace_json(tracer, label=label)
        counts = validate_chrome_trace(json.loads(payload))
        path = os.path.join(args.out, "trace-%s-%s.json"
                            % (config_name, args.workload))
        with open(path, "w") as fh:
            fh.write(payload)
            fh.write("\n")

        print("=== %s ===" % label)
        print(render_breakdown(tracer, max_depth=args.max_depth))
        print(render_histograms(tracer))
        stats = trap_stats(tracer)
        print("wrote %s (%d events: %d spans, %d instants)"
              % (path, counts["events"], counts["spans"],
                 counts["instants"]))
        print()

        report = check_trace_reconciliation(tracer)
        if not report.passed:
            failures.append("%s: %s" % (label, report.summary()))
        if counts["events"] == 0 or stats["trap_spans"] == 0:
            failures.append("%s: empty trace" % label)

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
