"""Causal exit-multiplication tracer (Section 5 / Table 7 instrument).

The paper's central measurement is *exit multiplication*: one nested-VM
exit fans out into ~82-126 traps to the host hypervisor on ARMv8.3
trap-and-emulate, versus ~16 with NEVE.  :class:`~repro.trace.spans.Tracer`
records every trap, world-switch phase and recovery action as a *span*
carrying (exception level, :class:`~repro.metrics.counters.ExitReason`,
causing register/operation, parent-span id, cycles charged), so a single
nested exit renders as a causal tree whose trap count *is* the
exit-multiplication factor and whose per-span cycles reconcile exactly
against the :class:`~repro.metrics.cycles.CycleLedger` total.

Layout:

``spans``
    Stdlib-only core: :class:`Span`, :class:`Tracer` (bounded ring
    buffer, near-zero-cost disabled path), and the ``cpu_span`` /
    ``cpu_instant`` helpers the hot layers call.
``export``
    Chrome ``trace_event`` JSON (Perfetto / ``chrome://tracing``),
    text breakdown-tree renderer, per-``ExitReason`` latency
    histograms.
``cli``
    ``python -m repro trace`` — run a microbenchmark under the tracer
    and emit the artifacts.
"""

from repro.trace.spans import (  # noqa: F401
    Span,
    TraceReconciliation,
    Tracer,
    cpu_instant,
    cpu_span,
)
