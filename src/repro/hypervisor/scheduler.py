"""L0 vcpu scheduling: multiple VMs time-sharing physical CPUs.

The paper's configurations pin vcpus (one guest vcpu per physical core),
but the cost structure it analyses — what a VM-to-VM switch costs in
register traffic — matters as soon as a host consolidates VMs.  This
module adds a round-robin scheduler on top of the L0 hypervisor: a
preemption tick (driven by virtual time, i.e. the cycle ledger) forces a
vcpu switch, which pays the full EL1/GIC/timer context switch both ways.

It also provides the classic consolidation experiment: how much more
expensive is a hypercall when the vcpu must first be scheduled back in?
"""

from dataclasses import dataclass, field

from repro.hypervisor.vcpu import VcpuMode


@dataclass
class SchedulerStats:
    switches: int = 0
    preemptions: int = 0
    by_vcpu: dict = field(default_factory=dict)

    def record(self, vcpu, preempted):
        self.switches += 1
        if preempted:
            self.preemptions += 1
        key = (vcpu.vm.vmid, vcpu.vcpu_id)
        self.by_vcpu[key] = self.by_vcpu.get(key, 0) + 1


class VcpuScheduler:
    """Round-robin scheduling of several vcpus on one physical CPU."""

    def __init__(self, kvm, cpu, timeslice_cycles=1_000_000):
        if timeslice_cycles <= 0:
            raise ValueError("timeslice must be positive")
        self.kvm = kvm
        self.cpu = cpu
        self.timeslice_cycles = timeslice_cycles
        self.runqueue = []
        self.current = None
        self.slice_start = 0
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------

    def enqueue(self, vcpu):
        if vcpu.cpu is not self.cpu:
            raise ValueError("vcpu is pinned to a different physical CPU")
        if vcpu in self.runqueue:
            raise ValueError("vcpu already enqueued")
        self.runqueue.append(vcpu)

    def dequeue(self, vcpu):
        self.runqueue.remove(vcpu)
        if self.current is vcpu:
            self.current = None

    # ------------------------------------------------------------------
    # Switching
    # ------------------------------------------------------------------

    def _ledger(self):
        return self.kvm.machine.ledger

    def schedule(self, preempted=False):
        """Pick the next runnable vcpu and switch the hardware to it.

        The switch itself is the expensive part: the outgoing vcpu's
        state was already saved by the trap that got us here, but the
        incoming vcpu's EL1/GIC/timer context must be restored — the
        same world-switch flows everything else uses.
        """
        runnable = [v for v in self.runqueue if v.online]
        if not runnable:
            self.current = None
            return None
        if self.current in runnable:
            index = (runnable.index(self.current) + 1) % len(runnable)
        else:
            index = 0
        target = runnable[index]
        if target is not self.current:
            self.cpu.enter_host_context()
            if (self.current is not None
                    and self.kvm.running.get(self.cpu.cpu_id)
                    is self.current):
                # Bank the outgoing vcpu's loaded context.
                self.kvm._switch_to_host(self.cpu, self.current)
            self.cpu.work(650, category="l0_sched")  # pick-next, ctx mgmt
            self.kvm.running[self.cpu.cpu_id] = target
            self.kvm._switch_to_guest(self.cpu, target)
            self.kvm._apply_resume(self.cpu)
            self.stats.record(target, preempted)
        self.current = target
        self.slice_start = self._ledger().total
        return target

    def tick(self):
        """Preemption check: called on exits (the hrtimer tick stands in
        for the host scheduler's timer interrupt)."""
        if self.current is None:
            return self.schedule()
        if self._ledger().total - self.slice_start >= self.timeslice_cycles:
            return self.schedule(preempted=True)
        return self.current

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------

    def measure_switch_cost(self):
        """Cycles and traps for one forced vcpu switch."""
        ledger = self._ledger()
        traps = self.kvm.machine.traps
        cycles, trap_count = ledger.total, traps.total
        self.schedule(preempted=True)
        return ledger.total - cycles, traps.total - trap_count


#: Interleaving policies for SMP fault campaigns: how the single-threaded
#: discrete-event driver orders the per-vCPU work within one round.
INTERLEAVE_POLICIES = ("roundrobin", "reversed", "oddeven")


def interleave_order(num_cpus, round_index, policy="roundrobin"):
    """Deterministic vcpu execution order for one campaign round.

    The SMP fault campaign runs its vCPUs from a single driver loop;
    this chooses the order within a round.  ``roundrobin`` rotates the
    starting vcpu by round (every vcpu leads once), ``reversed`` runs
    descending ids, ``oddeven`` runs odd ids before even ones — the
    perturbed orders the determinism tests use to show the per-vCPU
    verdicts converge regardless of interleaving.
    """
    if policy not in INTERLEAVE_POLICIES:
        raise ValueError("unknown interleave policy %r (one of %s)"
                         % (policy, ", ".join(INTERLEAVE_POLICIES)))
    ids = list(range(num_cpus))
    if policy == "reversed":
        return list(reversed(ids))
    if policy == "oddeven":
        return [i for i in ids if i % 2] + [i for i in ids if not i % 2]
    start = round_index % num_cpus if num_cpus else 0
    return ids[start:] + ids[:start]


def consolidation_experiment(machine, num_vms=2, timeslice=500_000,
                             hypercalls=6):
    """Run *num_vms* single-vcpu VMs on one physical CPU, alternating
    hypercalls, and report the added scheduling cost per operation."""
    kvm = machine.kvm
    cpu = machine.cpu(0)
    scheduler = VcpuScheduler(kvm, cpu, timeslice_cycles=timeslice)
    vms = []
    for _ in range(num_vms):
        vm = kvm.create_vm(num_vcpus=1)
        vms.append(vm)
        scheduler.enqueue(vm.vcpus[0])
    scheduler.schedule()

    ledger = machine.ledger
    costs = []
    for _ in range(hypercalls):
        current = scheduler.current
        start = ledger.total
        current.cpu.hvc(0)
        scheduler.schedule(preempted=True)  # consolidate: rotate VMs
        costs.append(ledger.total - start)
    return {
        "per_operation_cycles": sum(costs) / len(costs),
        "switches": scheduler.stats.switches,
        "vms": num_vms,
    }
