"""Virtio paravirtualized I/O with notification suppression.

Section 7.2 explains an apparent anomaly — x86 Memcached in a nested VM
shows *more* virtualization overhead than NEVE despite similar per-exit
costs — through virtio's notification dynamics:

    "While the backend driver is busy, it tells the frontend driver that
    it can continue to send packets without further notification.  Only
    once the backend driver has nothing left to do does it tell the
    frontend driver to notify it again ... the quicker the backend driver
    handles packets, the more the frontend driver needs to notify."

:class:`VirtioQueue` implements exactly that feedback loop as a
deterministic discrete-event simulation in virtual time (cycles): a
faster backend drains the queue sooner, re-enables notifications sooner,
and therefore receives more kicks — each of which is a full VM exit.
"""

from dataclasses import dataclass, field


@dataclass
class QueueStats:
    packets: int = 0
    kicks: int = 0
    suppressed: int = 0
    backend_wakeups: int = 0
    finish_time: int = 0

    @property
    def kick_ratio(self):
        """Kicks per packet — the quantity Section 7.2 reasons about."""
        return self.kicks / self.packets if self.packets else 0.0


class VirtioQueue:
    """One virtqueue between a frontend (guest) and a backend (host).

    ``backend_service_cycles`` is the time the backend takes per buffer;
    ``wakeup_latency_cycles`` is the delay between a kick and the backend
    starting to drain (the exit and scheduling cost, which depends on the
    virtualization configuration).
    """

    def __init__(self, backend_service_cycles, wakeup_latency_cycles=0,
                 capacity=256):
        if backend_service_cycles <= 0:
            raise ValueError("backend service time must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.backend_service_cycles = backend_service_cycles
        self.wakeup_latency_cycles = wakeup_latency_cycles
        self.capacity = capacity

    def simulate(self, packet_times):
        """Run the queue over ascending enqueue timestamps (cycles).

        Returns :class:`QueueStats`.  The backend drains the whole queue
        once woken, then re-enables notifications; enqueues that land
        while it is draining are suppressed.
        """
        stats = QueueStats()
        backend_busy_until = 0  # backend is draining until this time
        queue_depth = 0
        last_time = None
        for t in packet_times:
            if last_time is not None and t < last_time:
                raise ValueError("packet times must be ascending")
            last_time = t
            stats.packets += 1
            if t >= backend_busy_until:
                # Queue idle and notifications enabled: kick required.
                stats.kicks += 1
                stats.backend_wakeups += 1
                queue_depth = 1
                backend_busy_until = (t + self.wakeup_latency_cycles
                                      + self.backend_service_cycles)
            else:
                # Backend still draining: no notification needed, but the
                # backend now has one more buffer to chew through.
                stats.suppressed += 1
                queue_depth = min(queue_depth + 1, self.capacity)
                backend_busy_until += self.backend_service_cycles
        stats.finish_time = backend_busy_until
        return stats

    def kick_ratio(self, arrival_interval, packets=2000):
        """Steady-state kicks-per-packet for a uniform arrival process."""
        times = [i * arrival_interval for i in range(packets)]
        return self.simulate(times).kick_ratio


@dataclass
class VirtioDevice:
    """A virtio-net/blk device as seen by a guest: a notify register in
    the device MMIO window plus the queue dynamics above."""

    name: str
    mmio_base: int
    queue: VirtioQueue = None
    stats: QueueStats = field(default_factory=QueueStats)

    NOTIFY_OFFSET = 0x50

    @property
    def notify_addr(self):
        return self.mmio_base + self.NOTIFY_OFFSET

    def kick(self, cpu):
        """Frontend notifies the backend: an MMIO write, hence a VM exit
        (and, in a nested VM, a forwarded exit with full multiplication)."""
        self.stats.kicks += 1
        return cpu.mmio_write(self.notify_addr, 1)
