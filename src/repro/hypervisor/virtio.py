"""Virtio paravirtualized I/O with notification suppression.

Section 7.2 explains an apparent anomaly — x86 Memcached in a nested VM
shows *more* virtualization overhead than NEVE despite similar per-exit
costs — through virtio's notification dynamics:

    "While the backend driver is busy, it tells the frontend driver that
    it can continue to send packets without further notification.  Only
    once the backend driver has nothing left to do does it tell the
    frontend driver to notify it again ... the quicker the backend driver
    handles packets, the more the frontend driver needs to notify."

:class:`VirtioQueue` implements exactly that feedback loop as a
deterministic discrete-event simulation in virtual time (cycles): a
faster backend drains the queue sooner, re-enables notifications sooner,
and therefore receives more kicks — each of which is a full VM exit.
"""

from dataclasses import dataclass, field


@dataclass
class QueueStats:
    packets: int = 0
    kicks: int = 0
    suppressed: int = 0
    backend_wakeups: int = 0
    finish_time: int = 0
    # Fault-injection accounting (repro.faults): notifications the
    # injector swallowed, and the recovery kicks that flushed them.
    lost_kicks: int = 0
    recovery_kicks: int = 0
    recovered_by_kick: int = 0  # stranded buffers a later kick covered

    @property
    def kick_ratio(self):
        """Kicks per packet — the quantity Section 7.2 reasons about."""
        return self.kicks / self.packets if self.packets else 0.0


class VirtioQueue:
    """One virtqueue between a frontend (guest) and a backend (host).

    ``backend_service_cycles`` is the time the backend takes per buffer;
    ``wakeup_latency_cycles`` is the delay between a kick and the backend
    starting to drain (the exit and scheduling cost, which depends on the
    virtualization configuration).
    """

    def __init__(self, backend_service_cycles, wakeup_latency_cycles=0,
                 capacity=256, rekick_timeout_cycles=10000):
        if backend_service_cycles <= 0:
            raise ValueError("backend service time must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.backend_service_cycles = backend_service_cycles
        self.wakeup_latency_cycles = wakeup_latency_cycles
        self.capacity = capacity
        # Frontend watchdog: if a kick is lost (fault injection), the
        # driver re-notifies after this long without backend progress —
        # virtio-net's tx timeout, scaled to the simulation.
        self.rekick_timeout_cycles = rekick_timeout_cycles
        # Optional fault injector (repro.faults): may swallow kicks.
        self.fault_hook = None

    def simulate(self, packet_times):
        """Run the queue over ascending enqueue timestamps (cycles).

        Returns :class:`QueueStats`.  The backend drains the whole queue
        once woken, then re-enables notifications; enqueues that land
        while it is draining are suppressed.

        With a fault injector attached, a kick may be *lost*: the buffer
        sits in the ring with the backend asleep.  Recovery is the real
        driver's: the next successful kick wakes the backend, which
        drains the whole ring including the stranded buffers; if the
        stream ends with buffers still stranded, the frontend watchdog
        fires a recovery kick after ``rekick_timeout_cycles``.  Either
        way no packet is silently dropped — only delayed.
        """
        stats = QueueStats()
        backend_busy_until = 0  # backend is draining until this time
        queue_depth = 0
        stranded = 0  # buffers enqueued whose kick was lost
        stranded_since = 0
        last_time = None
        for t in packet_times:
            if last_time is not None and t < last_time:
                raise ValueError("packet times must be ascending")
            last_time = t
            stats.packets += 1
            if t >= backend_busy_until:
                if self.fault_hook is not None \
                        and self.fault_hook.drop_kick(self, t):
                    # Notification lost: buffer queued, backend asleep.
                    stats.lost_kicks += 1
                    if not stranded:
                        stranded_since = t
                    stranded += 1
                    queue_depth = min(queue_depth + 1, self.capacity)
                    continue
                # Queue idle and notifications enabled: kick required.
                # A successful kick also covers any stranded buffers:
                # the woken backend drains the whole ring.
                stats.kicks += 1
                stats.backend_wakeups += 1
                if stranded:
                    stats.recovered_by_kick += stranded
                queue_depth = 1 + stranded
                backend_busy_until = (
                    t + self.wakeup_latency_cycles
                    + (1 + stranded) * self.backend_service_cycles)
                stranded = 0
            else:
                # Backend still draining: no notification needed, but the
                # backend now has one more buffer to chew through.
                stats.suppressed += 1
                queue_depth = min(queue_depth + 1, self.capacity)
                backend_busy_until += self.backend_service_cycles
        if stranded:
            # Stream ended with lost notifications outstanding: the
            # frontend watchdog re-kicks and the backend drains the rest.
            stats.recovery_kicks += 1
            stats.backend_wakeups += 1
            wake_at = max(backend_busy_until,
                          stranded_since + self.rekick_timeout_cycles)
            backend_busy_until = (
                wake_at + self.wakeup_latency_cycles
                + stranded * self.backend_service_cycles)
            stats.recovered_by_kick += stranded
        stats.finish_time = backend_busy_until
        return stats

    def kick_ratio(self, arrival_interval, packets=2000):
        """Steady-state kicks-per-packet for a uniform arrival process."""
        times = [i * arrival_interval for i in range(packets)]
        return self.simulate(times).kick_ratio


@dataclass
class VirtioDevice:
    """A virtio-net/blk device as seen by a guest: a notify register in
    the device MMIO window plus the queue dynamics above."""

    name: str
    mmio_base: int
    queue: VirtioQueue = None
    stats: QueueStats = field(default_factory=QueueStats)

    NOTIFY_OFFSET = 0x50

    @property
    def notify_addr(self):
        return self.mmio_base + self.NOTIFY_OFFSET

    def kick(self, cpu):
        """Frontend notifies the backend: an MMIO write, hence a VM exit
        (and, in a nested VM, a forwarded exit with full multiplication)."""
        self.stats.kicks += 1
        return cpu.mmio_write(self.notify_addr, 1)
