"""The L0 host hypervisor (KVM/ARM) and the machine model.

L0 is modelled after the paper's host: split-mode (non-VHE) KVM/ARM on the
ARMv8.0-class GICv2 testbed, extended with the ARMv8.3 nested support of
Section 4 and the NEVE support of Section 6.4.  Every trap from a guest
costs L0 a full world switch to its host kernel and back — this is what
makes each of the guest hypervisor's multiplied exits expensive, and it is
calibrated (via the cost model) against the paper's single-level VM
numbers.

Control flow: guests "run" as Python code issued against a
:class:`repro.arch.cpu.Cpu`; anything that traps lands in
:meth:`KvmHypervisor.handle_trap`, which performs the switch, emulates or
forwards, and finally records which world the CPU resumes into
(:meth:`KvmHypervisor.resume_context`).
"""

import os

from repro.arch.cpu import Cpu
from repro.arch.dispatch import DispatchTable
from repro.arch.exceptions import ExceptionClass, ExceptionLevel
from repro.arch.features import ArchConfig, ArchVersion, GicVersion
from repro.arch.gic import Gic, ListRegister, LrState, lr_name
from repro.arch.idregs import discover_from_arch
from repro.arch.registers import NeveBehavior, RegClass, lookup_register
from repro.arch.timer import EL1_TIMER_SAVE_LIST
from repro.core.neve import NeveRunner
from repro.core.redirection import redirect_target
from repro.hypervisor import world_switch as ws
from repro.hypervisor.nested import GuestHypervisor
from repro.hypervisor.psci import PsciEmulator
from repro.hypervisor.vcpu import VcpuMode, VcpuState, VcpuStruct
from repro.memory.pagetable import PageTable, Permission
from repro.memory.phys import PAGE_SIZE, MemoryRegion, PhysicalMemory
from repro.memory.shadow import ShadowStage2
from repro.metrics.counters import ExitReason, RecoveryCounter, TrapCounter
from repro.metrics.cycles import ARM_COSTS, CycleLedger
from repro.trace.spans import cpu_span

# Physical memory map of the simulated machine.
RAM_BASE = 0x8000_0000
RAM_SIZE = 0x4_0000_0000  # 16 GB
L0_VIRTIO_BASE = 0x0900_0000  # devices emulated by L0's userspace
L1_VIRTIO_BASE = 0x0A00_0000  # devices emulated by the guest hypervisor
VIRTIO_SIZE = 0x1_0000
GICV2_CPU_BASE = 0x0801_0000
VNCR_POOL_BASE = 0x7000_0000  # deferred access pages, one per vcpu

#: SGI interrupt id L0 uses to kick vcpus between physical CPUs.
HOST_KICK_SGI = 0

#: Hardware EL1 registers that carry virtual-EL2 execution state while a
#: guest hypervisor runs (redirect targets plus translation state).
VEL2_EXEC_PAIRS = (
    ("SCTLR_EL2", "SCTLR_EL1"),
    ("TTBR0_EL2", "TTBR0_EL1"),
    ("TCR_EL2", "TCR_EL1"),
    ("MAIR_EL2", "MAIR_EL1"),
    ("AMAIR_EL2", "AMAIR_EL1"),
    ("AFSR0_EL2", "AFSR0_EL1"),
    ("AFSR1_EL2", "AFSR1_EL1"),
    ("VBAR_EL2", "VBAR_EL1"),
    ("CONTEXTIDR_EL2", "CONTEXTIDR_EL1"),
    ("TTBR1_EL2", "TTBR1_EL1"),
    ("ESR_EL2", "ESR_EL1"),
    ("FAR_EL2", "FAR_EL1"),
    ("ELR_EL2", "ELR_EL1"),
    ("SPSR_EL2", "SPSR_EL1"),
)


class Vm:
    """One virtual machine at the host-hypervisor level."""

    _next_vmid = [1]

    def __init__(self, machine, vcpus, nested="none", guest_vhe=False):
        self.machine = machine
        self.vcpus = vcpus
        self.nested = nested  # "none" | "nv" | "neve"
        self.guest_vhe = guest_vhe
        self.vmid = Vm._next_vmid[0]
        Vm._next_vmid[0] += 1
        self.stage2 = PageTable(stage=2, fmt="el2", name="vm%d-s2" % self.vmid)
        self.stage2.map_range(0, RAM_BASE, 0x40_0000)  # boot mapping (4 MB)
        self.guest_hyp = None
        self.shadow_s2 = None
        for vcpu in vcpus:
            vcpu.vm = self

    @property
    def is_nested(self):
        return self.nested != "none"


class Machine:
    """CPUs + memory + GIC + the L0 hypervisor, with shared accounting."""

    def __init__(self, arch=None, num_cpus=2, costs=ARM_COSTS,
                 l0_gic_mmio=True, fastpath=None):
        self.arch = arch if arch is not None else ArchConfig(
            version=ArchVersion.V8_3, gic=GicVersion.V3)
        self.costs = costs
        # Trap-dispatch fast path: on by default, opt out per machine
        # with fastpath=False or globally with REPRO_NO_FASTPATH=1.
        if fastpath is None:
            fastpath = not os.environ.get("REPRO_NO_FASTPATH")
        self.fastpath = bool(fastpath)
        self.dispatch = DispatchTable(self.arch) if self.fastpath else None
        self.ledger = CycleLedger()
        self.traps = TrapCounter()
        self.recoveries = RecoveryCounter()
        # Optional telemetry facade (repro.metrics.instrument
        # .MachineMetrics.attach_machine sets it).  Observe-only: sites
        # gate on ``is None`` so the disabled path costs nothing.
        self.metrics = None

        self.memory = PhysicalMemory()
        self.memory.add_region(MemoryRegion("ram", RAM_BASE, RAM_SIZE))
        self.memory.add_region(MemoryRegion(
            "l0-virtio", L0_VIRTIO_BASE, VIRTIO_SIZE, is_mmio=True))
        self.memory.add_region(MemoryRegion(
            "l1-virtio", L1_VIRTIO_BASE, VIRTIO_SIZE, is_mmio=True))
        self.memory.add_region(MemoryRegion(
            "vncr-pool", VNCR_POOL_BASE, 0x10_0000))
        self.memory.add_region(MemoryRegion(
            "gich", GICV2_CPU_BASE, 0x2000, is_mmio=True))

        self.gic = Gic(version=int(self.arch.gic), num_lrs=4)
        self.cpus = []
        for cpu_id in range(num_cpus):
            cpu = Cpu(arch=self.arch, costs=costs, ledger=self.ledger,
                      traps=self.traps, memory=self.memory, cpu_id=cpu_id,
                      dispatch=self.dispatch)
            self.gic.attach_cpu(cpu)
            self.cpus.append(cpu)

        self.kvm = KvmHypervisor(self, gic_mmio=l0_gic_mmio)
        self.device_values = {}
        self.last_kick_mark = 0

    def cpu(self, index=0):
        return self.cpus[index]

    def device_read(self, addr):
        """Backing device model for MMIO reads (both emulation levels)."""
        return self.device_values.get(addr, 0x5AFE_D00D)

    def reset_metrics(self):
        self.ledger.reset()
        self.traps.reset()


class KvmHypervisor:
    """The L0 host hypervisor."""

    def __init__(self, machine, vhe=False, gic_mmio=True):
        self.machine = machine
        self.vhe = vhe
        self.gic_mmio = gic_mmio
        self.running = {}  # cpu_id -> vcpu
        self.host_ctx = {}  # cpu_id -> VcpuStruct (host kernel EL1 state)
        self._vncr_next = [VNCR_POOL_BASE]
        self.stats = {"forwards": 0, "vel2_sysreg": 0, "vel2_eret": 0,
                      "shadow_s2_faults": 0, "fp_switches": 0}
        # Optional callback for SError exits: the fault-recovery layer
        # (repro.faults.recovery) installs one to resync NEVE state.
        self.serror_policy = None
        self.psci = PsciEmulator(self)
        for cpu in machine.cpus:
            cpu.trap_handler = self
            self.host_ctx[cpu.cpu_id] = VcpuStruct(cpu)

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def create_vm(self, num_vcpus=1, nested="none", guest_vhe=False,
                  guest_gic=3):
        if nested not in ("none", "nv", "neve"):
            raise ValueError("nested must be 'none', 'nv' or 'neve'")
        # Discover hardware capabilities the way real software does: by
        # reading the ID registers, not an out-of-band config object.
        features = discover_from_arch(self.machine.arch)
        if nested == "neve" and not features.has_neve:
            raise ValueError("NEVE requested but ID_AA64MMFR2_EL1.NV "
                             "reports no FEAT_NV2 (%s)"
                             % self.machine.arch.version.name)
        if nested != "none" and not features.has_nv:
            raise ValueError("nested virtualization needs FEAT_NV "
                             "(ARMv8.3+)")
        if num_vcpus > len(self.machine.cpus):
            raise ValueError("more vcpus than physical CPUs (pinned model)")
        vcpus = []
        for index in range(num_vcpus):
            cpu = self.machine.cpus[index]
            vcpu = VcpuState(cpu, vcpu_id=index,
                             has_virtual_el2=(nested != "none"),
                             virtual_e2h=guest_vhe)
            vcpus.append(vcpu)
        vm = Vm(self.machine, vcpus, nested=nested, guest_vhe=guest_vhe)
        if vm.is_nested:
            vm.guest_hyp = GuestHypervisor(self.machine, vhe=guest_vhe,
                                           gic_version=guest_gic)
            guest_s2 = PageTable(stage=2, fmt="el2", name="l1-s2")
            guest_s2.map_range(0, 0, 0x40_0000)
            vm.shadow_s2 = ShadowStage2(guest_s2, vm.stage2)
            if nested == "neve":
                for vcpu in vcpus:
                    vcpu.neve = NeveRunner(vcpu.cpu, self.machine.memory,
                                           self.alloc_vncr_page())
                    vcpu.neve.init_page(vcpu.vel2_ctx.regs)
        return vm

    def alloc_vncr_page(self):
        """Allocate one deferred-access page from the VNCR pool (also
        used to give a migrated vcpu a fresh page on the destination)."""
        baddr = self._vncr_next[0]
        self._vncr_next[0] += PAGE_SIZE
        return baddr

    def rearm_neve(self, vcpu):
        """Re-promotion (the host half): hand a degraded vcpu a fresh
        deferred-access page and a new runner.  The recovery layer owns
        repopulating the slots from the banked contexts; the runner is
        enabled on the next virtual-EL2 entry like any other."""
        if vcpu.neve is not None:
            raise RuntimeError("vcpu %d already has a NEVE runner"
                               % vcpu.vcpu_id)
        vcpu.neve = NeveRunner(vcpu.cpu, self.machine.memory,
                               self.alloc_vncr_page())
        # Re-arming changes which verdicts the dispatch fast path may
        # serve at virtual EL2; drop anything cached while degraded.
        vcpu.cpu.invalidate_verdict_cache()
        return vcpu.neve

    def run_vcpu(self, vcpu):
        """Initial entry into a vcpu from the host."""
        cpu = vcpu.cpu
        self.running[cpu.cpu_id] = vcpu
        if vcpu.has_virtual_el2 and vcpu.mode is VcpuMode.VEL2:
            self._load_vel2_exec_image(cpu, vcpu)
            if vcpu.neve is not None:
                vcpu.neve.enable()
        self._switch_to_guest(cpu, vcpu)
        self._apply_resume(cpu)
        self._note_depth(cpu, vcpu)

    def _note_depth(self, cpu, vcpu):
        """Telemetry: the nesting depth this cpu is now executing at
        (1 = a VM or its guest hypervisor, 2 = the nested VM)."""
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.set_depth(cpu.cpu_id,
                              2 if vcpu.mode is VcpuMode.NESTED else 1)

    def boot_nested(self, vcpu):
        """Boot the nested VM: the guest hypervisor launches its guest
        through the real activate/restore/eret path."""
        vm = vcpu.vm
        if not vm.is_nested:
            raise ValueError("vcpu's VM has no virtual EL2")
        self.run_vcpu(vcpu)
        vm.guest_hyp.launch_vm(vcpu.cpu, vcpu)
        if vcpu.mode is not VcpuMode.NESTED:
            raise RuntimeError("nested VM failed to launch")

    def _apply_resume(self, cpu):
        ctx = self.resume_context(cpu)
        if ctx is None:
            cpu.enter_host_context()
        else:
            cpu.enter_guest_context(ctx["el"], nv=ctx["nv"],
                                    virtual_e2h=ctx["virtual_e2h"])

    def resume_context(self, cpu):
        """The guest context the CPU resumes into after a trap."""
        vcpu = self.running.get(cpu.cpu_id)
        if vcpu is None:
            return None
        if vcpu.mode is VcpuMode.VEL2:
            return {"el": ExceptionLevel.EL1, "nv": True,
                    "virtual_e2h": vcpu.virtual_e2h}
        return {"el": ExceptionLevel.EL1, "nv": False, "virtual_e2h": False}

    # ------------------------------------------------------------------
    # Trap entry point
    # ------------------------------------------------------------------

    def handle_trap(self, cpu, syndrome):
        vcpu = self.running.get(cpu.cpu_id)
        if vcpu is None:
            raise RuntimeError("trap %s with no vcpu running on cpu%d"
                               % (syndrome.describe(), cpu.cpu_id))
        ws.hyp_entry(cpu)
        ops = ws.make_ops(cpu, self.vhe)
        ws.read_exit_context(
            ops, is_abort=(syndrome.ec is ExceptionClass.DABT_LOWER))
        try:
            if syndrome.ec is ExceptionClass.SERROR:
                return self._handle_serror(cpu, vcpu)
            if syndrome.ec is ExceptionClass.IRQ:
                return self._handle_irq(cpu, vcpu)
            if syndrome.ec is ExceptionClass.FP_ACCESS:
                return self._handle_fp_trap(cpu, vcpu)
            if syndrome.ec is ExceptionClass.SMC:
                return self._handle_smc(cpu, vcpu, syndrome)
            if vcpu.mode is VcpuMode.NESTED:
                return self._handle_nested_exit(cpu, vcpu, syndrome)
            if vcpu.mode is VcpuMode.VEL2:
                return self._handle_vel2_trap(cpu, vcpu, syndrome)
            return self._handle_vm_trap(cpu, vcpu, syndrome)
        finally:
            ws.hyp_exit(cpu)

    # ------------------------------------------------------------------
    # World switches (L0's own, always native at EL2)
    # ------------------------------------------------------------------

    def _switch_to_host(self, cpu, vcpu):
        with cpu_span(cpu, "l0.switch_to_host"):
            ops = ws.make_ops(cpu, self.vhe)
            ws.save_el1_state(ops, vcpu.el1_ctx)
            ws.timer_save(ops, vcpu.el1_ctx, self.vhe)
            if self.gic_mmio:
                ws.vgic_save_mmio(cpu, vcpu.el1_ctx, vcpu.used_lrs)
            else:
                ws.vgic_save(ops, vcpu.el1_ctx, vcpu.used_lrs)
            self._recount_used_lrs(vcpu)
            ws.deactivate_traps(ops, self.vhe)
            ws.restore_el1_state(ops, self.host_ctx[cpu.cpu_id])
            cpu.work(340, category="l0_kernel")  # ret to kernel, run-loop epilogue

    def _switch_to_guest(self, cpu, vcpu):
        with cpu_span(cpu, "l0.switch_to_guest"):
            cpu.work(210, category="l0_kernel")  # run-loop prologue
            ops = ws.make_ops(cpu, self.vhe)
            ws.save_el1_state(ops, self.host_ctx[cpu.cpu_id])
            ws.activate_traps(ops, self.vhe, vttbr=self._vttbr_for(vcpu))
            ws.timer_restore(ops, vcpu.el1_ctx, self.vhe)
            self._l0_vgic_flush(cpu, vcpu)
            if self.gic_mmio:
                ws.vgic_restore_mmio(cpu, vcpu.el1_ctx, vcpu.used_lrs)
            else:
                ws.vgic_restore(ops, vcpu.el1_ctx, vcpu.used_lrs)
            ws.restore_el1_state(ops, vcpu.el1_ctx)
            cpu.fp_trap = True  # CPTR_EL2 re-armed: next FP use traps
            cpu.barrier()
            cpu.eret()

    def _vttbr_for(self, vcpu):
        vm = vcpu.vm
        if vcpu.mode is VcpuMode.NESTED:
            return (vm.vmid << 48) | 0x2  # shadow stage-2 base
        return (vm.vmid << 48) | 0x1

    def _recount_used_lrs(self, vcpu):
        """Fold the saved list registers: completed interrupts leave
        INVALID slots behind, which must become reusable (KVM's
        vgic_fold_lr_state).  Live entries are compacted downwards."""
        live = []
        for index in range(self.machine.gic.num_lrs):
            value = vcpu.el1_ctx.peek(lr_name(index))
            if value and ListRegister.decode(value).state \
                    is not LrState.INVALID:
                live.append(value)
        for index in range(self.machine.gic.num_lrs):
            vcpu.el1_ctx.poke(lr_name(index),
                              live[index] if index < len(live) else 0)
        vcpu.used_lrs = len(live)

    def _l0_vgic_flush(self, cpu, vcpu):
        """Queue pending L1-level virtual interrupts into the LR image.

        Nothing is flushed while the vcpu's *nested VM* context is loaded:
        interrupts for the guest hypervisor are delivered by forwarding an
        IRQ exit instead."""
        if vcpu.mode is VcpuMode.NESTED:
            return
        index = vcpu.used_lrs
        while vcpu.pending_virqs and index < self.machine.gic.num_lrs:
            intid = vcpu.pending_virqs.pop(0)
            cpu.work(55, category="l0_vgic")
            lr = ListRegister(vintid=intid, state=LrState.PENDING,
                              priority=0x80)
            vcpu.el1_ctx.save(lr_name(index), lr.encode())
            index += 1
        vcpu.used_lrs = index

    # ------------------------------------------------------------------
    # Plain VM exits (also the guest hypervisor's vEL1 kernel part)
    # ------------------------------------------------------------------

    def _handle_vm_trap(self, cpu, vcpu, syndrome):
        self._switch_to_host(cpu, vcpu)
        ec = syndrome.ec
        if ec is ExceptionClass.SYSREG and \
                syndrome.register == "ICC_SGI1R_EL1":
            self._route_sgi(cpu, vcpu, syndrome.value or 0)
            self._switch_to_guest(cpu, vcpu)
            return None
        if ec is ExceptionClass.HVC:
            if vcpu.has_virtual_el2:
                # hvc from vEL1 is an exception *to virtual EL2* — the
                # kernel part calling into the hyp part (Figure 1a).
                self._transition_vel1_to_vel2(cpu, vcpu, syndrome)
                self._switch_to_guest(cpu, vcpu)
                return None
            cpu.work(150, category="l0_kernel")  # handle_hvc: no-op call
            self._switch_to_guest(cpu, vcpu)
            return 0
        if ec is ExceptionClass.DABT_LOWER:
            value = self._emulate_mmio_l0(cpu, syndrome)
            self._switch_to_guest(cpu, vcpu)
            return value
        if ec is ExceptionClass.WFI:
            return self._handle_wfi(cpu, vcpu)
        raise RuntimeError("unhandled VM trap: %s" % syndrome.describe())

    def _handle_wfi(self, cpu, vcpu):
        """The guest idles: block the vcpu until its virtual timer (or a
        pending virtual interrupt) would wake it, deliver the wakeup and
        resume.

        Virtual time is the cycle ledger, so "sleeping" means advancing
        the ledger to the timer deadline under the ``idle`` category: the
        guest consumed wall time but no instructions — which is what a
        WFI does.
        """
        cpu.work(420, category="l0_kernel")  # kvm_vcpu_block bookkeeping
        if not vcpu.pending_virqs:
            deadline = vcpu.el1_ctx.peek("CNTV_CVAL_EL0")
            ctl = vcpu.el1_ctx.peek("CNTV_CTL_EL0")
            now = self.machine.ledger.total
            if (ctl & 1) and deadline > now:
                # Program the host hrtimer and sleep until it fires.
                cpu.work(300, category="l0_timer")
                self.machine.ledger.charge(deadline - now, "idle")
            if ctl & 1:
                # The virtual timer has now expired: inject its PPI.
                from repro.arch.timer import VTIMER_PPI
                vcpu.queue_virq(VTIMER_PPI)
                cpu.work(240, category="l0_timer")
        self._switch_to_guest(cpu, vcpu)
        return None

    def _emulate_mmio_l0(self, cpu, syndrome):
        """A stage-2 abort on a device emulated by L0's userspace."""
        cpu.work(140, category="l0_kernel")  # io abort decode, kvm_run fill
        cpu.ledger.charge(cpu.costs.userspace_roundtrip, "l0_userspace")
        cpu.work(160, category="l0_userspace")  # QEMU device model
        if syndrome.is_write:
            self.machine.device_values[syndrome.fault_ipa] = syndrome.value
            return None
        return self.machine.device_read(syndrome.fault_ipa)

    def _route_sgi(self, cpu, vcpu, value):
        """Emulate an ICC_SGI1R write: mark the interrupt pending on the
        target vcpu and kick the physical CPU it runs on."""
        cpu.work(380, category="l0_vgic")
        # Timestamp of the physical kick, for IPI latency measurements:
        # the receiver starts from here while the sender's return path
        # continues in parallel on its own core.
        self.machine.last_kick_mark = self.machine.ledger.total
        target_id = value & 0xFFFF
        intid = (value >> 24) & 0xF
        vm = vcpu.vm
        if target_id >= len(vm.vcpus):
            return
        target = vm.vcpus[target_id]
        target.queue_virq(intid)
        self.machine.gic.send_sgi(target.cpu.cpu_id, HOST_KICK_SGI)

    # ------------------------------------------------------------------
    # Exits from the nested VM (L2)
    # ------------------------------------------------------------------

    def _handle_nested_exit(self, cpu, vcpu, syndrome):
        self._switch_to_host(cpu, vcpu)
        ec = syndrome.ec
        if ec is ExceptionClass.DABT_LOWER:
            region = self.machine.memory.region_at(syndrome.fault_ipa or 0)
            if region is None or not region.is_mmio:
                # A genuine shadow stage-2 miss: L0 fixes it and resumes
                # the nested VM without involving the guest hypervisor.
                self._fix_shadow_fault(cpu, vcpu, syndrome)
                self._switch_to_guest(cpu, vcpu)
                return None
            payload = {"addr": syndrome.fault_ipa,
                       "is_write": syndrome.is_write,
                       "value": syndrome.value}
            return self._forward_to_vel2(cpu, vcpu, ExitReason.MEM_ABORT,
                                         payload)
        if ec is ExceptionClass.HVC:
            return self._forward_to_vel2(cpu, vcpu, ExitReason.HVC,
                                         {"imm": syndrome.imm})
        if ec is ExceptionClass.SYSREG and \
                syndrome.register == "ICC_SGI1R_EL1":
            value = syndrome.value or 0
            payload = {"target": value & 0xFFFF,
                       "intid": (value >> 24) & 0xF}
            return self._forward_to_vel2(cpu, vcpu, ExitReason.GIC_TRAP,
                                         payload)
        if ec is ExceptionClass.WFI:
            return self._forward_to_vel2(cpu, vcpu, ExitReason.WFI, None)
        raise RuntimeError("unhandled nested exit: %s" % syndrome.describe())

    def _fix_shadow_fault(self, cpu, vcpu, syndrome):
        self.stats["shadow_s2_faults"] += 1
        cpu.work(900, category="l0_mmu")  # walk both tables, install entry
        vm = vcpu.vm
        if vm.shadow_s2 is not None and syndrome.fault_ipa is not None:
            vm.shadow_s2.guest_stage2.map_page(syndrome.fault_ipa,
                                               syndrome.fault_ipa,
                                               Permission.RWX)
            vm.stage2.map_page(syndrome.fault_ipa,
                               RAM_BASE + syndrome.fault_ipa,
                               Permission.RWX)
            vm.shadow_s2.handle_fault(syndrome.fault_ipa)

    def _forward_to_vel2(self, cpu, vcpu, reason, payload):
        """Emulate an exception from the nested VM to virtual EL2 and run
        the guest hypervisor (Sections 4 and 6.1)."""
        with cpu_span(cpu, "l0.forward_to_vel2", reason=reason):
            self.stats["forwards"] += 1
            cpu.work(7000, category="l0_nested")  # nested exit routing, vcpu bookkeeping
            cpu.ledger.charge(cpu.costs.tlb_maintenance, "l0_tlbi")  # re-tag stage-2
            # 1. The L2 EL1 context just saved from hardware becomes the
            #    virtual EL1 state the guest hypervisor will read — with NEVE
            #    it is copied into the deferred access page.
            self._save_loaded_el1_to_virtual(cpu, vcpu)
            # 2. GIC: hardware list registers held L2's interface; hand them
            #    to the guest hypervisor's view and load L1's own interface.
            self._sync_l2_vgic_to_shadow(cpu, vcpu)
            self._load_l1_vgic_image(cpu, vcpu)
            # 3. Load virtual-EL2 execution state and the exception context.
            self._load_vel2_exec_image(cpu, vcpu)
            self._set_vel2_exception_context(cpu, vcpu, reason, payload)
            if vcpu.neve is not None:
                self._sync_neve_status_regs(cpu, vcpu)
                vcpu.neve.enable()
            vcpu.mode = VcpuMode.VEL2
            self._note_depth(cpu, vcpu)
            self._switch_to_guest(cpu, vcpu)
            with cpu.guest_call(nv=True, virtual_e2h=vcpu.virtual_e2h):
                result = vcpu.vm.guest_hyp.handle_vm_exit(cpu, vcpu, reason,
                                                          payload)
            return result

    # ------------------------------------------------------------------
    # Traps from the guest hypervisor at virtual EL2
    # ------------------------------------------------------------------

    def _handle_vel2_trap(self, cpu, vcpu, syndrome):
        self._switch_to_host(cpu, vcpu)
        ec = syndrome.ec
        if ec is ExceptionClass.SYSREG and \
                syndrome.register == "ICC_SGI1R_EL1":
            self._route_sgi(cpu, vcpu, syndrome.value or 0)
            self._switch_to_guest(cpu, vcpu)
            return None
        if ec is ExceptionClass.SYSREG:
            result = self._emulate_vel2_sysreg(cpu, vcpu, syndrome)
            self._switch_to_guest(cpu, vcpu)
            return result
        if ec is ExceptionClass.ERET:
            self._emulate_vel2_eret(cpu, vcpu)
            self._switch_to_guest(cpu, vcpu)
            return None
        if ec is ExceptionClass.TLBI:
            self._emulate_vel2_tlbi(cpu, vcpu, syndrome)
            self._switch_to_guest(cpu, vcpu)
            return None
        if ec is ExceptionClass.AT:
            cpu.work(450, category="l0_nested")  # walk virtual tables
            self._switch_to_guest(cpu, vcpu)
            return None
        if ec is ExceptionClass.HVC:
            cpu.work(230, category="l0_kernel")
            self._switch_to_guest(cpu, vcpu)
            return 0
        if ec is ExceptionClass.WFI:
            cpu.work(420, category="l0_kernel")
            self._switch_to_guest(cpu, vcpu)
            return None
        if ec is ExceptionClass.DABT_LOWER:
            region = self.machine.memory.region_at(syndrome.fault_ipa or 0)
            if region is not None and region.name == "gich":
                value = self._emulate_vel2_gich(cpu, vcpu, syndrome)
            else:
                value = self._emulate_mmio_l0(cpu, syndrome)
            self._switch_to_guest(cpu, vcpu)
            return value
        raise RuntimeError("unhandled vEL2 trap: %s" % syndrome.describe())

    def _emulate_vel2_sysreg(self, cpu, vcpu, syndrome):
        with cpu_span(cpu, "l0.emulate_vel2_sysreg", register=syndrome.register, is_write=bool(syndrome.is_write)):
            self.stats["vel2_sysreg"] += 1
            cpu.work(160, category="l0_nested")  # decode, dispatch to handler
            reg = lookup_register(syndrome.register)
            if reg.el == 2:
                if reg.reg_class is RegClass.GIC_HYP:
                    target = vcpu.shadow_ich
                else:
                    target = vcpu.vel2_ctx
                if reg.reg_class is RegClass.TIMER_EL2:
                    cpu.work(130, category="l0_nested")  # (re)program hrtimer
            else:
                target = vcpu.vel1_shadow
                if reg.reg_class is RegClass.TIMER_GUEST:
                    # A trapped *_EL02 timer access: emulating the VM timer
                    # involves offset arithmetic and hrtimer reprogramming,
                    # which is why the VHE guest hypervisor's extra timer
                    # traps cost more than average (Section 7.1).
                    cpu.work(3800, category="l0_timer")
            if syndrome.is_write:
                target.save(reg.name, syndrome.value or 0)
                if vcpu.neve is not None and reg.vncr_offset is not None:
                    # Keep the cached copy fresh so guest reads hit memory.
                    vcpu.neve.write_cached_copy(reg.name, syndrome.value or 0)
                return None
            return target.load(reg.name)

    def _emulate_vel2_gich(self, cpu, vcpu, syndrome):
        """A GICv2 guest hypervisor touched its (virtual) memory-mapped
        GICH frame: the stage-2 abort lands here and is emulated against
        the same shadow interface state as the GICv3 system-register
        traps — "the programming interfaces for both GIC versions are
        almost identical" (Section 7)."""
        from repro.arch.gic import gich_offset_to_reg
        cpu.work(170, category="l0_vgic")  # MMIO decode + offset lookup
        offset = (syndrome.fault_ipa or 0) - GICV2_CPU_BASE
        try:
            name = gich_offset_to_reg(offset)
        except KeyError:
            return 0  # reads of unimplemented frame words are RAZ/WI
        if syndrome.is_write:
            vcpu.shadow_ich.save(name, syndrome.value or 0)
            if vcpu.neve is not None:
                vcpu.neve.write_cached_copy(name, syndrome.value or 0)
            return None
        return vcpu.shadow_ich.load(name)

    def _emulate_vel2_tlbi(self, cpu, vcpu, syndrome):
        """The guest hypervisor invalidated TLBs for its VM: mirror the
        invalidation onto the shadow stage-2 table (Section 4's coherence
        requirement — this is why TLBI must trap even under NEVE)."""
        detail = syndrome.detail or {}
        cpu.ledger.charge(cpu.costs.tlb_maintenance, "l0_tlbi")
        cpu.work(350, category="l0_mmu")
        shadow = vcpu.vm.shadow_s2
        if shadow is None:
            return
        address = detail.get("address")
        if detail.get("scope") == "ipas2e1" and address is not None:
            shadow.invalidate_l2_range(address, PAGE_SIZE)
        else:
            shadow.invalidate_all()

    def _emulate_vel2_eret(self, cpu, vcpu):
        with cpu_span(cpu, "l0.emulate_vel2_eret"):
            self.stats["vel2_eret"] += 1
            cpu.work(1100, category="l0_nested")
            hcr = self._read_vel2_reg(cpu, vcpu, "HCR_EL2")
            self._read_vel2_reg(cpu, vcpu, "ELR_EL2")
            self._read_vel2_reg(cpu, vcpu, "SPSR_EL2")
            if hcr & ws.HCR_VM:
                self._enter_nested_vm(cpu, vcpu)
            else:
                self._transition_vel2_to_vel1(cpu, vcpu)

    # ------------------------------------------------------------------
    # Virtual exception-level transitions
    # ------------------------------------------------------------------

    def _enter_nested_vm(self, cpu, vcpu):
        """eret with virtual HCR_EL2.VM set: run the L2 VM."""
        with cpu_span(cpu, "l0.enter_nested_vm"):
            cpu.work(7000, category="l0_nested")  # nested entry checks
            cpu.ledger.charge(cpu.costs.tlb_maintenance, "l0_tlbi")
            self._save_vel2_exec_image(cpu, vcpu)
            # Build the L2 hardware context from the virtual EL1 state —
            # "copies register values from the deferred access page to
            # physical EL1 registers to run the nested VM" (Section 6.1).
            for name in ws.full_el1_context() + EL1_TIMER_SAVE_LIST:
                vcpu.el1_ctx.save(name, self._vel1_read(cpu, vcpu, name))
            # GIC: save L1's own interface image, load what the guest
            # hypervisor programmed for L2.
            self._save_l1_vgic_image(cpu, vcpu)
            self._load_shadow_ich(cpu, vcpu)
            if vcpu.neve is not None:
                vcpu.neve.disable()
            vcpu.mode = VcpuMode.NESTED
            self._note_depth(cpu, vcpu)

    def _transition_vel2_to_vel1(self, cpu, vcpu):
        """eret without VM set: the split hypervisor returns to its
        kernel part at virtual EL1."""
        with cpu_span(cpu, "l0.transition_vel2_to_vel1"):
            cpu.work(2800, category="l0_nested")
            self._save_vel2_exec_image(cpu, vcpu)
            for name in ws.full_el1_context():
                vcpu.el1_ctx.save(name, self._vel1_read(cpu, vcpu, name))
            vcpu.mode = VcpuMode.VEL1
            self._note_depth(cpu, vcpu)

    def _transition_vel1_to_vel2(self, cpu, vcpu, syndrome):
        """hvc from the kernel part: exception into virtual EL2."""
        with cpu_span(cpu, "l0.transition_vel1_to_vel2"):
            cpu.work(2800, category="l0_nested")
            self._save_loaded_el1_to_virtual(cpu, vcpu)
            self._load_vel2_exec_image(cpu, vcpu)
            self._set_vel2_exception_context(cpu, vcpu, ExitReason.HVC,
                                             {"imm": syndrome.imm})
            if vcpu.neve is not None:
                self._sync_neve_status_regs(cpu, vcpu)
                vcpu.neve.enable()
            vcpu.mode = VcpuMode.VEL2
            self._note_depth(cpu, vcpu)

    # ------------------------------------------------------------------
    # Virtual state plumbing
    # ------------------------------------------------------------------

    def _vel1_read(self, cpu, vcpu, name):
        """Read one register of the virtual EL1 state (page under NEVE)."""
        if vcpu.neve is not None:
            return vcpu.neve.read_deferred(name)
        return vcpu.vel1_shadow.load(name)

    def _vel1_write(self, cpu, vcpu, name, value):
        if vcpu.neve is not None:
            vcpu.neve.write_deferred(name, value)
        else:
            vcpu.vel1_shadow.save(name, value)

    def _save_loaded_el1_to_virtual(self, cpu, vcpu):
        """The EL1 context saved in el1_ctx becomes virtual EL1 state."""
        for name in ws.full_el1_context():
            self._vel1_write(cpu, vcpu, name, vcpu.el1_ctx.load(name))

    def _read_vel2_reg(self, cpu, vcpu, name):
        """Read virtual EL2 state through whatever mechanism holds it."""
        reg = lookup_register(name)
        if vcpu.neve is not None:
            if reg.neve in (NeveBehavior.DEFER, NeveBehavior.CACHED_COPY):
                if reg.reg_class is RegClass.GIC_HYP:
                    return vcpu.shadow_ich.load(name)
                return vcpu.neve.read_deferred(name)
            target = redirect_target(name, vcpu.virtual_e2h)
            if target is not None:
                return vcpu.el1_ctx.load(target)
            return vcpu.vel2_ctx.load(name)
        if vcpu.virtual_e2h:
            # A VHE guest hypervisor's E2H-redirected state lives in the
            # hardware EL1 registers (now saved in el1_ctx).
            from repro.arch.cpu import _e2h_reverse
            counterpart = _e2h_reverse(name)
            if counterpart is not None:
                return vcpu.el1_ctx.load(counterpart)
        return vcpu.vel2_ctx.load(name)

    def _write_vel2_reg(self, cpu, vcpu, name, value):
        reg = lookup_register(name)
        if vcpu.neve is not None:
            if reg.neve in (NeveBehavior.DEFER, NeveBehavior.CACHED_COPY):
                if reg.reg_class is RegClass.GIC_HYP:
                    vcpu.shadow_ich.save(name, value)
                    return
                vcpu.neve.write_deferred(name, value)
                return
            target = redirect_target(name, vcpu.virtual_e2h)
            if target is not None:
                vcpu.el1_ctx.save(target, value)
                return
            vcpu.vel2_ctx.save(name, value)
            return
        if vcpu.virtual_e2h:
            from repro.arch.cpu import _e2h_reverse
            counterpart = _e2h_reverse(name)
            if counterpart is not None:
                vcpu.el1_ctx.save(counterpart, value)
                return
        vcpu.vel2_ctx.save(name, value)

    def _save_vel2_exec_image(self, cpu, vcpu):
        """Hardware EL1 held virtual-EL2 execution state; bank it."""
        for el2_name, el1_name in VEL2_EXEC_PAIRS:
            vcpu.vel2_ctx.save(el2_name, vcpu.el1_ctx.load(el1_name))

    def _load_vel2_exec_image(self, cpu, vcpu):
        """Load virtual-EL2 execution state into the (to-be-restored)
        hardware EL1 image — "the host hypervisor configures the EL1
        hardware registers with the guest hypervisor's state"."""
        for el2_name, el1_name in VEL2_EXEC_PAIRS:
            vcpu.el1_ctx.save(el1_name, vcpu.vel2_ctx.load(el2_name))

    def _set_vel2_exception_context(self, cpu, vcpu, reason, payload):
        esr_by_reason = {
            ExitReason.HVC: 0x16 << 26,
            ExitReason.MEM_ABORT: 0x24 << 26,
            ExitReason.GIC_TRAP: 0x18 << 26,
            ExitReason.IRQ: 0,
            ExitReason.WFI: 0x01 << 26,
        }
        esr = esr_by_reason.get(reason, 0)
        self._write_vel2_reg(cpu, vcpu, "ESR_EL2", esr)
        self._write_vel2_reg(cpu, vcpu, "ELR_EL2", 0x2000)
        self._write_vel2_reg(cpu, vcpu, "SPSR_EL2", 0x5)
        if reason is ExitReason.MEM_ABORT and payload:
            self._write_vel2_reg(cpu, vcpu, "FAR_EL2", payload["addr"])
            self._write_vel2_reg(cpu, vcpu, "HPFAR_EL2",
                                 payload["addr"] >> 8)

    # -- vGIC image juggling ----------------------------------------------

    def _sync_l2_vgic_to_shadow(self, cpu, vcpu):
        """Hardware LRs held L2's interface (already saved to el1_ctx by
        the world switch); publish them to the guest hypervisor's view."""
        for index in range(vcpu.used_lrs):
            name = lr_name(index)
            value = vcpu.el1_ctx.load(name)
            vcpu.shadow_ich.save(name, value)
            if vcpu.neve is not None:
                vcpu.neve.write_cached_copy(name, value)

    def _load_shadow_ich(self, cpu, vcpu):
        count = 0
        for index in range(self.machine.gic.num_lrs):
            name = lr_name(index)
            value = vcpu.shadow_ich.peek(name)
            if value:
                vcpu.el1_ctx.save(name, value)
                count += 1
            else:
                vcpu.el1_ctx.poke(name, 0)
        vcpu.used_lrs = count

    def _save_l1_vgic_image(self, cpu, vcpu):
        for index in range(vcpu.used_lrs):
            name = lr_name(index)
            vcpu.l1_vgic.save(name, vcpu.el1_ctx.load(name))

    def _load_l1_vgic_image(self, cpu, vcpu):
        count = 0
        for index in range(self.machine.gic.num_lrs):
            name = lr_name(index)
            value = vcpu.l1_vgic.peek(name)
            vcpu.el1_ctx.poke(name, value)
            if value:
                count += 1
        vcpu.used_lrs = count

    def _sync_neve_status_regs(self, cpu, vcpu):
        """Refresh computed GIC status and trap-on-write cached copies in
        the deferred page before running the guest hypervisor."""
        for name in ("ICH_ELRSR_EL2", "ICH_EISR_EL2", "ICH_MISR_EL2",
                     "ICH_VMCR_EL2", "ICH_HCR_EL2"):
            vcpu.neve.write_cached_copy(name, vcpu.shadow_ich.peek(name))

    # ------------------------------------------------------------------
    # Physical interrupts
    # ------------------------------------------------------------------

    def _handle_fp_trap(self, cpu, vcpu):
        """Lazy FP/SIMD switch (CPTR_EL2 trap).

        Handled entirely in the hyp part — no world switch to the host
        kernel — which is what makes lazy FP switching worthwhile: load
        the guest's 32 SIMD registers, disable the trap, resume.
        """
        self.stats["fp_switches"] += 1
        cpu.gpr_block(32, category="fp_switch")  # save host FP half
        cpu.gpr_block(32, category="fp_switch")  # load guest FP state
        cpu.work(60, category="fp_switch")
        cpu.fp_trap = False
        return None

    def _handle_smc(self, cpu, vcpu, syndrome):
        """PSCI call (SMC conduit).  For a nested VM the call belongs
        to the guest hypervisor's PSCI emulation and is forwarded."""
        self._switch_to_host(cpu, vcpu)
        detail = syndrome.detail or {}
        if vcpu.mode is VcpuMode.NESTED:
            return self._forward_to_vel2(cpu, vcpu, ExitReason.SMC,
                                         detail)
        result = self.psci.handle(cpu, vcpu, detail.get("function", 0),
                                  detail.get("args", ()))
        if vcpu.online:
            self._switch_to_guest(cpu, vcpu)
        else:
            self.running.pop(cpu.cpu_id, None)
        return result

    def _handle_serror(self, cpu, vcpu):
        """An asynchronous external abort (SError) taken from the guest.

        Linux/KVM treats guest SErrors as potentially survivable: the
        host inspects the syndrome, scrubs affected state and resumes.
        The fault-recovery layer hooks in via ``serror_policy`` to audit
        and resynchronize NEVE's deferred access page before re-entry.
        """
        self._switch_to_host(cpu, vcpu)
        cpu.work(600, category="l0_serror")  # RAS triage, syndrome decode
        if self.serror_policy is not None:
            self.serror_policy(cpu, vcpu)
        self._switch_to_guest(cpu, vcpu)
        return None

    def _handle_irq(self, cpu, vcpu):
        self._switch_to_host(cpu, vcpu)
        # Acknowledge at the physical GIC (MMIO on the GICv2 testbed).
        cpu.ledger.charge(2 * cpu.costs.vgic_mmio_access, "l0_irq")
        cpu.work(320, category="l0_irq")
        self.machine.gic.take_physical(cpu.cpu_id)
        if vcpu.mode is VcpuMode.NESTED and vcpu.pending_virqs:
            # The interrupt targets the guest hypervisor: forward an IRQ
            # exit to virtual EL2 (virtual HCR_EL2.IMO routes IRQs there).
            return self._forward_to_vel2(cpu, vcpu, ExitReason.IRQ, None)
        self._switch_to_guest(cpu, vcpu)
        return None
