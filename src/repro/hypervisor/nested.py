"""The guest hypervisor: KVM/ARM running deprivileged in virtual EL2.

This is the L1 hypervisor of Section 4.  Its code is the *same*
world-switch flow library the L0 host hypervisor uses
(:mod:`repro.hypervisor.world_switch`), but executed at virtual EL2, where
every system-register access follows the ARMv8.3 or NEVE rules.  A non-VHE
guest hypervisor additionally hops between its virtual-EL2 "hyp" part and
its virtual-EL1 kernel part on every exit, exactly like split-mode
KVM/ARM (Figure 1a) — each hop is an eret or hvc that traps to L0.

Entry points are called by the host hypervisor when it forwards an
exception to virtual EL2; the flow then runs as straight-line code whose
individual operations trap into the host as the architecture dictates.
"""

from repro.hypervisor import world_switch as ws
from repro.hypervisor.vcpu import VcpuStruct
from repro.metrics.counters import ExitReason
from repro.trace.spans import cpu_span

#: hvc immediate the kernel part uses to re-enter the hyp part (KVM's
#: __kvm_vcpu_run call through the hyp stub).
HVC_VCPU_RUN = 0x4B56  # 'KV'

#: SGI interrupt id the guest hypervisor uses to kick vcpus.
KICK_SGI = 1
#: SGI id guests use for IPIs between their own vcpus.
GUEST_IPI_SGI = 2


class GuestHypervisor:
    """One L1 guest hypervisor instance (all its virtual CPUs).

    ``vhe`` selects the compile mode of the flows; ``design`` selects the
    hypervisor architecture for the Section 6.5 ablation:

    * ``"kvm"`` — hosted KVM/ARM: full EL1 context switch per exit
      (and the vEL1 kernel hop when non-VHE);
    * ``"standalone"`` — a Xen-like standalone hypervisor: runs entirely
      in (virtual) EL2, touches VM EL1 state only when switching between
      VMs, but still programs trap controls and the vGIC on every exit.
    """

    def __init__(self, machine, vhe=False, design="kvm", gic_version=3,
                 dom0_io=False):
        if design not in ("kvm", "standalone"):
            raise ValueError("unknown design %r" % design)
        if gic_version not in (2, 3):
            raise ValueError("gic_version must be 2 or 3")
        self.machine = machine
        self.vhe = vhe
        self.design = design
        self.gic_version = gic_version
        # Xen-style I/O: device emulation lives in a separate Dom0 VM, so
        # every I/O request switches VM contexts twice (Section 6.5:
        # "even Xen must save and restore all the VM system registers
        # when it switches between VMs, which is a common operation").
        self.dom0_io = dom0_io
        self.dom0_ctx = {}
        self.vm_switches = 0

        # Per-vcpu-id guest state (the L1 hypervisor's own data structures,
        # indexed by the vcpu id shared across levels in the pinned setup).
        self.l2_ctx = {}  # saved L2 EL1 context (L1's copy)
        self.host_ctx = {}  # the L1 kernel's own EL1 context (non-VHE)
        self.l2_pending_virqs = {}  # vcpu_id -> [intid]
        self.l2_online = {}  # vcpu_id -> PSCI power state of the L2 vcpus
        self.exits_handled = 0
        self.userspace_exits = 0

    # ------------------------------------------------------------------
    # Structures
    # ------------------------------------------------------------------

    def _ctx(self, table, cpu, vcpu_id):
        if vcpu_id not in table:
            table[vcpu_id] = VcpuStruct(cpu)
        return table[vcpu_id]

    def pending_for(self, vcpu_id):
        return self.l2_pending_virqs.setdefault(vcpu_id, [])

    # ------------------------------------------------------------------
    # Launching the nested VM (first entry)
    # ------------------------------------------------------------------

    def launch_vm(self, cpu, vcpu):
        """First entry into the nested VM: activate the virtualization
        hardware (virtual, from this hypervisor's point of view) and eret.
        The eret traps to L0, which sees virtual HCR_EL2.VM set and world
        switches into the L2 guest."""
        with cpu_span(cpu, "l1.launch_vm", kind="l1",
                      vcpu=vcpu.vcpu_id, design=self.design):
            ops = ws.make_ops(cpu, self.vhe)
            l2_ctx = self._ctx(self.l2_ctx, cpu, vcpu.vcpu_id)
            ws.hyp_entry(cpu)
            ws.activate_traps(ops, self.vhe, vttbr=0x8000_0001)
            ws.timer_restore(ops, l2_ctx, self.vhe)
            self._vgic_restore(cpu, ops, l2_ctx, used_lrs=0)
            if self.design == "kvm":
                ws.restore_el1_state(ops, l2_ctx)
            ws.hyp_exit(cpu)
            ws.prepare_exception_return(ops, elr=0x2000, spsr=0x5)

    # ------------------------------------------------------------------
    # Main entry: an exception forwarded to virtual EL2
    # ------------------------------------------------------------------

    def handle_vm_exit(self, cpu, vcpu, reason, payload=None):
        """Full exit round trip: from the L2 exit forwarded by L0 until
        the eret that re-enters the nested VM.

        Returns the value the nested VM should observe (e.g. an MMIO read
        result), or None.
        """
        self.exits_handled += 1
        metrics = getattr(cpu, "metrics", None)
        if metrics is not None:
            metrics.count_vel2_exit(reason)
        with cpu_span(cpu, "l1.handle_vm_exit", kind="l1", reason=reason,
                      vcpu=vcpu.vcpu_id, design=self.design):
            ops = ws.make_ops(cpu, self.vhe)
            l2_ctx = self._ctx(self.l2_ctx, cpu, vcpu.vcpu_id)
            host_ctx = self._ctx(self.host_ctx, cpu, vcpu.vcpu_id)
            is_abort = reason is ExitReason.MEM_ABORT

            # --- hyp entry: vectors, GPRs, syndrome -----------------------
            ws.hyp_entry(cpu)
            ws.read_exit_context(ops, is_abort=is_abort)

            # --- world switch: VM -> hypervisor/host ----------------------
            if self.design == "kvm":
                ws.save_el1_state(ops, l2_ctx)
            ws.timer_save(ops, l2_ctx, self.vhe)
            self._vgic_save(cpu, ops, l2_ctx, used_lrs=vcpu.l1_used_lrs)
            vcpu.l1_used_lrs = 0
            if self.design == "kvm" and not self.vhe:
                ws.restore_el1_state(ops, host_ctx)
            ws.deactivate_traps(ops, self.vhe)

            # --- handle the exit in the kernel part -----------------------
            if not self.vhe and self.design == "kvm":
                # Split mode: eret to the virtual-EL1 kernel (traps to L0,
                # which switches us to vEL1), handle there, then hvc back
                # in.
                ws.prepare_exception_return(ops, elr=0x1000, spsr=0x5)
                result = self._kernel_handle_exit(cpu, vcpu, reason,
                                                  payload)
                cpu.hvc(HVC_VCPU_RUN)
                ws.hyp_entry(cpu)
            else:
                result = self._kernel_handle_exit(cpu, vcpu, reason,
                                                  payload)

            # --- world switch: hypervisor/host -> VM ----------------------
            if self.design == "kvm" and not self.vhe:
                ws.save_el1_state(ops, host_ctx)
            ws.activate_traps(ops, self.vhe, vttbr=0x8000_0001)
            ws.timer_restore(ops, l2_ctx, self.vhe)
            self._vgic_flush(cpu, vcpu, l2_ctx)
            self._vgic_restore(cpu, ops, l2_ctx, used_lrs=vcpu.l1_used_lrs)
            if self.design == "kvm":
                ws.restore_el1_state(ops, l2_ctx)
            ws.hyp_exit(cpu)
            ws.prepare_exception_return(ops, elr=0x2000, spsr=0x5)
            # The eret trapped to L0, which has now world-switched into the
            # nested VM; this frame simply unwinds back to it.
            return result

    # ------------------------------------------------------------------
    # vGIC access, by interface flavour
    # ------------------------------------------------------------------

    def _vgic_save(self, cpu, ops, ctx, used_lrs):
        if self.gic_version == 2:
            from repro.hypervisor.kvm import GICV2_CPU_BASE
            ws.vgic_save_v2(cpu, ctx, used_lrs, GICV2_CPU_BASE)
        else:
            ws.vgic_save(ops, ctx, used_lrs)

    def _vgic_restore(self, cpu, ops, ctx, used_lrs):
        if self.gic_version == 2:
            from repro.hypervisor.kvm import GICV2_CPU_BASE
            ws.vgic_restore_v2(cpu, ctx, used_lrs, GICV2_CPU_BASE)
        else:
            ws.vgic_restore(ops, ctx, used_lrs)

    # ------------------------------------------------------------------
    # Kernel-part exit handling (runs at vEL1 for non-VHE, inline for VHE)
    # ------------------------------------------------------------------

    def _kernel_handle_exit(self, cpu, vcpu, reason, payload):
        with cpu_span(cpu, "l1.kernel_handle_exit", kind="l1",
                      reason=reason):
            cpu.work(260, category="l1_kernel")  # kvm handle_exit dispatch
            if reason is ExitReason.HVC:
                # kvm-unit-test hypercall: nothing to do, return to the VM.
                cpu.work(90, category="l1_kernel")
                return 0
            if reason is ExitReason.MEM_ABORT:
                return self._emulate_mmio(cpu, payload)
            if reason is ExitReason.GIC_TRAP:
                return self._emulate_sgi(cpu, vcpu, payload)
            if reason is ExitReason.IRQ:
                return self._kernel_handle_irq(cpu, vcpu)
            if reason is ExitReason.WFI:
                cpu.work(150, category="l1_kernel")
                return None
            if reason is ExitReason.SMC:
                return self._emulate_psci(cpu, vcpu, payload)
            cpu.work(120, category="l1_kernel")
            return None

    def _emulate_psci(self, cpu, vcpu, payload):
        """The nested VM made a PSCI call: the guest hypervisor's own
        PSCI emulation handles it (bringing L2 vcpus on/offline), and its
        kick of another L1 vcpu traps to L0 like any other SGI."""
        from repro.hypervisor import psci
        function = (payload or {}).get("function", 0)
        args = (payload or {}).get("args", ())
        cpu.work(280, category="l1_psci")
        if function == psci.PSCI_VERSION:
            return psci.REPORTED_VERSION
        if function == psci.PSCI_CPU_ON:
            target = args[0] if args else 0
            self.l2_online[target] = True
            cpu.msr("ICC_SGI1R_EL1", (KICK_SGI << 24) | target)
            return psci.PSCI_SUCCESS
        if function == psci.PSCI_CPU_OFF:
            self.l2_online[vcpu.vcpu_id] = False
            return psci.PSCI_SUCCESS
        if function == psci.PSCI_AFFINITY_INFO:
            target = args[0] if args else 0
            return (psci.AFFINITY_ON if self.l2_online.get(target, True)
                    else psci.AFFINITY_OFF)
        return psci.PSCI_NOT_SUPPORTED

    def _emulate_mmio(self, cpu, payload):
        """Forwarded stage-2 abort: the device lives in this hypervisor's
        userspace (QEMU) — or, for a Xen-like design, in Dom0, reached by
        a full VM-to-VM switch each way."""
        self.userspace_exits += 1
        addr = payload.get("addr", 0) if payload else 0
        if self.dom0_io:
            vcpu_id = 0  # the vcpu whose context is loaded
            self.switch_vm(cpu, self._ctx(self.l2_ctx, cpu, vcpu_id),
                           self._ctx(self.dom0_ctx, cpu, vcpu_id))
            cpu.work(420, category="l1_dom0")  # Dom0 backend handles I/O
            value = self.machine.device_read(addr)
            self.switch_vm(cpu, self._ctx(self.dom0_ctx, cpu, vcpu_id),
                           self._ctx(self.l2_ctx, cpu, vcpu_id))
            return value
        cpu.ledger.charge(cpu.costs.userspace_roundtrip, "l1_userspace")
        cpu.work(420, category="l1_userspace")  # device model dispatch
        return self.machine.device_read(addr)

    def switch_vm(self, cpu, from_ctx, to_ctx):
        """Switch between two of this hypervisor's VMs.

        This is the operation for which "even Xen must save and restore
        all the VM system registers" (Section 6.5) — so a standalone
        hypervisor that skips per-exit EL1 switching still generates the
        full Table 3 register traffic here, and still benefits from NEVE.
        """
        self.vm_switches += 1
        with cpu_span(cpu, "l1.switch_vm", kind="l1"):
            ops = ws.make_ops(cpu, self.vhe)
            ws.save_el1_state(ops, from_ctx)
            ws.timer_save(ops, from_ctx, self.vhe)
            self._vgic_save(cpu, ops, from_ctx, used_lrs=0)
            ws.activate_traps(ops, self.vhe, vttbr=0x8000_0002)
            ws.timer_restore(ops, to_ctx, self.vhe)
            self._vgic_restore(cpu, ops, to_ctx, used_lrs=0)
            ws.restore_el1_state(ops, to_ctx)

    def _emulate_sgi(self, cpu, vcpu, payload):
        """The nested VM sent an IPI: emulate the vGIC SGI.

        Mark the interrupt pending for the target L2 vcpu and kick the L1
        vcpu that runs it — that kick is itself an ICC_SGI1R write, which
        traps to L0 (the kernel part runs at vEL1).  The target may live
        on another physical CPU (the pinned SMP model): the pending table
        is per-vcpu-id, so the interrupt is delivered by the target's own
        next vgic flush, whenever its CPU next enters the nested VM —
        the cross-CPU path the SMP fault campaigns drive.
        """
        cpu.work(240, category="l1_vgic")
        target = payload.get("target", 0) if payload else 0
        self.pending_for(target).append(GUEST_IPI_SGI)
        cpu.msr("ICC_SGI1R_EL1", (KICK_SGI << 24) | target)
        return None

    def _kernel_handle_irq(self, cpu, vcpu):
        """An interrupt was forwarded while our VM ran: acknowledge it via
        our own virtual CPU interface (no trap), then let the vgic flush
        inject anything pending into the nested VM on re-entry."""
        intid = cpu.mrs("ICC_IAR1_EL1")
        cpu.work(180, category="l1_irq")
        cpu.msr("ICC_EOIR1_EL1", intid)
        return intid

    # ------------------------------------------------------------------
    # vGIC flush: pending L2 interrupts -> list registers
    # ------------------------------------------------------------------

    def _vgic_flush(self, cpu, vcpu, l2_ctx):
        """Stage pending virtual interrupts for the L2 vcpu into the list
        register image that ``vgic_restore`` will program.  The subsequent
        LR writes are hypervisor-control-interface accesses: they trap on
        ARMv8.3 and still trap (write to a cached copy) with NEVE —
        Table 5."""
        from repro.arch.gic import ListRegister, LrState

        pending = self.pending_for(vcpu.vcpu_id)
        index = vcpu.l1_used_lrs
        while pending and index < self.machine.gic.num_lrs:
            intid = pending.pop(0)
            lr = ListRegister(vintid=intid, state=LrState.PENDING,
                              priority=0xA0)
            cpu.work(60, category="l1_vgic")  # vgic_populate_lr
            l2_ctx.save("ICH_LR%d_EL2" % index, lr.encode())
            index += 1
        vcpu.l1_used_lrs = index
