"""KVM/ARM world-switch flows.

These functions model the register-access sequences mainline KVM/ARM
executes when switching between a VM and the hypervisor.  They are the
load-bearing part of the reproduction: run natively at EL2 they only cost
cycles, but run at virtual EL2 every access obeys the ARMv8.3/NEVE rules
and the paper's exit multiplication (Table 7) *emerges* from them.

The flows are written once and parameterized by a
:class:`repro.arch.cpu.CpuOps` adapter, mirroring how the one KVM/ARM
source tree builds for non-VHE (split EL1/EL2) and VHE (all-EL2)
configurations (Section 6.5 discusses exactly these design variants).
"""

from repro.arch.cpu import CpuOps
from repro.trace.spans import cpu_span

# HCR_EL2 bits (the subset the model uses; values follow the ARM ARM).
HCR_VM = 1 << 0
HCR_FMO = 1 << 3
HCR_IMO = 1 << 4
HCR_VI = 1 << 7
HCR_TWI = 1 << 13
HCR_TWE = 1 << 14
HCR_TGE = 1 << 27
HCR_E2H = 1 << 34
HCR_NV = 1 << 42

#: KVM's guest HCR value (trap WFI/WFE, route IRQs to EL2, stage 2 on).
HCR_GUEST_FLAGS = HCR_VM | HCR_IMO | HCR_FMO | HCR_TWI | HCR_TWE
#: Host value restored on exit (non-VHE hosts run with TGE clear but no VM).
HCR_HOST_FLAGS = 0

#: The EL1 context KVM saves and restores per world switch
#: (__sysreg_save_el1_state plus exception state; 20 registers).
EL1_STATE = (
    "SCTLR_EL1",
    "TTBR0_EL1",
    "TTBR1_EL1",
    "TCR_EL1",
    "ESR_EL1",
    "AFSR0_EL1",
    "AFSR1_EL1",
    "FAR_EL1",
    "MAIR_EL1",
    "VBAR_EL1",
    "CONTEXTIDR_EL1",
    "AMAIR_EL1",
    "CNTKCTL_EL1",
    "PAR_EL1",
    "CSSELR_EL1",
    "CPACR_EL1",
    "TPIDR_EL1",
    "SP_EL1",
    "ELR_EL1",
    "SPSR_EL1",
)

#: EL0 (user) context, saved on every switch by a non-VHE hypervisor.
EL0_STATE = ("TPIDR_EL0", "TPIDRRO_EL0", "SP_EL0")

#: Debug state: MDSCR_EL1 travels with the guest context.
DEBUG_STATE = ("MDSCR_EL1",)

#: Number of general-purpose registers stacked on hyp entry/exit.
NR_GPRS = 31

#: GIC maintenance/control state beyond the list registers.
ICH_AP_REGS = ("ICH_AP0R0_EL2", "ICH_AP1R0_EL2")


def full_el1_context():
    return EL1_STATE + EL0_STATE + DEBUG_STATE


def fault_point(cpu, name):
    """Notify an attached fault injector that a named world-switch
    boundary was crossed (no-op when no injector is attached).

    The two interesting boundaries are *after* the EL1 context save and
    *before* the restore: a preemption or migration landing between them
    catches the vcpu state split across hardware and memory — exactly
    where VNCR/deferred-page consistency must be re-established."""
    hook = cpu.fault_hook
    if hook is not None:
        hook.at_point(cpu, name)


def _filter_lr(cpu, name, value):
    """Give an attached fault injector the chance to drop one list
    register on the save path (a lost in-flight virtual interrupt)."""
    hook = cpu.fault_hook
    if hook is not None and value:
        return hook.filter_lr_save(cpu, name, value)
    return value


# ---------------------------------------------------------------------------
# EL1/EL0 context
# ---------------------------------------------------------------------------

def save_el1_state(ops, ctx):
    """Read the loaded VM EL1/EL0 context into a vcpu struct.

    For a VHE hypervisor these reads use the ``*_EL12``/``*_EL02``
    aliases; for a non-VHE hypervisor they are plain EL1 accesses.  At
    virtual EL2 both variants trap on ARMv8.3 and are deferred to memory
    by NEVE (Table 3).
    """
    with cpu_span(ops.cpu, "ws.save_el1_state"):
        for name in EL1_STATE + DEBUG_STATE:
            ctx.save(name, ops.read_vm(name))
        for name in EL0_STATE:
            # EL0 user state has no *_EL02 aliases (only the timers are
            # E2H-redirected); both hypervisor flavours use the plain EL0
            # encodings, which never trap from virtual EL2.
            ctx.save(name, ops.cpu.mrs(name))
    fault_point(ops.cpu, "ws.after-save")


def restore_el1_state(ops, ctx):
    fault_point(ops.cpu, "ws.before-restore")
    with cpu_span(ops.cpu, "ws.restore_el1_state"):
        for name in EL1_STATE + DEBUG_STATE:
            ops.write_vm(name, ctx.load(name))
        for name in EL0_STATE:
            ops.cpu.msr(name, ctx.load(name))


# ---------------------------------------------------------------------------
# Exception context and returns
# ---------------------------------------------------------------------------

def read_exit_context(ops, is_abort=False):
    """Read the exception syndrome on hypervisor entry.

    ESR/ELR/SPSR always; FAR and HPFAR additionally for aborts
    (the Device I/O benchmark's two extra traps relative to Hypercall).
    The per-cpu pointer (TPIDR_EL2) and the HCR (pending-vSError check)
    are also read on every entry; under NEVE both are deferred.
    """
    with cpu_span(ops.cpu, "ws.read_exit_context", is_abort=is_abort):
        exit_ctx = {
            "esr": ops.read_hyp("ESR_EL2"),
            "elr": ops.read_hyp("ELR_EL2"),
            "spsr": ops.read_hyp("SPSR_EL2"),
            "percpu": ops.cpu.mrs("TPIDR_EL2"),
            "hcr": ops.cpu.mrs("HCR_EL2"),
        }
        if is_abort:
            exit_ctx["far"] = ops.read_hyp("FAR_EL2")
            exit_ctx["hpfar"] = ops.read_hyp("HPFAR_EL2")
        return exit_ctx


def prepare_exception_return(ops, elr, spsr):
    """Program the return state and issue ``eret``."""
    ops.write_hyp("ELR_EL2", elr)
    ops.write_hyp("SPSR_EL2", spsr)
    ops.cpu.barrier()
    ops.cpu.eret()


# ---------------------------------------------------------------------------
# Trap configuration
# ---------------------------------------------------------------------------

def activate_traps(ops, vhe, vttbr, guest_hcr=HCR_GUEST_FLAGS):
    """Configure the hardware to run a VM (KVM's __activate_traps +
    __activate_vm): trap controls, stage-2 base, virtual CPU identity and
    the per-vcpu pointer."""
    with cpu_span(ops.cpu, "ws.activate_traps"):
        ops.cpu.mrs("HCR_EL2")  # read-modify-write of the VSE/VI bits
        ops.write_hyp("HCR_EL2", guest_hcr)
        ops.write_hyp("CPTR_EL2", 1)  # trap FP/SIMD until first use
        ops.write_hyp("MDCR_EL2", 1)  # trap debug
        ops.write_hyp("HSTR_EL2", 0)
        ops.write_hyp("VTTBR_EL2", vttbr)
        ops.write_hyp("VTCR_EL2", 1)
        ops.cpu.msr("VMPIDR_EL2", 0x8000_0000)  # virtual MPIDR for the vcpu
        ops.cpu.msr("VPIDR_EL2", 0x410F_D070)
        ops.cpu.msr("TPIDR_EL2", 0x1000)  # per-vcpu context pointer
        ops.cpu.barrier()


def deactivate_traps(ops, vhe, host_hcr=HCR_HOST_FLAGS):
    """Undo trap configuration on the way back to the host."""
    with cpu_span(ops.cpu, "ws.deactivate_traps"):
        ops.cpu.mrs("HCR_EL2")
        ops.cpu.mrs("VTTBR_EL2")  # which VM was loaded (vmid bookkeeping)
        hcr = host_hcr | (HCR_E2H if vhe else 0)
        ops.write_hyp("HCR_EL2", hcr)
        ops.write_hyp("CPTR_EL2", 0)
        ops.write_hyp("MDCR_EL2", 0)
        ops.write_hyp("VTTBR_EL2", 0)
        ops.cpu.barrier()


# ---------------------------------------------------------------------------
# vGIC (GICv3 system-register interface)
# ---------------------------------------------------------------------------

def _note_lrs(cpu, used_lrs):
    """Telemetry: list registers in flight at this save/restore."""
    metrics = getattr(cpu, "metrics", None)
    if metrics is not None:
        metrics.set_used_lrs(cpu.cpu_id, used_lrs)


def vgic_save(ops, ctx, used_lrs):
    """Save the GIC virtual interface state (vgic-v3-sr.c save path)."""
    _note_lrs(ops.cpu, used_lrs)
    with cpu_span(ops.cpu, "ws.vgic_save", used_lrs=used_lrs):
        ops.cpu.mrs("ICH_VTR_EL2")  # implementation query (cached: free)
        ops.cpu.mrs("ICH_HCR_EL2")  # current enable/maintenance bits
        ctx.save("ICH_VMCR_EL2", ops.read_hyp("ICH_VMCR_EL2"))
        if used_lrs:
            ctx.save("ICH_ELRSR_EL2", ops.read_hyp("ICH_ELRSR_EL2"))
            for index in range(used_lrs):
                name = "ICH_LR%d_EL2" % index
                ctx.save(name,
                         _filter_lr(ops.cpu, name, ops.read_hyp(name)))
                ops.write_hyp(name, 0)
            for name in ICH_AP_REGS:
                ctx.save(name, ops.read_hyp(name))
        ops.write_hyp("ICH_HCR_EL2", 0)


def vgic_restore(ops, ctx, used_lrs):
    """Restore the GIC virtual interface state before entering a VM."""
    _note_lrs(ops.cpu, used_lrs)
    with cpu_span(ops.cpu, "ws.vgic_restore", used_lrs=used_lrs):
        ops.cpu.mrs("ICH_HCR_EL2")
        ops.write_hyp("ICH_VMCR_EL2", ctx.load("ICH_VMCR_EL2"))
        ops.write_hyp("ICH_HCR_EL2", 1)  # En
        for index in range(used_lrs):
            name = "ICH_LR%d_EL2" % index
            ops.write_hyp(name, ctx.load(name))
        if used_lrs:
            for name in ICH_AP_REGS:
                ops.write_hyp(name, ctx.load(name))


def vgic_save_v2(cpu, ctx, used_lrs, gich_base):
    """GICv2 guest-hypervisor variant: the hypervisor control interface
    is a memory-mapped GICH frame, so every access is an ordinary load or
    store that stage-2 aborts to the host hypervisor when the frame is
    left unmapped (Section 4) — no paravirtualization required, and NEVE
    does not change the trap count for this path."""
    from repro.arch.gic import gich_reg_to_offset

    def off(name):
        return gich_base + gich_reg_to_offset(name)

    _note_lrs(cpu, used_lrs)
    with cpu_span(cpu, "ws.vgic_save_v2", used_lrs=used_lrs):
        cpu.mmio_read(off("ICH_VTR_EL2"))
        cpu.mmio_read(off("ICH_HCR_EL2"))
        ctx.save("ICH_VMCR_EL2", cpu.mmio_read(off("ICH_VMCR_EL2")))
        if used_lrs:
            cpu.mmio_read(off("ICH_ELRSR_EL2"))
            for index in range(used_lrs):
                name = "ICH_LR%d_EL2" % index
                ctx.save(name, cpu.mmio_read(off(name)))
                cpu.mmio_write(off(name), 0)
            ctx.save("ICH_AP0R0_EL2", cpu.mmio_read(off("ICH_AP0R0_EL2")))
        cpu.mmio_write(off("ICH_HCR_EL2"), 0)


def vgic_restore_v2(cpu, ctx, used_lrs, gich_base):
    from repro.arch.gic import gich_reg_to_offset

    def off(name):
        return gich_base + gich_reg_to_offset(name)

    _note_lrs(cpu, used_lrs)
    with cpu_span(cpu, "ws.vgic_restore_v2", used_lrs=used_lrs):
        cpu.mmio_read(off("ICH_HCR_EL2"))
        cpu.mmio_write(off("ICH_VMCR_EL2"), ctx.load("ICH_VMCR_EL2"))
        cpu.mmio_write(off("ICH_HCR_EL2"), 1)
        for index in range(used_lrs):
            name = "ICH_LR%d_EL2" % index
            cpu.mmio_write(off(name), ctx.load(name))
        if used_lrs:
            cpu.mmio_write(off("ICH_AP0R0_EL2"),
                           ctx.load("ICH_AP0R0_EL2"))


def vgic_save_mmio(cpu, ctx, used_lrs):
    """GICv2 variant: the hypervisor interface is memory mapped, so every
    access pays a device-memory round trip instead of an MSR/MRS.  Used by
    the L0 host hypervisor on the paper's GICv2 testbed; the extra cost is
    a large part of why ARM exits cost ~2,700 cycles."""
    with cpu_span(cpu, "ws.vgic_save_mmio", used_lrs=used_lrs):
        accesses = 2 + (1 + used_lrs + len(ICH_AP_REGS) if used_lrs else 0)
        cpu.ledger.charge(accesses * cpu.costs.vgic_mmio_access, "vgic_mmio")
        ctx.save("ICH_VMCR_EL2", cpu.el2_regs.read("ICH_VMCR_EL2"))
        for index in range(used_lrs):
            name = "ICH_LR%d_EL2" % index
            ctx.save(name, _filter_lr(cpu, name, cpu.el2_regs.read(name)))
            cpu.el2_regs.write(name, 0)  # lint: allow(sim-sysreg-bypass)
        cpu.el2_regs.write("ICH_HCR_EL2", 0)  # lint: allow(sim-sysreg-bypass)
        if cpu.gic is not None:
            cpu.gic.sync_status(cpu)


def vgic_restore_mmio(cpu, ctx, used_lrs):
    with cpu_span(cpu, "ws.vgic_restore_mmio", used_lrs=used_lrs):
        accesses = 2 + used_lrs + (len(ICH_AP_REGS) if used_lrs else 0)
        cpu.ledger.charge(accesses * cpu.costs.vgic_mmio_access, "vgic_mmio")
        cpu.el2_regs.write("ICH_VMCR_EL2", ctx.load("ICH_VMCR_EL2"))  # lint: allow(sim-sysreg-bypass)
        cpu.el2_regs.write("ICH_HCR_EL2", 1)  # lint: allow(sim-sysreg-bypass)
        for index in range(used_lrs):
            name = "ICH_LR%d_EL2" % index
            cpu.el2_regs.write(name, ctx.load(name))  # lint: allow(sim-sysreg-bypass)
        if cpu.gic is not None:
            cpu.gic.sync_status(cpu)


# ---------------------------------------------------------------------------
# Timers
# ---------------------------------------------------------------------------

def timer_save(ops, ctx, vhe):
    """Save the VM's EL1 virtual timer and give the host the hardware.

    The VM timer accesses are EL0-encoded for a non-VHE hypervisor and
    EL02-encoded for a VHE hypervisor — the latter *always* trap at
    virtual EL2, even with NEVE (Section 7.1).
    """
    with cpu_span(ops.cpu, "ws.timer_save"):
        ctx.save("CNTV_CTL_EL0", ops.read_vm_el0("CNTV_CTL_EL0"))
        ctx.save("CNTV_CVAL_EL0", ops.read_vm_el0("CNTV_CVAL_EL0"))
        ops.write_vm_el0("CNTV_CTL_EL0", 0)  # mask while the VM is out
        ops.cpu.mrs("CNTHCTL_EL2")  # read-modify-write (cached copy: free)
        ops.write_hyp("CNTHCTL_EL2", 3)  # host: EL1 counter/timer access on
        if vhe:
            # The VHE hypervisor also runs its own EL2 virtual timer, reached
            # through the EL0 encodings thanks to E2H redirection: no trap.
            ops.cpu.mrs("CNTV_CTL_EL0")


def timer_restore(ops, ctx, vhe):
    with cpu_span(ops.cpu, "ws.timer_restore"):
        ops.cpu.mrs("CNTVOFF_EL2")  # compare against the VM's offset
        ops.write_hyp("CNTVOFF_EL2", 0x1000)
        ops.cpu.mrs("CNTHCTL_EL2")
        ops.write_hyp("CNTHCTL_EL2", 0)  # guest: trap EL1 physical timer
        ops.write_vm_el0("CNTV_CVAL_EL0", ctx.load("CNTV_CVAL_EL0"))
        ops.write_vm_el0("CNTV_CTL_EL0", ctx.load("CNTV_CTL_EL0"))
        if vhe:
            ops.cpu.msr("CNTV_CTL_EL0", 1)


# ---------------------------------------------------------------------------
# Hyp entry/exit bookkeeping
# ---------------------------------------------------------------------------

def hyp_entry(cpu):
    """Stack the GPRs and set up the hypervisor execution environment."""
    cpu.gpr_block(NR_GPRS)
    cpu.work(12, category="world_switch")  # vectors, sp switch, sanity


def hyp_exit(cpu):
    cpu.gpr_block(NR_GPRS)
    cpu.work(6, category="world_switch")


def make_ops(cpu, vhe):
    return CpuOps(cpu, vhe)
