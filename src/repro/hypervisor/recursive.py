"""Recursive virtualization (Section 6.2).

"NEVE supports multiple levels of nesting... The L0 host hypervisor can
create a VM with support for NEVE, which the guest hypervisor will use
when running the L2 guest hypervisor.  ...  On entry to the L2 VM's
virtual EL2, the L0 host hypervisor can emulate the behavior of NEVE by
using the hardware features directly.  This works by translating the VM
physical address written by the L1 guest hypervisor into a machine
physical address and using this address in the hardware VNCR_EL2."

This module demonstrates exactly that, three levels deep:

* Under **ARMv8.3**, every hypervisor instruction the L2 hypervisor
  executes traps to L0, which forwards it to the L1 guest hypervisor for
  emulation — and the L1 emulation path itself runs at virtual EL2, so
  *its* accesses trap to L0 in turn: exit multiplication squared.
* Under **NEVE at both levels**, L0 translates the L1-written BADDR
  through the L1 VM's stage-2 table, programs the *hardware* VNCR_EL2
  with the machine address, and the L2 hypervisor's VM-register traffic
  turns into plain memory accesses — landing in pages the L1 guest
  hypervisor can read directly, with no trap at either boundary.
"""

from dataclasses import dataclass, field

from repro.arch.cpu import Cpu
from repro.arch.exceptions import ExceptionClass, ExceptionLevel
from repro.arch.features import ARMV8_3, ARMV8_4
from repro.core.neve import NeveRunner
from repro.core.vncr import DeferredAccessPage, VncrEl2
from repro.hypervisor import world_switch as ws
from repro.hypervisor.vcpu import VcpuStruct
from repro.memory.pagetable import PageTable
from repro.memory.phys import PhysicalMemory
from repro.trace.spans import cpu_span

#: Where the L1 guest hypervisor believes it placed the L2 hypervisor's
#: deferred access page (an L1 intermediate physical address).
L2_PAGE_IPA = 0x4000_0000
#: Where that page really lives in machine memory.
L2_PAGE_PA = 0x9000_0000


@dataclass
class BoundaryStats:
    """Traps per virtualization boundary for one L2-hypervisor run."""

    l2hyp_traps: int = 0  # instructions of the L2 hypervisor that trapped
    l1_emulation_traps: int = 0  # traps the L1 emulation path took
    values_seen_by_l1: dict = field(default_factory=dict)

    @property
    def total(self):
        return self.l2hyp_traps + self.l1_emulation_traps


class L1EmulationPath:
    """The L1 guest hypervisor's handler for a forwarded L2-hyp trap.

    Runs at virtual EL2, so its own register accesses obey the nested
    rules: on ARMv8.3 its exception-context reads and virtual-state
    bookkeeping trap back to L0; with NEVE they are deferred.
    """

    def __init__(self, vhe=False):
        self.vhe = vhe
        self.l3_vel2_state = None  # VcpuStruct allocated lazily per CPU
        self.handled = 0

    def emulate(self, cpu, syndrome):
        """Emulate one trapped L2-hypervisor instruction."""
        if self.l3_vel2_state is None:
            self.l3_vel2_state = VcpuStruct(cpu)
        self.handled += 1
        with cpu_span(cpu, "l1.emulate", kind="l1",
                      register=syndrome.register,
                      is_write=bool(syndrome.is_write)):
            ops = ws.make_ops(cpu, self.vhe)
            ws.hyp_entry(cpu)
            # Read the (virtual) exception context — traps on v8.3, free
            # under NEVE thanks to redirection/deferral.
            ws.read_exit_context(ops)
            cpu.work(180, category="l1_nested")  # decode and dispatch
            result = None
            if syndrome.ec is ExceptionClass.SYSREG:
                if syndrome.is_write:
                    self.l3_vel2_state.save(syndrome.register,
                                            syndrome.value or 0)
                else:
                    result = self.l3_vel2_state.load(syndrome.register)
            ws.hyp_exit(cpu)
            return result


class RecursiveHost:
    """An L0 host hypervisor specialized for the three-level experiment.

    The L2 hypervisor "runs" directly against the CPU at EL1 with NV
    semantics (exactly like an L1 hypervisor would — recursion works
    because each level only provides the architecture to the next).  Its
    traps arrive here; L0 charges its world-switch cost and forwards the
    instruction to the L1 emulation path, run as guest code whose own
    accesses may trap right back into L0.
    """

    def __init__(self, neve=False, l1_vhe=False):
        self.arch = ARMV8_4 if neve else ARMV8_3
        self.neve = neve
        self.memory = PhysicalMemory()
        self.cpu = Cpu(arch=self.arch, memory=self.memory)
        self.cpu.trap_handler = self
        self.l1 = L1EmulationPath(vhe=l1_vhe)
        self.stats = BoundaryStats()
        self._forwarding = False
        self._fault_hook = None  # propagated to lazily-created runners

        # The L1 VM's stage-2 table, used to translate the BADDR the L1
        # wrote for the L2 hypervisor's page (Section 6.2's key step).
        self.l1_stage2 = PageTable(stage=2, name="l1-s2")
        self.l1_stage2.map_page(L2_PAGE_IPA, L2_PAGE_PA)

        # One NeveRunner per nesting level: ``l1_runner`` manages the
        # page L0 gave the L1 guest hypervisor; ``l2_runner`` manages
        # the translated page L0 programs on behalf of L1 for the L2
        # hypervisor (created once the L1 BADDR is known).
        self.l1_runner = None
        self.l2_runner = None
        self.l1_page = None  # L1's own deferred page (for its vEL2 state)
        if neve:
            # L0 gives the *L1* guest hypervisor NEVE as usual.
            self.l1_runner = NeveRunner(self.cpu, self.memory, 0x7000_0000)
            self.l1_page = self.l1_runner.page

    @property
    def runners(self):
        """Live runners, for sanitizer attachment."""
        return [r for r in (self.l1_runner, self.l2_runner)
                if r is not None]

    def arm_fault_hook(self, hook):
        """Thread a fault injector through the whole recursive stack:
        the CPU (so L1-level deferred traffic — the L1 runner's page —
        is reachable) and every per-level runner, including the
        lazily-created L2 runner.  This is how SMP campaigns inject
        into the L1 ``NeveRunner`` rather than only doing post-hoc L2
        page repair."""
        self._fault_hook = hook
        self.cpu.fault_hook = hook
        for runner in self.runners:
            runner.fault_hook = hook

    def disarm_fault_hook(self):
        self._fault_hook = None
        self.cpu.fault_hook = None
        for runner in self.runners:
            runner.fault_hook = None

    # ------------------------------------------------------------------
    # Setup: the Section 6.2 workflow
    # ------------------------------------------------------------------

    def l1_configures_l2_neve(self):
        """The L1 guest hypervisor programs (its virtual) VNCR_EL2 for
        the L2 hypervisor.  With NEVE enabled for L1, this write is
        itself deferred — VNCR_EL2 is a Table 3 VM register."""
        self._enter_l1()
        vncr = VncrEl2.make(L2_PAGE_IPA)
        before = self.cpu.traps.total
        self.cpu.msr("VNCR_EL2", vncr.value)
        took_trap = self.cpu.traps.total - before
        self.cpu.enter_host_context()
        return took_trap

    def l0_enters_l2_hypervisor(self):
        """On entry to the L2 VM's virtual EL2, L0 emulates NEVE "by
        using the hardware features directly": read what L1 wrote,
        translate the IPA, program the hardware VNCR_EL2."""
        if self.neve:
            l1_vncr = VncrEl2(self.l1_page.read_reg("VNCR_EL2"))
            machine_baddr = self.l1_stage2.translate(l1_vncr.baddr)
            if self.l2_runner is None \
                    or self.l2_runner.page.baddr != machine_baddr:
                self.l2_runner = NeveRunner(self.cpu, self.memory,
                                            machine_baddr)
                self.l2_runner.fault_hook = self._fault_hook
            self.l2_runner.enable()
        self.cpu.enter_guest_context(ExceptionLevel.EL1, nv=True,
                                     virtual_e2h=False)

    def _enter_l1(self):
        if self.neve:
            # L1 runs with its own NEVE page active.
            self.l1_runner.enable()
        self.cpu.enter_guest_context(ExceptionLevel.EL1, nv=True,
                                     virtual_e2h=False)

    # ------------------------------------------------------------------
    # Trap handling
    # ------------------------------------------------------------------

    def handle_trap(self, cpu, syndrome):
        metrics = getattr(cpu, "metrics", None)
        if metrics is not None:
            metrics.count_boundary_trap(
                "l1_emulation" if self._forwarding else "l2hyp")
        if self._forwarding:
            # A trap taken by the L1 emulation path itself: L0 emulates
            # it against L1's virtual EL2 state (cheaply modelled).
            self.stats.l1_emulation_traps += 1
            with cpu_span(cpu, "l0.emulate_l1_trap", kind="l0",
                          register=syndrome.register):
                ws.hyp_entry(cpu)
                cpu.work(160, category="l0_nested")
                ws.hyp_exit(cpu)
                if (syndrome.ec is ExceptionClass.SYSREG
                        and not syndrome.is_write):
                    return 0
                return None
        # A trap from the L2 hypervisor: forward to L1 (Section 6.2:
        # "trap on hypervisor instructions to the L0 host hypervisor,
        # which can then forward it to the L1 guest hypervisor").
        self.stats.l2hyp_traps += 1
        with cpu_span(cpu, "l0.forward_to_l1", kind="l0",
                      register=syndrome.register):
            ws.hyp_entry(cpu)
            cpu.work(430, category="l0_nested")
            self._forwarding = True
            # While forwarding, L1 runs with ITS page, not L2's: L0 swaps
            # the hardware VNCR_EL2 between the per-level runners.  The
            # swaps happen here at EL2, before and after the guest call —
            # VNCR_EL2 is host-hypervisor state.
            swap = self.neve and self.l2_runner is not None
            try:
                if swap:
                    self.l2_runner.disable()
                    self.l1_runner.enable()
                with cpu.guest_call(nv=True, virtual_e2h=self.l1.vhe):
                    result = self.l1.emulate(cpu, syndrome)
            finally:
                if swap:
                    self.l1_runner.disable()
                    self.l2_runner.enable()
                self._forwarding = False
            ws.hyp_exit(cpu)
            return result

    # ------------------------------------------------------------------
    # The experiment
    # ------------------------------------------------------------------

    def run_l2_hypervisor_fragment(self):
        """Execute a representative L2-hypervisor world-switch fragment
        and report the traps at each boundary."""
        if self.neve:
            self.l1_configures_l2_neve()
            self.cpu.enter_host_context()
        self.l0_enters_l2_hypervisor()
        cpu = self.cpu
        before = self.stats.total
        # VM-register traffic of the L2 hypervisor (Table 3 accesses).
        for name, value in (("HCR_EL2", 0x80000001),
                            ("VTTBR_EL2", 0x3000),
                            ("VTCR_EL2", 0x1),
                            ("SCTLR_EL1", 0x30D0198),
                            ("TTBR0_EL1", 0x5000),
                            ("ELR_EL1", 0x8000),
                            ("SPSR_EL1", 0x5)):
            cpu.msr(name, value)
        for name in ("HCR_EL2", "SCTLR_EL1", "TTBR0_EL1"):
            cpu.mrs(name)
        # One trap-on-write control register: still traps under NEVE and
        # is forwarded to L1 — but L1's own handling is now trap-free.
        cpu.msr("CNTHCTL_EL2", 3)
        cpu.enter_host_context()
        self.stats.values_seen_by_l1 = self._l1_view()
        return self.stats

    def _l1_view(self):
        """What the L1 guest hypervisor observes of the L2 hypervisor's
        deferred state.  With NEVE it simply reads the page it handed
        out — "the L1 guest hypervisor ... can therefore directly access
        the content of the deferred access page" (Section 6.2)."""
        if not self.neve:
            state = self.l1.l3_vel2_state
            if state is None:
                return {}
            return {name: state.peek(name)
                    for name in ("HCR_EL2", "VTTBR_EL2", "SCTLR_EL1")}
        page = DeferredAccessPage(self.memory, L2_PAGE_PA)
        return {name: page.read_reg(name)
                for name in ("HCR_EL2", "VTTBR_EL2", "SCTLR_EL1")}


def compare_recursion(l1_vhe=False):
    """Run the three-level fragment under ARMv8.3 and NEVE; returns
    ``(v83_stats, neve_stats)``."""
    v83 = RecursiveHost(neve=False, l1_vhe=l1_vhe)
    neve = RecursiveHost(neve=True, l1_vhe=l1_vhe)
    return (v83.run_l2_hypervisor_fragment(),
            neve.run_l2_hypervisor_fragment())
