"""PSCI (Power State Coordination Interface) emulation.

ARM guests bring secondary CPUs online, idle them and power them off
through PSCI calls (SMC conduit on the paper's testbed).  KVM emulates
PSCI for its guests; a nested VM's PSCI calls are forwarded to the guest
hypervisor like any other trap, which is how the L1 hypervisor controls
which of its vcpus run.
"""

# PSCI 0.2 function IDs (SMC64 where applicable).
PSCI_VERSION = 0x8400_0000
PSCI_CPU_SUSPEND = 0xC400_0001
PSCI_CPU_OFF = 0x8400_0002
PSCI_CPU_ON = 0xC400_0003
PSCI_AFFINITY_INFO = 0xC400_0004
PSCI_SYSTEM_OFF = 0x8400_0008
PSCI_SYSTEM_RESET = 0x8400_0009

# Return codes.
PSCI_SUCCESS = 0
PSCI_NOT_SUPPORTED = -1
PSCI_INVALID_PARAMS = -2
PSCI_ALREADY_ON = -4

#: Version reported to guests: PSCI 0.2.
REPORTED_VERSION = 0x0000_0002

AFFINITY_ON = 0
AFFINITY_OFF = 1


class PsciEmulator:
    """KVM's PSCI backend for one hypervisor instance."""

    def __init__(self, kvm):
        self.kvm = kvm
        self.calls = []

    def handle(self, cpu, vcpu, function, args):
        """Emulate one PSCI call from *vcpu*; returns the PSCI result."""
        self.calls.append((function, args))
        cpu.work(240, category="l0_psci")
        if function == PSCI_VERSION:
            return REPORTED_VERSION
        if function == PSCI_CPU_ON:
            return self._cpu_on(cpu, vcpu, args)
        if function == PSCI_CPU_OFF:
            vcpu.online = False
            return PSCI_SUCCESS
        if function == PSCI_AFFINITY_INFO:
            return self._affinity_info(vcpu, args)
        if function == PSCI_CPU_SUSPEND:
            cpu.work(150, category="l0_psci")  # park until wakeup
            return PSCI_SUCCESS
        if function in (PSCI_SYSTEM_OFF, PSCI_SYSTEM_RESET):
            for other in vcpu.vm.vcpus:
                other.online = False
            return PSCI_SUCCESS
        return PSCI_NOT_SUPPORTED

    def _cpu_on(self, cpu, vcpu, args):
        target_id = args[0] if args else 0
        vm = vcpu.vm
        if target_id >= len(vm.vcpus):
            return PSCI_INVALID_PARAMS
        target = vm.vcpus[target_id]
        if target.online and target.loaded:
            return PSCI_ALREADY_ON
        target.online = True
        cpu.work(900, category="l0_psci")  # vcpu reset + first entry cost
        if not target.loaded:
            self.kvm.run_vcpu(target)
            target.loaded = True
        return PSCI_SUCCESS

    def _affinity_info(self, vcpu, args):
        target_id = args[0] if args else 0
        vm = vcpu.vm
        if target_id >= len(vm.vcpus):
            return PSCI_INVALID_PARAMS
        return AFFINITY_ON if vm.vcpus[target_id].online else AFFINITY_OFF
