"""Virtual CPU state.

A :class:`VcpuState` is what a hypervisor keeps per virtual CPU: the saved
EL1/EL0 context, and — for virtual CPUs that expose virtualization
extensions (Section 4's "virtual EL2 mode") — the emulated EL2 state plus
the bookkeeping NEVE needs (the deferred access page runner).
"""

import enum

from repro.arch.registers import RegisterFile


class VcpuMode(enum.Enum):
    """Which virtual exception level the vcpu currently executes in."""

    VEL0 = "vEL0"
    VEL1 = "vEL1"
    VEL2 = "vEL2"  # only for vcpus with the virtual EL2 feature
    NESTED = "nested"  # the guest hypervisor's own VM (L2) is running


class VcpuStruct:
    """Memory-backed register storage inside a hypervisor data structure.

    Reads and writes charge memory-access cycles on the owning CPU,
    because on real hardware the hypervisor's save/restore loops move
    state between system registers and the kernel's vcpu struct.
    """

    def __init__(self, cpu, category="world_switch"):
        self._cpu = cpu
        self._category = category
        self.regs = RegisterFile()

    def save(self, name, value):
        self._cpu.ledger.charge(self._cpu.costs.mem_store, self._category)
        self.regs.write(name, value)

    def load(self, name):
        self._cpu.ledger.charge(self._cpu.costs.mem_load, self._category)
        return self.regs.read(name)

    def peek(self, name):
        """Read without charging (for assertions/tests only)."""
        return self.regs.read(name)

    def poke(self, name, value):
        """Write without charging (test setup only)."""
        self.regs.write(name, value)


class VcpuState:
    """One virtual CPU as seen by the hypervisor that runs it.

    ``el1_ctx`` holds the vcpu's EL0/EL1 register context while it is not
    loaded in hardware.  ``vel2_ctx`` (present when ``has_virtual_el2``)
    holds the emulated EL2 state of a guest hypervisor.  ``pending_virqs``
    are virtual interrupt numbers queued for injection.
    """

    def __init__(self, cpu, vcpu_id=0, has_virtual_el2=False,
                 virtual_e2h=False):
        self.cpu = cpu
        self.vcpu_id = vcpu_id
        self.has_virtual_el2 = has_virtual_el2
        self.virtual_e2h = virtual_e2h
        self.mode = VcpuMode.VEL2 if has_virtual_el2 else VcpuMode.VEL1

        self.el1_ctx = VcpuStruct(cpu)
        self.vel2_ctx = VcpuStruct(cpu) if has_virtual_el2 else None

        # Shadow copies of the GIC hypervisor interface the vcpu programs
        # for *its* guest (only meaningful for virtual-EL2 vcpus).
        self.shadow_ich = VcpuStruct(cpu) if has_virtual_el2 else None

        # Virtual EL1 context: what the guest hypervisor believes the
        # hardware EL1 registers hold (the nested VM's state, or its own
        # kernel's).  The host emulates trapped EL1 accesses against this.
        self.vel1_shadow = VcpuStruct(cpu) if has_virtual_el2 else None

        # List-register images per nesting role: ``l1_vgic`` is the vcpu's
        # own virtual interface (L1-level interrupts), ``shadow_ich`` above
        # is what the guest hypervisor programmed for its nested VM.
        self.l1_vgic = VcpuStruct(cpu) if has_virtual_el2 else None
        self.used_lrs = 0  # live LRs for whatever context is loaded
        self.l1_used_lrs = 0  # LRs the guest hypervisor uses for its VM

        self.vm = None  # back-reference set by the owning Vm
        self.online = True  # PSCI power state
        self.pending_virqs = []
        self.neve = None  # NeveRunner attached by the host when enabled
        self.loaded = False  # context currently in hardware registers

    def queue_virq(self, intid):
        if intid not in self.pending_virqs:
            self.pending_virqs.append(intid)

    def take_virq(self):
        if self.pending_virqs:
            return self.pending_virqs.pop(0)
        return None

    @property
    def in_virtual_el2(self):
        return self.mode is VcpuMode.VEL2

    @property
    def neve_armed(self):
        """Whether the vcpu currently runs with a deferred access page.

        Flips to False on fault-recovery degradation and back to True
        when the recovery layer re-promotes the vcpu after its
        cooling-off window (see repro.faults.recovery)."""
        return self.neve is not None

    def __repr__(self):
        return ("VcpuState(id=%d, mode=%s, vel2=%r)"
                % (self.vcpu_id, self.mode.value, self.has_virtual_el2))
