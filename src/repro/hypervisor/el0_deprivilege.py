"""The rejected design: deprivileging the guest hypervisor to EL0.

Section 2 considers running a guest hypervisor in EL0 instead of EL1 and
rejects it for two reasons this module quantifies:

1. **Interrupt delivery must be fully emulated in software** — "the
   architecture does not support delivering virtual interrupts to EL0",
   so instead of the GIC virtual interface (list registers, trap-free
   acknowledge/EOI) every interrupt takes a full trap-emulate-resume
   round through the host hypervisor.
2. **TGE disables stage-1 translation for EL0** — "the host hypervisor
   must instead construct shadow page tables using Stage-2 translation
   for the guest hypervisor running in EL0", paying a stage-2 fault per
   cold page plus invalidation storms whenever the guest hypervisor
   changes its own page tables.

The comparison model charges both designs with the same cost machinery
the rest of the repository uses, so the numbers are commensurate with
Tables 1/6.
"""

from dataclasses import dataclass

from repro.arch.exceptions import ExceptionLevel
from repro.arch.vectors import (
    RoutingConfig,
    stage1_translation_enabled,
    virtual_interrupt_deliverable_to,
)
from repro.harness.configs import make_microbench
from repro.memory.pagetable import PageTable, Permission
from repro.memory.shadow import ShadowStage2
from repro.metrics.cycles import ARM_COSTS


@dataclass
class DesignCosts:
    """Per-operation costs for one deprivileging design."""

    design: str
    interrupt_delivery: float  # cycles to deliver one interrupt to L1
    interrupt_completion: float  # acknowledge + EOI
    hypercall: float  # guest-hypervisor exit round trip
    cold_page_fault: float  # first touch of a guest-hypervisor page
    page_table_update: float  # guest hypervisor changes a mapping


class El0DeprivilegeModel:
    """Quantifies Section 2's comparison of EL0 vs EL1 deprivileging."""

    def __init__(self, working_set_pages=512):
        self.costs = ARM_COSTS
        self.working_set_pages = working_set_pages
        self.routing = RoutingConfig(tge=True)
        # The shadow stage-1-via-stage-2 machinery TGE forces on EL0:
        # guest-hypervisor VA -> (its own stage-1) -> IPA -> (host
        # stage-2) -> PA collapses into one table, as in Section 4.
        guest_s1 = PageTable(stage=1, fmt="el2", name="guest-hyp-s1")
        host_s2 = PageTable(stage=2, name="host-s2")
        for page in range(working_set_pages):
            guest_s1.map_page(page * 4096, 0x10_0000 + page * 4096,
                              Permission.RWX)
            host_s2.map_page(0x10_0000 + page * 4096,
                             0x8000_0000 + page * 4096, Permission.RWX)
        self.shadow = ShadowStage2(guest_s1, host_s2, name="el0-shadow")

    # -- architectural facts ------------------------------------------------

    def virtual_interrupts_available(self, el):
        return virtual_interrupt_deliverable_to(el)

    def stage1_available(self, el):
        return stage1_translation_enabled(el, self.routing)

    # -- costs per design -----------------------------------------------------

    def el1_design(self, iterations=6):
        """The paper's chosen design, measured on the real model."""
        suite = make_microbench("arm-nested")
        injection = suite.run("interrupt_injection", iterations).cycles
        hypercall = suite.run("hypercall", iterations).cycles
        eoi = suite.run("virtual_eoi", iterations).cycles
        return DesignCosts(
            design="EL1 (ARMv8.3 trap-and-emulate)",
            interrupt_delivery=injection,
            interrupt_completion=eoi,  # virtual interface: trap-free
            hypercall=hypercall,
            cold_page_fault=0.0,  # stage-1 stays live at EL1
            page_table_update=self.costs.sysreg_write,  # TTBR write
        )

    def el0_design(self, iterations=6):
        """The rejected design: same trap machinery, plus the software
        interrupt path and shadow stage-1."""
        el1 = self.el1_design(iterations)
        # Full software emulation of delivery AND completion: each is a
        # trap-emulate-resume round trip instead of hardware assists.
        roundtrip = el1.hypercall
        delivery = el1.interrupt_delivery + 2 * roundtrip
        completion = 2 * roundtrip  # trapped acknowledge + trapped EOI
        # Shadow stage-1 costs: one stage-2 fault per cold page...
        fault = (self.costs.trap_entry + self.costs.trap_return
                 + 900 * self.costs.instr  # walk both tables, install
                 + 2 * self.costs.mem_store)
        # ...and a trapped update + shadow invalidation per PTE change.
        update = roundtrip + 400 * self.costs.instr
        return DesignCosts(
            design="EL0 (TGE + shadow stage-1)",
            interrupt_delivery=delivery,
            interrupt_completion=completion,
            hypercall=el1.hypercall,  # instruction traps are the same
            cold_page_fault=fault,
            page_table_update=update,
        )

    def warmup_cost(self):
        """Faulting the guest hypervisor's working set into the shadow."""
        per_fault = self.el0_design_cached.cold_page_fault
        for page in range(self.working_set_pages):
            self.shadow.handle_fault(page * 4096)
        return per_fault * self.working_set_pages

    @property
    def el0_design_cached(self):
        if not hasattr(self, "_el0"):
            self._el0 = self.el0_design()
        return self._el0

    def compare(self, interrupts=100, completions=100, pt_updates=20):
        """Total cycles for a representative activity mix, per design."""
        el1 = self.el1_design()
        el0 = self.el0_design_cached
        out = {}
        for design in (el1, el0):
            out[design.design] = (
                interrupts * design.interrupt_delivery
                + completions * design.interrupt_completion
                + pt_updates * design.page_table_update)
        return out


def render_el0_study():
    model = El0DeprivilegeModel()
    el1 = model.el1_design()
    el0 = model.el0_design_cached
    lines = ["The rejected EL0-deprivileging design (Section 2), "
             "quantified:",
             "",
             "%-28s %16s %16s" % ("operation", "EL1 design", "EL0 design")]
    rows = (
        ("interrupt delivery", el1.interrupt_delivery,
         el0.interrupt_delivery),
        ("interrupt completion", el1.interrupt_completion,
         el0.interrupt_completion),
        ("hypercall round trip", el1.hypercall, el0.hypercall),
        ("cold page fault", el1.cold_page_fault, el0.cold_page_fault),
        ("page-table update", el1.page_table_update,
         el0.page_table_update),
    )
    for label, a, b in rows:
        lines.append("%-28s %16.0f %16.0f" % (label, a, b))
    warm = model.warmup_cost()
    lines.append("")
    lines.append("shadow warm-up for a %d-page working set: %.1fM cycles"
                 % (model.working_set_pages, warm / 1e6))
    totals = model.compare()
    lines.append("")
    lines.append("representative mix (100 IRQs + 100 EOIs + 20 PT "
                 "updates):")
    for design, cycles in totals.items():
        lines.append("  %-38s %12.0f cycles" % (design, cycles))
    lines.append("")
    lines.append("=> EL1 deprivileging wins on every axis the paper "
                 "names; EL0 would")
    lines.append("   add software interrupt emulation and shadow-stage-1 "
                 "maintenance on")
    lines.append("   top of the identical instruction-trap cost.")
    return "\n".join(lines)
