"""The KVM/ARM hypervisor model.

The same world-switch code (:mod:`repro.hypervisor.world_switch`) runs as
the L0 host hypervisor — natively at EL2, where its register accesses are
free of traps — and as the L1 guest hypervisor at virtual EL2, where every
access obeys the ARMv8.3/NEVE rules in :mod:`repro.arch.cpu`.  That is
exactly the paper's experimental setup (Section 4), and it is what makes
the exit-multiplication numbers *emerge* from the model instead of being
asserted.
"""

from repro.hypervisor.kvm import KvmHypervisor, Machine
from repro.hypervisor.nested import GuestHypervisor
from repro.hypervisor.psci import PsciEmulator
from repro.hypervisor.recursive import RecursiveHost
from repro.hypervisor.scheduler import VcpuScheduler
from repro.hypervisor.vcpu import VcpuMode, VcpuState, VcpuStruct
from repro.hypervisor.virtio import VirtioDevice, VirtioQueue

__all__ = [
    "GuestHypervisor",
    "KvmHypervisor",
    "Machine",
    "PsciEmulator",
    "RecursiveHost",
    "VcpuMode",
    "VcpuScheduler",
    "VcpuState",
    "VcpuStruct",
    "VirtioDevice",
    "VirtioQueue",
]
