"""Text report CLI.

Usage::

    python -m repro.harness.report table1
    python -m repro.harness.report table6
    python -m repro.harness.report table7
    python -m repro.harness.report figure2
    python -m repro.harness.report spec          # Tables 2-5 (E7)
    python -m repro.harness.report virtio       # E6 notification study
    python -m repro.harness.report shadowing    # E9 VMCS ablation
    python -m repro.harness.report designs      # E10 design ablation
    python -m repro.harness.report all
"""

import sys

from repro.core.classification import (
    classification_summary,
    extension_registers,
    table2_fields,
    table3_vm_registers,
    table4_hyp_control_registers,
    table5_gic_registers,
)
from repro.harness.figures import (
    render_figure2,
    render_hypervisor_design_study,
    render_notification_study,
    render_vmcs_shadowing_study,
)
from repro.harness.tables import (
    render_table1,
    render_table6,
    render_table7,
)


def render_spec():
    lines = ["Table 2: VNCR_EL2 fields"]
    for field in table2_fields():
        lines.append("  %-8s %-10s %s" % (field["bits"], field["field"],
                                          field["description"]))
    table3 = table3_vm_registers()
    lines.append("")
    lines.append("Table 3: VM system registers (%d)" % len(table3))
    for row in table3:
        lines.append("  %-22s %-18s %s" % (row["category"], row["register"],
                                           row["description"]))
    table4 = table4_hyp_control_registers()
    lines.append("")
    lines.append("Table 4: hypervisor control registers (%d)" % len(table4))
    for row in table4:
        lines.append("  %-22s %-18s %s" % (row["technique"],
                                           row["register"],
                                           row["description"]))
    table5 = table5_gic_registers()
    lines.append("")
    lines.append("Table 5: GIC hypervisor control registers (%d)"
                 % len(table5))
    for row in table5:
        lines.append("  %-22s %-18s %s" % (row["technique"],
                                           row["register"],
                                           row["description"]))
    lines.append("")
    lines.append("Prose-classified extensions (Section 6.1, end): %d"
                 % len(extension_registers()))
    lines.append("Behaviour summary: %r" % classification_summary())
    return "\n".join(lines)


def _render_attribution():
    from repro.harness.analysis import render_attribution
    return render_attribution()


def _render_sensitivity():
    from repro.harness.sensitivity import render_sensitivity
    return render_sensitivity()


def _render_chart():
    from repro.harness.plots import render_figure2_chart, render_trap_chart
    return render_trap_chart() + "\n\n" + render_figure2_chart()


def _render_el0():
    from repro.hypervisor.el0_deprivilege import render_el0_study
    return render_el0_study()


def _render_conformance():
    from repro.core.conformance import render_conformance
    return render_conformance()


def _render_regression():
    from repro.harness.regression import render_regression
    return render_regression()


def _render_scaling():
    from repro.workloads.scaling import render_scaling
    return render_scaling()


def _render_riscv():
    from repro.riscv.hext import render_riscv_study
    return render_riscv_study()


REPORTS = {
    "table1": render_table1,
    "table6": render_table6,
    "table7": render_table7,
    "figure2": render_figure2,
    "spec": render_spec,
    "virtio": render_notification_study,
    "shadowing": render_vmcs_shadowing_study,
    "designs": render_hypervisor_design_study,
    "attribution": _render_attribution,
    "sensitivity": _render_sensitivity,
    "chart": _render_chart,
    "el0": _render_el0,
    "conformance": _render_conformance,
    "regression": _render_regression,
    "scaling": _render_scaling,
    "riscv": _render_riscv,
}


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    name = argv[0]
    if name == "all":
        for key, renderer in REPORTS.items():
            print("=" * 72)
            print(renderer())
            print()
        return 0
    renderer = REPORTS.get(name)
    if renderer is None:
        print("unknown report %r; available: %s, all"
              % (name, ", ".join(REPORTS)))
        return 2
    print(renderer())
    return 0


if __name__ == "__main__":
    sys.exit(main())
