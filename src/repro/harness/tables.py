"""Generators for the paper's tables.

Each function returns structured data (list of row dicts) and has a
``render_*`` companion producing the text table, so benchmarks, tests and
the report CLI share one implementation.
"""

from repro.harness.configs import (
    TABLE1_CONFIGS,
    TABLE6_CONFIGS,
    make_microbench,
)
from repro.workloads.microbench import MICROBENCHMARKS

#: The paper's measurements, for side-by-side comparison in reports.
PAPER_TABLE1 = {
    # benchmark: {config: cycles}
    "hypercall": {"arm-vm": 2_729, "arm-nested": 422_720,
                  "arm-nested-vhe": 307_363, "x86-vm": 1_188,
                  "x86-nested": 36_345},
    "device_io": {"arm-vm": 3_534, "arm-nested": 436_924,
                  "arm-nested-vhe": 312_148, "x86-vm": 2_307,
                  "x86-nested": 39_108},
    "virtual_ipi": {"arm-vm": 8_364, "arm-nested": 611_686,
                    "arm-nested-vhe": 494_765, "x86-vm": 2_751,
                    "x86-nested": 45_360},
    "virtual_eoi": {"arm-vm": 71, "arm-nested": 71,
                    "arm-nested-vhe": 71, "x86-vm": 316, "x86-nested": 316},
}

PAPER_TABLE6 = {
    "hypercall": {"arm-nested": 422_720, "arm-nested-vhe": 307_363,
                  "neve-nested": 92_385, "neve-nested-vhe": 100_895,
                  "x86-nested": 36_345},
    "device_io": {"arm-nested": 436_924, "arm-nested-vhe": 312_148,
                  "neve-nested": 96_002, "neve-nested-vhe": 105_071,
                  "x86-nested": 39_108},
    "virtual_ipi": {"arm-nested": 611_686, "arm-nested-vhe": 494_765,
                    "neve-nested": 184_657, "neve-nested-vhe": 213_256,
                    "x86-nested": 45_360},
    "virtual_eoi": {"arm-nested": 71, "arm-nested-vhe": 71,
                    "neve-nested": 71, "neve-nested-vhe": 71,
                    "x86-nested": 316},
}

PAPER_TABLE7 = {
    "hypercall": {"arm-nested": 126, "arm-nested-vhe": 82,
                  "neve-nested": 15, "neve-nested-vhe": 15,
                  "x86-nested": 5},
    "device_io": {"arm-nested": 128, "arm-nested-vhe": 82,
                  "neve-nested": 15, "neve-nested-vhe": 15,
                  "x86-nested": 5},
    "virtual_ipi": {"arm-nested": 261, "arm-nested-vhe": 172,
                    "neve-nested": 37, "neve-nested-vhe": 38,
                    "x86-nested": 9},
    "virtual_eoi": {"arm-nested": 0, "arm-nested-vhe": 0,
                    "neve-nested": 0, "neve-nested-vhe": 0,
                    "x86-nested": 0},
}


def _measure(config_names, iterations):
    suites = {name: make_microbench(name) for name in config_names}
    results = {}
    for name, suite in suites.items():
        results[name] = suite.run_all(iterations=iterations)
    return results


def table1(iterations=10):
    """Table 1: microbenchmark cycle counts, ARMv8.3 and x86."""
    measured = _measure(TABLE1_CONFIGS, iterations)
    rows = []
    for bench in MICROBENCHMARKS:
        row = {"benchmark": bench}
        for config in TABLE1_CONFIGS:
            row[config] = measured[config][bench].cycles
            row[config + "/paper"] = PAPER_TABLE1[bench][config]
        rows.append(row)
    return rows


def table6(iterations=10):
    """Table 6: microbenchmark cycle counts with NEVE."""
    measured = _measure(TABLE6_CONFIGS, iterations)
    baseline = _measure(("arm-vm", "x86-vm"), iterations)
    rows = []
    for bench in MICROBENCHMARKS:
        row = {"benchmark": bench}
        for config in TABLE6_CONFIGS:
            cycles = measured[config][bench].cycles
            vm = (baseline["x86-vm"] if config.startswith("x86")
                  else baseline["arm-vm"])[bench].cycles
            row[config] = cycles
            row[config + "/slowdown"] = cycles / vm if vm else 0.0
            row[config + "/paper"] = PAPER_TABLE6[bench][config]
        rows.append(row)
    return rows


def table7(iterations=10):
    """Table 7: average traps to the host hypervisor per iteration."""
    measured = _measure(TABLE6_CONFIGS, iterations)
    rows = []
    for bench in MICROBENCHMARKS:
        row = {"benchmark": bench}
        for config in TABLE6_CONFIGS:
            row[config] = measured[config][bench].traps
            row[config + "/paper"] = PAPER_TABLE7[bench][config]
        rows.append(row)
    return rows


def _render(rows, configs, value_key_suffix="", fmt="%10.0f", title=""):
    lines = []
    if title:
        lines.append(title)
    header = "%-14s" % "benchmark"
    for config in configs:
        header += " %16s" % config.replace("nested", "n")
    lines.append(header)
    for row in rows:
        line = "%-14s" % row["benchmark"]
        for config in configs:
            measured = fmt % row[config + value_key_suffix]
            paper = row.get(config + "/paper")
            line += " %16s" % ("%s(%s)" % (measured.strip(), paper))
        lines.append(line)
    return "\n".join(lines)


def render_table1(iterations=10):
    return _render(table1(iterations), TABLE1_CONFIGS,
                   title="Table 1: microbenchmark cycle counts "
                         "(measured(paper))")


def render_table6(iterations=10):
    return _render(table6(iterations), TABLE6_CONFIGS,
                   title="Table 6: NEVE microbenchmark cycle counts "
                         "(measured(paper))")


def render_table7(iterations=10):
    return _render(table7(iterations), TABLE6_CONFIGS, fmt="%10.1f",
                   title="Table 7: traps to the host hypervisor "
                         "(measured(paper))")
