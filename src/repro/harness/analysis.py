"""Trap attribution and overhead decomposition.

The paper's argument proceeds from *which* hypervisor activity causes the
exit multiplication: EL1 context save/restore, trap-control programming,
vGIC maintenance, timers, and the virtual exception-level transitions.
This module instruments a nested round trip and attributes every trap to
the register (and register class) that caused it, yielding the breakdown
behind Table 7's totals — and showing exactly which classes NEVE removes.
"""

from collections import Counter
from dataclasses import dataclass, field

from repro.arch.exceptions import ExceptionClass
from repro.arch.registers import RegClass, lookup_register
from repro.harness.configs import ALL_CONFIGS, arm_arch_for
from repro.hypervisor.kvm import Machine
from repro.metrics.counters import ExitReason

#: Attribution buckets, in presentation order.
BUCKETS = (
    "el1_context",  # VM EL1/EL0 state save/restore (Table 3 traffic)
    "trap_control",  # HCR/CPTR/MDCR/HSTR/VTTBR/VTCR/IDs
    "exception_context",  # ESR/ELR/SPSR/FAR/HPFAR reads, return setup
    "vgic",  # ICH_* hypervisor interface
    "timer",  # CNTHCTL/CNTVOFF/CNTV/CNTHP/CNTHV
    "transitions",  # eret, hvc, forwarded exits
    "other",
)

_CLASS_BUCKET = {
    RegClass.VM_EXECUTION_CONTROL: "el1_context",
    RegClass.EL1_CONTEXT: "el1_context",
    RegClass.DEBUG: "el1_context",
    RegClass.PMU: "el1_context",
    RegClass.VM_TRAP_CONTROL: "trap_control",
    RegClass.THREAD_ID: "trap_control",
    RegClass.HYP_TRAP_ON_WRITE: "trap_control",
    RegClass.HYP_REDIRECT_OR_TRAP: "trap_control",
    RegClass.GIC_HYP: "vgic",
    RegClass.GIC_CPU: "vgic",
    RegClass.TIMER_EL2: "timer",
    RegClass.TIMER_GUEST: "timer",
    RegClass.HYP_REDIRECT: "exception_context",
    RegClass.HYP_REDIRECT_VHE: "exception_context",
}

_TIMER_TRAP_CONTROL = {"CNTHCTL_EL2", "CNTVOFF_EL2"}


def bucket_for(syndrome):
    """Attribute one trap syndrome to a bucket."""
    if syndrome.ec in (ExceptionClass.ERET, ExceptionClass.HVC,
                       ExceptionClass.IRQ, ExceptionClass.WFI):
        return "transitions"
    if syndrome.ec is ExceptionClass.DABT_LOWER:
        return "transitions"
    if syndrome.ec is ExceptionClass.SYSREG and syndrome.register:
        reg = lookup_register(syndrome.register)
        if reg.name in _TIMER_TRAP_CONTROL:
            return "timer"
        if reg.name in ("ESR_EL2", "ELR_EL2", "SPSR_EL2", "FAR_EL2",
                        "HPFAR_EL2"):
            return "exception_context"
        return _CLASS_BUCKET.get(reg.reg_class, "other")
    return "other"


@dataclass
class Attribution:
    """Trap counts by bucket and by individual register."""

    config: str
    benchmark: str
    total: int = 0
    by_bucket: Counter = field(default_factory=Counter)
    by_register: Counter = field(default_factory=Counter)

    def top_registers(self, count=10):
        return self.by_register.most_common(count)


class _AttributingHandler:
    """Wraps the host hypervisor's handler to classify every trap."""

    def __init__(self, kvm, attribution):
        self.kvm = kvm
        self.attribution = attribution

    def handle_trap(self, cpu, syndrome):
        self.attribution.total += 1
        self.attribution.by_bucket[bucket_for(syndrome)] += 1
        if syndrome.register:
            self.attribution.by_register[syndrome.register] += 1
        elif syndrome.ec is ExceptionClass.ERET:
            self.attribution.by_register["<eret>"] += 1
        elif syndrome.ec is ExceptionClass.HVC:
            self.attribution.by_register["<hvc>"] += 1
        else:
            self.attribution.by_register["<%s>" % syndrome.ec.value] += 1
        return self.kvm.handle_trap(cpu, syndrome)

    def resume_context(self, cpu):
        return self.kvm.resume_context(cpu)


def attribute_traps(config_name, benchmark="hypercall"):
    """Run one nested microbenchmark iteration with attribution.

    Only ARM nested configurations are meaningful here (x86's five exits
    need no decomposition).
    """
    config = ALL_CONFIGS[config_name]
    if config.platform != "arm" or not config.is_nested:
        raise ValueError("attribution targets ARM nested configurations")
    machine = Machine(arch=arm_arch_for(config))
    vm = machine.kvm.create_vm(num_vcpus=2, nested=config.nested,
                               guest_vhe=config.guest_vhe)
    for vcpu in vm.vcpus:
        machine.kvm.boot_nested(vcpu)
    cpu = vm.vcpus[0].cpu

    def once():
        if benchmark == "hypercall":
            cpu.hvc(0)
        elif benchmark == "device_io":
            from repro.hypervisor.kvm import L1_VIRTIO_BASE
            cpu.mmio_read(L1_VIRTIO_BASE + 0x100)
        else:
            raise ValueError("unsupported benchmark %r" % benchmark)

    once()  # warm up through the real handler
    attribution = Attribution(config=config_name, benchmark=benchmark)
    tracer = _AttributingHandler(machine.kvm, attribution)
    for machine_cpu in machine.cpus:
        machine_cpu.trap_handler = tracer
    once()
    return attribution


def compare_attributions(benchmark="hypercall"):
    """Attribution across the four ARM nested configurations."""
    return {name: attribute_traps(name, benchmark)
            for name in ("arm-nested", "arm-nested-vhe", "neve-nested",
                         "neve-nested-vhe")}


def render_attribution(benchmark="hypercall"):
    data = compare_attributions(benchmark)
    lines = ["Trap attribution per nested %s (one iteration)" % benchmark,
             "%-20s %10s %10s %10s %10s" % (
                 "bucket", "v8.3", "v8.3-vhe", "neve", "neve-vhe")]
    order = ("arm-nested", "arm-nested-vhe", "neve-nested",
             "neve-nested-vhe")
    for bucket in BUCKETS:
        lines.append("%-20s %10d %10d %10d %10d" % tuple(
            [bucket] + [data[c].by_bucket.get(bucket, 0) for c in order]))
    lines.append("%-20s %10d %10d %10d %10d" % tuple(
        ["total"] + [data[c].total for c in order]))
    lines.append("")
    lines.append("Top trapping registers on ARMv8.3 (all removed or "
                 "reduced by NEVE):")
    for name, count in data["arm-nested"].top_registers(8):
        neve_count = data["neve-nested"].by_register.get(name, 0)
        lines.append("  %4dx %-18s -> %dx under NEVE"
                     % (count, name, neve_count))
    return "\n".join(lines)
