"""``python -m repro bench``: the continuous benchmark trajectory.

Runs the microbenchmark suites across every configuration in
:data:`~repro.harness.configs.ALL_CONFIGS` under a shared telemetry
registry, writes the measurement as ``BENCH_<n>.json`` at the repo root
(per config x benchmark simulated cycles and traps, plus the full
registry snapshot), and diffs the run against

* the **previous** ``BENCH_*.json`` in the trajectory, and
* the :mod:`repro.harness.regression` **goldens**,

reusing the goldens' per-metric tolerances where one covers the
(config, benchmark, metric) tuple and the default tolerances below
otherwise.  Any drift outside tolerance exits non-zero and names the
regressed metric — the simulation is deterministic, so out-of-tolerance
movement is always a code change, never noise.

File schema (``repro-bench/1``)::

    {"schema": "repro-bench/1",
     "sequence": <n>,
     "iterations": <per-benchmark iterations>,
     "results": {config: {benchmark: {"cycles": .., "traps": ..}}},
     "metrics": <registry JSON snapshot document>}

Everything is virtual-cycle timestamped; two runs of the same tree
produce byte-identical files (modulo the sequence number — and the
optional ``host`` section below, which records nondeterministic host
wall-clock time and therefore never participates in the
trajectory/golden byte-diffs; ``diff_payloads`` and the "unchanged"
check compare ``results`` only).

``--compare-fastpath`` runs the sweep twice — dispatch fast path
disabled (the reference) and enabled — demands the ``results`` and
``metrics`` sections are byte-identical (the fast path is a pure
speedup; ``san-fastpath-parity`` enforces the same at lint time), and
attaches a ``host`` section (``repro-bench-host/1``) to the written
payload with both runs' wall seconds and cycles-per-host-second plus
the speedup ratio::

    {"schema": "repro-bench-host/1",
     "reference_wall_s": .., "fastpath_wall_s": ..,
     "reference_cycles_per_host_s": .., "fastpath_cycles_per_host_s": ..,
     "speedup": ..}

``--profile`` additionally runs the sweep under the host profiler
(:mod:`repro.profile`) and writes ``PROF_<n>.json`` (the
``repro-profile/1`` document) and ``PROF_<n>.folded`` (collapsed-stack
flamegraph input) next to the ``BENCH_<n>.json`` the run corresponds
to.  Host time is nondeterministic, so the ``PROF_*`` sidecars never
participate in the trajectory/golden byte-diffs — their filenames
deliberately do not match ``BENCH_PATTERN`` — and profiling never
changes the bench payload itself (``san-profile-zero-cycles``).
"""

import json
import re
import sys
import time
from pathlib import Path

from repro.harness.configs import ALL_CONFIGS, make_microbench
from repro.harness.regression import GOLDENS
from repro.metrics.registry import MetricsRegistry
from repro.workloads.microbench import MICROBENCHMARKS

BENCH_SCHEMA = "repro-bench/1"
BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")
DEFAULT_ITERATIONS = 6

#: Fallback relative tolerances for (config, benchmark, metric) tuples no
#: golden covers.  Trap counts are structural (tight); cycle counts are
#: calibrated (looser) — same policy as the goldens themselves.
DEFAULT_TOLERANCES = {"cycles": 0.10, "traps": 0.05}


def tolerance_for(config, benchmark, metric):
    """The golden's tolerance when one covers this tuple, else the
    metric-class default — reused, not duplicated."""
    for golden in GOLDENS:
        if (golden.config, golden.benchmark,
                golden.metric) == (config, benchmark, metric):
            return golden.rel_tol
    return DEFAULT_TOLERANCES[metric]


def run_bench(iterations=DEFAULT_ITERATIONS, configs=None,
              arm_costs=None, x86_costs=None, profiler=None,
              fastpath=None, host_meter=None):
    """Measure every config x benchmark cell under one shared registry.

    Returns the payload dict (without a sequence number — the caller
    assigns it when writing the trajectory file).  *profiler*, when
    given, is a :class:`~repro.profile.profiler.HostProfiler`: the
    sweep runs inside its window with the redundancy observatory bound
    per config.  Profiling is observe-only, so the payload is
    byte-identical with or without it (``san-profile-zero-cycles``).

    *fastpath* forces the dispatch fast path on (True) or off (False)
    for every ARM machine in the sweep (None = machine default).
    *host_meter*, when given, is a dict the run fills with host-side
    measurements — ``wall_ns`` (sweep wall time) and ``cycles`` (total
    simulated cycles across all machines); host time is
    nondeterministic and never lands in the deterministic payload
    sections.
    """
    names = list(configs) if configs is not None else sorted(ALL_CONFIGS)
    registry = MetricsRegistry()
    machines = []
    results = {}
    if profiler is not None:
        profiler.start()
    started_ns = time.perf_counter_ns()  # lint: allow(sim-nondeterminism)
    try:
        for name in names:
            costs = (arm_costs if ALL_CONFIGS[name].platform == "arm"
                     else x86_costs)
            suite = make_microbench(name, costs=costs, registry=registry,
                                    fastpath=fastpath)
            machines.append(suite.machine)
            if profiler is not None:
                profiler.attach_machine(suite.machine, config=name)
            cells = {}
            for benchmark in MICROBENCHMARKS:
                measured = suite.run(benchmark, iterations)
                cells[benchmark] = {"cycles": measured.cycles,
                                    "traps": measured.traps}
            results[name] = cells
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.detach_machine()
    if host_meter is not None:
        host_meter["wall_ns"] = (
            time.perf_counter_ns() - started_ns)  # lint: allow(sim-nondeterminism)
        host_meter["cycles"] = sum(machine.ledger.total
                                   for machine in machines)
    # The registry's virtual clock: total simulated cycles across every
    # machine the run touched (read-only — exporting charges nothing).
    registry.clock = lambda: sum(machine.ledger.total
                                 for machine in machines)
    return {
        "schema": BENCH_SCHEMA,
        "iterations": iterations,
        "results": results,
        "metrics": json.loads(registry.json_snapshot()),
    }


def validate_payload(payload):
    """Schema check for a bench payload; returns a list of problems."""
    problems = []
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append("schema is %r, want %r"
                        % (payload.get("schema"), BENCH_SCHEMA))
    results = payload.get("results")
    if not isinstance(results, dict) or not results:
        problems.append("results missing or empty")
        return problems
    for config, cells in sorted(results.items()):
        if not isinstance(cells, dict) or not cells:
            problems.append("%s: no benchmark cells" % config)
            continue
        for benchmark, cell in sorted(cells.items()):
            for metric in ("cycles", "traps"):
                if not isinstance(cell.get(metric), (int, float)):
                    problems.append("%s/%s: missing %s"
                                    % (config, benchmark, metric))
    metrics = payload.get("metrics")
    if (not isinstance(metrics, dict)
            or metrics.get("schema") != "repro-metrics/1"):
        problems.append("metrics snapshot missing or wrong schema")
    return problems


def diff_payloads(previous, current):
    """Out-of-tolerance movement between two bench payloads.

    Returns a list of ``(config, benchmark, metric, before, after, tol)``
    tuples for every cell present in both payloads whose relative change
    exceeds the (golden-derived) tolerance.  Two-sided on purpose: an
    unexplained improvement is still an unexplained shift in the model.
    """
    regressions = []
    prev_results = previous.get("results", {})
    cur_results = current.get("results", {})
    for config in sorted(set(prev_results) & set(cur_results)):
        prev_cells = prev_results[config]
        cur_cells = cur_results[config]
        for benchmark in sorted(set(prev_cells) & set(cur_cells)):
            for metric in ("cycles", "traps"):
                before = prev_cells[benchmark][metric]
                after = cur_cells[benchmark][metric]
                tol = tolerance_for(config, benchmark, metric)
                if before == 0:
                    ok = after == 0
                else:
                    ok = abs(after - before) / before <= tol
                if not ok:
                    regressions.append((config, benchmark, metric,
                                        before, after, tol))
    return regressions


def check_golden_payload(payload):
    """Check the payload's cells against the goldens directly.  Returns
    ``(golden, measured)`` failures for every golden the payload covers."""
    failures = []
    results = payload.get("results", {})
    for golden in GOLDENS:
        cell = results.get(golden.config, {}).get(golden.benchmark)
        if cell is None:
            continue
        measured = cell[golden.metric]
        if not golden.check(measured):
            failures.append((golden, measured))
    return failures


def find_trajectory(directory):
    """Existing ``BENCH_<n>.json`` files, as ``(n, Path)`` sorted by n."""
    found = []
    for path in Path(directory).iterdir():
        match = BENCH_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def write_payload(payload, directory, sequence):
    payload = dict(payload)
    payload["sequence"] = sequence
    path = Path(directory) / ("BENCH_%d.json" % sequence)
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path


def host_section(ref_meter, fast_meter):
    """The ``repro-bench-host/1`` section from two sweep host meters
    (reference = fast path off, fastpath = on).  Wall seconds are host
    time — nondeterministic by nature, excluded from all byte-diffs."""
    ref_s = ref_meter["wall_ns"] / 1e9
    fast_s = fast_meter["wall_ns"] / 1e9
    return {
        "schema": "repro-bench-host/1",
        "reference_wall_s": round(ref_s, 4),
        "fastpath_wall_s": round(fast_s, 4),
        "reference_cycles_per_host_s": round(ref_meter["cycles"] / ref_s, 1),
        "fastpath_cycles_per_host_s": round(fast_meter["cycles"] / fast_s, 1),
        "speedup": round(ref_s / fast_s, 3),
    }


def main(argv=None, arm_costs=None, x86_costs=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    iterations = DEFAULT_ITERATIONS
    directory = Path(".")
    configs = []
    write = True
    force = False
    profile = False
    compare_fastpath = False
    while argv:
        arg = argv.pop(0)
        if arg == "--iterations" and argv:
            iterations = int(argv.pop(0))
        elif arg == "--dir" and argv:
            directory = Path(argv.pop(0))
        elif arg == "--config" and argv:
            configs.append(argv.pop(0))
        elif arg == "--no-write":
            write = False
        elif arg == "--force":
            force = True
        elif arg == "--profile":
            profile = True
        elif arg == "--compare-fastpath":
            compare_fastpath = True
        elif arg in ("-h", "--help"):
            print("usage: python -m repro bench [--iterations N] "
                  "[--dir PATH] [--config NAME ...] [--no-write] "
                  "[--force] [--profile] [--compare-fastpath]")
            return 0
        else:
            print("bench: unknown argument %r" % arg, file=sys.stderr)
            return 2
    for name in configs:
        if name not in ALL_CONFIGS:
            print("bench: unknown config %r (have: %s)"
                  % (name, ", ".join(sorted(ALL_CONFIGS))), file=sys.stderr)
            return 2

    profiler = None
    if profile:
        from repro.profile.profiler import HostProfiler
        profiler = HostProfiler()
    host = None
    if compare_fastpath:
        # Reference sweep first (fast path off, unprofiled); the
        # recorded payload below is the fast-path run.
        ref_meter = {}
        reference = run_bench(iterations=iterations,
                              configs=configs or None,
                              arm_costs=arm_costs, x86_costs=x86_costs,
                              fastpath=False, host_meter=ref_meter)
    fast_meter = {}
    payload = run_bench(iterations=iterations,
                        configs=configs or None,
                        arm_costs=arm_costs, x86_costs=x86_costs,
                        profiler=profiler,
                        fastpath=True if compare_fastpath else None,
                        host_meter=fast_meter)
    if compare_fastpath:
        if reference["results"] != payload["results"] \
                or reference["metrics"] != payload["metrics"]:
            print("bench: FASTPATH PARITY FAILURE — the fast path "
                  "changed emergent counts; run `python -m repro lint` "
                  "(san-fastpath-parity) to localize", file=sys.stderr)
            return 1
        host = host_section(ref_meter, fast_meter)
        payload["host"] = host
        print("bench: fastpath compare — reference %.3fs "
              "(%.0f cycles/host-s), fastpath %.3fs (%.0f cycles/host-s), "
              "speedup %.2fx; results byte-identical"
              % (host["reference_wall_s"],
                 host["reference_cycles_per_host_s"],
                 host["fastpath_wall_s"],
                 host["fastpath_cycles_per_host_s"],
                 host["speedup"]))
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print("bench: invalid payload: %s" % problem, file=sys.stderr)
        return 1

    failed = False
    golden_failures = check_golden_payload(payload)
    for golden, measured in golden_failures:
        failed = True
        print("bench: GOLDEN REGRESSION %s/%s %s: golden %.0f "
              "(rel_tol %.2f), measured %.1f"
              % (golden.config, golden.benchmark, golden.metric,
                 golden.value, golden.rel_tol, measured))

    trajectory = find_trajectory(directory)
    if trajectory:
        last_sequence, last_path = trajectory[-1]
        previous = json.loads(last_path.read_text())
        for (config, benchmark, metric, before, after,
             tol) in diff_payloads(previous, payload):
            failed = True
            print("bench: TRAJECTORY REGRESSION %s/%s %s: %s had %.1f, "
                  "now %.1f (rel_tol %.2f)"
                  % (config, benchmark, metric, last_path.name,
                     before, after, tol))
        unchanged = previous.get("results") == payload["results"]
    else:
        last_sequence, previous, unchanged = 0, None, False

    if failed:
        print("bench: FAIL — not extending the trajectory",
              file=sys.stderr)
        return 1

    total = sum(len(cells) for cells in payload["results"].values())
    if unchanged and not force:
        # `--force` records the point anyway — used to pin one
        # trajectory entry per change even when the costs held still.
        print("bench: OK — %d cells identical to BENCH_%d.json, "
              "trajectory unchanged" % (total, last_sequence))
        sequence = last_sequence
    elif write:
        sequence = last_sequence + 1
        path = write_payload(payload, directory, sequence)
        print("bench: OK — %d cells written to %s" % (total, path))
    else:
        print("bench: OK — %d cells (not written)" % total)
        sequence = max(last_sequence, 1)
    if profiler is not None:
        write_profile_sidecar(profiler, payload, directory, sequence,
                              write=write)
    return 0


def write_profile_sidecar(profiler, payload, directory, sequence,
                          write=True):
    """The ``--profile`` sidecars: ``PROF_<n>.json`` +
    ``PROF_<n>.folded`` next to the trajectory entry the run
    corresponds to (never byte-diffed — host time is nondeterministic).
    """
    from repro.profile.export import (collapsed_stacks, profile_document,
                                      render_redundancy, write_json)
    document = profile_document(
        profiler, scenario="bench-%d" % sequence,
        meta={"iterations": payload["iterations"],
              "configs": sorted(payload["results"])})
    if write:
        json_path = Path(directory) / ("PROF_%d.json" % sequence)
        write_json(document, json_path)
        folded_path = Path(directory) / ("PROF_%d.folded" % sequence)
        folded_path.write_text(collapsed_stacks(document))
        print("bench: profile sidecar %s (+ %s; host %.1f ms, "
              "excluded from byte-diffs)"
              % (json_path, folded_path.name, document["wall_ns"] / 1e6))
    print(render_redundancy(document, top=0))
    return document


if __name__ == "__main__":
    sys.exit(main())
