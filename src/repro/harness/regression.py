"""Golden-value regression checking.

EXPERIMENTS.md records what this repository measures; this module makes
those numbers machine-checkable, so a change that silently shifts a
calibrated result fails loudly.  Goldens carry a tolerance: trap counts
are exact-ish structural properties (tight), cycle counts are calibrated
quantities (looser).
"""

from dataclasses import dataclass

from repro.harness.configs import make_microbench


@dataclass(frozen=True)
class Golden:
    config: str
    benchmark: str
    metric: str  # "cycles" | "traps"
    value: float
    rel_tol: float

    def check(self, measured):
        if self.value == 0:
            return measured == 0
        return abs(measured - self.value) / self.value <= self.rel_tol


#: The repository's own measured values (EXPERIMENTS.md), as goldens.
GOLDENS = (
    # Trap counts: structural, tight tolerance.
    Golden("arm-nested", "hypercall", "traps", 126, 0.03),
    Golden("arm-nested", "device_io", "traps", 128, 0.03),
    Golden("arm-nested", "virtual_ipi", "traps", 261, 0.05),
    Golden("arm-nested-vhe", "hypercall", "traps", 76, 0.05),
    Golden("neve-nested", "hypercall", "traps", 16, 0.08),
    Golden("neve-nested-vhe", "hypercall", "traps", 14, 0.08),
    Golden("x86-nested", "hypercall", "traps", 5, 0.0),
    Golden("x86-nested", "virtual_ipi", "traps", 9, 0.0),
    Golden("arm-vm", "hypercall", "traps", 1, 0.0),
    Golden("arm-vm", "virtual_eoi", "traps", 0, 0.0),
    # Cycle counts: calibrated, looser tolerance.
    Golden("arm-vm", "hypercall", "cycles", 3_031, 0.10),
    Golden("arm-nested", "hypercall", "cycles", 413_556, 0.10),
    Golden("arm-nested-vhe", "hypercall", "cycles", 272_596, 0.10),
    Golden("neve-nested", "hypercall", "cycles", 79_136, 0.10),
    Golden("neve-nested-vhe", "hypercall", "cycles", 84_134, 0.10),
    Golden("x86-vm", "hypercall", "cycles", 1_250, 0.10),
    Golden("x86-nested", "hypercall", "cycles", 33_216, 0.10),
    Golden("arm-vm", "virtual_eoi", "cycles", 67, 0.10),
    Golden("x86-vm", "virtual_eoi", "cycles", 312, 0.10),
)


def check_goldens(iterations=6):
    """Measure every golden; returns ``(passed, failures)`` where each
    failure is ``(golden, measured)``."""
    suites = {}
    failures = []
    passed = 0
    for golden in GOLDENS:
        if golden.config not in suites:
            suites[golden.config] = make_microbench(golden.config)
        result = suites[golden.config].run(golden.benchmark, iterations)
        measured = getattr(result, golden.metric)
        if golden.check(measured):
            passed += 1
        else:
            failures.append((golden, measured))
    return passed, failures


def render_regression(iterations=6):
    passed, failures = check_goldens(iterations)
    lines = ["Golden regression: %d/%d checks passed"
             % (passed, passed + len(failures))]
    for golden, measured in failures:
        lines.append("  FAIL %s/%s %s: golden %.0f, measured %.0f"
                     % (golden.config, golden.benchmark, golden.metric,
                        golden.value, measured))
    return "\n".join(lines)
