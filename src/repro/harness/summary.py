"""One-shot reproduction verdict (the artifact-evaluation entry point).

Runs the repository's verification layers in order of strength and prints
a PASS/FAIL verdict per claim:

1. **Spec data** — the register registry is internally consistent with
   the paper's classification tables (``repro.analysis.spec``).
2. **Conformance** — the CPU model obeys the NEVE specification tables.
3. **Goldens** — the measured numbers in EXPERIMENTS.md still hold.
4. **Paper claims** — the headline quantitative claims of the paper.

``python -m repro`` runs this.
"""

from dataclasses import dataclass


@dataclass
class Check:
    name: str
    passed: bool
    detail: str = ""


def _claim_checks():
    from repro.harness.configs import make_microbench
    from repro.workloads.appbench import AppBenchmark

    suites = {name: make_microbench(name)
              for name in ("arm-vm", "arm-nested", "arm-nested-vhe",
                           "neve-nested", "x86-vm", "x86-nested")}
    hypercall = {name: suite.run("hypercall", iterations=6)
                 for name, suite in suites.items()}
    checks = []

    traps = hypercall["arm-nested"].traps
    checks.append(Check(
        "exit multiplication: ~126 traps per nested hypercall (v8.3)",
        118 <= traps <= 134, "measured %.0f" % traps))

    reduction = traps / hypercall["neve-nested"].traps
    checks.append(Check(
        "NEVE cuts traps by more than 6x", reduction >= 6,
        "measured %.1fx" % reduction))

    speedup = (hypercall["arm-nested"].cycles
               / hypercall["neve-nested"].cycles)
    checks.append(Check(
        "NEVE up to 5x faster than ARMv8.3 (hypercall)",
        3.5 <= speedup <= 6.5, "measured %.1fx" % speedup))

    arm_rel = hypercall["neve-nested"].cycles / hypercall[
        "arm-vm"].cycles
    x86_rel = hypercall["x86-nested"].cycles / hypercall[
        "x86-vm"].cycles
    checks.append(Check(
        "NEVE's relative overhead comparable to x86's",
        0.5 <= arm_rel / x86_rel <= 2.0,
        "NEVE %.0fx vs x86 %.0fx" % (arm_rel, x86_rel)))

    app = AppBenchmark(iterations=5)
    wins = [w for w in ("netperf_tcp_maerts", "nginx", "memcached",
                        "mysql")
            if app.run(w, "neve-nested").overhead
            < app.run(w, "x86-nested").overhead]
    checks.append(Check(
        "NEVE beats x86 on MAERTS/Nginx/Memcached/MySQL (Figure 2)",
        len(wins) == 4, "wins: %s" % ", ".join(wins)))

    memcached = app.run("memcached", "arm-nested").overhead
    checks.append(Check(
        "ARMv8.3 network workloads collapse (memcached >20x)",
        memcached > 20, "measured %.1fx" % memcached))
    return checks


def run_summary(iterations=6):
    """Run all verification layers; returns ``[Check]``."""
    checks = []

    from repro.analysis.spec import check_spec
    spec_findings = check_spec()
    checks.append(Check(
        "spec tables static conformance (registry vs Tables 2-5)",
        not spec_findings, "%d findings" % len(spec_findings)))

    from repro.core.conformance import run_conformance
    conformance = run_conformance()
    checks.append(Check(
        "architecture conformance (%d-check matrix)" % conformance.checks,
        conformance.passed,
        "%d violations" % len(conformance.violations)))

    from repro.harness.regression import check_goldens
    passed, failures = check_goldens(iterations=iterations)
    checks.append(Check(
        "EXPERIMENTS.md goldens (%d values)" % (passed + len(failures)),
        not failures, "%d failed" % len(failures)))

    checks.extend(_claim_checks())
    return checks


def render_summary(iterations=6):
    checks = run_summary(iterations)
    width = max(len(check.name) for check in checks)
    lines = ["NEVE reproduction verdict", "=" * (width + 18)]
    for check in checks:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append("[%s] %-*s %s" % (verdict, width, check.name,
                                       check.detail))
    total = sum(1 for check in checks if check.passed)
    lines.append("=" * (width + 18))
    lines.append("%d/%d claims reproduced" % (total, len(checks)))
    return "\n".join(lines), all(check.passed for check in checks)


def main():
    text, ok = render_summary()
    print(text)
    return 0 if ok else 1
