"""Generators for the paper's figures and in-text studies.

* :func:`figure2` — the application benchmark overheads.
* :func:`notification_study` — the Section 7.2 Memcached analysis
  (experiment E6): notification rate versus backend speed, including the
  busy-wait experiment that made x86 behave like NEVE.
* :func:`vmcs_shadowing_study` — the Section 8 VMCS-shadowing ablation
  (experiment E9).
* :func:`hypervisor_design_study` — the Section 6.5 discussion of how
  much each hypervisor design benefits from NEVE (experiment E10).
"""

from repro.harness.configs import FIGURE2_CONFIGS
from repro.hypervisor.virtio import VirtioQueue
from repro.workloads.appbench import AppBenchmark
from repro.workloads.microbench import ArmMicrobench, X86Microbench
from repro.workloads.profiles import FIGURE2_WORKLOADS

#: Figure 2 values the paper states in prose, for report comparison.
PAPER_FIGURE2_PROSE = {
    ("hackbench", "arm-nested"): 15.0,
    ("hackbench", "arm-nested-vhe"): 11.0,
    ("kernbench", "arm-nested"): 1.33,
    ("kernbench", "arm-nested-vhe"): 1.26,
    ("specjvm2008", "arm-nested"): 1.24,
    ("specjvm2008", "arm-nested-vhe"): 1.14,
    ("memcached", "arm-nested"): 40.0,  # "more than 40 times"
    ("memcached", "neve-nested"): 2.5,
    ("memcached", "x86-nested"): 8.0,
}


def figure2(iterations=8, workloads=None):
    """Figure 2 data: {workload: {config: overhead}}."""
    app = AppBenchmark(iterations=iterations)
    raw = app.figure2(workloads=workloads)
    return {w: {c: r.overhead for c, r in row.items()}
            for w, row in raw.items()}


def render_figure2(iterations=8):
    data = figure2(iterations)
    lines = ["Figure 2: normalized performance overhead "
             "(1.0 = native; lower is better)"]
    header = "%-20s" % "workload"
    for config in FIGURE2_CONFIGS:
        header += " %11s" % config.replace("nested", "n")
    lines.append(header)
    for workload in FIGURE2_WORKLOADS:
        line = "%-20s" % workload
        for config in FIGURE2_CONFIGS:
            line += " %11.2f" % data[workload][config]
        lines.append(line)
    return "\n".join(lines)


def notification_study(backend_speedups=(0.5, 1.0, 2.0, 3.0, 5.0),
                       base_service=9_000, interval=8_000,
                       wakeup=4_000, packets=4_000):
    """E6: kicks-per-packet as a function of backend speed.

    Reproduces Section 7.2's mechanism: "the quicker the backend driver
    handles packets, the more the frontend driver needs to notify".  The
    busy-wait counterpart (paper: adding delay in the x86 L1 backend
    brought Memcached overhead close to NEVE's) is the speedup < 1 end of
    the sweep.
    """
    rows = []
    times = [i * interval for i in range(packets)]
    for speedup in backend_speedups:
        queue = VirtioQueue(
            backend_service_cycles=max(int(base_service / speedup), 1),
            wakeup_latency_cycles=wakeup)
        stats = queue.simulate(times)
        rows.append({
            "backend_speedup": speedup,
            "kick_ratio": stats.kick_ratio,
            "kicks": stats.kicks,
            "suppressed": stats.suppressed,
        })
    return rows


def render_notification_study():
    rows = notification_study()
    lines = ["E6: virtio notifications vs backend speed "
             "(Section 7.2 mechanism)",
             "%14s %12s %10s %12s" % ("backend speed", "kick ratio",
                                      "kicks", "suppressed")]
    for row in rows:
        lines.append("%13.1fx %12.3f %10d %12d"
                     % (row["backend_speedup"], row["kick_ratio"],
                        row["kicks"], row["suppressed"]))
    return "\n".join(lines)


def vmcs_shadowing_study(iterations=10):
    """E9: x86 nested microbenchmarks with VMCS shadowing on/off."""
    rows = []
    with_shadow = X86Microbench(nested=True, shadowing=True)
    without = X86Microbench(nested=True, shadowing=False)
    for bench in ("hypercall", "device_io", "virtual_ipi"):
        on = with_shadow.run(bench, iterations)
        off = without.run(bench, iterations)
        rows.append({
            "benchmark": bench,
            "shadowing_cycles": on.cycles,
            "no_shadowing_cycles": off.cycles,
            "shadowing_traps": on.traps,
            "no_shadowing_traps": off.traps,
            "improvement": off.cycles / on.cycles if on.cycles else 0.0,
        })
    return rows


def render_vmcs_shadowing_study(iterations=10):
    rows = vmcs_shadowing_study(iterations)
    lines = ["E9: VMCS shadowing ablation (x86 nested)",
             "%-12s %12s %12s %8s %8s %8s" % (
                 "benchmark", "shadow cyc", "no-shadow", "tr(on)",
                 "tr(off)", "gain")]
    for row in rows:
        lines.append("%-12s %12.0f %12.0f %8.1f %8.1f %7.2fx" % (
            row["benchmark"], row["shadowing_cycles"],
            row["no_shadowing_cycles"], row["shadowing_traps"],
            row["no_shadowing_traps"], row["improvement"]))
    return "\n".join(lines)


def hypervisor_design_study(iterations=10):
    """E10: trap counts per guest-hypervisor design (Section 6.5).

    Compares the hosted KVM design (full EL1 context switch per exit)
    against a Xen-like standalone design (no per-exit EL1 switch), for
    both ARMv8.3 and NEVE.
    """
    from repro.harness.configs import arm_arch_for, ALL_CONFIGS
    rows = []
    for nested in ("nv", "neve"):
        for design in ("kvm", "standalone"):
            config = ALL_CONFIGS["arm-nested" if nested == "nv"
                                 else "neve-nested"]
            suite = ArmMicrobench(nested=nested, guest_vhe=False,
                                  arch=arm_arch_for(config))
            suite.vm.guest_hyp.design = design
            result = suite.run("hypercall", iterations)
            rows.append({
                "nested": nested,
                "design": design,
                "cycles": result.cycles,
                "traps": result.traps,
            })
    return rows


def render_hypervisor_design_study(iterations=10):
    rows = hypervisor_design_study(iterations)
    lines = ["E10: hypervisor design ablation (Section 6.5), "
             "nested hypercall",
             "%-8s %-12s %12s %8s" % ("arch", "design", "cycles", "traps")]
    for row in rows:
        lines.append("%-8s %-12s %12.0f %8.1f" % (
            row["nested"], row["design"], row["cycles"], row["traps"]))
    return "\n".join(lines)
