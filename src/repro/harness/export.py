"""Machine-readable results export.

Writes every experiment's data — the microbenchmark tables, the trap
counts, Figure 2, and the ablations — as one JSON document (plus optional
per-table CSVs), so external tooling can plot or diff runs without
re-parsing text reports.
"""

import csv
import io
import json

from repro.harness.configs import FIGURE2_CONFIGS, TABLE1_CONFIGS, TABLE6_CONFIGS
from repro.harness.figures import (
    figure2,
    notification_study,
    vmcs_shadowing_study,
)
from repro.harness.tables import table1, table6, table7


def collect_results(iterations=6):
    """Run every experiment and return one JSON-serializable dict."""
    return {
        "paper": "NEVE: Nested Virtualization Extensions for ARM "
                 "(SOSP 2017)",
        "units": {"cycles": "simulated CPU cycles",
                  "traps": "transitions into the host hypervisor",
                  "overhead": "normalized to native (1.0 = native)"},
        "table1": table1(iterations),
        "table6": table6(iterations),
        "table7": table7(iterations),
        "figure2": figure2(iterations),
        "vmcs_shadowing": vmcs_shadowing_study(iterations),
        "virtio_notifications": notification_study(),
    }


def export_json(path, iterations=6, results=None):
    """Write the full result set to *path*; returns the dict."""
    if results is None:
        results = collect_results(iterations)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return results


def table_to_csv(rows, columns=None):
    """Render a list-of-dicts table as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0])
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns,
                            extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def figure2_to_csv(data=None, iterations=6):
    """Figure 2 as CSV: one row per workload, one column per config."""
    if data is None:
        data = figure2(iterations)
    rows = []
    for workload, row in data.items():
        entry = {"workload": workload}
        entry.update({config: round(row[config], 3)
                      for config in FIGURE2_CONFIGS if config in row})
        rows.append(entry)
    return table_to_csv(rows, ["workload"] + list(FIGURE2_CONFIGS))


def export_csv_bundle(directory, iterations=6):
    """Write table1/table6/table7/figure2 CSVs into *directory*."""
    import os
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for name, rows, cols in (
        ("table1", table1(iterations),
         ["benchmark"] + list(TABLE1_CONFIGS)),
        ("table6", table6(iterations),
         ["benchmark"] + list(TABLE6_CONFIGS)),
        ("table7", table7(iterations),
         ["benchmark"] + list(TABLE6_CONFIGS)),
    ):
        path = os.path.join(directory, name + ".csv")
        with open(path, "w") as handle:
            handle.write(table_to_csv(rows, cols))
        paths[name] = path
    fig_path = os.path.join(directory, "figure2.csv")
    with open(fig_path, "w") as handle:
        handle.write(figure2_to_csv(iterations=iterations))
    paths["figure2"] = fig_path
    return paths


def main(argv=None):
    import sys
    argv = argv if argv is not None else sys.argv[1:]
    target = argv[0] if argv else "results.json"
    if target.endswith(".json"):
        export_json(target)
        print("wrote", target)
    else:
        paths = export_csv_bundle(target)
        for name, path in paths.items():
            print("wrote", path)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
