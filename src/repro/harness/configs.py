"""The paper's platform configurations.

Section 5/7 evaluate seven configurations; Figure 2's legend names them:

=====================  ======================================================
name                   meaning
=====================  ======================================================
``arm-vm``             ARM, run in a VM (no nesting) — "ARMv8.3 VM"
``arm-nested``         nested VM, ARMv8.3 trap-and-emulate, non-VHE guest
``arm-nested-vhe``     nested VM, ARMv8.3, VHE guest hypervisor
``neve-nested``        nested VM, NEVE, non-VHE guest hypervisor
``neve-nested-vhe``    nested VM, NEVE, VHE guest hypervisor
``x86-vm``             x86, run in a VM
``x86-nested``         x86 nested VM (Turtles KVM + VMCS shadowing)
=====================  ======================================================
"""

from dataclasses import dataclass

from repro.arch.features import ArchConfig, ArchVersion, GicVersion
from repro.hypervisor.kvm import Machine
from repro.metrics.instrument import MachineMetrics
from repro.workloads.microbench import ArmMicrobench, X86Microbench
from repro.x86.kvm_x86 import X86Machine


@dataclass(frozen=True)
class PlatformConfig:
    name: str
    platform: str  # "arm" | "x86"
    nested: str  # "none" | "nv" | "neve" (ARM) / "none" | "nested" (x86)
    guest_vhe: bool = False
    shadowing: bool = True  # x86 only
    label: str = ""

    @property
    def is_nested(self):
        return self.nested != "none"


ALL_CONFIGS = {
    "arm-vm": PlatformConfig("arm-vm", "arm", "none",
                             label="ARMv8.3 VM"),
    "arm-nested": PlatformConfig("arm-nested", "arm", "nv",
                                 label="ARMv8.3 Nested"),
    "arm-nested-vhe": PlatformConfig("arm-nested-vhe", "arm", "nv",
                                     guest_vhe=True,
                                     label="ARMv8.3 Nested VHE"),
    "neve-nested": PlatformConfig("neve-nested", "arm", "neve",
                                  label="NEVE Nested"),
    "neve-nested-vhe": PlatformConfig("neve-nested-vhe", "arm", "neve",
                                      guest_vhe=True,
                                      label="NEVE Nested VHE"),
    "x86-vm": PlatformConfig("x86-vm", "x86", "none", label="x86 VM"),
    "x86-nested": PlatformConfig("x86-nested", "x86", "nested",
                                 label="x86 Nested"),
}

#: Figure 2 series order, matching the paper's legend.
FIGURE2_CONFIGS = (
    "arm-vm", "arm-nested", "arm-nested-vhe",
    "neve-nested", "neve-nested-vhe",
    "x86-vm", "x86-nested",
)

#: Table 1 columns (ARMv8.3 and x86 only — pre-NEVE).
TABLE1_CONFIGS = ("arm-vm", "arm-nested", "arm-nested-vhe",
                  "x86-vm", "x86-nested")

#: Table 6/7 columns.
TABLE6_CONFIGS = ("arm-nested", "arm-nested-vhe",
                  "neve-nested", "neve-nested-vhe", "x86-nested")


def arm_arch_for(config):
    """The architecture model a configuration needs."""
    if config.nested == "neve":
        return ArchConfig(version=ArchVersion.V8_4, gic=GicVersion.V3)
    return ArchConfig(version=ArchVersion.V8_3, gic=GicVersion.V3)


def make_microbench(name, costs=None, registry=None, fastpath=None):
    """Build a ready-to-run microbenchmark suite for a configuration.

    ``costs`` overrides the platform's calibrated :class:`CostModel`
    (the bench pipeline's regression tests perturb it).  ``registry``,
    when given, attaches a :class:`MachineMetrics` facade (config label =
    *name*) to the machine *before* it boots, so the registry mirrors
    reconcile exactly with the legacy counters.  ``fastpath`` is passed
    through to :class:`Machine` (None = machine default; the x86 model
    has no dispatch ladder to precompile, so it is ignored there).
    """
    config = ALL_CONFIGS[name]
    if config.platform == "arm":
        machine = (Machine(arch=arm_arch_for(config), fastpath=fastpath)
                   if costs is None
                   else Machine(arch=arm_arch_for(config), costs=costs,
                                fastpath=fastpath))
        if registry is not None:
            MachineMetrics(registry, config=name).attach_machine(machine)
        return ArmMicrobench(machine=machine,
                             nested=config.nested,
                             guest_vhe=config.guest_vhe)
    machine = X86Machine(costs=costs)
    if registry is not None:
        MachineMetrics(registry, config=name).attach_machine(machine)
    return X86Microbench(machine=machine,
                         nested=config.is_nested,
                         shadowing=config.shadowing)
