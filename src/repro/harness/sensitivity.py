"""Sensitivity and crossover analysis over the Figure 2 model.

The paper's comparison between NEVE and x86 depends on two workload
properties: how interrupt-heavy the workload is (events per second) and
how much faster the x86 testbed runs it natively (Section 7.2 reports a
3x memcached gap).  This module maps that trade-off space:

* :func:`overhead_curve` — overhead as a function of event rate, per
  configuration (where in the rate spectrum nesting becomes unusable);
* :func:`neve_x86_crossover_speedup` — the x86 native-speed advantage at
  which NEVE starts winning for a given event mix (the paper's four
  NEVE-wins workloads sit on one side of this line, Apache on the other);
* :func:`breakeven_rate` — the event rate at which a configuration's
  overhead passes a threshold (e.g. 2x native).
"""

from repro.workloads.appbench import cost_table
from repro.workloads.profiles import NATIVE_CYCLES_PER_SEC


def overhead_at(config_name, injection_rate, kick_rate=0.0,
                ipi_rate=0.0, native_cycles=NATIVE_CYCLES_PER_SEC,
                io_multiplier=1.0):
    """Normalized overhead for an explicit event mix (linear model)."""
    costs = cost_table(config_name)
    demand = (injection_rate * costs.injection
              + kick_rate * costs.kick) * io_multiplier
    demand += ipi_rate * costs.ipi
    return 1.0 + demand / native_cycles


def overhead_curve(config_name, rates, event="injection", **kwargs):
    """``[(rate, overhead)]`` for a sweep over one event type."""
    out = []
    for rate in rates:
        params = {"injection_rate": 0.0, "kick_rate": 0.0,
                  "ipi_rate": 0.0}
        params[event + "_rate"] = rate
        out.append((rate, overhead_at(config_name, **params, **kwargs)))
    return out


def breakeven_rate(config_name, threshold=2.0, event="injection",
                   native_cycles=NATIVE_CYCLES_PER_SEC):
    """Event rate at which *config_name* reaches *threshold* overhead."""
    costs = cost_table(config_name)
    per_event = getattr(costs, event)
    if per_event <= 0:
        return float("inf")
    return (threshold - 1.0) * native_cycles / per_event


def neve_x86_crossover_speedup(injection_rate, kick_rate=0.0,
                               io_multiplier=1.0):
    """The x86 native-speed advantage S* above which NEVE wins.

    NEVE overhead:  1 + r·c_neve / C
    x86 overhead:   1 + r·c_x86·m / (C/S)

    They cross at S* = c_neve / (c_x86 · m): if x86 hardware is more
    than S* faster on a workload, its per-event overhead (normalized to
    its own faster native run) exceeds NEVE's — the Section 7.2 anomaly
    expressed as a boundary.
    """
    neve = cost_table("neve-nested")
    x86 = cost_table("x86-nested")
    total = injection_rate + kick_rate
    if total <= 0:
        raise ValueError("need a non-zero event mix")
    w_inj = injection_rate / total
    w_kick = kick_rate / total
    c_neve = w_inj * neve.injection + w_kick * neve.kick
    c_x86 = (w_inj * x86.injection + w_kick * x86.kick) * io_multiplier
    return c_neve / c_x86


def neve_wins(injection_rate, kick_rate, x86_speedup, io_multiplier=1.0):
    """Does NEVE beat x86 for this mix and native-speed gap?"""
    return x86_speedup > neve_x86_crossover_speedup(
        injection_rate, kick_rate, io_multiplier)


def render_sensitivity():
    lines = ["Sensitivity analysis: when does NEVE beat x86 nested?",
             "",
             "Break-even event rates (overhead reaches 2x native):"]
    for config in ("arm-nested", "arm-nested-vhe", "neve-nested",
                   "x86-nested"):
        rate = breakeven_rate(config)
        lines.append("  %-16s %10.0f injections/s" % (config, rate))
    lines.append("")
    lines.append("NEVE-vs-x86 crossover (x86 native speedup needed for "
                 "NEVE to win):")
    for label, mult in (("per-exit costs alone", 1.0),
                        ("with the 2.5x x86 I/O-exit anomaly", 2.5)):
        s_star = neve_x86_crossover_speedup(1.0, 0.5, io_multiplier=mult)
        lines.append("  %-38s S* = %.2f" % (label, s_star))
    lines.append("")
    lines.append("Reading: memcached (x86 3x faster natively, ~1.25x "
                 "extra exits) sits")
    lines.append("above the boundary, so NEVE wins — exactly Figure 2.")
    return "\n".join(lines)
