"""Experiment harness: the paper's seven platform configurations, table
and figure generators, and the text report CLI."""

from repro.harness.configs import (
    ALL_CONFIGS,
    FIGURE2_CONFIGS,
    PlatformConfig,
    make_microbench,
)

__all__ = [
    "ALL_CONFIGS",
    "FIGURE2_CONFIGS",
    "PlatformConfig",
    "make_microbench",
]
