"""ASCII rendering of the paper's figures.

Terminal-friendly bar charts so the repository's artifacts can be eyeballed
against the paper's Figure 2 without a plotting stack (the environment is
offline).  The dual-scale layout mirrors the figure: the paper splits its
y-axis at 4x because the ARMv8.3 bars dwarf everything else.
"""

from repro.harness.configs import ALL_CONFIGS, FIGURE2_CONFIGS
from repro.workloads.profiles import FIGURE2_WORKLOADS

BAR_WIDTH = 46


def _bar(value, scale, width=BAR_WIDTH):
    filled = min(width, max(1, int(round(value / scale * width))))
    return "█" * filled


def render_figure2_chart(data=None, iterations=6):
    """Horizontal-bar Figure 2.  *data* is {workload: {config: overhead}}
    (computed if omitted)."""
    if data is None:
        from repro.harness.figures import figure2
        data = figure2(iterations=iterations)
    peak = max(max(row.values()) for row in data.values())
    lines = [
        "Figure 2 — normalized performance overhead (1.0 = native)",
        "bar scale: full width = %.0fx" % peak,
        "",
    ]
    for workload in FIGURE2_WORKLOADS:
        if workload not in data:
            continue
        lines.append(workload)
        row = data[workload]
        for config in FIGURE2_CONFIGS:
            if config not in row:
                continue
            value = row[config]
            label = ALL_CONFIGS[config].label
            lines.append("  %-22s %6.2f %s"
                         % (label, value, _bar(value, peak)))
        lines.append("")
    return "\n".join(lines)


def render_trap_chart():
    """Bar chart of Table 7's hypercall trap counts — the paper's story
    in one picture."""
    from repro.harness.configs import make_microbench
    counts = {}
    for config in ("arm-nested", "arm-nested-vhe", "neve-nested",
                   "neve-nested-vhe", "x86-nested"):
        counts[config] = make_microbench(config).run(
            "hypercall", iterations=4).traps
    peak = max(counts.values())
    lines = ["Traps to the host hypervisor per nested hypercall", ""]
    for config, value in counts.items():
        lines.append("  %-22s %5.0f %s"
                     % (ALL_CONFIGS[config].label, value,
                        _bar(value, peak)))
    lines.append("")
    lines.append("  (a VM takes exactly 1)")
    return "\n".join(lines)
