"""RISC-V H-extension CSR files.

Two groups matter for the nested-virtualization cost structure:

* **hypervisor CSRs** (``h*``): trap configuration, guest address
  translation (``hgatp``), interrupt delegation — the RISC-V analogue of
  ARM's Table 3 "VM Trap Control" group;
* **virtual-supervisor CSRs** (``vs*``): the hardware-banked shadow of
  the supervisor state a guest runs on — the analogue of ARM's "VM
  Execution Control" group.  RISC-V bakes the banking into hardware (a
  hypervisor never saves/restores the *active* supervisor CSRs for its
  guest; it writes the ``vs*`` bank), but a *deprivileged* hypervisor's
  accesses to either group take virtual-instruction exceptions — the
  same exit multiplication ARM suffers, slightly smaller because the
  ``vs*`` bank is leaner than ARM's EL1 context.
"""

#: Hypervisor CSRs a KVM-style world switch touches (trap config group).
HS_CSRS = (
    "hstatus",
    "hedeleg",
    "hideleg",
    "hgatp",  # guest address translation (the VTTBR analogue)
    "hcounteren",
    "htimedelta",  # the CNTVOFF analogue
    "hvip",  # virtual interrupt pending (injection)
    "hgeie",
)

#: Virtual-supervisor CSRs context-switched per guest (banked state).
VS_CSRS = (
    "vsstatus",
    "vsie",
    "vstvec",
    "vsscratch",
    "vsepc",
    "vscause",
    "vstval",
    "vsip",
    "vsatp",
)

#: Exception context read on every trap into the hypervisor.
TRAP_CONTEXT_CSRS = ("scause", "sepc", "stval", "htval", "htinst")

#: The NEVE-style proposal for RISC-V: CSRs whose guest-hypervisor
#: accesses can be deferred to a swap page in memory — everything that
#: only takes effect when the next world runs.  ``hvip`` writes keep
#: trapping (interrupt injection has immediate effect), as do reads of
#: the hardware-updated ``vsip``.
SWAP_CSRS = frozenset(HS_CSRS + VS_CSRS + TRAP_CONTEXT_CSRS) - frozenset(
    {"hvip", "vsip"})


class CsrFile:
    """A flat CSR bank."""

    def __init__(self):
        self._values = {}

    def read(self, name):
        self._check(name)
        return self._values.get(name, 0)

    def write(self, name, value):
        self._check(name)
        self._values[name] = value & 0xFFFFFFFFFFFFFFFF

    @staticmethod
    def _check(name):
        if name not in HS_CSRS and name not in VS_CSRS \
                and name not in TRAP_CONTEXT_CSRS:
            raise KeyError("unknown CSR %r" % name)
