"""RISC-V hypervisor-extension counterpoint (the paper's Section 8).

"RISC-V is an emerging architecture for which virtualization support is
being explored.  NEVE provides an important counterpoint to x86 practices
and shows how acceptable nested virtualization performance can be
achieved on RISC-style architectures."

This package models the ratified RISC-V H-extension at the same altitude
as the ARM model: HS/VS privilege modes, the ``h*`` and ``vs*`` CSR
files, the virtual-instruction exception that deprivileged hypervisors
take on hypervisor CSRs, and a KVM-style world switch — then applies the
NEVE recipe (defer the swap-class CSRs to memory) to show that the
paper's mechanism transfers off ARM.
"""

from repro.riscv.csrs import HS_CSRS, SWAP_CSRS, VS_CSRS
from repro.riscv.hext import RiscvMicrobench, RiscvNestedModel

__all__ = [
    "HS_CSRS",
    "RiscvMicrobench",
    "RiscvNestedModel",
    "SWAP_CSRS",
    "VS_CSRS",
]
