"""Nested virtualization on the RISC-V H-extension, with and without a
NEVE-style deferral mechanism.

The structure mirrors the ARM finding exactly: a guest hypervisor
deprivileged to VS-mode takes a *virtual instruction exception* on every
``h*``/``vs*`` CSR access and on ``sret``, so one nested exit multiplies
into the world-switch's whole CSR footprint.  Applying the paper's recipe
— defer the swap-class CSRs to a memory page, trap only on
immediate-effect registers — collapses the count, demonstrating Section
8's claim that the mechanism is about RISC-style state handling, not
about ARM specifically.
"""

from dataclasses import dataclass

from repro.metrics.counters import ExitReason, TrapCounter
from repro.metrics.cycles import ARM_COSTS, CycleLedger
from repro.riscv.csrs import (
    HS_CSRS,
    SWAP_CSRS,
    TRAP_CONTEXT_CSRS,
    VS_CSRS,
    CsrFile,
)


@dataclass
class RiscvCosts:
    """RISC-V per-operation costs (same 2.4 GHz-class calibration basis
    as the ARM model; trap costs follow the paper's interchangeability
    argument)."""

    csr_access: int = 8
    trap_entry: int = 70
    trap_return: int = 64
    mem_access: int = 4
    instr: int = 1


class RiscvNestedModel:
    """A VS-mode guest hypervisor running one exit round trip."""

    def __init__(self, neve_like=False):
        self.neve_like = neve_like
        self.costs = RiscvCosts()
        self.ledger = CycleLedger()
        self.traps = TrapCounter()
        self.vs_bank = CsrFile()  # emulated banked state (host-held)
        self.swap_page = {}
        # Host-side handling cost per virtual-instruction exception:
        # calibrated like the ARM L0 (full switch to the host kernel).
        self.host_handling_cycles = 2_600

    # -- primitive: one CSR access by the deprivileged hypervisor ---------

    def csr_access(self, name, is_write, value=0):
        self.ledger.charge(self.costs.csr_access, "csr")
        if self.neve_like and name in SWAP_CSRS:
            # Deferred to the swap page: an ordinary memory access.
            self.ledger.charge(self.costs.mem_access, "swap_page")
            if is_write:
                self.swap_page[name] = value
                return None
            return self.swap_page.get(name, 0)
        return self._virtual_instruction_trap(name, is_write, value)

    def _virtual_instruction_trap(self, name, is_write, value):
        self.traps.record(ExitReason.SYSREG_TRAP)
        self.ledger.charge(self.costs.trap_entry, "trap")
        self.ledger.charge(self.host_handling_cycles, "host")
        self.ledger.charge(self.costs.trap_return, "trap")
        if is_write:
            self.vs_bank.write(name, value)
            return None
        return self.vs_bank.read(name)

    def sret(self):
        """The guest hypervisor's return to its guest: always traps (the
        eret analogue), NEVE-like deferral or not."""
        self.traps.record(ExitReason.ERET_TRAP)
        self.ledger.charge(self.costs.trap_entry, "trap")
        self.ledger.charge(self.host_handling_cycles + 1_800, "host")
        self.ledger.charge(self.costs.trap_return, "trap")

    # -- the KVM RISC-V world switch --------------------------------------

    def exit_round_trip(self):
        """One nested-VM exit handled by the deprivileged hypervisor."""
        # Initial exit from the nested VM reaches the host first.
        self.traps.record(ExitReason.HVC)
        self.ledger.charge(self.costs.trap_entry
                           + self.host_handling_cycles
                           + self.costs.trap_return, "trap")
        # Read the trap context.
        for name in TRAP_CONTEXT_CSRS:
            self.csr_access(name, is_write=False)
        # Save the guest's vs* bank, restore its own host expectations.
        for name in VS_CSRS:
            self.csr_access(name, is_write=False)
        # Handle (kernel work, native speed).
        self.ledger.charge(300 * self.costs.instr, "kernel")
        # Reprogram trap configuration and guest translation.
        for name in HS_CSRS:
            self.csr_access(name, is_write=True, value=1)
        # Restore the guest's vs* bank and return.
        for name in VS_CSRS:
            self.csr_access(name, is_write=True, value=1)
        self.sret()

    def measure(self, iterations=10):
        self.exit_round_trip()  # warm up
        cycles, traps = self.ledger.total, self.traps.total
        for _ in range(iterations):
            self.exit_round_trip()
        return ((self.ledger.total - cycles) / iterations,
                (self.traps.total - traps) / iterations)


class RiscvMicrobench:
    """Hypercall-style comparison: trap-and-emulate vs NEVE-like."""

    def run(self, iterations=10):
        base_cycles, base_traps = RiscvNestedModel(
            neve_like=False).measure(iterations)
        neve_cycles, neve_traps = RiscvNestedModel(
            neve_like=True).measure(iterations)
        return {
            "trap_and_emulate": {"cycles": base_cycles,
                                 "traps": base_traps},
            "neve_like": {"cycles": neve_cycles, "traps": neve_traps},
            "trap_reduction": base_traps / neve_traps,
            "speedup": base_cycles / neve_cycles,
        }


def render_riscv_study(iterations=10):
    results = RiscvMicrobench().run(iterations)
    lines = ["RISC-V H-extension counterpoint (Section 8):",
             "",
             "%-20s %12s %8s" % ("scheme", "cycles", "traps")]
    for key in ("trap_and_emulate", "neve_like"):
        row = results[key]
        lines.append("%-20s %12.0f %8.1f" % (key, row["cycles"],
                                             row["traps"]))
    lines.append("")
    lines.append("Deferring the swap-class CSRs cuts traps %.1fx and "
                 "cycles %.1fx —" % (results["trap_reduction"],
                                     results["speedup"]))
    lines.append("the same mechanism, smaller absolute win: RISC-V's "
                 "vs* bank is leaner")
    lines.append("than ARM's EL1 context, so its exit multiplication "
                 "starts lower.")
    return "\n".join(lines)
