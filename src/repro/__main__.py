"""``python -m repro``: the one-shot reproduction verdict, plus tools.

* ``python -m repro`` — run the verification layers and print the
  PASS/FAIL verdict per paper claim.
* ``python -m repro lint`` — run the spec-conformance checker, the
  simulator-invariant lint and the runtime-sanitizer smoke scenario
  (see :mod:`repro.analysis`).
* ``python -m repro faults`` — run seeded fault-injection campaigns
  with the recovery paths armed (see :mod:`repro.faults`).
* ``python -m repro trace`` — run a microbenchmark under the causal
  exit-multiplication tracer and export Chrome trace JSON plus text
  breakdowns (see :mod:`repro.trace`).
"""

import sys


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "faults":
        from repro.faults.cli import main as faults_main
        return faults_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.trace.cli import main as trace_main
        return trace_main(argv[1:])
    if argv:
        print("usage: python -m repro [lint|faults|trace [options]]",
              file=sys.stderr)
        return 2
    from repro.harness.summary import main as summary_main
    return summary_main()


if __name__ == "__main__":
    sys.exit(main())
