"""``python -m repro``: the one-shot reproduction verdict, plus tools.

Run with no arguments for the verification layers and the PASS/FAIL
verdict per paper claim; run a subcommand from the table below for the
individual tools.  The usage string is generated from the table, so
adding a tool is one line.
"""

import importlib
import sys

#: (name, module with a ``main(argv)``, one-line description).
SUBCOMMANDS = (
    ("lint", "repro.analysis.cli",
     "spec-conformance checker, simulator-invariant lint, the "
     "runtime-sanitizer scenario, the fast-path parity gate "
     "(san-fastpath-parity, skip with --no-fastpath) and the "
     "shared-state shardability gate (--statecheck)"),
    ("faults", "repro.faults.cli",
     "seeded fault-injection campaigns with the recovery paths armed"),
    ("trace", "repro.trace.cli",
     "causal exit-multiplication tracer (Chrome trace JSON + breakdowns)"),
    ("bench", "repro.harness.bench",
     "benchmark trajectory: run the suites, diff against BENCH_*.json "
     "and the goldens"),
    ("metrics", "repro.metrics.cli",
     "run a scenario and export the telemetry registry "
     "(Prometheus/JSON)"),
    ("fleet", "repro.fleet.cli",
     "supervised multi-process campaign fleet: crash/hang recovery, "
     "quarantine, deterministic merge, flight recorder and live "
     "telemetry (--chaos for the hostile mode)"),
    ("profile", "repro.profile.cli",
     "host-time profiler and dispatch-redundancy observatory: phase "
     "tables, flamegraphs, hotspot diffs (--diff) and the "
     "repro-profile/1 schema gate (--validate)"),
)


def usage():
    lines = ["usage: python -m repro [%s] [options]"
             % "|".join(name for name, _, _ in SUBCOMMANDS),
             "",
             "With no subcommand: run the verification layers and print",
             "the reproduction verdict.  Subcommands:",
             ""]
    for name, _, description in SUBCOMMANDS:
        lines.append("  %-8s %s" % (name, description))
    return "\n".join(lines)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(usage())
        return 0
    if argv:
        for name, module_name, _ in SUBCOMMANDS:
            if argv[0] == name:
                module = importlib.import_module(module_name)
                return module.main(argv[1:])
        print(usage(), file=sys.stderr)
        return 2
    from repro.harness.summary import main as summary_main
    return summary_main()


if __name__ == "__main__":
    sys.exit(main())
