"""``python -m repro``: the one-shot reproduction verdict."""

import sys

from repro.harness.summary import main

if __name__ == "__main__":
    sys.exit(main())
