"""repro — an architecture-level reproduction of "NEVE: Nested
Virtualization Extensions for ARM" (SOSP 2017).

Quickstart::

    from repro import make_microbench
    suite = make_microbench("neve-nested")
    print(suite.run("hypercall"))

Public surface:

* :func:`make_microbench` / :data:`ALL_CONFIGS` — the paper's seven
  configurations, ready to measure.
* :class:`Machine` / :class:`X86Machine` — the ARM and x86 machine
  models, for building custom scenarios.
* :class:`AppBenchmark` — the Figure 2 application-workload model.
* :class:`VirtioQueue` — the Section 7.2 notification-dynamics model.
* :mod:`repro.core` — the NEVE mechanisms themselves (VNCR, deferral,
  redirection, the Section 3 paravirtualization rewriter).
* ``python -m repro.harness.report <table1|table6|table7|figure2|spec|
  attribution|sensitivity|chart|virtio|shadowing|designs|el0|scaling|
  riscv|conformance|regression|all>`` — regenerate any artifact.
* ``python -m repro.harness.export results.json`` — machine-readable
  results.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the full
paper-vs-measured ledger.
"""

from repro.harness.configs import ALL_CONFIGS, FIGURE2_CONFIGS, make_microbench
from repro.hypervisor.kvm import Machine
from repro.hypervisor.virtio import VirtioDevice, VirtioQueue
from repro.workloads.appbench import AppBenchmark
from repro.workloads.microbench import (
    MICROBENCHMARKS,
    ArmMicrobench,
    MicrobenchResult,
    X86Microbench,
)
from repro.x86.kvm_x86 import X86Machine

__version__ = "1.0.0"

__all__ = [
    "ALL_CONFIGS",
    "AppBenchmark",
    "ArmMicrobench",
    "FIGURE2_CONFIGS",
    "MICROBENCHMARKS",
    "Machine",
    "MicrobenchResult",
    "VirtioDevice",
    "VirtioQueue",
    "X86Machine",
    "X86Microbench",
    "make_microbench",
    "__version__",
]
