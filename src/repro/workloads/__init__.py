"""Workloads: the kvm-unit-tests microbenchmarks (Tables 1, 6, 7) and the
application-level workload models (Figure 2, Table 8)."""

from repro.workloads.microbench import (
    MICROBENCHMARKS,
    ArmMicrobench,
    MicrobenchResult,
    X86Microbench,
)

__all__ = [
    "MICROBENCHMARKS",
    "ArmMicrobench",
    "MicrobenchResult",
    "X86Microbench",
]
