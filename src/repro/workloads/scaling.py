"""SMP scaling study.

The paper's VMs are 4-way SMP, and it singles out Hackbench — "a highly
parallel SMP workload in which the OS frequently sends IPIs to
synchronize and schedule tasks across CPU cores" — as the worst
CPU-bound case.  This study measures how nested-virtualization overhead
scales with vcpu count for an all-to-all rendezvous (every vcpu IPIs
every other, barrier-style), which is the communication pattern that
makes parallel workloads collapse under exit multiplication.
"""

from dataclasses import dataclass

from repro.harness.configs import ALL_CONFIGS, arm_arch_for
from repro.hypervisor.kvm import Machine
from repro.hypervisor.nested import GUEST_IPI_SGI


@dataclass
class ScalingPoint:
    config: str
    vcpus: int
    cycles_per_rendezvous: float
    traps_per_rendezvous: float
    ipis_per_rendezvous: int


class SmpScalingStudy:
    """All-to-all IPI rendezvous across N vcpus."""

    def __init__(self, config_name, num_vcpus):
        config = ALL_CONFIGS[config_name]
        if config.platform != "arm":
            raise ValueError("the scaling study drives the ARM model")
        if num_vcpus < 2:
            raise ValueError("a rendezvous needs at least two vcpus")
        self.config = config
        self.num_vcpus = num_vcpus
        self.machine = Machine(arch=arm_arch_for(config),
                               num_cpus=num_vcpus)
        self.vm = self.machine.kvm.create_vm(
            num_vcpus=num_vcpus, nested=config.nested,
            guest_vhe=config.guest_vhe)
        for vcpu in self.vm.vcpus:
            if config.is_nested:
                self.machine.kvm.boot_nested(vcpu)
            else:
                self.machine.kvm.run_vcpu(vcpu)

    def _rendezvous(self):
        """Every vcpu IPIs every other vcpu, then all drain."""
        vcpus = self.vm.vcpus
        for sender in vcpus:
            for target in vcpus:
                if target is sender:
                    continue
                sender.cpu.msr("ICC_SGI1R_EL1",
                               (GUEST_IPI_SGI << 24) | target.vcpu_id)
        for receiver in vcpus:
            while (receiver.pending_virqs
                   or self.machine.gic.pending_physical.get(
                       receiver.cpu.cpu_id)):
                receiver.cpu.deliver_interrupt()
                intid = receiver.cpu.mrs("ICC_IAR1_EL1")
                if intid != 1023:
                    receiver.cpu.msr("ICC_EOIR1_EL1", intid)

    def run(self, iterations=3):
        self._rendezvous()  # warm up
        ledger = self.machine.ledger
        traps = self.machine.traps
        cycles, trap_count = ledger.total, traps.total
        for _ in range(iterations):
            self._rendezvous()
        n = self.num_vcpus
        return ScalingPoint(
            config=self.config.name,
            vcpus=n,
            cycles_per_rendezvous=(ledger.total - cycles) / iterations,
            traps_per_rendezvous=(traps.total - trap_count) / iterations,
            ipis_per_rendezvous=n * (n - 1),
        )


def scaling_curve(config_name, vcpu_counts=(2, 4), iterations=3):
    """``[ScalingPoint]`` across vcpu counts for one configuration."""
    return [SmpScalingStudy(config_name, n).run(iterations)
            for n in vcpu_counts]


def render_scaling(vcpu_counts=(2, 4), iterations=2):
    lines = ["SMP scaling: all-to-all IPI rendezvous "
             "(cycles per rendezvous)",
             "%-16s" % "config"
             + "".join("%14s" % ("%d vcpus" % n) for n in vcpu_counts)]
    for config in ("arm-vm", "arm-nested", "neve-nested"):
        points = scaling_curve(config, vcpu_counts, iterations)
        lines.append("%-16s" % config
                     + "".join("%14.0f" % p.cycles_per_rendezvous
                               for p in points))
    lines.append("")
    lines.append("IPIs per rendezvous grow as N(N-1); on ARMv8.3 each "
                 "costs ~260 traps.")
    return "\n".join(lines)
