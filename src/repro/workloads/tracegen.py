"""Trace-driven application benchmarking.

The analytic Figure 2 model (:mod:`repro.workloads.appbench`) multiplies
event rates by measured per-event costs.  This module cross-validates it
by *executing* the workload: it expands a profile into a deterministic,
time-ordered trace of guest events (compute slices, hypercalls, device
I/O, IPIs, interrupt deliveries) and drives the trace through the real
machine model, so every event takes its actual path through the
hypervisor stack — forwarding, world switches, deferred pages and all.

Overhead is then measured exactly as the paper normalizes Figure 2:
cycles consumed divided by the native cycles the same trace represents.
"""

from dataclasses import dataclass

from repro.harness.configs import ALL_CONFIGS, arm_arch_for
from repro.hypervisor.kvm import L0_VIRTIO_BASE, L1_VIRTIO_BASE, Machine
from repro.hypervisor.nested import GUEST_IPI_SGI
from repro.workloads.profiles import NATIVE_CYCLES_PER_SEC, PROFILES

#: Event kinds a trace may contain.
COMPUTE = "compute"
HYPERCALL = "hypercall"
DEVICE_IO = "device_io"
IPI = "ipi"
INJECTION = "injection"


class _Lcg:
    """Deterministic linear congruential generator (reproducible traces
    without global random state)."""

    def __init__(self, seed):
        self.state = (seed or 1) & 0xFFFFFFFF

    def next(self):
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return self.state

    def below(self, bound):
        return self.next() % bound


@dataclass(frozen=True)
class TraceEvent:
    kind: str
    arg: int = 0


def generate_trace(workload, window_us=2_000, seed=7):
    """Expand a workload profile into a deterministic event trace.

    ``window_us`` microseconds of native execution are represented; event
    counts follow the profile's per-second rates, interleaved with
    compute slices that carry the remaining native cycles.  Events are
    shuffled deterministically so bursts and mixes vary along the trace.
    """
    profile = PROFILES[workload]
    if profile.kind != "throughput":
        raise ValueError("trace generation targets throughput workloads")
    window_s = window_us / 1e6
    events = []
    rates = (
        (HYPERCALL, profile.hypercalls_per_sec),
        (DEVICE_IO, profile.kicks_per_sec),
        (IPI, profile.ipis_per_sec),
        (INJECTION, profile.injections_per_sec),
    )
    for kind, rate in rates:
        events.extend(TraceEvent(kind) for _ in range(round(rate
                                                            * window_s)))
    rng = _Lcg(seed)
    for index in range(len(events) - 1, 0, -1):  # Fisher-Yates
        other = rng.below(index + 1)
        events[index], events[other] = events[other], events[index]

    native_cycles = NATIVE_CYCLES_PER_SEC * window_s
    slices = max(len(events), 1)
    compute_per_slice = int(native_cycles / slices)
    trace = []
    for event in events:
        trace.append(TraceEvent(COMPUTE, compute_per_slice))
        trace.append(event)
    if not events:
        trace.append(TraceEvent(COMPUTE, int(native_cycles)))
    return trace


def native_cycles_of(trace):
    return sum(e.arg for e in trace if e.kind == COMPUTE)


class TraceRunner:
    """Executes traces against the ARM machine model."""

    def __init__(self, config_name):
        config = ALL_CONFIGS[config_name]
        if config.platform != "arm":
            raise ValueError("the trace runner drives the ARM model")
        self.config = config
        self.machine = Machine(arch=arm_arch_for(config))
        self.vm = self.machine.kvm.create_vm(
            num_vcpus=2, nested=config.nested, guest_vhe=config.guest_vhe)
        for vcpu in self.vm.vcpus:
            if config.is_nested:
                self.machine.kvm.boot_nested(vcpu)
            else:
                self.machine.kvm.run_vcpu(vcpu)
        self.device_base = (L1_VIRTIO_BASE if config.is_nested
                            else L0_VIRTIO_BASE)

    def run(self, trace):
        """Execute *trace*; returns ``(overhead, cycles, traps)``."""
        main = self.vm.vcpus[0]
        peer = self.vm.vcpus[1]
        ledger = self.machine.ledger
        start_cycles = ledger.total
        start_traps = self.machine.traps.total
        for event in trace:
            if event.kind == COMPUTE:
                main.cpu.work(event.arg, category="guest")
            elif event.kind == HYPERCALL:
                main.cpu.hvc(0)
            elif event.kind == DEVICE_IO:
                main.cpu.mmio_read(self.device_base + 0x100)
            elif event.kind == IPI:
                main.cpu.msr("ICC_SGI1R_EL1", (GUEST_IPI_SGI << 24) | 1)
                peer.cpu.deliver_interrupt()
                intid = peer.cpu.mrs("ICC_IAR1_EL1")
                peer.cpu.msr("ICC_EOIR1_EL1", intid)
            elif event.kind == INJECTION:
                main.queue_virq(GUEST_IPI_SGI)
                self.machine.gic.raise_physical(main.cpu.cpu_id, 0)
                main.cpu.deliver_interrupt()
                intid = main.cpu.mrs("ICC_IAR1_EL1")
                main.cpu.msr("ICC_EOIR1_EL1", intid)
            else:
                raise ValueError("unknown trace event %r" % (event,))
        cycles = ledger.total - start_cycles
        traps = self.machine.traps.total - start_traps
        native = native_cycles_of(trace)
        overhead = cycles / native if native else float("inf")
        return overhead, cycles, traps


def trace_overhead(workload, config_name, window_us=2_000, seed=7):
    """End-to-end: generate the trace and execute it."""
    trace = generate_trace(workload, window_us=window_us, seed=seed)
    runner = TraceRunner(config_name)
    overhead, _cycles, _traps = runner.run(trace)
    return overhead
