"""Closed-loop request/response simulation (netperf TCP_RR).

TCP_RR is strictly serialized: one transaction in flight, the client
waits for each reply.  Nothing batches, so every transaction pays the
full virtualization toll — one interrupt delivery for the request, one
virtio kick for the reply — on top of the wire and compute time.  This
executes that loop against the machine model, transaction by transaction,
as the execution-level counterpart of the analytic latency model in
:mod:`repro.workloads.appbench`.
"""

from dataclasses import dataclass

from repro.harness.configs import ALL_CONFIGS, arm_arch_for
from repro.hypervisor.kvm import L0_VIRTIO_BASE, L1_VIRTIO_BASE, Machine
from repro.hypervisor.nested import GUEST_IPI_SGI

#: Native transaction breakdown (cycles at 2.4 GHz): ~26 us round trip.
WIRE_CYCLES = 40_000  # network propagation + switch latency
SERVER_COMPUTE_CYCLES = 14_000  # request parsing, reply construction
CLIENT_COMPUTE_CYCLES = 8_000

NATIVE_TXN_CYCLES = WIRE_CYCLES + SERVER_COMPUTE_CYCLES \
    + CLIENT_COMPUTE_CYCLES


@dataclass
class RrResult:
    config: str
    transactions: int
    cycles_per_txn: float
    traps_per_txn: float

    @property
    def overhead(self):
        """Latency ratio vs the native transaction."""
        return self.cycles_per_txn / NATIVE_TXN_CYCLES


class RequestResponseSim:
    """Runs serialized transactions against the ARM machine model."""

    def __init__(self, config_name):
        config = ALL_CONFIGS[config_name]
        if config.platform != "arm":
            raise ValueError("the RR simulation drives the ARM model")
        self.config = config
        self.machine = Machine(arch=arm_arch_for(config))
        self.vm = self.machine.kvm.create_vm(
            num_vcpus=2, nested=config.nested, guest_vhe=config.guest_vhe)
        for vcpu in self.vm.vcpus:
            if config.is_nested:
                self.machine.kvm.boot_nested(vcpu)
            else:
                self.machine.kvm.run_vcpu(vcpu)
        self.device_base = (L1_VIRTIO_BASE if config.is_nested
                            else L0_VIRTIO_BASE)

    def _transaction(self):
        server = self.vm.vcpus[0]
        # Request arrives: RX interrupt delivered into the (nested) VM.
        server.queue_virq(GUEST_IPI_SGI)
        self.machine.gic.raise_physical(server.cpu.cpu_id, 0)
        server.cpu.deliver_interrupt()
        intid = server.cpu.mrs("ICC_IAR1_EL1")
        server.cpu.msr("ICC_EOIR1_EL1", intid)
        # Server handles the request.
        server.cpu.work(SERVER_COMPUTE_CYCLES, category="guest")
        # Reply goes out: virtio kick (never suppressed — the queue is
        # always empty in a serialized ping-pong).
        server.cpu.mmio_write(self.device_base + 0x50, 1)
        # Wire time + the client's share, common to every configuration.
        self.machine.ledger.charge(WIRE_CYCLES, "network")
        self.machine.ledger.charge(CLIENT_COMPUTE_CYCLES, "guest")

    def run(self, transactions=8):
        self._transaction()  # warm up
        ledger = self.machine.ledger
        traps = self.machine.traps
        cycles, trap_count = ledger.total, traps.total
        for _ in range(transactions):
            self._transaction()
        return RrResult(
            config=self.config.name,
            transactions=transactions,
            cycles_per_txn=(ledger.total - cycles) / transactions,
            traps_per_txn=(traps.total - trap_count) / transactions,
        )


def compare_rr(config_names=("arm-vm", "arm-nested", "neve-nested"),
               transactions=8):
    return {name: RequestResponseSim(name).run(transactions)
            for name in config_names}
