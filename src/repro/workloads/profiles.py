"""Application workload profiles (Table 8).

The paper runs ten real applications; we cannot run memcached on a
simulated CPU, so each workload becomes an *event-rate profile*: how many
hypervisor-visible events (interrupt injections, virtio kicks, virtual
IPIs, hypercalls, EOIs) one second of native execution generates, plus
the knobs the analysis in Section 7.2 turns on (relative native speed of
the x86 testbed, virtio backend service time for the notification
dynamics, latency- vs throughput-bound behaviour).

Rates are calibrated so that the *ARMv8.3 nested* and *VM* bars land near
Figure 2 where the paper states values (hackbench 15x/11x, kernbench
1.33/1.26, SPECjvm 1.24/1.14, memcached/Apache/MAERTS "more than 40
times", NEVE memcached "less than 3 times", x86 memcached 8x); every
other bar is then *predicted* from the measured per-event costs.
EXPERIMENTS.md records where the prediction deviates.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadProfile:
    """Event-rate description of one application benchmark.

    Rates are events per second of native ARM execution.  ``kind`` is
    ``"throughput"`` (overhead = CPU-demand ratio) or ``"latency"``
    (overhead = per-transaction latency ratio, for strictly serialized
    request/response benchmarks like netperf TCP_RR).
    """

    name: str
    description: str
    injections_per_sec: float = 0.0  # virtual interrupt deliveries
    kicks_per_sec: float = 0.0  # virtio notifications before suppression
    ipis_per_sec: float = 0.0  # cross-vcpu IPIs
    hypercalls_per_sec: float = 0.0
    eois_per_sec: float = 0.0
    kind: str = "throughput"
    native_cycles_per_txn: float = 0.0  # latency workloads only
    txn_injections: float = 0.0  # events per transaction (latency kind)
    txn_kicks: float = 0.0
    x86_speedup: float = 1.5  # paper: x86 hardware is faster (3x memcached)
    backend_service_cycles: int = 18_000  # virtio backend per-buffer work
    vm_base_overhead: float = 0.02  # residual per-layer virtualization cost
    x86_extra_exits_per_sec: float = 0.0  # x86-specific exits (e.g. MySQL)
    #: Section 7.2's measured anomaly: the faster x86 backend re-enables
    #: virtio notifications sooner, so x86 takes "more than four times as
    #: many exits from the nested VM for processing I/O ... versus NEVE"
    #: for Memcached, with "similar behavior" on TCP_MAERTS and Nginx.
    #: The *mechanism* is reproduced by the VirtioQueue study (experiment
    #: E6); the magnitude is carried here as a per-workload multiplier on
    #: x86 I/O event rates because it depends on absolute backend speed,
    #: which the cycle model does not predict.
    x86_io_exit_multiplier: float = 1.0


#: Figure 2's workloads, in the paper's order (Table 8).
PROFILES = {
    "kernbench": WorkloadProfile(
        name="kernbench",
        description="Linux kernel compile: CPU bound, light I/O and IPIs",
        injections_per_sec=400, kicks_per_sec=250, ipis_per_sec=550,
        hypercalls_per_sec=80, eois_per_sec=1_200,
        x86_speedup=1.5, vm_base_overhead=0.02),
    "hackbench": WorkloadProfile(
        name="hackbench",
        description="scheduler stress: highly parallel, IPI dominated",
        injections_per_sec=2_500, kicks_per_sec=800, ipis_per_sec=30_000,
        hypercalls_per_sec=400, eois_per_sec=35_000,
        x86_speedup=1.5, vm_base_overhead=0.05),
    "specjvm2008": WorkloadProfile(
        name="specjvm2008",
        description="JVM workloads: CPU bound, few exits",
        injections_per_sec=250, kicks_per_sec=120, ipis_per_sec=280,
        hypercalls_per_sec=40, eois_per_sec=600,
        x86_speedup=1.4, vm_base_overhead=0.02),
    "netperf_tcp_rr": WorkloadProfile(
        name="netperf_tcp_rr",
        description="strictly serialized request/response: latency bound",
        kind="latency",
        native_cycles_per_txn=62_000,  # ~26 us round trip at 2.4 GHz
        txn_injections=1.0, txn_kicks=1.0,
        eois_per_sec=0, x86_speedup=1.3, vm_base_overhead=0.04),
    "netperf_tcp_stream": WorkloadProfile(
        name="netperf_tcp_stream",
        description="bulk receive: NAPI batches interrupts well",
        injections_per_sec=16_000, kicks_per_sec=9_000, ipis_per_sec=800,
        eois_per_sec=16_000, x86_speedup=1.6,
        backend_service_cycles=9_000, vm_base_overhead=0.06),
    "netperf_tcp_maerts": WorkloadProfile(
        name="netperf_tcp_maerts",
        description="bulk transmit: TX completions + ACK interrupts",
        injections_per_sec=135_000, kicks_per_sec=60_000, ipis_per_sec=800,
        eois_per_sec=135_000, x86_speedup=1.6,
        backend_service_cycles=9_000, vm_base_overhead=0.08,
        x86_io_exit_multiplier=2.2),
    "apache": WorkloadProfile(
        name="apache",
        description="web serving, 10 concurrent requests, 41 KB file",
        injections_per_sec=110_000, kicks_per_sec=55_000, ipis_per_sec=4_000,
        eois_per_sec=110_000, x86_speedup=1.8,
        backend_service_cycles=12_000, vm_base_overhead=0.10),
    "nginx": WorkloadProfile(
        name="nginx",
        description="web serving (siege, 8 concurrent)",
        injections_per_sec=90_000, kicks_per_sec=48_000, ipis_per_sec=3_000,
        eois_per_sec=90_000, x86_speedup=1.6,
        backend_service_cycles=12_000, vm_base_overhead=0.09,
        x86_io_exit_multiplier=2.4),
    "memcached": WorkloadProfile(
        name="memcached",
        description="key-value store under memtier: interrupt dominated",
        injections_per_sec=150_000, kicks_per_sec=70_000, ipis_per_sec=6_000,
        eois_per_sec=150_000, x86_speedup=3.0,
        backend_service_cycles=8_000, vm_base_overhead=0.12,
        x86_io_exit_multiplier=1.25),
    "mysql": WorkloadProfile(
        name="mysql",
        description="SysBench OLTP, 200 parallel transactions",
        injections_per_sec=28_000, kicks_per_sec=16_000, ipis_per_sec=7_000,
        hypercalls_per_sec=2_000, eois_per_sec=30_000,
        x86_speedup=1.2, vm_base_overhead=0.06,
        # Paper Section 7.2: "MySQL runs better with NEVE because of the
        # high cost of x86 non-nested virtualization" — the x86 port takes
        # many more exits for this workload.
        x86_extra_exits_per_sec=95_000,
        x86_io_exit_multiplier=1.3),
}

FIGURE2_WORKLOADS = tuple(PROFILES)

#: Native cycle budget per second of execution (2.4 GHz on both testbeds).
NATIVE_CYCLES_PER_SEC = 2.4e9
