"""The Figure 2 application-benchmark model.

The paper's application results are the composition of two things this
repository measures directly:

1. **per-event costs** — what one hypercall, device I/O access, interrupt
   injection or virtual IPI costs in each configuration (the
   microbenchmarks of Tables 1 and 6, plus the injection path); and
2. **event rates** — how often each application generates those events
   (the profiles in :mod:`repro.workloads.profiles`).

For throughput-bound workloads the normalized overhead is the CPU-demand
ratio: one second of native work plus all the virtualization events it
drags in, divided by one second.  For strictly serialized request/response
workloads (netperf TCP_RR) it is the per-transaction latency ratio.

Virtio notifications are *not* charged at their nominal rate: the
suppression dynamics of :class:`repro.hypervisor.virtio.VirtioQueue`
determine, per configuration, what fraction of sends actually kick — the
mechanism behind the paper's x86 Memcached anomaly (Section 7.2), where
the 3x-faster x86 backend re-enables notifications sooner and therefore
takes ~4x more I/O exits than NEVE.
"""

from dataclasses import dataclass

from repro.harness.configs import ALL_CONFIGS, make_microbench
from repro.hypervisor.virtio import VirtioQueue
from repro.workloads.profiles import (
    NATIVE_CYCLES_PER_SEC,
    PROFILES,
)

#: Microbenchmarks that feed the model, by event type.
EVENT_BENCHES = {
    "injection": "interrupt_injection",
    "kick": "device_io",
    "ipi": "virtual_ipi",
    "hypercall": "hypercall",
    "eoi": "virtual_eoi",
}


@dataclass
class CostTable:
    """Measured per-event cycle costs for one configuration."""

    config: str
    injection: float
    kick: float
    ipi: float
    hypercall: float
    eoi: float

    @classmethod
    def measure(cls, config_name, iterations=8):
        suite = make_microbench(config_name)
        costs = {}
        for event, bench in EVENT_BENCHES.items():
            costs[event] = suite.run(bench, iterations=iterations).cycles
        return cls(config=config_name, **costs)


class CostTableCache:
    """Memoizes :meth:`CostTable.measure` results for one owner.

    Each :class:`AppBenchmark` owns its own instance, so two benchmarks
    (two simulated machines) in one process can never observe each
    other's cached costs; the module-level helper below keeps one
    process-wide instance for the stateless harness entry points, with
    :func:`clear_cost_cache` as its public reset hook.
    """

    def __init__(self):
        self._tables = {}

    def get(self, config_name, iterations=8):
        key = (config_name, iterations)
        if key not in self._tables:
            self._tables[key] = CostTable.measure(config_name, iterations)
        return self._tables[key]

    def clear(self):
        self._tables.clear()


#: Process-wide memoization cache (not a machine-coupled singleton: the
#: cached CostTables are a deterministic function of the key, and
#: ``clear_cost_cache()`` is the public reset hook — statecheck
#: classifies this as *cache*).
_COST_CACHE = {}


def cost_table(config_name, iterations=8):
    """Measure (and cache) the per-event cost table for a configuration."""
    key = (config_name, iterations)
    if key not in _COST_CACHE:
        _COST_CACHE[key] = CostTable.measure(config_name, iterations)
    return _COST_CACHE[key]


def clear_cost_cache():
    """Public reset hook for the process-wide cost-table cache."""
    _COST_CACHE.clear()


@dataclass
class AppResult:
    workload: str
    config: str
    overhead: float  # normalized to native on the same platform (>= 1)
    kick_ratio: float  # delivered kicks / nominal sends
    demand_breakdown: dict


class AppBenchmark:
    """Computes Figure 2's normalized performance overheads.

    Each instance owns its cost-table cache (pass ``cost_cache`` to
    share one deliberately), so concurrent benchmarks over different
    machines stay isolated from each other and from the module-level
    :func:`cost_table` memo.
    """

    def __init__(self, iterations=8, cost_cache=None):
        self.iterations = iterations
        self._costs = cost_cache if cost_cache is not None \
            else CostTableCache()

    # -- helpers -----------------------------------------------------------

    def _platform_params(self, profile, config):
        """Native cycle budget and event-rate scale for the platform."""
        if config.platform == "x86":
            native_cycles = NATIVE_CYCLES_PER_SEC / profile.x86_speedup
            backend_service = (profile.backend_service_cycles
                               / profile.x86_speedup)
        else:
            native_cycles = NATIVE_CYCLES_PER_SEC
            backend_service = profile.backend_service_cycles
        return native_cycles, backend_service

    def _kick_ratio(self, profile, config, costs, native_cycles,
                    backend_service):
        """Fraction of nominal sends that become actual notifications."""
        if not profile.kicks_per_sec and not profile.txn_kicks:
            return 0.0
        rate = profile.kicks_per_sec or 1.0 / max(
            profile.native_cycles_per_txn / native_cycles, 1e-12)
        interval = max(native_cycles / rate, 1.0)
        queue = VirtioQueue(
            backend_service_cycles=max(int(backend_service), 1),
            wakeup_latency_cycles=int(costs.kick))
        return queue.kick_ratio(int(interval))

    def _layers(self, config):
        return 2 if config.is_nested else 1

    # -- the model ----------------------------------------------------------

    def run(self, workload, config_name):
        profile = PROFILES[workload]
        config = ALL_CONFIGS[config_name]
        costs = self._costs.get(config_name, self.iterations)
        native_cycles, backend_service = self._platform_params(profile,
                                                               config)
        kick_ratio = self._kick_ratio(profile, config, costs, native_cycles,
                                      backend_service)
        base = profile.vm_base_overhead * self._layers(config)

        if profile.kind == "latency":
            txn_native = profile.native_cycles_per_txn
            if config.platform == "x86":
                txn_native = txn_native / profile.x86_speedup
            added = (profile.txn_injections * costs.injection
                     + profile.txn_kicks * costs.kick)
            overhead = (txn_native + added) / txn_native + base
            breakdown = {"injection": profile.txn_injections
                         * costs.injection / txn_native,
                         "kick": profile.txn_kicks * costs.kick / txn_native}
            return AppResult(workload, config_name, overhead, 1.0, breakdown)

        breakdown = {
            "injection": profile.injections_per_sec * costs.injection,
            "kick": profile.kicks_per_sec * kick_ratio * costs.kick,
            "ipi": profile.ipis_per_sec * costs.ipi,
            "hypercall": profile.hypercalls_per_sec * costs.hypercall,
            "eoi": profile.eois_per_sec * costs.eoi,
        }
        if config.platform == "x86":
            breakdown["injection"] *= profile.x86_io_exit_multiplier
            breakdown["kick"] *= profile.x86_io_exit_multiplier
            breakdown["x86_extra"] = (profile.x86_extra_exits_per_sec
                                      * costs.hypercall)
        demand = sum(breakdown.values()) / native_cycles
        overhead = 1.0 + base + demand
        normalized = {k: v / native_cycles for k, v in breakdown.items()}
        return AppResult(workload, config_name, overhead, kick_ratio,
                         normalized)

    def run_workload(self, workload, config_names):
        return {name: self.run(workload, name) for name in config_names}

    def figure2(self, config_names=None, workloads=None):
        """All Figure 2 bars: {workload: {config: AppResult}}."""
        from repro.harness.configs import FIGURE2_CONFIGS
        if config_names is None:
            config_names = FIGURE2_CONFIGS
        if workloads is None:
            workloads = tuple(PROFILES)
        return {w: self.run_workload(w, config_names) for w in workloads}
