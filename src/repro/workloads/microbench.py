"""The kvm-unit-tests microbenchmarks (Section 5 / Section 7.1).

Four benchmarks, each "quantifying important micro-level interactions
between the hypervisor and its VM":

* **Hypercall** — switch from the VM to the hypervisor and back, no work.
* **Device I/O** — access a device emulated in the hypervisor's userspace.
* **Virtual IPI** — one vcpu IPIs another actively-running vcpu: exits on
  both the sending and receiving side.
* **Virtual EOI** — complete a virtual interrupt; hardware support (GIC
  list registers / APICv) makes this trap-free at every nesting level.

Each runs against a VM or a nested VM on either machine model, measuring
cycles and traps-to-L0 per iteration — the raw material of Tables 1/6/7.
"""

from dataclasses import dataclass

from repro.hypervisor.kvm import (
    L0_VIRTIO_BASE,
    L1_VIRTIO_BASE,
    Machine,
)
from repro.hypervisor.nested import GUEST_IPI_SGI
from repro.x86.kvm_x86 import MSR_ICR, X86Machine
from repro.x86.vmx import X86ExitReason

MICROBENCHMARKS = ("hypercall", "device_io", "virtual_ipi", "virtual_eoi")

#: Virtual interrupt id used by the Virtual EOI benchmark.
EOI_TEST_INTID = 5


@dataclass
class MicrobenchResult:
    name: str
    cycles: float
    traps: float
    iterations: int

    def __str__(self):
        return ("%-12s %10.0f cycles  %6.1f traps"
                % (self.name, self.cycles, self.traps))


class ArmMicrobench:
    """Runs the microbenchmark suite on the ARM machine model.

    ``nested``: "none" (run in a VM), "nv" (nested VM on ARMv8.3
    trap-and-emulate) or "neve" (nested VM with NEVE).
    """

    def __init__(self, machine=None, nested="none", guest_vhe=False,
                 arch=None, num_vcpus=2):
        if machine is None:
            machine = (Machine(arch=arch, num_cpus=num_vcpus)
                       if arch is not None
                       else Machine(num_cpus=num_vcpus))
        self.machine = machine
        self.nested = nested
        self.vm = machine.kvm.create_vm(num_vcpus=num_vcpus,
                                        nested=nested,
                                        guest_vhe=guest_vhe)
        for vcpu in self.vm.vcpus:
            if nested == "none":
                machine.kvm.run_vcpu(vcpu)
            else:
                machine.kvm.boot_nested(vcpu)

    # -- individual benchmarks ---------------------------------------------

    def hypercall_once(self):
        self.vm.vcpus[0].cpu.hvc(0)

    def device_io_once(self):
        base = L0_VIRTIO_BASE if self.nested == "none" else L1_VIRTIO_BASE
        return self.vm.vcpus[0].cpu.mmio_read(base + 0x100)

    def virtual_ipi_once(self):
        sender = self.vm.vcpus[0]
        receiver = self.vm.vcpus[1]
        # Send: write ICC_SGI1R targeting vcpu 1 (traps to the hypervisor).
        sender.cpu.msr("ICC_SGI1R_EL1", (GUEST_IPI_SGI << 24) | 1)
        # Receive: the physical kick arrives at the other core.
        receiver.cpu.deliver_interrupt()
        # The receiving guest acknowledges and completes the interrupt.
        intid = receiver.cpu.mrs("ICC_IAR1_EL1")
        receiver.cpu.msr("ICC_EOIR1_EL1", intid)

    def virtual_eoi_once(self):
        cpu = self.vm.vcpus[0].cpu
        cpu.msr("ICC_EOIR1_EL1", EOI_TEST_INTID)

    def interrupt_injection_once(self):
        """Receiver half of an interrupt delivery: a physical interrupt
        while the guest runs, routed and injected by the hypervisor(s),
        acknowledged and completed by the guest.  Not a paper table row,
        but the per-event cost the Figure 2 model needs for incoming
        network traffic."""
        vcpu = self.vm.vcpus[1]
        vcpu.queue_virq(GUEST_IPI_SGI)
        self.machine.gic.raise_physical(vcpu.cpu.cpu_id, 0)
        vcpu.cpu.deliver_interrupt()
        intid = vcpu.cpu.mrs("ICC_IAR1_EL1")
        vcpu.cpu.msr("ICC_EOIR1_EL1", intid)

    def _prime_eoi(self):
        """Place an active interrupt in a list register, hardware-side."""
        cpu = self.vm.vcpus[0].cpu
        self.machine.gic.inject_virtual_interrupt(cpu, EOI_TEST_INTID)
        cpu.mrs("ICC_IAR1_EL1")  # acknowledge: pending -> active

    # -- driver --------------------------------------------------------------

    def run(self, name, iterations=20):
        once = {
            "hypercall": self.hypercall_once,
            "device_io": self.device_io_once,
            "virtual_ipi": self.virtual_ipi_once,
            "virtual_eoi": self.virtual_eoi_once,
            "interrupt_injection": self.interrupt_injection_once,
        }[name]
        prime = self._prime_eoi if name == "virtual_eoi" else None

        # Warm up once (populates contexts, shadow structures).
        if prime:
            prime()
        once()

        ledger = self.machine.ledger
        traps = self.machine.traps
        total_cycles = 0
        total_traps = 0
        for _ in range(iterations):
            if prime:
                prime()
            cycle_mark = ledger.total
            trap_mark = traps.total
            once()
            total_cycles += ledger.total - cycle_mark
            total_traps += traps.total - trap_mark
        return MicrobenchResult(name, total_cycles / iterations,
                                total_traps / iterations, iterations)

    def run_all(self, iterations=20):
        return {name: self.run(name, iterations)
                for name in MICROBENCHMARKS}

    def measure_ipi_latency(self, iterations=10):
        """Wall-clock IPI latency, as the paper's benchmark measures it.

        The sender's post-kick return path runs on its own core in
        parallel with the receiver, so latency is the sender's cycles
        *up to the kick* plus the receiver's full path — not the sum of
        both sides.  See EXPERIMENTS.md's Virtual IPI note.
        """
        sender = self.vm.vcpus[0]
        receiver = self.vm.vcpus[1]
        ledger = self.machine.ledger
        self.virtual_ipi_once()  # warm up
        total = 0
        for _ in range(iterations):
            start = ledger.total
            sender.cpu.msr("ICC_SGI1R_EL1", (GUEST_IPI_SGI << 24) | 1)
            to_kick = self.machine.last_kick_mark - start
            receiver_start = ledger.total
            receiver.cpu.deliver_interrupt()
            intid = receiver.cpu.mrs("ICC_IAR1_EL1")
            receiver.cpu.msr("ICC_EOIR1_EL1", intid)
            total += to_kick + (ledger.total - receiver_start)
        return total / iterations


class X86Microbench:
    """Runs the microbenchmark suite on the x86 machine model."""

    def __init__(self, machine=None, nested=False, shadowing=True):
        if machine is None:
            machine = X86Machine()
        self.machine = machine
        self.nested = nested
        self.vm = machine.kvm.create_vm(num_vcpus=2, nested=nested,
                                        shadowing=shadowing)
        for vcpu in self.vm.vcpus:
            if nested:
                machine.kvm.boot_nested(vcpu)
            else:
                machine.kvm.run_vcpu(vcpu)

    def hypercall_once(self):
        self.vm.vcpus[0].cpu.vmcall()

    def device_io_once(self):
        return self.vm.vcpus[0].cpu.mmio_read(0xFEB0_0100)

    def virtual_ipi_once(self):
        sender = self.vm.vcpus[0]
        receiver = self.vm.vcpus[1]
        sender.cpu.wrmsr(MSR_ICR, (0x31 << 8) | 1)
        receiver.cpu.vm_exit(X86ExitReason.EXTERNAL_INTERRUPT, {})
        # Guest acknowledges through the virtual APIC (no exit with APICv).
        receiver.cpu.charge(receiver.cpu.costs.apic_reg_virt, "apicv")
        vector = receiver.apic.acknowledge()
        assert vector == 0x31
        receiver.cpu.apic_virtual_eoi()
        receiver.apic.eoi()

    def virtual_eoi_once(self):
        self.vm.vcpus[0].cpu.apic_virtual_eoi()

    def interrupt_injection_once(self):
        vcpu = self.vm.vcpus[1]
        vcpu.queue_virq(0x31)
        vcpu.cpu.vm_exit(X86ExitReason.EXTERNAL_INTERRUPT, {})
        vcpu.cpu.apic_virtual_eoi()

    def run(self, name, iterations=20):
        once = {
            "hypercall": self.hypercall_once,
            "device_io": self.device_io_once,
            "virtual_ipi": self.virtual_ipi_once,
            "virtual_eoi": self.virtual_eoi_once,
            "interrupt_injection": self.interrupt_injection_once,
        }[name]
        once()  # warm up
        ledger = self.machine.ledger
        traps = self.machine.traps
        total_cycles = 0
        total_traps = 0
        for _ in range(iterations):
            cycle_mark = ledger.total
            trap_mark = traps.total
            once()
            total_cycles += ledger.total - cycle_mark
            total_traps += traps.total - trap_mark
        return MicrobenchResult(name, total_cycles / iterations,
                                total_traps / iterations, iterations)

    def run_all(self, iterations=20):
        return {name: self.run(name, iterations)
                for name in MICROBENCHMARKS}
