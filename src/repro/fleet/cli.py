"""``python -m repro fleet`` — supervised multi-process campaigns.

Shards ``--machines M`` seeded campaigns across ``--workers N``
processes under the supervisor (heartbeats, wall-clock timeouts,
retry/backoff, poison-shard quarantine) and prints the fleet digest:
per-shard verdicts with their failure ladders, the exact accounting
line, and the merged result digest.

Live telemetry rides the same event stream the supervisor journals:
``--watch`` renders every decision to stderr as it happens,
``--flight-recorder DIR`` writes the ``repro-flight/1`` JSONL journal
(and the run replays it afterwards — the journal must reproduce the
live accounting or the run fails), ``--trace-out FILE`` collects
per-machine trace ring buffers and writes the stitched fleet-wide
Chrome/Perfetto trace, and ``--profile`` arms the host profiler
(:mod:`repro.profile`) in every worker — the per-shard host-time and
redundancy documents fold through the same deterministic merge path
into one fleet-wide ``repro-profile/1`` document (``--profile-out``),
which never participates in the digest or ``--verify`` byte
comparisons because host time is nondeterministic.

Exit status: 0 when the books balance and every merged machine was
clean (quarantines are expected — and tolerated — only under
``--chaos``); 1 when a merged machine failed, a shard was quarantined
without chaos, or ``--verify`` found a byte difference against the
sequential reference; 2 on accounting violations — including a flight
journal that does not replay to the live books.
"""

import argparse
import json
import os
import sys

from repro.fleet.chaos import ChaosPlan
from repro.fleet.merge import reference_merge
from repro.fleet.plan import DEFAULT_SHARD_SIZE, FleetPlan
from repro.fleet.supervisor import (
    FleetAccountingError,
    FleetConfig,
    Supervisor,
)
from repro.fleet.telemetry import (
    FlightRecorder,
    FlightReplayError,
    WatchRenderer,
    replay,
)

FLEET_SCHEMA = "repro-fleet/1"

#: Journal filename inside the ``--flight-recorder`` directory.
FLIGHT_JOURNAL = "flight.jsonl"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="fault-tolerant fleet engine: supervised "
                    "multi-process campaigns with deterministic merge, "
                    "flight recorder and live telemetry")
    parser.add_argument("--machines", type=int, default=16, metavar="M",
                        help="simulated machines to run (default 16); "
                             "machine i runs campaign seed "
                             "split_seed(seed, i)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="concurrent worker processes (default 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fleet seed every machine seed derives "
                             "from (default 0)")
    parser.add_argument("--shard-size", type=int,
                        default=DEFAULT_SHARD_SIZE, metavar="K",
                        help="machines per shard — the retry/quarantine "
                             "unit (default %d)" % DEFAULT_SHARD_SIZE)
    parser.add_argument("--chaos", action="store_true",
                        help="seed-deterministically kill, stall and "
                             "corrupt workers to exercise every "
                             "supervisor path (quarantines become "
                             "expected)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        metavar="S",
                        help="wall-clock budget per shard attempt "
                             "(default 300)")
    parser.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        metavar="S",
                        help="max silence between worker heartbeats "
                             "before the attempt is declared hung "
                             "(default 30)")
    parser.add_argument("--retries", type=int, default=2, metavar="R",
                        help="failed attempts beyond which a shard is "
                             "quarantined (default 2)")
    parser.add_argument("--backoff", type=float, default=0.05,
                        metavar="S",
                        help="base retry backoff, doubling per failure "
                             "(default 0.05)")
    parser.add_argument("--verify", action="store_true",
                        help="also run the in-process sequential "
                             "reference over the completed shards and "
                             "demand byte-identical merged exports")
    parser.add_argument("--watch", action="store_true",
                        help="render the live supervisor event stream "
                             "to stderr as the fleet runs")
    parser.add_argument("--flight-recorder", metavar="DIR", default=None,
                        help="journal every supervisor decision as "
                             "repro-flight/1 JSONL into DIR/%s, then "
                             "replay the journal and demand it "
                             "reproduce the live accounting"
                             % FLIGHT_JOURNAL)
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="collect per-machine trace ring buffers "
                             "and write the stitched fleet-wide "
                             "Chrome/Perfetto trace to FILE")
    parser.add_argument("--profile", action="store_true",
                        help="run every worker under the host profiler "
                             "and fold the per-shard host-time and "
                             "redundancy documents through the merge")
    parser.add_argument("--profile-out", metavar="FILE", default=None,
                        help="write the fleet-wide repro-profile/1 "
                             "document to FILE (implies --profile)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the fleet digest document "
                             "(repro-fleet/1 JSON) to FILE")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-machine rows, not just shards")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        plan = FleetPlan.generate(args.seed, args.machines,
                                  shard_size=args.shard_size)
    except ValueError as exc:
        print("fleet: %s" % exc, file=sys.stderr)
        return 2
    if args.workers < 1:
        print("fleet: workers must be >= 1", file=sys.stderr)
        return 2
    chaos = (ChaosPlan.generate(args.seed, len(plan.shards))
             if args.chaos else None)
    profile = args.profile or args.profile_out is not None
    config = FleetConfig(workers=args.workers,
                         shard_timeout_s=args.timeout,
                         heartbeat_timeout_s=args.heartbeat_timeout,
                         max_retries=args.retries,
                         backoff_base_s=args.backoff,
                         trace=args.trace_out is not None,
                         profile=profile)

    recorder = None
    journal_path = None
    if args.flight_recorder is not None:
        os.makedirs(args.flight_recorder, exist_ok=True)
        journal_path = os.path.join(args.flight_recorder, FLIGHT_JOURNAL)
        # Wall-clock stamps are for post-mortems; --verify runs demand
        # deterministic journal fields, so strip them there.
        recorder = FlightRecorder(journal_path, wall=not args.verify)
    sinks = (WatchRenderer(),) if args.watch else ()

    try:
        result = Supervisor(plan, config=config, chaos=chaos,
                            recorder=recorder, sinks=sinks).run()
    except FleetAccountingError as exc:
        print("fleet: ACCOUNTING VIOLATION: %s" % exc, file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            recorder.close()

    render(result, verbose=args.verbose)

    status = 0
    if result.merge is not None and not result.merge.ok:
        print("fleet: FAIL: a merged machine's campaign was not clean")
        status = 1
    if result.quarantined and not args.chaos:
        print("fleet: FAIL: %d shard(s) quarantined without --chaos"
              % result.quarantined)
        status = 1
    if result.protocol_errors:
        print("fleet: WARNING: %d unknown worker message(s) journalled"
              % result.protocol_errors)
    if recorder is not None:
        status = max(status, _check_replay(journal_path, result))
    if args.trace_out is not None and result.merge is not None:
        try:
            result.merge.write_chrome_trace(args.trace_out)
            print("fleet: wrote %s (%d machine lanes)"
                  % (args.trace_out, len(result.merge.traces or ())))
        except ValueError as exc:
            print("fleet: TRACE FAILED: %s" % exc, file=sys.stderr)
            status = max(status, 1)
    if profile:
        status = max(status, _report_profile(result, args.profile_out))
    if args.verify:
        status = max(status, _verify(plan, result))
    if args.out is not None:
        _write_document(args.out, args, plan, result)
    return status


def render(result, verbose=False):
    """The fleet digest, human form."""
    plan = result.plan
    print(plan.describe() + ", workers=%d%s"
          % (result.config.workers,
             ", chaos=on" if result.chaos is not None else ""))
    if result.chaos is not None:
        print(result.chaos.describe())
    print()
    header = ("%-18s %8s %10s %12s  %s"
              % ("shard", "machines", "attempts", "verdict", "failures"))
    print(header)
    print("-" * len(header))
    for state in result.states:
        ladder = "; ".join(f.describe() for f in state.failures) or "-"
        print("%-18s %8d %10d %12s  %s"
              % (state.shard.describe(), len(state.shard.machines),
                 state.attempts, state.verdict, ladder))
    print()
    print("accounting: %s %s"
          % (result.accounting_line(),
             "ok" if result.accounting_ok else "VIOLATED"))
    merge = result.merge
    if merge is None or not merge.records:
        print("merged: nothing (every shard quarantined)")
        return
    if verbose:
        for record in merge.records:
            print("  m%06d seed=%-10d %-10s digest %.16s  "
                  "cycles=%d traps=%d"
                  % (record["machine"], record["seed"],
                     ("ok" if record["ok"] else "FAIL"),
                     record["digest"], record["cycles"],
                     record["traps"]))
    print("merged: %d/%d machines, %s, fleet digest %.16s"
          % (merge.machine_count, plan.machine_count,
             "all clean" if merge.ok else "FAILURES",
             merge.digest))


def _check_replay(journal_path, result):
    """Replay the flight journal from disk and demand it reproduce the
    live run's books — a journal that cannot is an accounting-grade
    failure (exit 2), because the journal *is* the post-mortem record."""
    try:
        replayed = replay(journal_path)
    except FlightReplayError as exc:
        print("fleet: REPLAY FAILED: %s" % exc, file=sys.stderr)
        return 2
    if not replayed.matches(result):
        print("fleet: REPLAY FAILED: journal replays to [%s], live run "
              "was [%s]" % (replayed.accounting_line(),
                            result.accounting_line()), file=sys.stderr)
        return 2
    print("flight: journal %s replays to the live accounting "
          "(%d events, %d protocol errors)"
          % (journal_path, replayed.events, replayed.protocol_errors))
    return 0


def _report_profile(result, out_path):
    """Summarize the fleet-wide host profile and optionally write it.
    A profile-armed fleet whose merge carries no profile (e.g. a shard
    quarantined) is reported, not failed — the books already cover it."""
    merge = result.merge
    if merge is None or merge.profile is None:
        print("fleet: no fleet-wide profile (not every merged shard "
              "carried one)")
        return 0
    from repro.profile.export import render_redundancy, write_json
    document = merge.profile
    print("profile: %d shards folded, host %.1f ms across %d phases"
          % (document["meta"]["merged"], document["wall_ns"] / 1e6,
             len(document["phases"])))
    print(render_redundancy(document, top=0))
    if out_path is not None:
        write_json(document, out_path)
        print("fleet: wrote %s" % out_path)
    return 0


def _verify(plan, result):
    """Re-run the completed shards sequentially in-process and compare
    the merged exports byte for byte."""
    if result.merge is None:
        return 0
    completed = [state.shard_id for state in result.states
                 if state.verdict in ("completed", "retried")]
    traced = result.merge.traces is not None
    reference = reference_merge(plan, shard_ids=completed, trace=traced)
    mismatches = []
    if reference.digest != result.merge.digest:
        mismatches.append("fleet digest")
    if reference.prometheus_text() != result.merge.prometheus_text():
        mismatches.append("prometheus export")
    if reference.json_snapshot() != result.merge.json_snapshot():
        mismatches.append("json export")
    if traced and (reference.chrome_trace_json()
                   != result.merge.chrome_trace_json()):
        mismatches.append("stitched fleet trace")
    if mismatches:
        print("fleet: VERIFY FAILED: supervised merge diverged from the "
              "sequential reference in: %s" % ", ".join(mismatches))
        return 1
    print("verify: merged exports byte-identical to the sequential "
          "reference (%d shards%s)"
          % (len(completed), ", traces included" if traced else ""))
    return 0


def _write_document(path, args, plan, result):
    merge = result.merge
    document = {
        "schema": FLEET_SCHEMA,
        "seed": args.seed,
        "machines": plan.machine_count,
        "workers": result.config.workers,
        "shard_size": args.shard_size,
        "chaos": result.chaos is not None,
        "protocol_errors": result.protocol_errors,
        "accounting": {
            "planned": result.planned,
            "completed": result.completed,
            "retried": result.retried,
            "quarantined": result.quarantined,
            "ok": result.accounting_ok,
        },
        "shards": [
            {"shard": state.shard_id,
             "machines": list(state.shard.machine_indexes),
             "attempts": state.attempts,
             "verdict": state.verdict,
             "failures": [{"attempt": f.attempt, "reason": f.reason,
                           "detail": f.detail}
                          for f in state.failures]}
            for state in result.states
        ],
        "merged": None if merge is None else {
            "digest": merge.digest,
            "machine_count": merge.machine_count,
            "ok": merge.ok,
            "records": merge.records,
            "metrics": json.loads(merge.json_snapshot()),
        },
    }
    with open(path, "w") as fh:
        json.dump(document, fh, sort_keys=True, indent=2)
        fh.write("\n")
    print("fleet: wrote %s" % path)


if __name__ == "__main__":
    sys.exit(main())
