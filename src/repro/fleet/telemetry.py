"""Fleet flight recorder and live telemetry (`repro-flight/1`).

The supervisor (PR 7) classified failures and balanced its books, but a
crashed run left nothing behind except whatever scrolled past: the one
result message per attempt was the *only* record, and a post-mortem of
a chaos ladder meant reconstructing history from log greps.  This
module makes the supervisor's decision stream a first-class artifact:

* **FlightRecorder** — journals every supervisor decision (launch,
  heartbeat, progress, crash/hang/timeout/corrupt classification,
  backoff, retry, quarantine, chaos firing, unknown messages, merge,
  final accounting) as canonicalized JSONL.  Every record carries the
  fleet's *virtual-cycle* progress (simulated cycles reported by worker
  progress events so far); wall-clock stamps are optional and stripped
  for deterministic runs (``--verify``).

* **replay** — a pure function over the journal alone that
  reconstructs the run's verdict counts
  (``completed``/``retried``/``quarantined``) and the merged digest,
  and cross-checks them against the journalled final accounting.  If
  ``replay(journal)`` disagrees with the live
  :class:`~repro.fleet.supervisor.FleetResult`, either the journal is
  incomplete or the supervisor's books are cooked — both are bugs.

* **WatchRenderer** — a live one-line-per-event renderer for
  ``python -m repro fleet --watch``: see shards launch, machines
  complete and failures classify as they happen instead of staring at
  a silent prompt until the digest prints.

Events are plain dicts with an ``"event"`` key; the supervisor emits
them to any number of sinks (recorder, watch renderer, tests), so the
journal and the live view are the same stream by construction.
"""

import json
import sys
import time
from dataclasses import dataclass, field

#: Journal schema tag, written in the ``journal-open`` header record.
FLIGHT_SCHEMA = "repro-flight/1"

#: Every event type the supervisor emits, in rough lifecycle order.
EVENT_TYPES = (
    "journal-open", "run-begin", "launch", "chaos", "heartbeat",
    "progress", "result", "unknown-message", "failure", "retry",
    "quarantine", "verdict", "merge", "run-end",
)


class FlightReplayError(ValueError):
    """The journal cannot be replayed into a consistent accounting."""


class FlightRecorder:
    """Append-only JSONL journal of supervisor decisions.

    Each record is canonicalized JSON (sorted keys, fixed separators)
    on its own line, stamped with a monotonic sequence number and the
    fleet's virtual-cycle progress.  With ``wall=True`` (the default)
    records also carry a wall-clock epoch stamp — useful for real
    post-mortems, stripped under ``--verify`` so deterministic runs
    journal deterministic *fields* (the interleaving across workers is
    still scheduling-dependent; the replayed accounting is not).

    Use as a context manager, or call :meth:`close` explicitly; with
    ``path=None`` the journal is kept in memory only.
    """

    def __init__(self, path=None, wall=True):
        self.path = str(path) if path is not None else None
        self.wall = wall
        self.events = []
        self._seq = 0
        self._fh = open(self.path, "w") if self.path else None
        self.record({"event": "journal-open", "schema": FLIGHT_SCHEMA})

    def record(self, event):
        """Journal one event dict (stamped, canonicalized, flushed)."""
        entry = dict(event)
        entry["seq"] = self._seq
        self._seq += 1
        if self.wall:
            entry["wall"] = time.time()  # lint: allow(sim-nondeterminism)
        self.events.append(entry)
        if self._fh is not None:
            self._fh.write(canonical_line(entry) + "\n")
            self._fh.flush()
        return entry

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def lines(self):
        """The journal as canonical JSONL lines (memory copy)."""
        return [canonical_line(entry) for entry in self.events]


def canonical_line(entry):
    """One journal record's canonical serialized form."""
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


@dataclass
class FlightReplay:
    """What :func:`replay` reconstructed from a journal alone."""

    planned: int = 0
    verdicts: dict = field(default_factory=dict)  # shard -> verdict
    digest: str = None
    machine_count: int = None
    merge_ok: bool = None
    events: int = 0
    event_counts: dict = field(default_factory=dict)
    protocol_errors: int = 0

    def _count(self, verdict):
        return sum(1 for v in self.verdicts.values() if v == verdict)

    @property
    def completed(self):
        return self._count("completed")

    @property
    def retried(self):
        return self._count("retried")

    @property
    def quarantined(self):
        return self._count("quarantined")

    def accounting_line(self):
        return ("planned=%d completed=%d retried=%d quarantined=%d"
                % (self.planned, self.completed, self.retried,
                   self.quarantined))

    def matches(self, result):
        """Does this replay agree with a live ``FleetResult``?"""
        return (self.planned == result.planned
                and self.completed == result.completed
                and self.retried == result.retried
                and self.quarantined == result.quarantined
                and (result.merge is None
                     or self.digest == result.merge.digest))


def replay(source):
    """Reconstruct the fleet accounting from a flight journal alone.

    *source* is a journal path, an iterable of JSONL lines, or an
    iterable of already-parsed record dicts.  The replay is pure: the
    verdict counts come from the per-shard ``verdict``/``quarantine``
    events, the planned count from ``run-begin`` (falling back to the
    launched shard set), and the digest from the ``merge`` event.  A
    journal whose final ``run-end`` accounting disagrees with the
    replayed counts raises :class:`FlightReplayError` — the journal is
    evidence, and inconsistent evidence must not pass silently.
    """
    out = FlightReplay()
    launched = set()
    end_accounting = None
    saw_header = False
    for entry in _records(source):
        event = entry.get("event")
        out.events += 1
        out.event_counts[event] = out.event_counts.get(event, 0) + 1
        if event == "journal-open":
            schema = entry.get("schema")
            if schema != FLIGHT_SCHEMA:
                raise FlightReplayError(
                    "journal schema is %r, want %r"
                    % (schema, FLIGHT_SCHEMA))
            saw_header = True
        elif event == "run-begin":
            out.planned = entry.get("shards", 0)
        elif event == "launch":
            launched.add(entry.get("shard"))
        elif event == "verdict":
            out.verdicts[entry["shard"]] = entry["verdict"]
        elif event == "quarantine":
            out.verdicts[entry["shard"]] = "quarantined"
        elif event == "unknown-message":
            out.protocol_errors += 1
        elif event == "merge":
            out.digest = entry.get("digest")
            out.machine_count = entry.get("machine_count")
            out.merge_ok = entry.get("ok")
        elif event == "run-end":
            end_accounting = entry.get("accounting")
    if not saw_header:
        raise FlightReplayError("journal has no journal-open header "
                                "(is this a repro-flight/1 file?)")
    if not out.planned:
        out.planned = len(launched)
    balanced = (out.completed + out.retried + out.quarantined
                == out.planned)
    if not balanced:
        raise FlightReplayError(
            "replayed books do not balance: %s" % out.accounting_line())
    if end_accounting is not None:
        want = {"planned": out.planned, "completed": out.completed,
                "retried": out.retried, "quarantined": out.quarantined}
        got = {key: end_accounting.get(key) for key in want}
        if got != want:
            raise FlightReplayError(
                "journalled run-end accounting %r disagrees with the "
                "replayed event stream %r" % (got, want))
    return out


def _records(source):
    """Yield parsed record dicts from a path, lines, or dicts."""
    if isinstance(source, (str, bytes)):
        with open(source) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)
        return
    for item in source:
        if isinstance(item, dict):
            yield item
        else:
            item = item.strip()
            if item:
                yield json.loads(item)


class WatchRenderer:
    """Live one-line-per-event renderer for ``--watch``.

    Heartbeats are summarized (one dot column would be noise at fleet
    scale); everything else prints as it happens.  Intended for a human
    at a terminal, so it writes to *stream* (stderr by default) and
    never touches the machine-readable digest on stdout.
    """

    #: Event types too chatty to print one line each.
    QUIET = ("heartbeat",)

    def __init__(self, stream=None, show_heartbeats=False):
        self.stream = stream if stream is not None else sys.stderr
        self.show_heartbeats = show_heartbeats

    def __call__(self, event):
        kind = event.get("event")
        if kind in self.QUIET and not self.show_heartbeats:
            return
        line = self.format(event)
        if line:
            print(line, file=self.stream, flush=True)

    def format(self, event):
        kind = event.get("event")
        prefix = "watch: [%12s cyc] %-12s" % (
            format(event.get("vcycles", 0), ","), kind)
        if kind == "run-begin":
            return "%s seed=%s machines=%s shards=%s workers=%s%s" % (
                prefix, event.get("seed"), event.get("machines"),
                event.get("shards"), event.get("workers"),
                " chaos=on" if event.get("chaos") else "")
        if kind == "launch":
            chaos = event.get("chaos_action")
            return "%s shard=%s attempt=%s%s" % (
                prefix, event.get("shard"), event.get("attempt"),
                "" if chaos in (None, "none") else " chaos=%s" % chaos)
        if kind == "heartbeat":
            return "%s shard=%s m%06d (%s done, %s cycles)" % (
                prefix, event.get("shard"), event.get("machine", 0),
                event.get("machines_done"), event.get("cycles"))
        if kind == "progress":
            return ("%s shard=%s m%06d verdict=%s cycles=%s traps=%s "
                    "recoveries=%s (%s/%s)" % (
                        prefix, event.get("shard"),
                        event.get("machine", 0), event.get("verdict"),
                        event.get("cycles"), event.get("traps"),
                        event.get("recoveries"),
                        event.get("machines_done"),
                        event.get("machines_planned")))
        if kind == "failure":
            return "%s shard=%s attempt=%s %s: %s" % (
                prefix, event.get("shard"), event.get("attempt"),
                event.get("reason"), event.get("detail"))
        if kind == "retry":
            return "%s shard=%s attempt=%s backoff=%.3fs" % (
                prefix, event.get("shard"), event.get("attempt"),
                event.get("delay_s", 0.0))
        if kind == "quarantine":
            return "%s shard=%s after %s failure(s)" % (
                prefix, event.get("shard"), event.get("failures"))
        if kind == "verdict":
            return "%s shard=%s %s" % (prefix, event.get("shard"),
                                       event.get("verdict"))
        if kind == "unknown-message":
            return "%s shard=%s type=%r" % (prefix, event.get("shard"),
                                            event.get("message_type"))
        if kind == "merge":
            return "%s %s machines, digest %.16s" % (
                prefix, event.get("machine_count"),
                event.get("digest") or "")
        if kind == "run-end":
            accounting = event.get("accounting", {})
            return "%s %s" % (prefix, " ".join(
                "%s=%s" % (key, accounting.get(key))
                for key in ("planned", "completed", "retried",
                            "quarantined")))
        return "%s %s" % (prefix, {key: value
                                   for key, value in sorted(event.items())
                                   if key not in ("event", "vcycles",
                                                  "seq", "wall")})
