"""``repro.fleet``: fault-tolerant multi-process campaign engine.

Shards M simulated machines across N supervised worker processes with
seed-split plans, survives worker crashes/hangs/corrupt payloads via
retry-with-backoff and poison-shard quarantine, and merges per-shard
telemetry deterministically — byte-identical to a sequential reference
run no matter how the fleet was scheduled.  See docs/fleet.md.
"""

from repro.fleet.chaos import ChaosAction, ChaosPlan
from repro.fleet.merge import FleetMerge, merge_payloads, reference_merge
from repro.fleet.plan import FleetPlan, MachineAssignment, Shard
from repro.fleet.supervisor import (
    FleetAccountingError,
    FleetConfig,
    FleetResult,
    Supervisor,
    run_fleet,
)

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "FleetAccountingError",
    "FleetConfig",
    "FleetMerge",
    "FleetPlan",
    "FleetResult",
    "MachineAssignment",
    "Shard",
    "Supervisor",
    "merge_payloads",
    "reference_merge",
    "run_fleet",
]
