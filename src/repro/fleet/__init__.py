"""``repro.fleet``: fault-tolerant multi-process campaign engine.

Shards M simulated machines across N supervised worker processes with
seed-split plans, survives worker crashes/hangs/corrupt payloads via
retry-with-backoff and poison-shard quarantine, and merges per-shard
telemetry deterministically — byte-identical to a sequential reference
run no matter how the fleet was scheduled.  Every supervisor decision
streams to attached sinks and can be journalled by the flight recorder
(``repro-flight/1``) and replayed into the same accounting.  See
docs/fleet.md.
"""

from repro.fleet.chaos import ChaosAction, ChaosPlan
from repro.fleet.merge import (
    FleetMerge,
    merge_payloads,
    merge_traces,
    reference_merge,
)
from repro.fleet.plan import FleetPlan, MachineAssignment, Shard
from repro.fleet.supervisor import (
    FleetAccountingError,
    FleetConfig,
    FleetResult,
    Supervisor,
    run_fleet,
)
from repro.fleet.telemetry import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    FlightReplay,
    FlightReplayError,
    WatchRenderer,
    replay,
)

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "FLIGHT_SCHEMA",
    "FleetAccountingError",
    "FleetConfig",
    "FleetMerge",
    "FleetPlan",
    "FleetResult",
    "FlightRecorder",
    "FlightReplay",
    "FlightReplayError",
    "MachineAssignment",
    "Shard",
    "Supervisor",
    "WatchRenderer",
    "merge_payloads",
    "merge_traces",
    "reference_merge",
    "replay",
    "run_fleet",
]
