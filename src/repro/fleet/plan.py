"""Fleet plans: M simulated machines sharded for N worker processes.

A fleet plan is pure data derived from ``(seed, machines, shard_size)``
before anything runs: machine *i* gets the campaign seed
``split_seed(seed, i)`` (the ``repro.faults`` seed-split pattern
generalised from vCPUs to machines), and the machines are grouped into
contiguous shards — the unit of scheduling, retry and quarantine.

Nothing here knows about processes: the same plan drives the
supervised multi-process run and the in-process sequential reference
the merge determinism checks compare against.
"""

from dataclasses import dataclass

from repro.faults.plan import split_seed

#: Default machines per shard.  Small enough that a retry repeats little
#: work, large enough that process spawn cost amortises.
DEFAULT_SHARD_SIZE = 4


@dataclass(frozen=True)
class MachineAssignment:
    """One simulated machine: its fleet index and derived campaign seed."""

    machine_index: int
    seed: int


@dataclass(frozen=True)
class Shard:
    """A contiguous group of machines scheduled as one unit of work."""

    shard_id: int
    machines: tuple  # of MachineAssignment

    @property
    def machine_indexes(self):
        return tuple(m.machine_index for m in self.machines)

    def describe(self):
        first = self.machines[0].machine_index
        last = self.machines[-1].machine_index
        return "shard %d [m%d..m%d]" % (self.shard_id, first, last)


class FleetPlan:
    """The full fleet: every machine's seed, grouped into shards."""

    def __init__(self, seed, shards):
        self.seed = seed
        self.shards = tuple(shards)

    @property
    def machines(self):
        """All assignments in machine-index order, across shards."""
        return tuple(m for shard in self.shards for m in shard.machines)

    @property
    def machine_count(self):
        return sum(len(shard.machines) for shard in self.shards)

    def describe(self):
        return ("fleet seed=%d machines=%d shards=%d"
                % (self.seed, self.machine_count, len(self.shards)))

    @classmethod
    def generate(cls, seed, machines, shard_size=DEFAULT_SHARD_SIZE):
        """Derive the plan: machine *i* runs ``split_seed(seed, i)``.

        ``split_seed`` validates the inputs (non-int seeds and negative
        indexes raise), so a malformed fleet request fails here, before
        any worker spawns.
        """
        if isinstance(machines, bool) or not isinstance(machines, int) \
                or machines < 1:
            raise ValueError("fleet needs machines >= 1, got %r"
                             % (machines,))
        if isinstance(shard_size, bool) or not isinstance(shard_size, int) \
                or shard_size < 1:
            raise ValueError("fleet needs shard_size >= 1, got %r"
                             % (shard_size,))
        assignments = [MachineAssignment(index, split_seed(seed, index))
                       for index in range(machines)]
        shards = []
        for start in range(0, machines, shard_size):
            shards.append(Shard(
                shard_id=len(shards),
                machines=tuple(assignments[start:start + shard_size])))
        return cls(seed, shards)
