"""Seed-deterministic chaos: the fleet's built-in hostile harness.

NecoFuzz-style robustness testing for the fleet layer itself: instead of
waiting for a worker to crash in production, ``--chaos`` makes workers
sabotage themselves on schedule, so every supervisor path — crash
detection, hang detection, corrupt-payload rejection, retry with
backoff, poison-shard quarantine — runs on every chaos invocation.

The plan is pure data from ``(seed, shard_count)``: each shard draws one
:class:`ChaosAction` from a deterministically shuffled cycle that
guarantees all four failure modes appear once the fleet has at least
``len(_ACTION_CYCLE)`` shards.  Transient actions (``KILL``, ``STALL``,
``CORRUPT``) fire only on a shard's *first* attempt, so the retry ladder
ends in success; ``POISON`` fires on every attempt, so the quarantine
ladder ends in an explicit ``quarantined`` verdict.
"""

import enum
import random

from repro.faults.plan import split_seed


class ChaosAction(enum.Enum):
    """How a worker sabotages one shard attempt."""

    NONE = "none"          # behave
    KILL = "kill"          # hard-exit mid-shard (crash path)
    STALL = "stall"        # stop heartbeating forever (hang path)
    CORRUPT = "corrupt"    # tamper the result payload (checksum path)
    POISON = "poison"      # fail every attempt (quarantine path)


#: One of each failure mode per cycle, diluted with clean shards so a
#: chaos run still merges real results.
_ACTION_CYCLE = (ChaosAction.KILL, ChaosAction.NONE, ChaosAction.STALL,
                 ChaosAction.NONE, ChaosAction.CORRUPT, ChaosAction.NONE,
                 ChaosAction.POISON, ChaosAction.NONE)

#: Transient sabotage hits only the first attempt; POISON is forever.
_FIRST_ATTEMPT_ONLY = (ChaosAction.KILL, ChaosAction.STALL,
                       ChaosAction.CORRUPT)


class ChaosPlan:
    """Per-shard sabotage schedule, a pure function of its inputs."""

    def __init__(self, actions):
        self.actions = dict(actions)  # shard_id -> ChaosAction

    @classmethod
    def generate(cls, seed, shard_count):
        """Deal the action cycle over the shards in a seed-shuffled
        order: every failure mode appears as early as the shard count
        allows, and the same seed always sabotages the same shards."""
        rng = random.Random(split_seed(seed, 1) ^ 0xC4A05)
        actions = {}
        deck = []
        for shard_id in range(shard_count):
            if not deck:
                deck = list(_ACTION_CYCLE)
                rng.shuffle(deck)
            actions[shard_id] = deck.pop()
        return cls(actions)

    def action_for(self, shard_id, attempt):
        """The sabotage this attempt suffers (``NONE`` once a transient
        action has already burned its first attempt)."""
        action = self.actions.get(shard_id, ChaosAction.NONE)
        if action in _FIRST_ATTEMPT_ONLY and attempt > 0:
            return ChaosAction.NONE
        return action

    def describe(self):
        hostile = {shard_id: action.value
                   for shard_id, action in sorted(self.actions.items())
                   if action is not ChaosAction.NONE}
        if not hostile:
            return "chaos: no hostile shards"
        return "chaos: " + ", ".join("shard %d=%s" % item
                                     for item in hostile.items())
