"""Deterministic fleet merge: many shards, one byte-stable export.

The merge is a pure fold over the *completed* shards' payloads — which
machines completed is the only input.  Worker count, scheduling order,
retry history and the order results arrived all cancel out:

* machine records are re-sorted by machine index;
* per-shard registry documents are folded into one fresh registry in
  shard-id order via :meth:`~repro.metrics.registry.MetricsRegistry.
  merge_snapshot` (commutative adds over label-disjoint series);
* the fleet-level roll-up families are registered first, from the
  sorted records;
* the fleet digest hashes the canonical text of the sorted records.

The sequential reference (:func:`reference_merge`) runs the same shards
in-process through the same fold — ``san-fleet-merge`` and the merge
determinism tests compare the two exports byte for byte.
"""

import hashlib

from repro.fleet.worker import machine_verdict, run_shard
from repro.metrics.registry import MetricsRegistry


class FleetMerge:
    """The folded outcome of every completed shard."""

    def __init__(self, records, registry):
        self.records = records  # machine-index sorted
        self.registry = registry

    # -- exports ---------------------------------------------------------

    def prometheus_text(self):
        return self.registry.prometheus_text()

    def json_snapshot(self):
        return self.registry.json_snapshot()

    def canonical(self):
        """Stable text form of the merged records, the digest input."""
        lines = []
        for record in self.records:
            lines.append(
                "machine=%06d seed=%d ok=%s verdict=%s digest=%s "
                "cycles=%d traps=%d"
                % (record["machine"], record["seed"], record["ok"],
                   machine_verdict(record), record["digest"],
                   record["cycles"], record["traps"]))
        return "\n".join(lines)

    @property
    def digest(self):
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    @property
    def machine_count(self):
        return len(self.records)

    @property
    def ok(self):
        """Every merged machine's campaign was clean."""
        return all(record["ok"] for record in self.records)


def merge_payloads(payloads):
    """Fold completed shard payloads into a :class:`FleetMerge`.

    *payloads* is an iterable of ``(shard_id, records, metrics_document)``
    in any order — the fold sorts, so two merges over the same completed
    set are byte-identical no matter how the shards were scheduled.
    """
    payloads = sorted(payloads, key=lambda item: item[0])
    records = sorted((record for _, shard_records, _ in payloads
                      for record in shard_records),
                     key=lambda record: record["machine"])
    seen = [record["machine"] for record in records]
    if len(set(seen)) != len(seen):
        raise ValueError("fleet merge saw duplicate machine indexes: %r"
                         % sorted({m for m in seen if seen.count(m) > 1}))

    registry = MetricsRegistry()
    _register_rollup(registry, records)
    for _, _, metrics_document in payloads:
        registry.merge_snapshot(metrics_document)
    total = sum(record["cycles"] for record in records)
    registry.clock = lambda: total
    return FleetMerge(records, registry)


def _register_rollup(registry, records):
    """The fleet-level families, built from the sorted records before
    the per-shard documents fold in (stable registration order)."""
    machines = registry.counter(
        "repro_fleet_machines_total",
        "Machines merged into the fleet result, by campaign verdict",
        ("verdict",))
    recoveries = registry.counter(
        "repro_fleet_recovery_total",
        "Recovery-ladder actions summed across the fleet",
        ("event",))
    cycles = registry.counter(
        "repro_fleet_cycles_total",
        "Simulated cycles summed across the fleet")
    traps = registry.counter(
        "repro_fleet_traps_total",
        "Traps summed across the fleet")
    machine_cycles = registry.histogram(
        "repro_fleet_machine_cycles",
        "Per-machine total simulated cycles across the fleet")
    for record in records:
        machines.labels(machine_verdict(record)).inc()
        for event, count in sorted(record["recovery_counts"].items()):
            recoveries.labels(event).inc(count)
        cycles.labels().inc(record["cycles"])
        traps.labels().inc(record["traps"])
        machine_cycles.labels().observe(record["cycles"])


def reference_merge(plan, shard_ids=None):
    """The in-process sequential reference: run the plan's shards (all,
    or just *shard_ids* — e.g. the set that completed under chaos) one
    after another in shard order, then fold through the identical merge
    path.  A supervised run over the same completed set must export
    byte-identical Prometheus text, JSON and digest."""
    wanted = None if shard_ids is None else set(shard_ids)
    payloads = []
    for shard in plan.shards:
        if wanted is not None and shard.shard_id not in wanted:
            continue
        records, metrics_document = run_shard(shard)
        payloads.append((shard.shard_id, records, metrics_document))
    return merge_payloads(payloads)
