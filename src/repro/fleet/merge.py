"""Deterministic fleet merge: many shards, one byte-stable export.

The merge is a pure fold over the *completed* shards' payloads — which
machines completed is the only input.  Worker count, scheduling order,
retry history and the order results arrived all cancel out:

* machine records are re-sorted by machine index;
* per-shard registry documents are folded into one fresh registry in
  shard-id order via :meth:`~repro.metrics.registry.MetricsRegistry.
  merge_snapshot` (commutative adds over label-disjoint series);
* the fleet-level roll-up families are registered first, from the
  sorted records;
* the fleet digest hashes the canonical text of the sorted records;
* per-machine :class:`~repro.trace.spans.Tracer` ring-buffer exports,
  when the shards collected them, stitch into **one fleet-wide
  Chrome/Perfetto trace** with a process lane per machine — each
  machine's payload is verified against its own ``san-trace-reconcile``
  invariant before it merges.

The sequential reference (:func:`reference_merge`) runs the same shards
in-process through the same fold — ``san-fleet-merge`` and the merge
determinism tests compare the two exports byte for byte.
"""

import hashlib
import json

from repro.fleet.worker import machine_verdict, run_shard
from repro.metrics.registry import MetricsRegistry
from repro.trace.export import verify_machine_trace


class FleetMerge:
    """The folded outcome of every completed shard."""

    def __init__(self, records, registry, traces=None, profile=None):
        self.records = records  # machine-index sorted
        self.registry = registry
        self.traces = traces    # machine_index -> trace payload, or None
        #: Fleet-wide ``repro-profile/1`` document folded from the
        #: per-shard host profiles (profile runs), else None.  Host time
        #: is nondeterministic, so the profile deliberately stays out of
        #: the digest and every deterministic export above.
        self.profile = profile

    # -- exports ---------------------------------------------------------

    def prometheus_text(self):
        return self.registry.prometheus_text()

    def json_snapshot(self):
        return self.registry.json_snapshot()

    def canonical(self):
        """Stable text form of the merged records, the digest input."""
        lines = []
        for record in self.records:
            lines.append(
                "machine=%06d seed=%d ok=%s verdict=%s digest=%s "
                "cycles=%d traps=%d"
                % (record["machine"], record["seed"], record["ok"],
                   machine_verdict(record), record["digest"],
                   record["cycles"], record["traps"]))
        return "\n".join(lines)

    @property
    def digest(self):
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    @property
    def machine_count(self):
        return len(self.records)

    @property
    def ok(self):
        """Every merged machine's campaign was clean."""
        return all(record["ok"] for record in self.records)

    # -- the fleet-wide trace --------------------------------------------

    def chrome_trace(self):
        """The stitched fleet trace as a Chrome trace_event document
        (process lane per machine); raises when the shards did not
        collect traces."""
        if self.traces is None:
            raise ValueError("this fleet ran without trace collection; "
                             "enable FleetConfig.trace (CLI: --trace-out)")
        return merge_traces(self.records, self.traces)

    def chrome_trace_json(self):
        """Deterministic serialization of the merged trace (byte-stable
        across worker counts and scheduling, like every other export)."""
        return json.dumps(self.chrome_trace(), sort_keys=True,
                          separators=(",", ":"))

    def write_chrome_trace(self, path):
        with open(path, "w") as fh:
            fh.write(self.chrome_trace_json())
            fh.write("\n")
        return path


def merge_payloads(payloads):
    """Fold completed shard payloads into a :class:`FleetMerge`.

    *payloads* is an iterable of ``(shard_id, records, metrics_document)``,
    ``(shard_id, records, metrics_document, traces)`` or ``(shard_id,
    records, metrics_document, traces, profile)`` tuples in any order —
    the fold sorts, so two merges over the same completed set are
    byte-identical no matter how the shards were scheduled.  Trace and
    profile payloads merge only when every completed shard carried them
    (a partially instrumented fleet is a configuration bug, surfaced as
    None).  The folded profile rides on :attr:`FleetMerge.profile` and
    never enters the digest or the deterministic exports.
    """
    normalized = []
    for item in payloads:
        shard_traces = item[3] if len(item) > 3 else None
        shard_profile = item[4] if len(item) > 4 else None
        shard_id, records, metrics_document = item[:3]
        normalized.append((shard_id, records, metrics_document,
                           shard_traces, shard_profile))
    normalized.sort(key=lambda item: item[0])
    records = sorted((record for _, shard_records, _, _, _ in normalized
                      for record in shard_records),
                     key=lambda record: record["machine"])
    seen = [record["machine"] for record in records]
    if len(set(seen)) != len(seen):
        raise ValueError("fleet merge saw duplicate machine indexes: %r"
                         % sorted({m for m in seen if seen.count(m) > 1}))

    registry = MetricsRegistry()
    _register_rollup(registry, records)
    for _, _, metrics_document, _, _ in normalized:
        registry.merge_snapshot(metrics_document)
    total = sum(record["cycles"] for record in records)
    registry.clock = lambda: total

    traces = None
    if normalized and all(t is not None for _, _, _, t, _ in normalized):
        traces = {}
        for _, _, _, shard_traces, _ in normalized:
            for machine_index, payload in shard_traces.items():
                traces[int(machine_index)] = payload
    profile = None
    if normalized and all(p is not None for *_, p in normalized):
        from repro.profile.export import merge_profiles
        profile = merge_profiles(
            [p for *_, p in normalized], scenario="fleet")
    return FleetMerge(records, registry, traces=traces, profile=profile)


def _register_rollup(registry, records):
    """The fleet-level families, built from the sorted records before
    the per-shard documents fold in (stable registration order)."""
    machines = registry.counter(
        "repro_fleet_machines_total",
        "Machines merged into the fleet result, by campaign verdict",
        ("verdict",))
    recoveries = registry.counter(
        "repro_fleet_recovery_total",
        "Recovery-ladder actions summed across the fleet",
        ("event",))
    cycles = registry.counter(
        "repro_fleet_cycles_total",
        "Simulated cycles summed across the fleet")
    traps = registry.counter(
        "repro_fleet_traps_total",
        "Traps summed across the fleet")
    machine_cycles = registry.histogram(
        "repro_fleet_machine_cycles",
        "Per-machine total simulated cycles across the fleet")
    for record in records:
        machines.labels(machine_verdict(record)).inc()
        for event, count in sorted(record["recovery_counts"].items()):
            recoveries.labels(event).inc(count)
        cycles.labels().inc(record["cycles"])
        traps.labels().inc(record["traps"])
        machine_cycles.labels().observe(record["cycles"])


def merge_traces(records, traces):
    """Stitch per-machine trace payloads into one Chrome trace document.

    Every machine becomes its own **process lane** (``pid`` = machine
    index, with ``process_name``/``process_sort_index`` metadata so
    Perfetto shows ``m000042 seed=…`` lanes in fleet order); the
    per-machine ``tid`` (cpu id) survives as the thread lane.  Each
    payload must pass :func:`~repro.trace.export.verify_machine_trace`
    — the ``san-trace-reconcile`` invariant holds *per machine after
    the merge*, or the merge refuses.
    """
    seeds = {record["machine"]: record["seed"] for record in records}
    events = []
    per_machine = {}
    for machine_index in sorted(traces):
        payload = traces[machine_index]
        problems = verify_machine_trace(payload)
        if problems:
            raise ValueError(
                "fleet trace merge: machine %d fails san-trace-reconcile: "
                "%s" % (machine_index, "; ".join(problems)))
        label = "m%06d" % machine_index
        if machine_index in seeds:
            label += " seed=%d" % seeds[machine_index]
        events.append({"name": "process_name", "cat": "__metadata",
                       "ph": "M", "ts": 0, "pid": machine_index,
                       "tid": 0, "args": {"name": label}})
        events.append({"name": "process_sort_index", "cat": "__metadata",
                       "ph": "M", "ts": 0, "pid": machine_index,
                       "tid": 0, "args": {"sort_index": machine_index}})
        for event in payload["events"]:
            stitched = dict(event)
            stitched["pid"] = machine_index
            events.append(stitched)
        per_machine[str(machine_index)] = dict(payload["reconciliation"])
    meta = {
        "clock": "virtual-cycles",
        "machines": len(per_machine),
        "reconciled": True,  # merge_traces refuses inexact payloads
        "per_machine": per_machine,
    }
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": meta}


def reference_merge(plan, shard_ids=None, trace=False, profile=False):
    """The in-process sequential reference: run the plan's shards (all,
    or just *shard_ids* — e.g. the set that completed under chaos) one
    after another in shard order, then fold through the identical merge
    path.  A supervised run over the same completed set must export
    byte-identical Prometheus text, JSON, digest — and, with ``trace``,
    the same stitched fleet trace.  (*profile* only decorates the merge
    with a host-time document; it is never part of the byte comparison.)
    """
    wanted = None if shard_ids is None else set(shard_ids)
    payloads = []
    for shard in plan.shards:
        if wanted is not None and shard.shard_id not in wanted:
            continue
        records, metrics_document, traces, profile_doc = run_shard(
            shard, trace=trace, profile=profile)
        payloads.append((shard.shard_id, records, metrics_document,
                         traces, profile_doc))
    return merge_payloads(payloads)
