"""The fleet worker: one shard attempt in one OS process.

A worker receives a :class:`~repro.fleet.plan.Shard`, runs
``run_campaign`` for each machine under a shard-local telemetry registry
(every machine gets its own ``config`` label, ``m000042``-style, so
per-shard exports fold without collisions), streams incremental
telemetry up the pipe as it goes, and finishes with a single result
message whose payload is checksummed — the supervisor recomputes the
checksum, so a corrupted payload is detected rather than merged.

Protocol on the pipe (dicts, one per ``send``), in order per machine:

* ``{"type": "heartbeat", "machine": <index>, "machines_done": <n>,
  "cycles": <total so far>}`` — before every machine.  The supervisor's
  hang detector keys on the gap between heartbeats; the monotonic
  ``machines_done``/``cycles`` fields let it distinguish *slow* (still
  making progress) from *stuck* (beating but frozen) and report the
  last real progress when it classifies a hang.
* ``{"type": "progress", "machine": <index>, "verdict": ..,
  "ok": .., "cycles": .., "traps": .., "recoveries": ..,
  "machines_done": <n>, "machines_planned": <k>,
  "metrics_delta": <repro-metrics/1 delta document>}`` — after every
  machine: the campaign verdict, trap/recovery counts and the registry
  movement this machine caused (folding every delta through
  ``merge_snapshot`` reproduces the final metrics document).
* ``{"type": "result", "records": [...], "metrics": {...},
  "traces": {...}|None, "profile": {...}|None,
  "checksum": <sha256 hex>}`` — exactly once, last.  Only this message
  feeds the merge; progress events are telemetry, so a later failure
  of the attempt never half-merges.  ``profile`` carries the shard's
  ``repro-profile/1`` host-time document on ``profile=True`` runs; it
  is checksummed like everything else but never folded into the
  deterministic exports (host time is nondeterministic by nature).

Everything a worker computes is a pure function of the shard's seeds;
the in-process sequential reference calls the same :func:`run_shard`,
which is why the merged exports can be compared byte for byte — the
per-machine event stream itself is deterministic per seed (only the
cross-shard interleaving at the supervisor is scheduling-dependent).

Chaos actions sabotage this worker deliberately (see
:mod:`repro.fleet.chaos`): ``KILL`` hard-exits mid-shard, ``STALL``
stops heartbeating, ``CORRUPT`` tampers the records after checksumming,
``POISON`` dies on arrival every attempt.
"""

import hashlib
import json
import os
import time

from repro.faults.campaign import run_campaign
from repro.fleet.chaos import ChaosAction
from repro.metrics.instrument import MachineMetrics
from repro.metrics.registry import MetricsRegistry
from repro.trace.export import tracer_payload

#: Exit codes the chaos modes use; anything non-zero reads as a crash.
KILL_EXIT_CODE = 137
POISON_EXIT_CODE = 113

#: How long a stalled worker sleeps.  The supervisor's hang detector
#: kills it long before this elapses; the constant only needs to be
#: comfortably larger than any plausible heartbeat timeout.
STALL_SECONDS = 600.0


def machine_label(machine_index):
    """The ``config`` label one machine's telemetry carries.  Zero-padded
    so label-sorted child order equals machine-index order."""
    return "m%06d" % machine_index


def machine_record(assignment, result):
    """The compact, JSON-clean summary of one machine's campaign — the
    unit the deterministic merge folds."""
    return {
        "machine": assignment.machine_index,
        "seed": assignment.seed,
        "ok": result.ok,
        "digest": result.digest,
        "degraded": result.degraded,
        "repromoted": result.repromoted,
        "recovery_counts": dict(result.recovery_counts),
        "cycles": result.total_cycles,
        "traps": result.total_traps,
        "sanitizer_checks": result.sanitizer_checks,
        "sanitizer_violations": result.sanitizer_violations,
    }


def machine_verdict(record):
    """One word per machine for the fleet roll-up."""
    if record["degraded"]:
        return "degraded"
    if record["repromoted"]:
        return "repromoted"
    return "clean"


def payload_checksum(records, metrics_document, traces=None,
                     profile=None):
    """sha256 over the canonical JSON of the result payload (trace and
    profile payloads are covered too when the shard collected them —
    keys are added only when present, so checksums of runs without
    them are unchanged)."""
    body = {"records": records, "metrics": metrics_document}
    if traces is not None:
        body["traces"] = traces
    if profile is not None:
        body["profile"] = profile
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_machine(assignment, registry=None, trace=False, profiler=None):
    """Run one machine's campaign; returns ``(record, trace_payload)``.
    With *registry* the machine's telemetry lands there under its own
    config label; with ``trace=True`` the campaign runs under a
    :class:`~repro.trace.spans.Tracer` and the second element is its
    exported ring buffer (else None); *profiler* arms the host
    profiler's redundancy observatory on the machine.  None of them
    change the digest — telemetry, tracing and profiling are
    observe-only and charge zero cycles."""
    metrics = None
    if registry is not None:
        metrics = MachineMetrics(
            registry=registry,
            config=machine_label(assignment.machine_index))
    result = run_campaign(assignment.seed, trace=trace, metrics=metrics,
                          profiler=profiler)
    trace_doc = tracer_payload(result.tracer) if trace else None
    return machine_record(assignment, result), trace_doc


def run_shard(shard, emit=None, trace=False, profile=False):
    """Run every machine in *shard* in index order.

    Returns ``(records, metrics_document, traces, profile_doc)`` — the
    same tuple whether this runs in a worker process or inline in the
    sequential reference (*traces* is a ``machine_index -> trace
    payload`` dict with ``trace=True``, else None; *profile_doc* is the
    shard's ``repro-profile/1`` document with ``profile=True``, else
    None — stacks are not collected in fleet mode to keep the result
    payload small).  *emit*, when given, receives the incremental event
    stream: one enriched ``heartbeat`` before each machine and one
    ``progress`` (verdict, counts, metrics delta) after it.
    """
    registry = MetricsRegistry()
    cursor = registry.delta_cursor()
    records = []
    traces = {} if trace else None
    profiler = None
    if profile:
        from repro.profile.profiler import HostProfiler
        profiler = HostProfiler(collect_stacks=False)
        profiler.start()
    planned = len(shard.machines)
    cycles_done = 0
    try:
        for done, assignment in enumerate(shard.machines):
            if emit is not None:
                emit({"type": "heartbeat",
                      "machine": assignment.machine_index,
                      "machines_done": done,
                      "cycles": cycles_done})
            record, trace_doc = run_machine(assignment, registry=registry,
                                            trace=trace, profiler=profiler)
            records.append(record)
            cycles_done += record["cycles"]
            if trace:
                traces[assignment.machine_index] = trace_doc
            if emit is not None:
                emit({"type": "progress",
                      "machine": assignment.machine_index,
                      "verdict": machine_verdict(record),
                      "ok": record["ok"],
                      "cycles": record["cycles"],
                      "traps": record["traps"],
                      "recoveries": sum(record["recovery_counts"].values()),
                      "machines_done": done + 1,
                      "machines_planned": planned,
                      "metrics_delta": cursor.advance(
                          virtual_cycles=cycles_done)})
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.detach_machine()
    profile_doc = None
    if profiler is not None:
        from repro.profile.export import profile_document
        profile_doc = profile_document(
            profiler, scenario="shard-%d" % shard.shard_id,
            meta={"machines": planned})
    registry.clock = lambda: cycles_done
    return (records, json.loads(registry.json_snapshot()), traces,
            profile_doc)


def worker_entry(conn, shard, attempt, chaos_action_value,
                 stall_seconds=STALL_SECONDS, trace=False, profile=False):
    """Child-process entry point: run the shard, stream telemetry,
    self-sabotage if chaos says so, send exactly one result message."""
    action = ChaosAction(chaos_action_value)
    if action is ChaosAction.POISON:
        os._exit(POISON_EXIT_CODE)
    kill_after = None
    if action is ChaosAction.KILL:
        kill_after = max(1, len(shard.machines) // 2)

    done = 0

    def emit(message):
        nonlocal done
        if message["type"] == "heartbeat":
            # The chaos sabotage points key on machine boundaries, which
            # is exactly where heartbeats fire.
            if kill_after is not None and done >= kill_after:
                os._exit(KILL_EXIT_CODE)
            if action is ChaosAction.STALL and done >= 1:
                time.sleep(stall_seconds)
                os._exit(0)
            conn.send(message)
            done += 1
        else:
            conn.send(message)

    records, metrics_document, traces, profile_doc = run_shard(
        shard, emit=emit, trace=trace, profile=profile)
    # Single-machine shards never reach the mid-shard sabotage point in
    # the heartbeat hook; the transient actions still must not deliver.
    if action is ChaosAction.KILL:
        os._exit(KILL_EXIT_CODE)
    if action is ChaosAction.STALL:
        time.sleep(stall_seconds)
        os._exit(0)
    checksum = payload_checksum(records, metrics_document, traces,
                                profile_doc)
    if action is ChaosAction.CORRUPT and records:
        # Tamper *after* checksumming: the supervisor's recomputation
        # must disagree, which is the whole point.
        records[0]["digest"] = "deadbeef" + records[0]["digest"][8:]
    conn.send({"type": "result", "records": records,
               "metrics": metrics_document, "traces": traces,
               "profile": profile_doc, "checksum": checksum})
    conn.close()
