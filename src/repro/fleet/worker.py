"""The fleet worker: one shard attempt in one OS process.

A worker receives a :class:`~repro.fleet.plan.Shard`, runs
``run_campaign`` for each machine under a shard-local telemetry registry
(every machine gets its own ``config`` label, ``m000042``-style, so
per-shard exports fold without collisions), and sends the supervisor a
single result message whose payload is checksummed — the supervisor
recomputes the checksum, so a corrupted payload is detected rather than
merged.

Protocol on the pipe (dicts, one per ``send``):

* ``{"type": "heartbeat", "machine": <index>}`` — before every machine;
  the supervisor's hang detector keys on the gap between these.
* ``{"type": "result", "records": [...], "metrics": {...},
  "checksum": <sha256 hex>}`` — exactly once, last.

Everything a worker computes is a pure function of the shard's seeds;
the in-process sequential reference calls the same :func:`run_shard`,
which is why the merged exports can be compared byte for byte.

Chaos actions sabotage this worker deliberately (see
:mod:`repro.fleet.chaos`): ``KILL`` hard-exits mid-shard, ``STALL``
stops heartbeating, ``CORRUPT`` tampers the records after checksumming,
``POISON`` dies on arrival every attempt.
"""

import hashlib
import json
import os
import time

from repro.faults.campaign import run_campaign
from repro.fleet.chaos import ChaosAction
from repro.metrics.instrument import MachineMetrics
from repro.metrics.registry import MetricsRegistry

#: Exit codes the chaos modes use; anything non-zero reads as a crash.
KILL_EXIT_CODE = 137
POISON_EXIT_CODE = 113

#: How long a stalled worker sleeps.  The supervisor's hang detector
#: kills it long before this elapses; the constant only needs to be
#: comfortably larger than any plausible heartbeat timeout.
STALL_SECONDS = 600.0


def machine_label(machine_index):
    """The ``config`` label one machine's telemetry carries.  Zero-padded
    so label-sorted child order equals machine-index order."""
    return "m%06d" % machine_index


def machine_record(assignment, result):
    """The compact, JSON-clean summary of one machine's campaign — the
    unit the deterministic merge folds."""
    return {
        "machine": assignment.machine_index,
        "seed": assignment.seed,
        "ok": result.ok,
        "digest": result.digest,
        "degraded": result.degraded,
        "repromoted": result.repromoted,
        "recovery_counts": dict(result.recovery_counts),
        "cycles": result.total_cycles,
        "traps": result.total_traps,
        "sanitizer_checks": result.sanitizer_checks,
        "sanitizer_violations": result.sanitizer_violations,
    }


def machine_verdict(record):
    """One word per machine for the fleet roll-up."""
    if record["degraded"]:
        return "degraded"
    if record["repromoted"]:
        return "repromoted"
    return "clean"


def payload_checksum(records, metrics_document):
    """sha256 over the canonical JSON of the result payload."""
    canonical = json.dumps({"records": records,
                            "metrics": metrics_document},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_machine(assignment, registry=None):
    """Run one machine's campaign; returns its record.  With *registry*
    the machine's telemetry lands there under its own config label."""
    metrics = None
    if registry is not None:
        metrics = MachineMetrics(
            registry=registry,
            config=machine_label(assignment.machine_index))
    result = run_campaign(assignment.seed, metrics=metrics)
    return machine_record(assignment, result)


def run_shard(shard, heartbeat=None):
    """Run every machine in *shard* in index order.

    Returns ``(records, metrics_document)`` — the same pair whether this
    runs in a worker process or inline in the sequential reference.
    *heartbeat*, when given, is called with each machine index before
    its campaign runs.
    """
    registry = MetricsRegistry()
    records = []
    for assignment in shard.machines:
        if heartbeat is not None:
            heartbeat(assignment.machine_index)
        records.append(run_machine(assignment, registry=registry))
    total = sum(record["cycles"] for record in records)
    registry.clock = lambda: total
    return records, json.loads(registry.json_snapshot())


def worker_entry(conn, shard, attempt, chaos_action_value,
                 stall_seconds=STALL_SECONDS):
    """Child-process entry point: run the shard, self-sabotage if chaos
    says so, send exactly one result message."""
    action = ChaosAction(chaos_action_value)
    if action is ChaosAction.POISON:
        os._exit(POISON_EXIT_CODE)
    kill_after = None
    if action is ChaosAction.KILL:
        kill_after = max(1, len(shard.machines) // 2)

    done = 0

    def heartbeat(machine_index):
        nonlocal done
        if kill_after is not None and done >= kill_after:
            os._exit(KILL_EXIT_CODE)
        if action is ChaosAction.STALL and done >= 1:
            time.sleep(stall_seconds)
            os._exit(0)
        conn.send({"type": "heartbeat", "machine": machine_index})
        done += 1

    records, metrics_document = run_shard(shard, heartbeat=heartbeat)
    # Single-machine shards never reach the mid-shard sabotage point in
    # the heartbeat hook; the transient actions still must not deliver.
    if action is ChaosAction.KILL:
        os._exit(KILL_EXIT_CODE)
    if action is ChaosAction.STALL:
        time.sleep(stall_seconds)
        os._exit(0)
    checksum = payload_checksum(records, metrics_document)
    if action is ChaosAction.CORRUPT and records:
        # Tamper *after* checksumming: the supervisor's recomputation
        # must disagree, which is the whole point.
        records[0]["digest"] = "deadbeef" + records[0]["digest"][8:]
    conn.send({"type": "result", "records": records,
               "metrics": metrics_document, "checksum": checksum})
    conn.close()
