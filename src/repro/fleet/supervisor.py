"""The fleet supervisor: crash/hang/corrupt recovery with exact books.

Shards are scheduled onto at most ``workers`` concurrent OS processes.
Each attempt is watched two ways: a **heartbeat timeout** (a worker that
stops sending per-machine heartbeats is hung) and a **wall-clock
deadline** (an attempt that outlives its budget is cut off even if it
keeps heartbeating).  A dead process without a result is a **crash**; a
result whose recomputed checksum disagrees, or that reports the wrong
machines, is **corrupt** and treated as a failure, never merged.

Failures retry with exponential backoff (``backoff_base_s * 2**n``,
capped).  A shard that fails more than ``max_retries`` times is
**quarantined**: excluded from the merge with an explicit verdict and
its full failure ladder attached — the fleet degrades to partial
results instead of failing.

The books must balance exactly: every planned shard ends ``completed``
(first try), ``retried`` (succeeded after failures) or ``quarantined``,
and ``completed + retried + quarantined == planned`` is enforced as an
invariant — a shard silently dropped is a supervisor bug, and
:meth:`Supervisor.run` raises rather than return cooked books.

Every decision the supervisor takes is also **emitted as an event** to
any attached sinks (:class:`~repro.fleet.telemetry.FlightRecorder`
journal, ``--watch`` renderer, tests): launches, chaos firings,
heartbeats, per-machine progress, failure classifications, backoffs,
quarantines, the merge and the final accounting.  Events carry the
fleet's virtual-cycle progress so the telemetry timeline is simulated
time, not wall time.  Messages of unknown type are no longer dropped on
the floor — they journal as ``unknown-message`` and count in the
supervisor-side ``repro_fleet_protocol_errors_total`` family (kept out
of the *merged* registry on purpose: the merge must stay a pure
function of the completed machine set).

Only wall-clock *scheduling* lives here.  Everything merged downstream
is a pure function of the completed machine set, so the supervised
export stays byte-identical to the sequential reference no matter how
ugly the run was (see :mod:`repro.fleet.merge`).
"""

import multiprocessing
import time
from dataclasses import dataclass, field

from repro.fleet.chaos import ChaosAction
from repro.fleet.merge import merge_payloads
from repro.fleet.worker import STALL_SECONDS, payload_checksum, worker_entry
from repro.metrics.registry import MetricsRegistry


class FleetAccountingError(RuntimeError):
    """The supervisor's books do not balance — a shard went missing."""


@dataclass
class FleetConfig:
    """Supervision knobs (see docs/fleet.md for tuning guidance)."""

    workers: int = 2
    shard_timeout_s: float = 300.0     # wall-clock budget per attempt
    heartbeat_timeout_s: float = 30.0  # max silence between heartbeats
    max_retries: int = 2               # failures beyond this quarantine
    backoff_base_s: float = 0.05       # first retry delay
    backoff_cap_s: float = 2.0         # backoff ceiling
    poll_interval_s: float = 0.02      # supervisor loop tick
    stall_seconds: float = STALL_SECONDS  # chaos stall length
    trace: bool = False                # collect per-machine trace payloads
    profile: bool = False              # collect per-shard host profiles

    def backoff_for(self, failure_count):
        """Delay before the retry after the *failure_count*-th failure:
        exponential from the base, capped."""
        delay = self.backoff_base_s * (2 ** max(0, failure_count - 1))
        return min(delay, self.backoff_cap_s)


@dataclass
class ShardFailure:
    """One failed attempt on one shard."""

    attempt: int
    reason: str  # "crash" | "hang" | "timeout" | "corrupt"
    detail: str

    def describe(self):
        return "attempt %d: %s (%s)" % (self.attempt, self.reason,
                                        self.detail)


@dataclass
class ShardState:
    """Everything the supervisor knows about one shard."""

    shard: object
    attempts: int = 0
    failures: list = field(default_factory=list)
    verdict: str = None  # "completed" | "retried" | "quarantined"
    records: list = None
    metrics_document: dict = None
    traces: dict = None  # machine_index -> trace payload (trace runs)
    profile: dict = None  # repro-profile/1 document (profile runs)

    @property
    def shard_id(self):
        return self.shard.shard_id


class _Attempt:
    """One live worker process being watched."""

    __slots__ = ("state", "proc", "conn", "started", "last_beat",
                 "deadline", "beats", "machines_done", "cycles")

    def __init__(self, state, proc, conn, now, timeout_s):
        self.state = state
        self.proc = proc
        self.conn = conn
        self.started = now
        self.last_beat = now
        self.deadline = now + timeout_s
        self.beats = 0
        self.machines_done = 0  # last monotonic progress the worker sent
        self.cycles = 0


class FleetResult:
    """The supervised run's outcome: per-shard books plus the merge."""

    def __init__(self, plan, config, chaos, states, merge, telemetry=None):
        self.plan = plan
        self.config = config
        self.chaos = chaos
        self.states = states  # shard-id ordered ShardStates
        self.merge = merge    # FleetMerge over completed+retried shards
        #: Supervisor-side registry (event and protocol-error counters).
        #: Deliberately separate from ``merge.registry`` — scheduling
        #: telemetry must never leak into the deterministic export.
        self.telemetry = telemetry

    @property
    def planned(self):
        return len(self.states)

    def _count(self, verdict):
        return sum(1 for state in self.states
                   if state.verdict == verdict)

    @property
    def completed(self):
        return self._count("completed")

    @property
    def retried(self):
        return self._count("retried")

    @property
    def quarantined(self):
        return self._count("quarantined")

    @property
    def quarantined_states(self):
        return [state for state in self.states
                if state.verdict == "quarantined"]

    @property
    def accounting_ok(self):
        return (all(state.verdict is not None for state in self.states)
                and self.completed + self.retried + self.quarantined
                == self.planned)

    def assert_accounting(self):
        if not self.accounting_ok:
            missing = [state.shard_id for state in self.states
                       if state.verdict is None]
            raise FleetAccountingError(
                "fleet books do not balance: planned=%d completed=%d "
                "retried=%d quarantined=%d, unaccounted shards: %r"
                % (self.planned, self.completed, self.retried,
                   self.quarantined, missing))

    @property
    def ok(self):
        """Books balance and everything that merged was clean."""
        return (self.accounting_ok
                and (self.merge is None or self.merge.ok))

    @property
    def protocol_errors(self):
        """Messages of unknown type the workers sent (0 on clean runs)."""
        if self.telemetry is None:
            return 0
        family = self.telemetry.get("repro_fleet_protocol_errors_total")
        return family.total()

    def accounting_line(self):
        return ("planned=%d completed=%d retried=%d quarantined=%d"
                % (self.planned, self.completed, self.retried,
                   self.quarantined))


class Supervisor:
    """Runs one :class:`~repro.fleet.plan.FleetPlan` to completion.

    *recorder* is an optional :class:`~repro.fleet.telemetry.
    FlightRecorder`; *sinks* is any iterable of callables that receive
    each event dict as it is emitted (the ``--watch`` renderer is just
    a sink).  The recorder and the sinks see the identical stream.
    """

    def __init__(self, plan, config=None, chaos=None, recorder=None,
                 sinks=()):
        self.plan = plan
        self.config = config if config is not None else FleetConfig()
        self.chaos = chaos
        self.recorder = recorder
        self.sinks = tuple(sinks)
        self._vcycles = 0  # fleet virtual-cycle progress (telemetry time)
        self.telemetry = MetricsRegistry()
        self._events_total = self.telemetry.counter(
            "repro_fleet_events_total",
            "Supervisor events emitted, by event type", ("event",))
        self._protocol_errors = self.telemetry.counter(
            "repro_fleet_protocol_errors_total",
            "Worker messages the supervisor could not interpret, by "
            "message type", ("kind",))
        self.telemetry.clock = lambda: self._vcycles
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0])

    # -- the event stream ------------------------------------------------

    def _emit(self, event, **fields):
        """Emit one supervision event to the journal and every sink."""
        entry = {"event": event, "vcycles": self._vcycles}
        entry.update(fields)
        self._events_total.labels(event).inc()
        if self.recorder is not None:
            self.recorder.record(entry)
        for sink in self.sinks:
            sink(entry)
        return entry

    # -- the supervision loop --------------------------------------------

    def run(self):
        """Supervise every shard to a verdict; returns a FleetResult
        whose books are guaranteed to balance (or raises)."""
        states = [ShardState(shard) for shard in self.plan.shards]
        self._emit("run-begin", seed=self.plan.seed,
                   machines=self.plan.machine_count, shards=len(states),
                   workers=self.config.workers,
                   chaos=self.chaos is not None,
                   trace=self.config.trace)
        ready = [(0.0, state) for state in states]  # (not_before, state)
        running = []

        while ready or running:
            now = time.monotonic()  # lint: allow(sim-nondeterminism)
            ready.sort(key=lambda item: item[0])
            while (len(running) < self.config.workers and ready
                    and ready[0][0] <= now):
                _, state = ready.pop(0)
                running.append(self._launch(state, now))
            for attempt in list(running):
                finished, failure = self._poll_attempt(
                    attempt,
                    time.monotonic())  # lint: allow(sim-nondeterminism)
                if not finished:
                    continue
                running.remove(attempt)
                if failure is None:
                    state = attempt.state
                    state.verdict = ("completed" if not state.failures
                                     else "retried")
                    self._emit("verdict", shard=state.shard_id,
                               verdict=state.verdict,
                               attempts=state.attempts)
                else:
                    retry_at = self._register_failure(attempt, failure)
                    if retry_at is not None:
                        ready.append((retry_at, attempt.state))
            if running:
                time.sleep(self.config.poll_interval_s)

        merge = merge_payloads(
            (state.shard_id, state.records, state.metrics_document,
             state.traces, state.profile)
            for state in states
            if state.verdict in ("completed", "retried"))
        self._emit("merge", digest=merge.digest,
                   machine_count=merge.machine_count, ok=merge.ok)
        result = FleetResult(self.plan, self.config, self.chaos, states,
                             merge, telemetry=self.telemetry)
        self._emit("run-end", accounting={
            "planned": result.planned,
            "completed": result.completed,
            "retried": result.retried,
            "quarantined": result.quarantined,
        }, ok=result.ok)
        result.assert_accounting()
        return result

    # -- attempt lifecycle -----------------------------------------------

    def _launch(self, state, now):
        action = ChaosAction.NONE
        if self.chaos is not None:
            action = self.chaos.action_for(state.shard_id, state.attempts)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_entry,
            args=(child_conn, state.shard, state.attempts, action.value,
                  self.config.stall_seconds, self.config.trace,
                  self.config.profile),
            daemon=True)
        proc.start()
        child_conn.close()  # the worker holds the only send end now
        state.attempts += 1
        self._emit("launch", shard=state.shard_id,
                   attempt=state.attempts - 1,
                   machines=len(state.shard.machines),
                   chaos_action=action.name.lower())
        if action is not ChaosAction.NONE:
            self._emit("chaos", shard=state.shard_id,
                       attempt=state.attempts - 1,
                       action=action.name.lower())
        return _Attempt(state, proc, parent_conn, now,
                        self.config.shard_timeout_s)

    def _poll_attempt(self, attempt, now):
        """Advance one live attempt.  Returns ``(finished, failure)``:
        not finished yet, finished clean, or finished with a
        :class:`ShardFailure`."""
        result = self._drain(attempt)
        if result is not None:
            self._reap(attempt)
            return True, self._accept(attempt, result)
        if not attempt.proc.is_alive():
            # Dead without a result — but the pipe may still hold one
            # sent just before exiting.
            result = self._drain(attempt)
            self._reap(attempt)
            if result is not None:
                return True, self._accept(attempt, result)
            return True, ShardFailure(
                attempt.state.attempts - 1, "crash",
                "worker exited with code %s before sending a result"
                % attempt.proc.exitcode)
        if now > attempt.deadline:
            self._reap(attempt, force=True)
            return True, ShardFailure(
                attempt.state.attempts - 1, "timeout",
                "attempt exceeded the %.1fs wall-clock budget"
                % self.config.shard_timeout_s)
        if now - attempt.last_beat > self.config.heartbeat_timeout_s:
            self._reap(attempt, force=True)
            return True, ShardFailure(
                attempt.state.attempts - 1, "hang",
                "no heartbeat for %.1fs (last progress: %d/%d machines, "
                "%d cycles)"
                % (now - attempt.last_beat, attempt.machines_done,
                   len(attempt.state.shard.machines), attempt.cycles))
        return False, None

    def _drain(self, attempt):
        """Pull every queued message; returns the result message if one
        arrived.  Heartbeats feed the hang detector, progress events
        stream to the sinks, anything else journals as a protocol
        error — never a silent drop."""
        result = None
        shard_id = attempt.state.shard_id
        try:
            while attempt.conn.poll(0):
                message = attempt.conn.recv()
                kind = message.get("type") if isinstance(message, dict) \
                    else None
                if kind == "heartbeat":
                    attempt.last_beat = (
                        time.monotonic())  # lint: allow(sim-nondeterminism)
                    attempt.beats += 1
                    attempt.machines_done = max(
                        attempt.machines_done,
                        message.get("machines_done", 0))
                    attempt.cycles = max(attempt.cycles,
                                         message.get("cycles", 0))
                    self._emit("heartbeat", shard=shard_id,
                               machine=message.get("machine"),
                               machines_done=message.get("machines_done"),
                               cycles=message.get("cycles"))
                elif kind == "progress":
                    # Progress counts as a heartbeat too: a worker that
                    # streams machine results is visibly not hung.
                    attempt.last_beat = (
                        time.monotonic())  # lint: allow(sim-nondeterminism)
                    attempt.machines_done = max(
                        attempt.machines_done,
                        message.get("machines_done", 0))
                    machine_cycles = message.get("cycles", 0)
                    attempt.cycles += machine_cycles
                    self._vcycles += machine_cycles
                    self._emit(
                        "progress", shard=shard_id,
                        machine=message.get("machine"),
                        verdict=message.get("verdict"),
                        ok=message.get("ok"),
                        cycles=machine_cycles,
                        traps=message.get("traps"),
                        recoveries=message.get("recoveries"),
                        machines_done=message.get("machines_done"),
                        machines_planned=message.get("machines_planned"),
                        metrics_delta=message.get("metrics_delta"))
                elif kind == "result":
                    result = message
                else:
                    self._protocol_errors.labels(str(kind)).inc()
                    self._emit("unknown-message", shard=shard_id,
                               message_type=kind)
        except (EOFError, OSError):
            pass
        return result

    def _accept(self, attempt, message):
        """Validate a result message; a bad payload is a failure, not a
        merge input.  Returns None on success, a ShardFailure otherwise."""
        state = attempt.state
        records = message.get("records")
        metrics_document = message.get("metrics")
        traces = message.get("traces")
        profile = message.get("profile")
        checksum = payload_checksum(records, metrics_document, traces,
                                    profile)
        self._emit("result", shard=state.shard_id,
                   attempt=state.attempts - 1,
                   machines=len(records or ()),
                   checksum=message.get("checksum"))
        if checksum != message.get("checksum"):
            return ShardFailure(
                state.attempts - 1, "corrupt",
                "payload checksum mismatch: announced %.12s…, "
                "recomputed %.12s…"
                % (message.get("checksum") or "", checksum))
        got = sorted(record["machine"] for record in records)
        want = sorted(state.shard.machine_indexes)
        if got != want:
            return ShardFailure(
                state.attempts - 1, "corrupt",
                "payload reports machines %r, shard owns %r"
                % (got, want))
        state.records = records
        state.metrics_document = metrics_document
        state.traces = traces
        state.profile = profile
        return None

    def _register_failure(self, attempt, failure):
        """Book one failure; returns the monotonic retry time, or None
        when the shard crossed the quarantine threshold."""
        state = attempt.state
        state.failures.append(failure)
        self._emit("failure", shard=state.shard_id,
                   attempt=failure.attempt, reason=failure.reason,
                   detail=failure.detail)
        if len(state.failures) > self.config.max_retries:
            state.verdict = "quarantined"
            state.records = None
            state.metrics_document = None
            state.traces = None
            state.profile = None
            self._emit("quarantine", shard=state.shard_id,
                       failures=len(state.failures))
            return None
        delay = self.config.backoff_for(len(state.failures))
        self._emit("retry", shard=state.shard_id,
                   attempt=state.attempts, delay_s=delay)
        now = time.monotonic()  # lint: allow(sim-nondeterminism)
        return now + delay

    def _reap(self, attempt, force=False):
        """Tear one attempt's process down and close its pipe."""
        proc = attempt.proc
        if force and proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
        proc.join(timeout=5.0)
        try:
            attempt.conn.close()
        except OSError:
            pass


def run_fleet(plan, config=None, chaos=None, recorder=None, sinks=()):
    """Convenience wrapper: supervise *plan* and return the FleetResult."""
    return Supervisor(plan, config=config, chaos=chaos, recorder=recorder,
                      sinks=sinks).run()
