"""The phase site table: host code -> simulator phase taxonomy.

The profiler attributes every Python frame to a **phase** so the
host-time table lines up with the virtual-cycle span names the tracer
emits (``trap:*`` spans, ``ws.*`` world-switch phases, ``defer:*``
instants).  The mapping is data, not code: ordered ``(file suffix,
function name or None, phase)`` rules, first match wins.  A ``None``
function name matches any function in the file; ``{name}`` in the phase
is replaced with the function name (this is how every
``world_switch.py`` function becomes its own ``ws.<name>`` phase
without 15 rows).

Frames that match no rule inherit the phase of their caller — a helper
called from trap dispatch is trap-dispatch work — and top-level
unmatched frames land in ``other``.

The table is a read-only module constant (tuples all the way down), so
the statecheck shardability gate classifies it as a constant table; all
mutable profiler state lives on :class:`~repro.profile.profiler.
HostProfiler` instances.
"""

#: Ordered (file suffix, function name or None, phase) rules.
SITE_RULES = (
    # -- the precompiled dispatch fast path -----------------------------
    ("repro/arch/cpu.py", "_fast_sysreg_access", "dispatch.fastpath"),
    ("repro/arch/cpu.py", "_resolve_verdict", "dispatch.resolve"),
    ("repro/arch/dispatch.py", None, "dispatch.table"),
    # -- trap dispatch and sysreg classification (arch/cpu.py) ----------
    ("repro/arch/cpu.py", "_trap", "trap.dispatch"),
    ("repro/arch/cpu.py", "_sysreg_trap", "trap.dispatch"),
    ("repro/arch/cpu.py", "sysreg_access", "classify.sysreg_access"),
    ("repro/arch/cpu.py", "_access_at_el2", "classify.el2"),
    ("repro/arch/cpu.py", "_access_at_virtual_el2", "classify.virtual_el2"),
    ("repro/arch/cpu.py", "_virtual_el2_reg_access", "classify.virtual_el2"),
    ("repro/arch/cpu.py", "_access_at_guest_el1", "classify.guest_el1"),
    ("repro/arch/cpu.py", "_deferred_access", "vncr.deferred"),
    ("repro/arch/cpu.py", "_gic_cpu_access", "gic.cpu_interface"),
    ("repro/arch/cpu.py", None, "cpu.{name}"),
    ("repro/arch/registers.py", "lookup_register", "classify.lookup"),
    ("repro/arch/registers.py", None, "cpu.registers"),
    ("repro/core/classification.py", None, "classify.tables"),
    ("repro/core/conformance.py", None, "classify.conformance"),
    # -- the NEVE runtime and the deferred-access page ------------------
    ("repro/core/neve.py", None, "vncr.host"),
    ("repro/core/vncr.py", None, "vncr.page"),
    # -- world-switch phases: one phase per function, matching the
    #    tracer's ws.* span names --------------------------------------
    ("repro/hypervisor/world_switch.py", "make_ops", "ws.make_ops"),
    ("repro/hypervisor/world_switch.py", None, "ws.{name}"),
    # -- the rest of the hypervisor stack -------------------------------
    ("repro/hypervisor/nested.py", None, "hyp.nested"),
    ("repro/hypervisor/kvm.py", None, "hyp.kvm"),
    ("repro/hypervisor/vcpu.py", None, "hyp.vcpu"),
    ("repro/hypervisor/scheduler.py", None, "hyp.scheduler"),
    ("repro/arch/gic.py", None, "gic.distributor"),
    ("repro/arch/timer.py", None, "timer"),
    ("repro/memory/", None, "mem"),
    ("repro/x86/", None, "x86"),
    # -- hook-chain consumers: the observe-only fan-out the ledger and
    #    the trap path pay per event ------------------------------------
    ("repro/trace/spans.py", "_on_charge", "hooks.tracer_observer"),
    ("repro/trace/spans.py", None, "hooks.tracer"),
    ("repro/metrics/instrument.py", "_on_charge", "hooks.metrics_sink"),
    ("repro/metrics/instrument.py", "_on_trap", "hooks.metrics_sink"),
    ("repro/metrics/instrument.py", None, "hooks.metrics"),
    ("repro/metrics/registry.py", None, "hooks.registry"),
    ("repro/metrics/counters.py", None, "hooks.counters"),
    ("repro/metrics/cycles.py", "_fused_chain", "hooks.fused"),
    ("repro/metrics/cycles.py", "charge", "ledger.charge"),
    ("repro/metrics/cycles.py", None, "ledger.other"),
    ("repro/faults/points.py", None, "hooks.fault_injector"),
    ("repro/faults/recovery.py", None, "recovery"),
    ("repro/faults/", None, "faults"),
    # -- harness and workloads ------------------------------------------
    ("repro/workloads/", None, "workload"),
    ("repro/harness/", None, "harness"),
    ("repro/fleet/", None, "fleet"),
)

#: Phase prefix -> report group.  The redundancy report and the phase
#: table group rows by these so "where do host seconds go" reads at a
#: glance (trap dispatch vs. classification vs. world switch vs. hooks).
PHASE_GROUPS = (
    ("dispatch.", "dispatch-table"),
    ("trap.", "trap-dispatch"),
    ("classify.", "classification"),
    ("ws.", "world-switch"),
    ("vncr.", "vncr"),
    ("hooks.", "hook-chain"),
    ("ledger.", "hook-chain"),
    ("gic.", "gic"),
    ("hyp.", "hypervisor"),
)


def phase_for_code(filename, funcname):
    """The phase for a code object, or None when no rule matches (the
    frame then inherits its caller's phase).  *filename* should already
    be normalized to forward slashes."""
    for suffix, name, phase in SITE_RULES:
        if name is not None and name != funcname:
            continue
        if suffix.endswith("/"):
            if ("/" + suffix) not in filename \
                    and not filename.startswith(suffix):
                continue
        elif not filename.endswith(suffix):
            continue
        return phase.replace("{name}", funcname)
    return None


def group_for_phase(phase):
    """The report group a phase belongs to."""
    for prefix, group in PHASE_GROUPS:
        if phase.startswith(prefix):
            return group
    return "other"
