"""Exporters for ``repro-profile/1`` documents.

A profile document is JSON with host-nanosecond phase accounting, the
collapsed call stacks (flamegraph input), and the redundancy
observatory's report.  Host time is nondeterministic by nature, so
these documents live in ``PROF_*`` sidecar files that no golden
byte-diff ever covers; the *shape* is contractual, though —
:func:`validate_profile` is the schema-drift gate CI runs.

Also here: the human renderings (phase table, redundancy report), the
hotspot **diff** between two documents (how a perf PR proves its win
phase by phase), and the deterministic :func:`merge_profiles` fold the
fleet uses to aggregate per-worker profiles.
"""

import json

from repro.profile.sites import group_for_phase

PROFILE_SCHEMA = "repro-profile/1"
DIFF_SCHEMA = "repro-profile-diff/1"

#: Numeric fields every redundancy site must carry (the CI drift gate).
SITE_FIELDS = ("derivations", "distinct_keys", "stable_keys",
               "unstable_keys", "projected_hits", "projected_hit_rate")

#: The sites a profile must always name (acceptance contract).
REQUIRED_SITES = ("trap-dispatch", "classification", "hook-chain")

#: Extra fan-out fields only the hook-chain site carries.
HOOK_CHAIN_FIELDS = ("dispatches", "invocations",
                     "projected_fused_savings")


def profile_document(profiler, scenario, meta=None):
    """Build the ``repro-profile/1`` document for one profiling run."""
    phases = {}
    for phase, stat in sorted(profiler.phases.items()):
        phases[phase] = {
            "group": group_for_phase(phase),
            "calls": stat.calls,
            "self_ns": stat.self_ns,
            "cum_ns": stat.cum_ns,
        }
    stacks = {";".join(key): ns
              for key, ns in profiler.stacks.items() if ns > 0}
    document = {
        "schema": PROFILE_SCHEMA,
        "scenario": scenario,
        "wall_ns": profiler.wall_ns,
        "phases": phases,
        "stacks": stacks,
        "redundancy": profiler.redundancy.report(),
    }
    if meta:
        document["meta"] = dict(meta)
    return document


def validate_profile(document):
    """Schema check; returns a list of problems (empty means valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("schema") != PROFILE_SCHEMA:
        problems.append("schema is %r, want %r"
                        % (document.get("schema"), PROFILE_SCHEMA))
    if not isinstance(document.get("wall_ns"), int):
        problems.append("wall_ns missing or not an integer")
    phases = document.get("phases")
    if not isinstance(phases, dict):
        problems.append("phases missing")
    else:
        for phase, entry in sorted(phases.items()):
            for fieldname in ("calls", "self_ns", "cum_ns"):
                if not isinstance(entry.get(fieldname), int):
                    problems.append("phase %s: missing %s"
                                    % (phase, fieldname))
            if not isinstance(entry.get("group"), str):
                problems.append("phase %s: missing group" % phase)
    if not isinstance(document.get("stacks"), dict):
        problems.append("stacks missing")
    sites = (document.get("redundancy") or {}).get("sites")
    if not isinstance(sites, dict):
        problems.append("redundancy.sites missing")
        return problems
    for site in REQUIRED_SITES:
        entry = sites.get(site)
        if not isinstance(entry, dict):
            problems.append("redundancy site %r missing" % site)
            continue
        for fieldname in SITE_FIELDS:
            if not isinstance(entry.get(fieldname), (int, float)):
                problems.append("redundancy site %s: missing %s"
                                % (site, fieldname))
        if not isinstance(entry.get("top"), list):
            problems.append("redundancy site %s: missing top" % site)
    hook_chain = sites.get("hook-chain")
    if isinstance(hook_chain, dict):
        for fieldname in HOOK_CHAIN_FIELDS:
            if not isinstance(hook_chain.get(fieldname), int):
                problems.append("redundancy site hook-chain: missing %s"
                                % fieldname)
        if not isinstance(hook_chain.get("per_hook"), dict):
            problems.append("redundancy site hook-chain: missing "
                            "per_hook")
    return problems


def collapsed_stacks(document):
    """The flamegraph input: one ``frame;frame;frame weight`` line per
    collapsed stack (weights are host nanoseconds), sorted for
    determinism given the same samples."""
    lines = []
    for stack, ns in sorted(document.get("stacks", {}).items()):
        lines.append("%s %d" % (stack, ns))
    return "\n".join(lines) + ("\n" if lines else "")


def render_phase_table(document, top=None):
    """The self/cumulative host-time table, hottest phase first."""
    phases = document.get("phases", {})
    wall = document.get("wall_ns") or 0
    rows = sorted(phases.items(),
                  key=lambda item: (-item[1]["self_ns"], item[0]))
    if top is not None:
        rows = rows[:top]
    header = ("%-28s %-14s %10s %10s %6s %10s"
              % ("phase", "group", "calls", "self_ms", "self%",
                 "cum_ms"))
    lines = ["scenario: %s  (wall %.3f ms)"
             % (document.get("scenario"), wall / 1e6),
             header, "-" * len(header)]
    for phase, entry in rows:
        share = (100.0 * entry["self_ns"] / wall) if wall else 0.0
        lines.append("%-28s %-14s %10d %10.3f %5.1f%% %10.3f"
                     % (phase, entry["group"], entry["calls"],
                        entry["self_ns"] / 1e6, share,
                        entry["cum_ns"] / 1e6))
    return "\n".join(lines)


def render_redundancy(document, top=5):
    """The redundancy report: per-site re-derivation counts and the
    projected dispatch-table hit rates."""
    sites = document.get("redundancy", {}).get("sites", {})
    lines = ["redundancy observatory (what a precompiled dispatch "
             "table would save):"]
    for site in REQUIRED_SITES:
        entry = sites.get(site)
        if entry is None:
            lines.append("  %s: (no data)" % site)
            continue
        lines.append(
            "  %-16s %8d decisions re-derived over %d distinct keys "
            "(%d stable); projected table hits: %d (%.1f%% hit rate)"
            % (site, entry["derivations"], entry["distinct_keys"],
               entry["stable_keys"], entry["projected_hits"],
               100.0 * entry["projected_hit_rate"]))
        for item in entry.get("top", [])[:top]:
            lines.append("    %7dx %-52s -> %s%s"
                         % (item["count"], item["key"], item["outcome"],
                            "" if item["stable"] else " (UNSTABLE)"))
        if site == "hook-chain":
            lines.append(
                "    fan-out: %d hook invocations over %d dispatches "
                "(per hook: %s); fusing the chain would save %d calls"
                % (entry.get("invocations", 0),
                   entry.get("dispatches", 0),
                   ", ".join("%s=%d" % kv for kv in sorted(
                       entry.get("per_hook", {}).items())) or "none",
                   entry.get("projected_fused_savings", 0)))
    return "\n".join(lines)


# -- the hotspot diff ----------------------------------------------------

def diff_documents(before, after):
    """Compare two profile documents; returns the
    ``repro-profile-diff/1`` document with per-phase host-time deltas
    and per-site redundancy deltas."""
    for name, document in (("before", before), ("after", after)):
        problems = validate_profile(document)
        if problems:
            raise ValueError("%s document is not repro-profile/1: %s"
                             % (name, "; ".join(problems)))
    phases = {}
    names = set(before["phases"]) | set(after["phases"])
    empty = {"calls": 0, "self_ns": 0, "cum_ns": 0}
    for phase in sorted(names):
        b = before["phases"].get(phase, empty)
        a = after["phases"].get(phase, empty)
        phases[phase] = {
            fieldname: {"before": b[fieldname], "after": a[fieldname],
                        "delta": a[fieldname] - b[fieldname]}
            for fieldname in ("calls", "self_ns", "cum_ns")
        }
    sites = {}
    before_sites = before["redundancy"]["sites"]
    after_sites = after["redundancy"]["sites"]
    for site in sorted(set(before_sites) | set(after_sites)):
        b = before_sites.get(site, {})
        a = after_sites.get(site, {})
        entry = {}
        for fieldname in SITE_FIELDS + HOOK_CHAIN_FIELDS:
            if fieldname not in b and fieldname not in a:
                continue
            bval = b.get(fieldname, 0)
            aval = a.get(fieldname, 0)
            entry[fieldname] = {"before": bval, "after": aval,
                                "delta": aval - bval}
        sites[site] = entry
    return {
        "schema": DIFF_SCHEMA,
        "scenarios": {"before": before.get("scenario"),
                      "after": after.get("scenario")},
        "wall_ns": {"before": before["wall_ns"],
                    "after": after["wall_ns"],
                    "delta": after["wall_ns"] - before["wall_ns"]},
        "phases": phases,
        "redundancy": {"sites": sites},
    }


def render_diff(diff, top=20):
    """Human form of a profile diff: hottest movement first."""
    wall = diff["wall_ns"]
    lines = ["profile diff: %s -> %s"
             % (diff["scenarios"]["before"], diff["scenarios"]["after"]),
             "wall: %.3f ms -> %.3f ms (%+.3f ms)"
             % (wall["before"] / 1e6, wall["after"] / 1e6,
                wall["delta"] / 1e6), ""]
    header = ("%-28s %12s %12s %12s %10s"
              % ("phase", "self_ms_before", "self_ms_after",
                 "self_ms_delta", "calls_d"))
    lines += [header, "-" * len(header)]
    rows = sorted(diff["phases"].items(),
                  key=lambda item: (-abs(item[1]["self_ns"]["delta"]),
                                    item[0]))
    for phase, entry in rows[:top]:
        self_ns = entry["self_ns"]
        lines.append("%-28s %14.3f %12.3f %+13.3f %+10d"
                     % (phase, self_ns["before"] / 1e6,
                        self_ns["after"] / 1e6, self_ns["delta"] / 1e6,
                        entry["calls"]["delta"]))
    lines.append("")
    lines.append("redundancy deltas:")
    for site, entry in sorted(diff["redundancy"]["sites"].items()):
        if "derivations" not in entry:
            continue
        derivations = entry["derivations"]
        hits = entry.get("projected_hits", {"delta": 0})
        rate = entry.get("projected_hit_rate",
                         {"before": 0.0, "after": 0.0})
        lines.append(
            "  %-16s derivations %+d (now %d), projected hits %+d, "
            "hit rate %.1f%% -> %.1f%%"
            % (site, derivations["delta"], derivations["after"],
               hits["delta"], 100.0 * rate["before"],
               100.0 * rate["after"]))
    return "\n".join(lines)


# -- the fleet aggregation fold ------------------------------------------

def merge_profiles(documents, scenario=None):
    """Deterministically fold per-worker profile documents into one.

    Pure function of the input sequence: phase times, stack weights and
    redundancy counters add; rates are recomputed from the merged
    counts.  The fleet merge calls this in shard-id order, so the
    aggregate is as order-blind as the rest of the merged exports.
    Fleet machines carry disjoint config labels, which keeps the
    summed distinct/stable key counts exact.
    """
    documents = [doc for doc in documents if doc is not None]
    if not documents:
        raise ValueError("no profile documents to merge")
    phases = {}
    stacks = {}
    wall_ns = 0
    sites = {}
    per_hook = {}
    scenarios = []
    for document in documents:
        problems = validate_profile(document)
        if problems:
            raise ValueError("cannot merge invalid profile: %s"
                             % "; ".join(problems))
        scenarios.append(document.get("scenario"))
        wall_ns += document["wall_ns"]
        for phase, entry in document["phases"].items():
            merged = phases.setdefault(
                phase, {"group": entry["group"], "calls": 0,
                        "self_ns": 0, "cum_ns": 0})
            for fieldname in ("calls", "self_ns", "cum_ns"):
                merged[fieldname] += entry[fieldname]
        for stack, ns in document.get("stacks", {}).items():
            stacks[stack] = stacks.get(stack, 0) + ns
        for site, entry in document["redundancy"]["sites"].items():
            merged = sites.setdefault(
                site, {fieldname: 0 for fieldname in SITE_FIELDS})
            for fieldname in SITE_FIELDS:
                if fieldname == "projected_hit_rate":
                    continue
                merged[fieldname] += entry.get(fieldname, 0)
            for fieldname in HOOK_CHAIN_FIELDS:
                if fieldname in entry:
                    merged[fieldname] = (merged.get(fieldname, 0)
                                         + entry[fieldname])
            for hook, count in entry.get("per_hook", {}).items():
                per_hook[hook] = per_hook.get(hook, 0) + count
            tops = merged.setdefault("_top", {})
            for item in entry.get("top", []):
                slot = tops.setdefault(
                    item["key"], {"count": 0, "outcome": item["outcome"],
                                  "stable": True})
                slot["count"] += item["count"]
                if not item["stable"] \
                        or slot["outcome"] != item["outcome"]:
                    slot["stable"] = False
    for site, merged in sites.items():
        derivations = merged["derivations"]
        merged["projected_hit_rate"] = (
            merged["projected_hits"] / derivations if derivations
            else 0.0)
        tops = merged.pop("_top", {})
        ranked = sorted(tops.items(),
                        key=lambda item: (-item[1]["count"], item[0]))
        merged["top"] = [{"key": key, "count": slot["count"],
                          "outcome": slot["outcome"],
                          "stable": slot["stable"]}
                         for key, slot in ranked[:10]]
        if site == "hook-chain":
            merged["per_hook"] = dict(sorted(per_hook.items()))
    if scenario is None:
        scenario = "merge(%d profiles)" % len(documents)
    return {
        "schema": PROFILE_SCHEMA,
        "scenario": scenario,
        "wall_ns": wall_ns,
        "phases": dict(sorted(phases.items())),
        "stacks": dict(sorted(stacks.items())),
        "redundancy": {"sites": sites},
        "meta": {"merged": len(documents), "scenarios": scenarios},
    }


def write_json(document, path):
    """Write a document with the house JSON conventions."""
    with open(path, "w") as fh:
        json.dump(document, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path
