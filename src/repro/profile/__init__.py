"""Host-time profiling and the dispatch-redundancy observatory.

Everything in :mod:`repro.trace` and :mod:`repro.metrics` measures
*virtual* cycles — the currency of the paper's tables.  This package
measures the other budget: **host** CPU seconds per simulated machine,
the number that decides whether a 1000-machine fleet is affordable.

Two instruments, one attach point:

* :class:`~repro.profile.profiler.HostProfiler` — a
  ``sys.setprofile``-based instrumenting profiler that attributes host
  wall time and call counts to the simulator's phase taxonomy (trap
  dispatch, sysreg classification, ``ws.*`` world-switch phases, the
  VNCR deferred path, hook-chain fan-out), so the host-time table lines
  up 1:1 with the virtual-cycle spans from ``repro.trace``.
* :class:`~repro.profile.redundancy.RedundancyObservatory` — counters
  for work the simulator *re-derives* per access: classification
  decisions per (config, register, context), trap-dispatch decisions,
  and hook-chain fan-out per ledger charge.  Its report projects what a
  precompiled dispatch table would save.

Profiling is strictly observe-only: it never charges the ledger, never
touches the registry, and the disabled path costs one ``is None`` check
per site (``san-profile-zero-cycles`` enforces byte-identical exports).
All state is per-instance — nothing module-level and mutable — so the
statecheck shardability gate stays clean.
"""

from repro.profile.export import (
    PROFILE_SCHEMA,
    collapsed_stacks,
    diff_documents,
    merge_profiles,
    profile_document,
    render_diff,
    render_phase_table,
    render_redundancy,
    validate_profile,
)
from repro.profile.profiler import HostProfiler
from repro.profile.redundancy import RedundancyObservatory

__all__ = [
    "PROFILE_SCHEMA",
    "HostProfiler",
    "RedundancyObservatory",
    "collapsed_stacks",
    "diff_documents",
    "merge_profiles",
    "profile_document",
    "render_diff",
    "render_phase_table",
    "render_redundancy",
    "validate_profile",
]
