"""The instrumenting host-time profiler (``sys.setprofile`` based).

One :class:`HostProfiler` instance owns all state for one profiling
window: per-phase self/cumulative nanoseconds and call counts, the
collapsed call-stack weights the flamegraph export renders, and a
:class:`~repro.profile.redundancy.RedundancyObservatory` for the
dispatch-redundancy counters.  Nothing is module-level and mutable, so
the statecheck shardability gate stays clean.

Attribution model: every Python frame maps to a **phase** through the
site table (:mod:`repro.profile.sites`); unmatched frames inherit their
caller's phase.  Self time is the wall time a frame spends on top of
the stack; cumulative time is wall time from a phase's outermost entry
to its matching return (recursion into the same phase does not double
count).  The profiler reads the wall clock — host time is the thing
being measured — which is exactly why its output lives in ``PROF_*``
sidecars and never inside a golden-diffed document.

The simulation contract is absolute: the profiler never charges the
ledger, never touches a registry, and detaches cleanly.  With it
disabled every hook site costs one ``is None`` check
(``san-profile-zero-cycles``); with it enabled the *virtual* results
are byte-identical — only host wall time changes.
"""

import sys
import time

from repro.profile.redundancy import RedundancyObservatory
from repro.profile.sites import phase_for_code

#: Collapsed stacks deeper than this reuse their parent's stack key;
#: phases still attribute exactly, only the flamegraph flattens.
MAX_STACK_DEPTH = 64


class PhaseStat:
    """Host-time accounting for one phase."""

    __slots__ = ("calls", "self_ns", "cum_ns", "active")

    def __init__(self):
        self.calls = 0
        self.self_ns = 0
        self.cum_ns = 0
        self.active = 0  # live frames of this phase (recursion guard)


class _Frame:
    """One live Python frame the profiler is tracking."""

    __slots__ = ("phase", "mapped", "cum_root", "enter_ns", "stack_key")

    def __init__(self, phase, mapped, cum_root, enter_ns, stack_key):
        self.phase = phase
        self.mapped = mapped
        self.cum_root = cum_root  # outermost frame of this phase
        self.enter_ns = enter_ns
        self.stack_key = stack_key


class HostProfiler:
    """Attribute host wall time to the simulator's phase taxonomy.

    Use as a context manager around the scenario::

        profiler = HostProfiler()
        profiler.attach_machine(machine, config="neve-nested")
        with profiler:
            ... run the scenario ...
        document = profile_document(profiler, scenario="...")

    ``attach_machine`` arms the redundancy observatory's hot-path notes
    (``cpu.redundancy`` + ``ledger.profile_sink``); entering the context
    installs the ``sys.setprofile`` callback.  Either instrument works
    without the other.
    """

    def __init__(self, collect_stacks=True, clock_ns=None):
        # Host wall time is the measurand; PROF_* sidecars are excluded
        # from every golden byte-diff for exactly this reason.
        self._clock = (clock_ns if clock_ns is not None
                       else time.perf_counter_ns)  # lint: allow(sim-nondeterminism)
        self.collect_stacks = collect_stacks
        self.phases = {}  # phase -> PhaseStat
        self.stacks = {}  # tuple of frame labels -> self ns
        self.redundancy = RedundancyObservatory()
        self.wall_ns = 0
        self._code_info = {}  # code object -> (phase or None, label)
        self._frames = []
        self._last_ns = 0
        self._active = False
        self._attached = []  # (obj, attr, previous) for detach

    # -- machine attachment (redundancy observatory) --------------------

    def attach_machine(self, machine, config="machine"):
        """Arm the redundancy notes on *machine*'s CPUs and ledger.

        Observe-only: records the previous hook values and restores
        them on :meth:`detach_machine`.  Works for any machine exposing
        ``cpus`` and ``ledger`` (the x86 model has no classification
        sites, so only its ledger fan-out is observed there).
        """
        binding = self.redundancy.bind(config, ledger=machine.ledger)
        for cpu in getattr(machine, "cpus", ()):
            self._attached.append((cpu, "redundancy",
                                   getattr(cpu, "redundancy", None)))
            cpu.redundancy = binding
        ledger = machine.ledger
        self._attached.append((ledger, "profile_sink",
                               ledger.profile_sink))
        ledger.profile_sink = binding.on_charge
        return binding

    def detach_machine(self, machine=None):
        """Restore every hook :meth:`attach_machine` replaced."""
        for obj, attr, previous in reversed(self._attached):
            setattr(obj, attr, previous)
        self._attached = []

    # -- the profiling window -------------------------------------------

    def start(self):
        if self._active:
            raise RuntimeError("profiler already started")
        self._active = True
        self._frames = []
        self._last_ns = self._clock()
        sys.setprofile(self._callback)

    def stop(self):
        if not self._active:
            return
        sys.setprofile(None)
        now = self._clock()
        self._flush_slice(now)
        # Close out frames still live at stop (the scenario returned
        # through them before the window closed).
        while self._frames:
            frame = self._frames.pop()
            self._leave(frame, now)
        self._active = False

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- callback machinery ---------------------------------------------

    def _info_for(self, code):
        info = self._code_info.get(code)
        if info is None:
            filename = code.co_filename.replace("\\", "/")
            funcname = code.co_name
            phase = phase_for_code(filename, funcname)
            # co_qualname is 3.11+; fall back for the 3.10 CI lane.
            qualname = getattr(code, "co_qualname", funcname)
            stem = filename.rsplit("/", 1)[-1]
            if stem.endswith(".py"):
                stem = stem[:-3]
            info = (phase, "%s:%s" % (stem, qualname))
            self._code_info[code] = info
        return info

    def _current(self):
        return self._frames[-1] if self._frames else None

    def _flush_slice(self, now):
        """Credit the wall time since the last event to whatever frame
        is on top of the stack right now."""
        elapsed = now - self._last_ns
        self._last_ns = now
        if elapsed <= 0:
            return
        self.wall_ns += elapsed
        top = self._current()
        if top is None:
            return
        stat = self.phases.get(top.phase)
        if stat is not None:
            stat.self_ns += elapsed
        if self.collect_stacks and top.stack_key is not None:
            self.stacks[top.stack_key] = \
                self.stacks.get(top.stack_key, 0) + elapsed

    def _leave(self, frame, now):
        if frame.mapped:
            stat = self.phases[frame.phase]
            stat.active -= 1
            if frame.cum_root:
                stat.cum_ns += now - frame.enter_ns

    def _callback(self, frame, event, arg):
        if event == "call":
            now = self._clock()
            self._flush_slice(now)
            phase, label = self._info_for(frame.f_code)
            parent = self._current()
            mapped = phase is not None
            if not mapped:
                phase = parent.phase if parent is not None else "other"
            stat = self.phases.get(phase)
            if stat is None:
                stat = self.phases[phase] = PhaseStat()
            cum_root = False
            if mapped:
                stat.calls += 1
                cum_root = stat.active == 0
                stat.active += 1
            stack_key = None
            if self.collect_stacks:
                if parent is None:
                    stack_key = (label,)
                elif parent.stack_key is None \
                        or len(parent.stack_key) >= MAX_STACK_DEPTH:
                    stack_key = parent.stack_key
                else:
                    stack_key = parent.stack_key + (label,)
            self._frames.append(_Frame(phase, mapped, cum_root, now,
                                       stack_key))
        elif event == "return":
            now = self._clock()
            self._flush_slice(now)
            if self._frames:
                self._leave(self._frames.pop(), now)
            # else: returning through a frame entered before start();
            # nothing of ours to close.
        # c_call/c_return/c_exception: C time accrues to the calling
        # frame's phase via the next _flush_slice, which is where it
        # belongs.
