"""The dispatch-redundancy observatory: what a fast path would save.

Every system-register access walks the full classification ladder in
``arch/cpu.py`` (context -> encoding -> NEVE behaviour -> mechanism),
every trap re-checks which observe-only hooks are armed, and every
ledger charge fans out to however many consumers are attached.  All of
that work is *re-derivation*: for a fixed (config, register, context)
the answer never changes mid-run, so a precompiled dispatch table would
answer most of it with one lookup.

The observatory counts exactly that.  Each **site** keeps, per decision
key, how many times the decision was derived and whether the outcome
was stable; its report projects the table-hit rate a precompiled
dispatch table would see (every stable key's repeat derivations are
hits).  Three sites always exist:

* ``classification`` — keyed by (config, register, context, encoding,
  op); the outcome is the :class:`~repro.arch.cpu.AccessKind` the
  ladder resolved to.
* ``trap-dispatch`` — keyed by (config, context, exit reason); the
  outcome is the armed-hook set the trap path re-checked.
* ``hook-chain`` — keyed by (config, site, armed-consumer set); one
  derivation per ledger charge or trap hook dispatch, plus the total
  hook *invocations* the fan-out cost and what a fused callback would
  save.

Everything is per-instance (the statecheck gate stays clean) and
observe-only: no method here ever charges the ledger or touches a
registry.  The hot-path cost when no observatory is attached is one
``is None`` check, same contract as the tracer.
"""


def _outcome_label(outcome):
    """Stable string form of a decision outcome (enum .value or str)."""
    return str(getattr(outcome, "value", outcome))


class _Site:
    """One decision site: per-key derivation counts + outcome stability."""

    __slots__ = ("name", "derivations", "_counts", "_outcomes",
                 "_unstable")

    def __init__(self, name):
        self.name = name
        self.derivations = 0
        self._counts = {}    # key -> times derived
        self._outcomes = {}  # key -> first outcome label
        self._unstable = {}  # key -> True once two outcomes disagree

    def note(self, key, outcome):
        self.derivations += 1
        self._counts[key] = self._counts.get(key, 0) + 1
        label = _outcome_label(outcome)
        first = self._outcomes.setdefault(key, label)
        if label != first:
            self._unstable[key] = True

    def report(self, top=10):
        """The site's ``repro-profile/1`` redundancy entry."""
        stable = [key for key in self._counts if key not in self._unstable]
        projected_hits = sum(self._counts[key] - 1 for key in stable)
        ranked = sorted(self._counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return {
            "derivations": self.derivations,
            "distinct_keys": len(self._counts),
            "stable_keys": len(stable),
            "unstable_keys": len(self._unstable),
            "projected_hits": projected_hits,
            "projected_hit_rate": (projected_hits / self.derivations
                                   if self.derivations else 0.0),
            "top": [{"key": "/".join(key), "count": count,
                     "outcome": self._outcomes[key],
                     "stable": key not in self._unstable}
                    for key, count in ranked[:top]],
        }


class MachineRedundancy:
    """One machine's binding to a shared observatory.

    This is the object the hot path sees (``cpu.redundancy`` and
    ``ledger.profile_sink``): it carries the machine's config label so
    decision keys are per-(config, register, context), and a reference
    to the machine's ledger so the hook-chain site can read which
    consumers are armed without the ledger knowing about profiling.
    """

    __slots__ = ("observatory", "config", "_ledger")

    def __init__(self, observatory, config):
        self.observatory = observatory
        self.config = config
        self._ledger = None

    # -- hot-path notes (observe-only, never charge) --------------------

    def context_key(self, cpu):
        """Compact resolution-context label, snapshotted *before* the
        access resolves (the trap handler may world-switch)."""
        from repro.arch.exceptions import ExceptionLevel
        if cpu.current_el is ExceptionLevel.EL2:
            return "el2+e2h" if cpu.host_e2h else "el2"
        if cpu.at_virtual_el2:
            key = "vel2"
            if cpu.virtual_e2h:
                key += "+vhe"
            if cpu.neve_enabled:
                key += "+neve"
            return key
        return "el%d" % int(cpu.current_el)

    def note_classification(self, context, reg_name, enc, is_write, kind):
        """One classification ladder walk resolved to *kind*."""
        self.observatory.classification.note(
            (self.config, reg_name, context, enc.name.lower(),
             "w" if is_write else "r"), kind)

    def note_trap(self, cpu, reason):
        """One trap delivery; counts the armed-hook fan-out the trap
        path re-derives (tracer span + metrics histogram)."""
        observatory = self.observatory
        context = self.context_key(cpu)
        armed = []
        if cpu.tracer is not None:
            armed.append("tracer")
        if cpu.metrics is not None:
            armed.append("metrics")
        if cpu.fault_hook is not None:
            armed.append("fault_hook")
        if cpu.recovery_guard is not None:
            armed.append("guard")
        mask = "+".join(armed) or "none"
        observatory.trap_dispatch.note((self.config, context,
                                        _outcome_label(reason)), mask)
        observatory.hook_chain.note((self.config, "trap", mask), mask)
        observatory.hook_dispatches += 1
        # The trap path itself invokes tracer.begin_trap/end and the
        # metrics trap_span; guards and fault hooks fire on other sites.
        for hook in armed:
            if hook in ("tracer", "metrics"):
                observatory.hook_invocations += 1
                observatory.per_hook[hook] = \
                    observatory.per_hook.get(hook, 0) + 1

    def on_charge(self, cycles, category):
        """``CycleLedger.profile_sink``: one charge dispatch re-derives
        the armed-consumer set and pays one call per consumer."""
        ledger = self._ledger
        observatory = self.observatory
        armed = []
        if ledger is not None:
            if ledger.observer is not None:
                armed.append("observer")
            if ledger.metrics_sink is not None:
                armed.append("metrics_sink")
        mask = "+".join(armed) or "none"
        observatory.hook_chain.note((self.config, "ledger.charge", mask),
                                    mask)
        observatory.hook_dispatches += 1
        observatory.hook_invocations += len(armed)
        for hook in armed:
            observatory.per_hook[hook] = \
                observatory.per_hook.get(hook, 0) + 1


class RedundancyObservatory:
    """Shared decision-site counters for one profiling run.

    One observatory can watch many machines (the bench sweep binds one
    per config); :meth:`bind` returns the per-machine view the hot path
    hooks onto.
    """

    def __init__(self):
        self.classification = _Site("classification")
        self.trap_dispatch = _Site("trap-dispatch")
        self.hook_chain = _Site("hook-chain")
        #: Hook fan-out accounting across both hook-chain dispatch
        #: points (ledger charges and trap deliveries).
        self.hook_dispatches = 0
        self.hook_invocations = 0
        self.per_hook = {}
        self._bindings = []

    def bind(self, config, ledger=None):
        """A :class:`MachineRedundancy` view labelled *config*."""
        binding = MachineRedundancy(self, config)
        binding._ledger = ledger
        self._bindings.append(binding)
        return binding

    def report(self, top=10):
        """The ``redundancy`` section of a ``repro-profile/1`` document.

        Always names the three mandatory sites; the ``hook-chain`` entry
        additionally carries the fan-out totals and the projected saving
        of fusing every armed consumer into one precompiled callback.
        """
        hook_chain = self.hook_chain.report(top=top)
        # A fused chain pays one call per dispatch that had at least one
        # consumer; today's chain pays one call per consumer.
        idle = sum(count for key, count
                   in self.hook_chain._counts.items() if key[2] == "none")
        dispatches_with_consumers = self.hook_dispatches - idle
        hook_chain.update({
            "dispatches": self.hook_dispatches,
            "invocations": self.hook_invocations,
            "per_hook": dict(sorted(self.per_hook.items())),
            "projected_fused_savings": max(
                0, self.hook_invocations - dispatches_with_consumers),
        })
        return {
            "sites": {
                "classification": self.classification.report(top=top),
                "trap-dispatch": self.trap_dispatch.report(top=top),
                "hook-chain": hook_chain,
            },
        }
