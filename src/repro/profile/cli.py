"""``python -m repro profile`` — host-time profiles and hotspot diffs.

Default run: profile a scenario (the bench sweep, or a seeded fault
campaign with ``--scenario campaign``) and print the per-phase
self/cumulative host-time table plus the dispatch-redundancy report.
``--json``/``--flamegraph`` write the ``repro-profile/1`` document and
the collapsed-stack flamegraph input.

Two file modes skip the scenario entirely:

* ``--diff A.json B.json`` — compare two profile documents and report
  per-phase host-time deltas and redundancy deltas (how a perf PR
  proves its win phase by phase).
* ``--validate FILE`` — schema-check a document (the CI drift gate for
  the redundancy report shape).

Host time is nondeterministic; nothing this tool writes participates in
golden byte-diffs, and profiling never perturbs the simulation
(``san-profile-zero-cycles``).

Exit status: 0 on success, 1 when ``--validate`` finds drift or
``--diff`` gets an invalid document, 2 on usage errors.
"""

import argparse
import json
import sys

from repro.profile.export import (
    collapsed_stacks,
    diff_documents,
    profile_document,
    render_diff,
    render_phase_table,
    render_redundancy,
    validate_profile,
    write_json,
)
from repro.profile.profiler import HostProfiler


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="host-time profiler and dispatch-redundancy "
                    "observatory: phase tables, flamegraphs, hotspot "
                    "diffs")
    parser.add_argument("--scenario", choices=("bench", "campaign"),
                        default="bench",
                        help="what to profile: the microbenchmark sweep "
                             "(default) or one seeded fault campaign")
    parser.add_argument("--config", action="append", default=[],
                        metavar="NAME",
                        help="bench scenario: restrict to these configs "
                             "(repeatable; default: all)")
    parser.add_argument("--iterations", type=int, default=3, metavar="N",
                        help="bench scenario: per-benchmark iterations "
                             "(default 3 — a profiling run, not a "
                             "measurement run)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign scenario: the campaign seed "
                             "(default 0)")
    parser.add_argument("--top", type=int, default=20, metavar="N",
                        help="rows in the phase table (default 20)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the repro-profile/1 document to FILE")
    parser.add_argument("--flamegraph", metavar="FILE", default=None,
                        help="write collapsed stacks (flamegraph.pl "
                             "input) to FILE")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"),
                        default=None,
                        help="compare two profile documents instead of "
                             "running a scenario")
    parser.add_argument("--validate", metavar="FILE", default=None,
                        help="schema-check a profile document instead "
                             "of running a scenario")
    return parser


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def run_diff(path_a, path_b, top=20):
    """The hotspot diff mode; returns (exit status, diff document)."""
    try:
        diff = diff_documents(_load(path_a), _load(path_b))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("profile: diff failed: %s" % exc, file=sys.stderr)
        return 1, None
    print(render_diff(diff, top=top))
    return 0, diff


def run_validate(path):
    """The schema drift gate; returns the exit status."""
    try:
        document = _load(path)
    except (OSError, json.JSONDecodeError) as exc:
        print("profile: cannot read %s: %s" % (path, exc),
              file=sys.stderr)
        return 1
    problems = validate_profile(document)
    if problems:
        for problem in problems:
            print("profile: SCHEMA DRIFT in %s: %s" % (path, problem))
        return 1
    print("profile: %s is a valid %s document (%d phases, %d stacks)"
          % (path, document["schema"], len(document["phases"]),
             len(document["stacks"])))
    return 0


def profile_scenario(args):
    """Run the chosen scenario under a fresh profiler; returns the
    ``repro-profile/1`` document."""
    profiler = HostProfiler()
    if args.scenario == "campaign":
        from repro.faults.campaign import run_campaign
        with profiler:
            run_campaign(args.seed, profiler=profiler)
        profiler.detach_machine()
        scenario = "campaign-seed-%d" % args.seed
        meta = {"seed": args.seed}
    else:
        from repro.harness.bench import run_bench
        run_bench(iterations=args.iterations,
                  configs=args.config or None, profiler=profiler)
        scenario = "bench-sweep"
        meta = {"iterations": args.iterations,
                "configs": sorted(args.config) or "all"}
    return profile_document(profiler, scenario=scenario, meta=meta)


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.diff is not None:
        status, _ = run_diff(args.diff[0], args.diff[1], top=args.top)
        return status
    if args.validate is not None:
        return run_validate(args.validate)

    if args.scenario == "bench":
        from repro.harness.configs import ALL_CONFIGS
        for name in args.config:
            if name not in ALL_CONFIGS:
                print("profile: unknown config %r (have: %s)"
                      % (name, ", ".join(sorted(ALL_CONFIGS))),
                      file=sys.stderr)
                return 2

    document = profile_scenario(args)
    print(render_phase_table(document, top=args.top))
    print()
    print(render_redundancy(document))
    if args.json is not None:
        write_json(document, args.json)
        print("profile: wrote %s" % args.json)
    if args.flamegraph is not None:
        with open(args.flamegraph, "w") as fh:
            fh.write(collapsed_stacks(document))
        print("profile: wrote %s" % args.flamegraph)
    return 0


if __name__ == "__main__":
    sys.exit(main())
