"""Wiring between the simulation's hot layers and the telemetry registry.

:class:`MachineMetrics` owns the metric families for one machine (one
``config`` label value) and attaches itself to the three legacy counting
islands without changing their APIs:

* :class:`~repro.metrics.cycles.CycleLedger` — via the ``metrics_sink``
  hook (the ``observer`` slot stays reserved for the tracer);
* :class:`~repro.metrics.counters.TrapCounter` and
  :class:`~repro.metrics.counters.RecoveryCounter` — via their ``sink``
  hooks, so ``TrapCounter.total`` always equals the registry counter sum
  (the migration-parity invariant ``san-metrics-reconcile`` checks);
* the hot code paths — via a ``cpu.metrics`` / ``machine.metrics``
  attribute that defaults to ``None``; every instrumentation site gates
  on a plain ``is None`` check, exactly like the tracer's ``cpu.tracer``,
  so the disabled path adds zero simulated cycles.

Everything here only *reads* the ledger (for histogram spans and the
virtual-cycle clock); nothing ever charges it — enforced by
``san-metrics-ledger``.
"""

from repro.metrics.registry import MetricsRegistry


class _PhaseTimer:
    """Context manager observing one phase's ledger delta into a
    histogram child.  Cycles are read from the shared ledger — never
    charged — so timing a phase is free in simulated time."""

    __slots__ = ("ledger", "child", "mark")

    def __init__(self, ledger, child):
        self.ledger = ledger
        self.child = child
        self.mark = 0

    def __enter__(self):
        self.mark = self.ledger.total
        return self

    def __exit__(self, exc_type, exc, tb):
        self.child.observe(self.ledger.total - self.mark)
        return False


class MachineMetrics:
    """The registry-backed telemetry facade for one machine/config.

    Several instances may share one :class:`MetricsRegistry` (the bench
    pipeline gives every config its own ``MachineMetrics`` over a single
    registry); re-registration is idempotent because every instance asks
    for the same family schemas.
    """

    def __init__(self, registry=None, config="default"):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.config = config
        reg = self.registry
        self.traps = reg.counter(
            "repro_traps_total",
            "Traps to the host hypervisor (mirror of TrapCounter)",
            ("config", "reason"))
        self.trap_cycles = reg.histogram(
            "repro_trap_cycles",
            "Simulated cycles per trap round trip, by exit reason and the "
            "exception level the trap interrupted",
            ("config", "reason", "el"))
        self.cycles = reg.counter(
            "repro_cycles_total",
            "Simulated cycles charged to the ledger, by category",
            ("config", "category"))
        self.phase_cycles = reg.histogram(
            "repro_phase_cycles",
            "Simulated cycles per traced phase (world switch, L0/L1 "
            "handlers, recovery ladder)",
            ("config", "phase"))
        self.vncr_deferred = reg.counter(
            "repro_vncr_deferred_total",
            "EL2 system-register accesses resolved against the VNCR "
            "deferred access page instead of trapping",
            ("config", "register", "op"))
        self.recoveries = reg.counter(
            "repro_recoveries_total",
            "Recovery-ladder actions (mirror of RecoveryCounter)",
            ("config", "event"))
        self.recovery_cycles = reg.histogram(
            "repro_recovery_cycles",
            "Simulated cycles charged per recovery-ladder action",
            ("config",))
        self.nesting_depth = reg.gauge(
            "repro_nesting_depth",
            "Current virtualization nesting depth per cpu "
            "(0 host, 1 VM or guest hypervisor, 2 nested VM)",
            ("config", "cpu"))
        self.depth_entries = reg.counter(
            "repro_depth_entries_total",
            "Guest entries by the nesting depth entered",
            ("config", "depth"))
        self.vgic_used_lrs = reg.gauge(
            "repro_vgic_used_lrs",
            "List registers in use at the last vGIC save/restore",
            ("config", "cpu"))
        self.vel2_exits = reg.counter(
            "repro_vel2_exits_total",
            "VM exits handled by the guest hypervisor at virtual EL2",
            ("config", "reason"))
        self.boundary_traps = reg.counter(
            "repro_boundary_traps_total",
            "Traps crossing a recursive-stack boundary, by disposition",
            ("config", "boundary"))
        self.neve_state = reg.gauge(
            "repro_neve_state",
            "Whether NEVE is armed per cpu (1 = deferred access page "
            "live, 0 = degraded to trap-and-emulate)",
            ("config", "cpu"))
        self.cpu_recoveries = reg.counter(
            "repro_cpu_recoveries_total",
            "Recovery-ladder actions attributed to the cpu they ran on",
            ("config", "cpu", "event"))
        self.degradation_dwell = reg.histogram(
            "repro_degradation_dwell_cycles",
            "Virtual cycles a vcpu spent degraded before re-promotion "
            "re-armed its deferred access page",
            ("config",))

    # -- attachment ------------------------------------------------------

    def attach_cpu(self, cpu):
        """Hook one cpu (and its shared ledger/trap counter)."""
        cpu.metrics = self
        cpu.ledger.metrics_sink = self._on_charge
        cpu.traps.sink = self._on_trap
        return self

    def attach_machine(self, machine):
        """Hook a whole machine: ledger, trap/recovery counters, every
        cpu.  Attach before running a workload if you want the registry
        mirrors to reconcile exactly with the legacy counters."""
        machine.metrics = self
        machine.ledger.metrics_sink = self._on_charge
        machine.traps.sink = self._on_trap
        recoveries = getattr(machine, "recoveries", None)
        if recoveries is not None:
            recoveries.sink = self._on_recovery
        for cpu in machine.cpus:
            cpu.metrics = self
        return self

    def detach_machine(self, machine):
        """Undo :meth:`attach_machine` (registry contents survive)."""
        machine.metrics = None
        machine.ledger.metrics_sink = None
        machine.traps.sink = None
        recoveries = getattr(machine, "recoveries", None)
        if recoveries is not None:
            recoveries.sink = None
        for cpu in machine.cpus:
            cpu.metrics = None

    # -- sinks (mirrors of the legacy counters) --------------------------

    def _on_charge(self, cycles, category):
        self.cycles.labels(self.config, category).inc(cycles)

    def _on_trap(self, reason):
        self.traps.labels(self.config, reason).inc()

    def _on_recovery(self, event):
        self.recoveries.labels(self.config, event).inc()

    # -- hot-path hooks (all gated by ``x.metrics is None`` at the site) -

    def phase(self, cpu, name):
        """A context manager observing the phase's ledger delta into
        ``repro_phase_cycles`` (used by ``cpu_span``)."""
        return _PhaseTimer(cpu.ledger,
                           self.phase_cycles.labels(self.config, name))

    def trap_span(self, cpu, reason):
        """Timer for one trap round trip; labels carry the exception
        level the trap interrupted (``vel2`` for virtual EL2)."""
        if getattr(cpu, "at_virtual_el2", False):
            el = "vel2"
        else:
            el = str(getattr(cpu.current_el, "name", cpu.current_el)).lower()
        child = self.trap_cycles.labels(self.config, reason, el)
        return _PhaseTimer(cpu.ledger, child)

    def count_deferred(self, register, is_write):
        self.vncr_deferred.labels(self.config, register,
                                  "write" if is_write else "read").inc()

    def set_depth(self, cpu_id, depth):
        self.nesting_depth.labels(self.config, str(cpu_id)).set(depth)
        self.depth_entries.labels(self.config, str(depth)).inc()

    def set_used_lrs(self, cpu_id, used_lrs):
        self.vgic_used_lrs.labels(self.config, str(cpu_id)).set(used_lrs)

    def observe_recovery_cycles(self, cycles):
        self.recovery_cycles.labels(self.config).observe(cycles)

    def set_neve_state(self, cpu_id, armed):
        self.neve_state.labels(self.config, str(cpu_id)).set(armed)

    def count_cpu_recovery(self, cpu_id, event):
        self.cpu_recoveries.labels(self.config, str(cpu_id), event).inc()

    def observe_degradation_dwell(self, cycles):
        self.degradation_dwell.labels(self.config).observe(cycles)

    def count_vel2_exit(self, reason):
        self.vel2_exits.labels(self.config, reason).inc()

    def count_boundary_trap(self, boundary):
        self.boundary_traps.labels(self.config, boundary).inc()
