"""Cycle cost model and cycle accounting.

The paper evaluates everything in cycles (Tables 1 and 6) because cycle
counts are comparable across the 2.4 GHz ARM and x86 test machines.  We do
the same: every simulated operation charges a cost drawn from a
:class:`CostModel`.

Calibration policy (see DESIGN.md section 5): the per-operation constants
are chosen so that the *single-level VM* microbenchmark results land near
the paper's measured anchors (ARM hypercall 2,729 cycles, x86 hypercall
1,188 cycles, ARM virtual EOI 71 cycles, x86 virtual EOI 316 cycles).  All
nested-virtualization numbers are then emergent: they follow from how many
operations and traps the modelled hypervisor code paths actually execute.

The trap entry/return costs come straight from the paper's own hardware
measurement in Section 5: "trapping from EL1 to EL2 was between 68 to 76
cycles, and returning from a trap to EL2 back to EL1 was 65 cycles", with
less than 10 cycles of variation across instruction classes.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Named per-operation cycle costs for one platform.

    Instances are frozen so a configuration cannot drift mid-experiment;
    derive variants with :func:`dataclasses.replace`.
    """

    # --- Instruction-level costs (ARM & x86 share the generic ones) ---
    instr: int = 1  # one ordinary ALU instruction
    branch: int = 2
    mem_load: int = 4  # L1-hit load (cache-hot vcpu struct)
    mem_store: int = 4
    cache_miss: int = 90  # charged explicitly where the model needs one

    # --- ARM specific ---
    sysreg_read: int = 9  # mrs that does not trap
    sysreg_write: int = 10  # msr that does not trap
    trap_entry: int = 72  # EL1 -> EL2 exception, paper S5: 68..76
    trap_return: int = 65  # eret EL2 -> EL1, paper S5: 65
    exception_entry_el1: int = 40  # exception taken to EL1 (SVC, IRQ in guest)
    gpr_save_restore: int = 1  # per general-purpose register moved to stack
    vgic_mmio_access: int = 95  # GICv2 MMIO access (device memory, uncached)
    gic_icc_virt: int = 57  # extra work in the virtual CPU interface (LR scan)
    dsb_isb: int = 14  # barrier cost around context switches

    # --- x86 / VT-x specific ---
    vmexit_hw: int = 470  # hardware state save into VMCS on VM exit
    vmentry_hw: int = 380  # hardware state load from VMCS on VM entry
    vmread: int = 28  # non-trapping VMREAD (root mode or shadowed)
    vmwrite: int = 30
    vmptrld: int = 160  # switch current VMCS pointer
    msr_access: int = 60
    apic_reg_virt: int = 300  # APICv virtualized APIC register access

    # --- software path constants ---
    userspace_roundtrip: int = 550  # kernel->QEMU->kernel device emulation
    irq_delivery_wire: int = 150  # physical interrupt signalling latency
    tlb_maintenance: int = 2600  # TLBI VMALLS12E1 + DSB on nested transitions


#: Calibrated ARM model (HP Moonshot m400, 2.4 GHz X-Gene, per the paper).
ARM_COSTS = CostModel()

#: Calibrated x86 model (Cisco UCS, 2.4 GHz Xeon E5-2630 v3, per the paper).
#: x86 serializing instructions and APIC accesses are costlier; trap-style
#: exceptions (into the kernel) are cheaper than full VM exits.
X86_COSTS = CostModel(
    sysreg_read=40,  # rdmsr-style
    sysreg_write=45,
    trap_entry=120,  # not used for VM exits (vmexit_hw covers those)
    trap_return=80,
    vgic_mmio_access=200,
)


class CycleLedger:
    """Accumulates cycles, broken down by named category.

    Categories are free-form strings such as ``"trap"``, ``"world_switch"``,
    ``"emulation"``, ``"guest"``; the totals drive Tables 1 and 6 while the
    breakdown feeds the analysis sections of EXPERIMENTS.md.

    ``observer``, when set, is called as ``observer(cycles, category)``
    on every charge — this is the single attribution point the tracer
    (:mod:`repro.trace`) hooks so per-span cycles reconcile exactly
    against ``total``.  The observer must never charge the ledger.

    ``metrics_sink`` is a second, independent hook with the same
    signature, reserved for the telemetry registry
    (:mod:`repro.metrics.instrument`) so metrics and the tracer can ride
    the same run without fighting over the ``observer`` slot.  Like the
    observer, it must never charge the ledger.

    ``profile_sink`` is the third slot, reserved for the host profiler's
    redundancy observatory (:mod:`repro.profile`): it measures this very
    fan-out — how many consumer calls each charge dispatch pays — so it
    rides last and is excluded from its own fan-out count.  Same
    contract: observe-only, never charges (enforced by
    ``san-profile-zero-cycles``).

    The three slots are property-backed: assigning one rebuilds a single
    **fused** callback, so ``charge`` pays one ``is None`` check and at
    most one call when at most one consumer is attached, instead of
    three checks per charge.  With N consumers the fused chain calls
    them in slot order (observer, metrics_sink, profile_sink) — exactly
    the order the unfused dispatch used.
    """

    __slots__ = ("total", "by_category", "_observer", "_metrics_sink",
                 "_profile_sink", "_fused")

    def __init__(self, total=0, by_category=None):
        self.total = total
        self.by_category = {} if by_category is None else by_category
        self._observer = None
        self._metrics_sink = None
        self._profile_sink = None
        self._fused = None

    # -- the fused hook chain -------------------------------------------

    @property
    def observer(self):
        return self._observer

    @observer.setter
    def observer(self, hook):
        self._observer = hook
        self._rebuild_fused()

    @property
    def metrics_sink(self):
        return self._metrics_sink

    @metrics_sink.setter
    def metrics_sink(self, hook):
        self._metrics_sink = hook
        self._rebuild_fused()

    @property
    def profile_sink(self):
        return self._profile_sink

    @profile_sink.setter
    def profile_sink(self, hook):
        self._profile_sink = hook
        self._rebuild_fused()

    def _rebuild_fused(self):
        hooks = tuple(hook for hook in (self._observer, self._metrics_sink,
                                        self._profile_sink)
                      if hook is not None)
        if not hooks:
            self._fused = None
        elif len(hooks) == 1:
            # The common case (a tracer OR a metrics facade): the fused
            # callback is the consumer itself, no wrapper frame.
            self._fused = hooks[0]
        else:
            def _fused_chain(cycles, category, _hooks=hooks):
                for hook in _hooks:
                    hook(cycles, category)
            self._fused = _fused_chain

    def charge(self, cycles, category="other"):
        """Add *cycles* to the ledger under *category*."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles: %r" % cycles)
        self.total += cycles
        self.by_category[category] = self.by_category.get(category, 0) + cycles
        fused = self._fused
        if fused is not None:
            fused(cycles, category)

    # -- value semantics (the old dataclass's eq/repr, hooks excluded) --

    def __eq__(self, other):
        if not isinstance(other, CycleLedger):
            return NotImplemented
        return (self.total == other.total
                and self.by_category == other.by_category)

    __hash__ = None

    def __repr__(self):
        return ("CycleLedger(total=%r, by_category=%r)"
                % (self.total, self.by_category))

    def snapshot(self):
        """Return ``(total, dict-copy)`` for later differencing."""
        return self.total, dict(self.by_category)

    def since(self, snapshot):
        """Cycles accumulated since *snapshot* (as returned by snapshot())."""
        total_then, _ = snapshot
        return self.total - total_then

    def reset(self):
        self.total = 0
        self.by_category.clear()


class ScopedMeter:
    """Context manager measuring cycles and traps across a region.

    Example::

        with ScopedMeter(ledger, traps) as m:
            vcpu.hypercall()
        print(m.cycles, m.traps)
    """

    def __init__(self, ledger, trap_counter=None):
        self._ledger = ledger
        self._traps = trap_counter
        self.cycles = 0
        self.traps = 0

    def __enter__(self):
        self._cycle_mark = self._ledger.total
        self._trap_mark = self._traps.total if self._traps is not None else 0
        return self

    def __exit__(self, exc_type, exc, tb):
        self.cycles = self._ledger.total - self._cycle_mark
        if self._traps is not None:
            self.traps = self._traps.total - self._trap_mark
        return False
