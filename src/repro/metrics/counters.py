"""Trap, exit and recovery counters.

The paper's Table 7 reports "the average number of traps to the host
hypervisor" per microbenchmark iteration.  :class:`TrapCounter` records each
transition into the host hypervisor (L0) together with the reason, so the
table — and the exit-multiplication analysis in Sections 5 and 7.1 — can be
regenerated from the same run that produced the cycle counts.

:class:`RecoveryCounter` is the same idea for the fault-injection
subsystem (:mod:`repro.faults`): every recovery action the hypervisor
takes in response to an injected fault — a VNCR resync, a journal replay,
a degradation to trap-and-emulate — is recorded with a
:class:`RecoveryEvent` reason so campaigns can report per-class outcomes.
"""

import enum
from dataclasses import dataclass, field


class ExitReason(enum.Enum):
    """Why control transferred to the host hypervisor."""

    HVC = "hvc"  # hypercall instruction
    SYSREG_TRAP = "sysreg"  # trapped system register access
    ERET_TRAP = "eret"  # trapped eret from virtual EL2
    MEM_ABORT = "mem_abort"  # stage-2 fault / MMIO emulation
    WFI = "wfi"
    FP_TRAP = "fp"  # lazy FP/SIMD switch (CPTR_EL2)
    IRQ = "irq"  # physical interrupt while guest running
    GIC_TRAP = "gic"  # hypervisor-control-interface access
    TIMER_TRAP = "timer"
    TLBI_TRAP = "tlbi"  # TLB maintenance from virtual EL2
    SMC = "smc"
    VMCALL = "vmcall"  # x86 hypercall
    VMREAD = "vmread"  # x86 non-shadowed VMCS read in non-root
    VMWRITE = "vmwrite"
    VMRESUME = "vmresume"  # x86 guest hypervisor VM entry attempt
    EPT_VIOLATION = "ept"
    MSR_ACCESS = "msr"
    APIC_ACCESS = "apic"
    EXTERNAL_INTERRUPT = "extint"
    SERROR = "serror"  # system error (async external abort) routed to EL2


@dataclass
class TrapCounter:
    """Counts traps to the host hypervisor, by :class:`ExitReason`.

    ``sink``, when set, is called as ``sink(reason)`` after every record —
    the hook :class:`repro.metrics.instrument.MachineMetrics` uses to
    mirror the counter into the registry.  The sink must never charge the
    cycle ledger.
    """

    total: int = 0
    by_reason: dict = field(default_factory=dict)
    sink: object = field(default=None, repr=False, compare=False)

    def record(self, reason):
        if not isinstance(reason, ExitReason):
            raise TypeError("reason must be an ExitReason, got %r" % (reason,))
        self.total += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        if self.sink is not None:
            self.sink(reason)

    def count(self, reason):
        return self.by_reason.get(reason, 0)

    def snapshot(self):
        return self.total, dict(self.by_reason)

    def since(self, snapshot):
        total_then, _ = snapshot
        return self.total - total_then

    def delta_by_reason(self, snapshot):
        """Per-reason trap counts accumulated since *snapshot*."""
        _, then = snapshot
        out = {}
        for reason, now_count in self.by_reason.items():
            delta = now_count - then.get(reason, 0)
            if delta:
                out[reason] = delta
        return out

    def reset(self):
        self.total = 0
        self.by_reason.clear()


class RecoveryEvent(enum.Enum):
    """Which recovery action the hypervisor took (see repro.faults)."""

    SERROR_RECOVERED = "serror_recovered"  # spurious SError absorbed
    VNCR_RESYNC = "vncr_resync"  # full deferred-page audit + flush
    SLOT_REPAIR = "slot_repair"  # one divergent page slot rewritten
    REPLAY = "replay"  # journal replay attempt of a lost/torn write
    MIGRATION_FLUSH = "migration_flush"  # page relocated + resynced
    LR_REQUEUE = "lr_requeue"  # dropped list register re-queued
    VIRTIO_REKICK = "virtio_rekick"  # lost notification re-kicked
    NEVE_DEGRADE = "neve_degrade"  # NEVE taken down to trap-and-emulate
    NEVE_REPROMOTE = "neve_repromote"  # page re-armed after cooling off


@dataclass
class RecoveryCounter:
    """Counts recovery actions, by :class:`RecoveryEvent`.

    ``sink`` mirrors :class:`TrapCounter`'s: called as ``sink(event)``
    after every record, must never charge the ledger.
    """

    total: int = 0
    by_event: dict = field(default_factory=dict)
    sink: object = field(default=None, repr=False, compare=False)

    def record(self, event):
        if not isinstance(event, RecoveryEvent):
            raise TypeError("event must be a RecoveryEvent, got %r"
                            % (event,))
        self.total += 1
        self.by_event[event] = self.by_event.get(event, 0) + 1
        if self.sink is not None:
            self.sink(event)

    def count(self, event):
        return self.by_event.get(event, 0)

    def snapshot(self):
        return self.total, dict(self.by_event)

    def as_dict(self):
        """Stable name-keyed view (for reports and digests)."""
        return {event.value: count
                for event, count in sorted(self.by_event.items(),
                                           key=lambda item: item[0].value)}

    def reset(self):
        self.total = 0
        self.by_event.clear()
