"""Unified telemetry registry: labelled counters, gauges and histograms.

The paper's argument is quantitative — trap counts and cycle costs per
exit class (Tables 1, 6, 7) — and until now the repo's counters lived in
three disconnected islands (:class:`~repro.metrics.counters.TrapCounter`,
:class:`~repro.metrics.counters.RecoveryCounter`, the
:class:`~repro.metrics.cycles.CycleLedger` categories) with no common
export.  The registry gives them one home with machine-readable exports:

* **Primitives.**  :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` families, each with a fixed tuple of label names
  (the conventional dimensions: ``config``, exception level ``el``,
  ``reason`` (:class:`~repro.metrics.counters.ExitReason`), recovery
  ``event``, nesting ``depth``).  Children are created on first use per
  label-value tuple.

* **Determinism.**  Families iterate in registration order; children
  iterate sorted by label values.  Timestamps are *virtual* — the cycle
  ledger total via the registry's ``clock`` — never the wall clock, so
  the Prometheus text exposition and the JSON snapshot are byte-identical
  across runs of the same seeded scenario.

* **Cost.**  The registry only ever *reads* the ledger (through the
  clock callable); it never charges it.  Instrumentation sites gate on a
  plain ``is None`` attribute check, so the disabled path adds zero
  simulated cycles — enforced by the ``san-metrics-ledger`` sanitizer
  check (:func:`repro.analysis.sanitizer.check_metrics_ledger`).

This module deliberately imports nothing from :mod:`repro` so the hot
layers can use it without import cycles.
"""

import json
import math


def format_value(value):
    """Prometheus-style number formatting, deterministic across runs:
    integral values print without a fraction, infinities as ``+Inf``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value == int(value)):
        return "%d" % int(value)
    return repr(float(value))


def escape_label_value(value):
    """Escape a label value per the Prometheus text exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_text(names, values):
    return ",".join('%s="%s"' % (name, escape_label_value(value))
                    for name, value in zip(names, values))


class _Child:
    """Base for one labelled time series inside a family."""

    __slots__ = ("label_values",)

    def __init__(self, label_values):
        self.label_values = label_values


class CounterValue(_Child):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, label_values):
        super().__init__(label_values)
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up; got %r" % (amount,))
        self.value += amount

    def get(self):
        return self.value


class GaugeValue(_Child):
    """A value that can go up and down (depth, queue length, ...)."""

    __slots__ = ("value",)

    def __init__(self, label_values):
        super().__init__(label_values)
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def get(self):
        return self.value


class HistogramValue(_Child):
    """Cumulative-bucket histogram of observations."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, label_values, buckets):
        super().__init__(label_values)
        self.buckets = buckets  # upper bounds, ascending, +Inf last
        self.counts = [0] * len(buckets)
        self.sum = 0
        self.count = 0

    def observe(self, value):
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    def get(self):
        return {"sum": self.sum, "count": self.count,
                "buckets": list(self.counts)}


#: Default histogram buckets for simulated-cycle observations: spans
#: the range from a bare trap entry (~72 cycles) to a full ARMv8.3
#: nested exit (~413k cycles, Table 1).
CYCLE_BUCKETS = (100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
                 50_000, 100_000, 250_000, 500_000, 1_000_000, math.inf)


class MetricFamily:
    """One named metric with a fixed label schema and many children."""

    kind = None  # "counter" | "gauge" | "histogram"

    def __init__(self, name, help_text="", labelnames=()):
        _validate_name(name)
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self._children = {}  # label-values tuple -> child

    def _make_child(self, values):
        raise NotImplementedError

    def labels(self, *values, **kwargs):
        """The child for one label-value combination (created on first
        use).  Positional values follow ``labelnames`` order; keyword
        values may come in any order."""
        if kwargs:
            if values:
                raise ValueError("pass labels positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(kwargs.pop(name) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError("missing label %s for %s"
                                 % (exc, self.name))
            if kwargs:
                raise ValueError("unknown label(s) %s for %s"
                                 % (sorted(kwargs), self.name))
        values = tuple(_label_str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError("%s takes %d label(s) %r, got %r"
                             % (self.name, len(self.labelnames),
                                self.labelnames, values))
        child = self._children.get(values)
        if child is None:
            child = self._make_child(values)
            self._children[values] = child
        return child

    def children(self):
        """Children sorted by label values — the deterministic order
        every exporter uses."""
        return [self._children[key] for key in sorted(self._children)]

    def reset(self):
        self._children.clear()

    @property
    def signature(self):
        return (self.kind, self.labelnames)


class Counter(MetricFamily):
    kind = "counter"

    def _make_child(self, values):
        return CounterValue(values)

    def total(self):
        """Sum across all children (migration-parity checks)."""
        return sum(child.value for child in self._children.values())


class Gauge(MetricFamily):
    kind = "gauge"

    def _make_child(self, values):
        return GaugeValue(values)


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(self, name, help_text="", labelnames=(),
                 buckets=CYCLE_BUCKETS):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.buckets = bounds

    def _make_child(self, values):
        return HistogramValue(values, self.buckets)

    @property
    def signature(self):
        return (self.kind, self.labelnames, self.buckets)


class MetricsRegistry:
    """Holds metric families; the single source for both exporters.

    ``clock``, when set, is a zero-argument callable returning the
    current *virtual* timestamp (conventionally the shared cycle
    ledger's ``total``).  It is only ever read — exporting metrics must
    never advance simulated time.
    """

    def __init__(self, clock=None):
        self._families = {}  # name -> family, registration-ordered
        self.clock = clock

    # -- registration ----------------------------------------------------

    def _register(self, cls, name, help_text, labelnames, **kwargs):
        family = self._families.get(name)
        if family is not None:
            wanted = cls(name, help_text, labelnames, **kwargs).signature
            if family.signature != wanted:
                raise ValueError(
                    "metric %r re-registered with a different schema: "
                    "have %r, want %r" % (name, family.signature, wanted))
            return family
        family = cls(name, help_text, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name, help_text="", labelnames=()):
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()):
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(self, name, help_text="", labelnames=(),
                  buckets=CYCLE_BUCKETS):
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=buckets)

    # -- inspection ------------------------------------------------------

    def collect(self):
        """Families in registration order."""
        return list(self._families.values())

    def get(self, name):
        return self._families.get(name)

    def reset(self):
        """Drop every child (families and schemas stay registered)."""
        for family in self._families.values():
            family.reset()

    def now(self):
        return 0 if self.clock is None else self.clock()

    # -- exporters -------------------------------------------------------

    def prometheus_text(self):
        """The Prometheus text exposition format (0.0.4).

        Byte-identical across runs of the same seeded scenario: family
        order is registration order, child order is sorted label values,
        and the only timestamp is the virtual-cycle clock.
        """
        lines = ["# Virtual-cycle timestamp: %d" % self.now()]
        for family in self.collect():
            lines.append("# HELP %s %s" % (family.name, family.help))
            lines.append("# TYPE %s %s" % (family.name, family.kind))
            for child in family.children():
                label_text = _label_text(family.labelnames,
                                         child.label_values)
                if family.kind == "histogram":
                    lines.extend(self._histogram_lines(
                        family, child, label_text))
                else:
                    lines.append("%s%s %s" % (
                        family.name,
                        "{%s}" % label_text if label_text else "",
                        format_value(child.value)))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _histogram_lines(family, child, label_text):
        # ``observe`` keeps the bucket counts cumulative already, as the
        # exposition format requires.
        lines = []
        prefix = label_text
        for bound, count in zip(family.buckets, child.counts):
            le = 'le="%s"' % format_value(bound)
            labels = "%s,%s" % (prefix, le) if prefix else le
            lines.append("%s_bucket{%s} %d" % (family.name, labels, count))
        brace = "{%s}" % prefix if prefix else ""
        lines.append("%s_sum%s %s" % (family.name, brace,
                                      format_value(child.sum)))
        lines.append("%s_count%s %d" % (family.name, brace, child.count))
        return lines

    def snapshot(self):
        """Nested-dict view of every family (the JSON export's body)."""
        out = {}
        for family in self.collect():
            series = []
            for child in family.children():
                entry = {"labels": dict(zip(family.labelnames,
                                            child.label_values))}
                if family.kind == "histogram":
                    entry.update(child.get())
                    entry["le"] = [format_value(bound)
                                   for bound in family.buckets]
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "labelnames": list(family.labelnames),
                                "series": series}
        return out

    def json_snapshot(self, indent=2):
        """Deterministic JSON export (sorted keys, virtual timestamp)."""
        document = {"schema": "repro-metrics/1",
                    "virtual_cycles": self.now(),
                    "metrics": self.snapshot()}
        return json.dumps(document, sort_keys=True, indent=indent) + "\n"

    def delta_cursor(self):
        """A :class:`DeltaCursor` positioned at the registry's current
        state — the streaming-export hook the fleet workers use."""
        return DeltaCursor(self)

    # -- merging (the fleet layer's fold hook) ---------------------------

    def merge_snapshot(self, document):
        """Fold a previously exported ``repro-metrics/1`` document (or a
        bare :meth:`snapshot` dict) into this registry.

        Counters and histogram series *add*; gauge series *set*.  The
        fold is therefore order-independent whenever the merged series
        are label-disjoint or counter/histogram shaped — which is how
        the fleet merge stays byte-identical no matter how shards were
        scheduled.  Families are registered on first sight (document
        order, which ``json_snapshot`` keeps sorted by name); a family
        already registered with a different schema raises ``ValueError``
        rather than merging apples into oranges.
        """
        if isinstance(document, str):
            document = json.loads(document)
        metrics = document.get("metrics", document)
        for name, body in metrics.items():
            kind = body["kind"]
            labelnames = tuple(body.get("labelnames", ()))
            help_text = body.get("help", "")
            series = body.get("series", ())
            if kind == "counter":
                family = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                family = self.gauge(name, help_text, labelnames)
            elif kind == "histogram":
                buckets = tuple(_parse_bound(le)
                                for entry in series[:1]
                                for le in entry["le"]) or CYCLE_BUCKETS
                family = self.histogram(name, help_text, labelnames,
                                        buckets=buckets)
            else:
                raise ValueError("cannot merge metric %r of unknown "
                                 "kind %r" % (name, kind))
            for entry in series:
                labels = entry["labels"]
                values = tuple(labels[label] for label in labelnames)
                child = family.labels(*values)
                if kind == "counter":
                    child.inc(entry["value"])
                elif kind == "gauge":
                    child.set(entry["value"])
                else:
                    bounds = tuple(_parse_bound(le)
                                   for le in entry["le"])
                    if bounds != family.buckets:
                        raise ValueError(
                            "histogram %r merged with mismatched "
                            "buckets: have %r, got %r"
                            % (name, family.buckets, bounds))
                    child.sum += entry["sum"]
                    child.count += entry["count"]
                    for index, count in enumerate(entry["buckets"]):
                        child.counts[index] += count
        return self


def snapshot_delta(base, current):
    """Pure diff of two :meth:`MetricsRegistry.snapshot` dicts.

    Returns a snapshot-shaped dict containing only what moved since
    *base*: counter and histogram series subtract (value, sum, count and
    per-bucket counts), gauge series carry their current value when it
    changed.  Unchanged series and empty families are omitted, so the
    delta of a quiet interval is ``{}``.  Folding every delta of a run
    through :meth:`MetricsRegistry.merge_snapshot` reproduces the final
    counters and histograms exactly — which is what makes the fleet's
    streaming ``progress`` events loss-checkable against the final
    result payload.
    """
    out = {}
    for name, body in current.items():
        base_series = {}
        base_body = base.get(name)
        if base_body is not None:
            if (base_body["kind"] != body["kind"]
                    or base_body["labelnames"] != body["labelnames"]):
                raise ValueError(
                    "metric %r changed schema between snapshots: "
                    "%r -> %r" % (name,
                                  (base_body["kind"],
                                   base_body["labelnames"]),
                                  (body["kind"], body["labelnames"])))
            for entry in base_body["series"]:
                key = tuple(entry["labels"][label]
                            for label in base_body["labelnames"])
                base_series[key] = entry
        moved = []
        for entry in body["series"]:
            key = tuple(entry["labels"][label]
                        for label in body["labelnames"])
            before = base_series.get(key)
            delta = _series_delta(body["kind"], before, entry)
            if delta is not None:
                moved.append(delta)
        if moved:
            out[name] = {"kind": body["kind"], "help": body["help"],
                         "labelnames": list(body["labelnames"]),
                         "series": moved}
    return out


def _series_delta(kind, before, entry):
    """One series' movement between two snapshots; None when quiet."""
    if kind == "histogram":
        if before is None:
            changed = entry["count"] != 0 or entry["sum"] != 0
            delta = {"labels": dict(entry["labels"]),
                     "le": list(entry["le"]),
                     "sum": entry["sum"], "count": entry["count"],
                     "buckets": list(entry["buckets"])}
        else:
            delta = {
                "labels": dict(entry["labels"]),
                "le": list(entry["le"]),
                "sum": entry["sum"] - before["sum"],
                "count": entry["count"] - before["count"],
                "buckets": [after - prior for after, prior
                            in zip(entry["buckets"], before["buckets"])],
            }
            changed = delta["count"] != 0 or delta["sum"] != 0
        return delta if changed else None
    previous = 0 if before is None else before["value"]
    if kind == "counter":
        moved = entry["value"] - previous
        if moved == 0:
            return None
        return {"labels": dict(entry["labels"]), "value": moved}
    # Gauges merge by *set*, so the delta carries the current value —
    # but only when it moved (or the series is new).
    if before is not None and entry["value"] == previous:
        return None
    return {"labels": dict(entry["labels"]), "value": entry["value"]}


class DeltaCursor:
    """Incremental ``repro-metrics/1`` delta documents over a registry.

    Each :meth:`advance` returns the movement since the previous call
    (or since construction) as a mergeable document — the fleet workers
    stream one per machine so the supervisor can watch counters grow
    without waiting for the shard's final checksummed payload.
    """

    def __init__(self, registry):
        self.registry = registry
        self._base = registry.snapshot()

    def advance(self, virtual_cycles=None):
        current = self.registry.snapshot()
        delta = snapshot_delta(self._base, current)
        self._base = current
        return {
            "schema": "repro-metrics/1",
            "delta": True,
            "virtual_cycles": (self.registry.now()
                               if virtual_cycles is None
                               else virtual_cycles),
            "metrics": delta,
        }


def _parse_bound(text):
    """Invert :func:`format_value` for histogram bucket bounds."""
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return int(text)
    except ValueError:
        return float(text)


def _validate_name(name):
    if not name or not all(ch.isalnum() or ch == "_" for ch in name):
        raise ValueError("invalid metric/label name %r" % (name,))
    if name[0].isdigit():
        raise ValueError("metric/label name %r starts with a digit"
                         % (name,))


def _label_str(value):
    """Coerce a label value to its canonical string form (enum members
    export their ``value`` so ``ExitReason.HVC`` becomes ``"hvc"``)."""
    inner = getattr(value, "value", value)
    if isinstance(inner, bool):
        return "true" if inner else "false"
    return str(inner)
