"""``python -m repro metrics``: run a scenario, export the registry.

Runs the requested microbenchmark across the requested configurations
under one shared :class:`~repro.metrics.registry.MetricsRegistry` and
prints either the Prometheus text exposition or the JSON snapshot.  The
simulation is deterministic and timestamps are virtual cycles, so the
same invocation always produces byte-identical output — pipe it to a
file and diff across commits.
"""

import sys
from pathlib import Path

from repro.harness.configs import ALL_CONFIGS, make_microbench
from repro.metrics.registry import MetricsRegistry
from repro.workloads.microbench import MICROBENCHMARKS


def export_metrics(configs, workload="hypercall", iterations=6,
                   fmt="prometheus"):
    """Run *workload* on each config under one registry; return the
    export text."""
    registry = MetricsRegistry()
    machines = []
    for name in configs:
        suite = make_microbench(name, registry=registry)
        machines.append(suite.machine)
        suite.run(workload, iterations)
    registry.clock = lambda: sum(machine.ledger.total
                                 for machine in machines)
    if fmt == "json":
        return registry.json_snapshot()
    return registry.prometheus_text()


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    configs = []
    workload = "hypercall"
    iterations = 6
    fmt = "prometheus"
    out = None
    while argv:
        arg = argv.pop(0)
        if arg == "--config" and argv:
            configs.append(argv.pop(0))
        elif arg == "--workload" and argv:
            workload = argv.pop(0)
        elif arg == "--iterations" and argv:
            iterations = int(argv.pop(0))
        elif arg == "--format" and argv:
            fmt = argv.pop(0)
        elif arg == "--out" and argv:
            out = Path(argv.pop(0))
        elif arg in ("-h", "--help"):
            print("usage: python -m repro metrics [--config NAME ...] "
                  "[--workload NAME] [--iterations N] "
                  "[--format prometheus|json] [--out FILE]")
            return 0
        else:
            print("metrics: unknown argument %r" % arg, file=sys.stderr)
            return 2
    if fmt not in ("prometheus", "json"):
        print("metrics: unknown format %r" % fmt, file=sys.stderr)
        return 2
    if workload not in MICROBENCHMARKS:
        print("metrics: unknown workload %r (have: %s)"
              % (workload, ", ".join(MICROBENCHMARKS)), file=sys.stderr)
        return 2
    for name in configs:
        if name not in ALL_CONFIGS:
            print("metrics: unknown config %r (have: %s)"
                  % (name, ", ".join(sorted(ALL_CONFIGS))),
                  file=sys.stderr)
            return 2
    if not configs:
        configs = sorted(ALL_CONFIGS)

    text = export_metrics(configs, workload=workload,
                          iterations=iterations, fmt=fmt)
    if out is not None:
        out.write_text(text)
        print("metrics: wrote %s (%d bytes)" % (out, len(text)))
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
