"""Cycle accounting, trap/exit counters and the telemetry registry.

Everything the simulated hardware and hypervisors do is charged to a
:class:`~repro.metrics.cycles.CycleLedger` using the named constants in
:class:`~repro.metrics.cycles.CostModel`, and every transition into a host
hypervisor is recorded in a :class:`~repro.metrics.counters.TrapCounter`.
The paper's Tables 1, 6 and 7 are read directly off these two objects.

The unified registry (:mod:`repro.metrics.registry`) gives those islands
one labelled, exportable home — Prometheus text exposition and JSON
snapshots, byte-identical per seed because timestamps are virtual cycles
— and :class:`~repro.metrics.instrument.MachineMetrics` wires it through
the hot layers without ever charging the ledger.
"""

from repro.metrics.counters import (ExitReason, RecoveryCounter,
                                    RecoveryEvent, TrapCounter)
from repro.metrics.cycles import ARM_COSTS, X86_COSTS, CostModel, CycleLedger
from repro.metrics.instrument import MachineMetrics
from repro.metrics.registry import (CYCLE_BUCKETS, Counter, Gauge, Histogram,
                                    MetricsRegistry)

__all__ = [
    "ARM_COSTS",
    "X86_COSTS",
    "CYCLE_BUCKETS",
    "CostModel",
    "Counter",
    "CycleLedger",
    "ExitReason",
    "Gauge",
    "Histogram",
    "MachineMetrics",
    "MetricsRegistry",
    "RecoveryCounter",
    "RecoveryEvent",
    "TrapCounter",
]
