"""Cycle accounting and trap/exit counters.

Everything the simulated hardware and hypervisors do is charged to a
:class:`~repro.metrics.cycles.CycleLedger` using the named constants in
:class:`~repro.metrics.cycles.CostModel`, and every transition into a host
hypervisor is recorded in a :class:`~repro.metrics.counters.TrapCounter`.
The paper's Tables 1, 6 and 7 are read directly off these two objects.
"""

from repro.metrics.counters import ExitReason, TrapCounter
from repro.metrics.cycles import ARM_COSTS, X86_COSTS, CostModel, CycleLedger

__all__ = [
    "ARM_COSTS",
    "X86_COSTS",
    "CostModel",
    "CycleLedger",
    "ExitReason",
    "TrapCounter",
]
