"""KVM x86 and Turtles-style nested VMX.

The L0 handler mirrors KVM x86's exit path; nested support follows
Turtles (Section 4: "we take an approach similar to Turtles"): exits from
L2 are reflected to L1 by syncing vmcs02 into vmcs12 and resuming L1 on
vmcs01; L1's VMRESUME traps and L0 rebuilds vmcs02 from vmcs12.  VMCS
shadowing (Section 8) lets L1 read and write most vmcs12 fields without
exiting, leaving the handful of unshadowable accesses plus the VMRESUME
itself — hence the 5 traps per nested hypercall in Table 7.
"""

from repro.metrics.counters import TrapCounter
from repro.metrics.cycles import X86_COSTS, CycleLedger
from repro.x86.apic import VirtualApic
from repro.x86.ept import NestedEpt
from repro.x86.vmcs import VmcsFields, VmcsSet
from repro.x86.vmx import X86Cpu, X86ExitReason

#: APIC ICR MSR (x2APIC), used for IPIs.
MSR_ICR = 0x830
#: A guest timer deadline MSR reprogrammed on the exit path.
MSR_TSC_DEADLINE = 0x6E0

DEVICE_VALUE = 0x5AFE_D00D


class X86VcpuState:
    def __init__(self, cpu, vcpu_id, nested=False):
        self.cpu = cpu
        self.vcpu_id = vcpu_id
        self.nested = nested
        self.nested_active = False  # L2 currently running on this vcpu
        self.vmcs = VmcsSet() if nested else None
        self.apic = VirtualApic(apic_id=vcpu_id)
        self.pending_virqs = []
        self.l2_pending_virqs = []
        self.vm = None

    def queue_virq(self, vector):
        self.pending_virqs.append(vector)


class X86Vm:
    def __init__(self, vcpus, nested=False, shadowing=True):
        self.vcpus = vcpus
        self.nested = nested
        self.shadowing = shadowing
        self.nested_ept = NestedEpt() if nested else None
        if nested:
            # L0 backs 16 MB of L1 memory; L1 maps 8 MB of it for L2.
            self.nested_ept.map_l1_memory(0x0, 0x8000_0000, 0x100_0000)
            self.nested_ept.map_l2_memory(0x0, 0x40_0000, 0x80_0000)
        for vcpu in vcpus:
            vcpu.vm = self


class X86Machine:
    """x86 counterpart of :class:`repro.hypervisor.kvm.Machine`."""

    def __init__(self, num_cpus=2, costs=None):
        self.costs = costs if costs is not None else X86_COSTS
        self.ledger = CycleLedger()
        self.traps = TrapCounter()
        self.cpus = [X86Cpu(costs=self.costs, ledger=self.ledger,
                            traps=self.traps, cpu_id=i)
                     for i in range(num_cpus)]
        self.kvm = KvmX86(self)
        self.device_values = {}
        self.last_kick_mark = 0

    def cpu(self, index=0):
        return self.cpus[index]

    def device_read(self, addr):
        return self.device_values.get(addr, DEVICE_VALUE)

    def reset_metrics(self):
        self.ledger.reset()
        self.traps.reset()


class KvmX86:
    """The L0 x86 hypervisor."""

    def __init__(self, machine):
        self.machine = machine
        self.running = {}
        self.stats = {"reflects": 0, "vmresume_emulations": 0}
        for cpu in machine.cpus:
            cpu.exit_handler = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create_vm(self, num_vcpus=1, nested=False, shadowing=True):
        if num_vcpus > len(self.machine.cpus):
            raise ValueError("more vcpus than physical CPUs (pinned model)")
        vcpus = [X86VcpuState(self.machine.cpus[i], i, nested=nested)
                 for i in range(num_vcpus)]
        return X86Vm(vcpus, nested=nested, shadowing=shadowing)

    def run_vcpu(self, vcpu):
        cpu = vcpu.cpu
        self.running[cpu.cpu_id] = vcpu
        cpu.work(300, category="l0_kernel")
        cpu.vmptrld()
        cpu.vm_entry()

    def boot_nested(self, vcpu):
        """L1 launches L2: build vmcs12, VMRESUME, L0 merges and enters."""
        if not vcpu.nested:
            raise ValueError("vcpu has no nested support")
        self.run_vcpu(vcpu)
        cpu = vcpu.cpu
        # L1 builds vmcs12 (shadowed writes or exits per field).
        if vcpu.vm.shadowing:
            cpu.vmwrite(VmcsFields.GUEST_STATE + VmcsFields.CONTROL,
                        category="l1_vmcs")
        else:
            for _ in range(8):  # batched non-shadowed setup writes
                cpu.vm_exit(X86ExitReason.VMWRITE, {})
        cpu.vm_exit(X86ExitReason.VMRESUME, {})
        if not vcpu.nested_active:
            raise RuntimeError("nested launch failed")

    # ------------------------------------------------------------------
    # Exit dispatch
    # ------------------------------------------------------------------

    def handle_exit(self, cpu, reason, payload):
        vcpu = self.running.get(cpu.cpu_id)
        if vcpu is None:
            raise RuntimeError("VM exit with no vcpu running")
        cpu.vmread(5, category="l0_exit_info")  # exit reason/qualification
        cpu.work(190, category="l0_kernel")  # kvm exit dispatch
        if vcpu.nested_active and reason is not X86ExitReason.VMRESUME:
            if reason is X86ExitReason.EPT_VIOLATION:
                kind = vcpu.vm.nested_ept.classify_violation(
                    payload.get("addr", 0))
                if kind == "shadow":
                    # A miss in the collapsed ept02: L0's business alone
                    # (multi-dimensional paging, as in ARM's shadow
                    # stage-2 path) — no reflection to L1.
                    cpu.work(850, category="l0_mmu")  # two-table walk
                    vcpu.vm.nested_ept.fix_shadow(payload.get("addr", 0))
                    cpu.vm_entry()
                    return None
                vcpu.vm.nested_ept.violations_reflected += 1
            return self._reflect_to_l1(cpu, vcpu, reason, payload)
        handler = {
            X86ExitReason.VMCALL: self._handle_vmcall,
            X86ExitReason.EPT_VIOLATION: self._handle_mmio,
            X86ExitReason.IO_INSTRUCTION: self._handle_mmio,
            X86ExitReason.MSR_WRITE: self._handle_msr_write,
            X86ExitReason.MSR_READ: self._handle_msr_read,
            X86ExitReason.EXTERNAL_INTERRUPT: self._handle_external,
            X86ExitReason.VMRESUME: self._emulate_vmresume,
            X86ExitReason.VMREAD: self._emulate_vmcs_access,
            X86ExitReason.VMWRITE: self._emulate_vmcs_access,
            X86ExitReason.HLT: self._handle_hlt,
        }.get(reason)
        if handler is None:
            raise RuntimeError("unhandled exit reason %r" % reason)
        return handler(cpu, vcpu, payload)

    # ------------------------------------------------------------------
    # Plain VM handlers
    # ------------------------------------------------------------------

    def _handle_vmcall(self, cpu, vcpu, payload):
        cpu.work(70, category="l0_kernel")
        cpu.vm_entry()
        return 0

    def _handle_mmio(self, cpu, vcpu, payload):
        cpu.work(140, category="l0_kernel")
        cpu.charge(cpu.costs.userspace_roundtrip, "l0_userspace")
        cpu.work(300, category="l0_userspace")
        cpu.vm_entry()
        if payload.get("is_write"):
            self.machine.device_values[payload["addr"]] = payload["value"]
            return None
        return self.machine.device_read(payload.get("addr", 0))

    def _handle_msr_write(self, cpu, vcpu, payload):
        if payload.get("msr") == MSR_ICR:
            self._route_ipi(cpu, vcpu, payload.get("value", 0))
        else:
            cpu.work(180, category="l0_kernel")
        cpu.vm_entry()
        return None

    def _handle_msr_read(self, cpu, vcpu, payload):
        cpu.work(180, category="l0_kernel")
        cpu.vm_entry()
        return 0

    def _route_ipi(self, cpu, vcpu, value):
        cpu.work(340, category="l0_apic")
        self.machine.last_kick_mark = self.machine.ledger.total
        target_id = value & 0xFF
        vector = (value >> 8) & 0xFF
        vm = vcpu.vm
        if target_id < len(vm.vcpus):
            target = vm.vcpus[target_id]
            target.queue_virq(vector)
            target.apic.post_interrupt(vector)

    def _handle_external(self, cpu, vcpu, payload):
        """A physical interrupt while the guest ran: acknowledge and
        inject anything pending (APICv posted-interrupt-ish path)."""
        cpu.work(280, category="l0_irq")
        if vcpu.pending_virqs:
            vcpu.pending_virqs.pop(0)
            cpu.vmwrite(2, category="l0_irq")  # interruption-info fields
            cpu.work(160, category="l0_irq")
        cpu.vm_entry()
        return None

    def _handle_hlt(self, cpu, vcpu, payload):
        cpu.work(420, category="l0_kernel")
        cpu.vm_entry()
        return None

    # ------------------------------------------------------------------
    # Nested VMX
    # ------------------------------------------------------------------

    def _reflect_to_l1(self, cpu, vcpu, reason, payload):
        """Exit from L2: sync vmcs02 -> vmcs12, resume L1 on vmcs01, and
        run the L1 hypervisor's exit handler."""
        self.stats["reflects"] += 1
        cpu.work(1500, category="l0_nested")  # nested exit routing/checks
        cpu.vmread(VmcsFields.SYNC_ON_EXIT, category="l0_nested")
        cpu.memcpy_fields(VmcsFields.SYNC_ON_EXIT, category="l0_nested")
        cpu.vmptrld(category="l0_nested")  # back to vmcs01
        cpu.vmwrite(10, category="l0_nested")  # inject exit into L1
        vcpu.nested_active = False
        cpu.vm_entry()
        with self._guest_call(cpu):
            result = self._l1_handle_exit(cpu, vcpu, reason, payload)
        return result

    class _guest_call:
        """Run L1 code synchronously from within an exit handler."""

        def __init__(self, cpu):
            self.cpu = cpu

        def __enter__(self):
            self._saved = (self.cpu.in_root, self.cpu._handling_exit)
            self.cpu.in_root = False
            self.cpu._handling_exit = False
            return self.cpu

        def __exit__(self, exc_type, exc, tb):
            self.cpu.in_root, self.cpu._handling_exit = self._saved
            return False

    def _l1_handle_exit(self, cpu, vcpu, reason, payload):
        """The L1 (guest) KVM's exit handler, running in non-root mode."""
        shadowing = vcpu.vm.shadowing
        self._l1_vmcs_reads(cpu, vcpu, VmcsFields.L1_READS_PER_EXIT)
        cpu.work(6200, category="l1_kernel")  # kvm_handle_exit path
        if shadowing:
            # A few fields are unshadowable: each access exits.
            for _ in range(VmcsFields.UNSHADOWED_ACCESSES_PER_EXIT):
                cpu.vm_exit(X86ExitReason.VMREAD, {})

        result = None
        if reason is X86ExitReason.VMCALL:
            cpu.work(200, category="l1_kernel")
            cpu.wrmsr(MSR_TSC_DEADLINE, 1)  # rearm timer: exits to L0
            result = 0
        elif reason in (X86ExitReason.EPT_VIOLATION,
                        X86ExitReason.IO_INSTRUCTION):
            cpu.charge(cpu.costs.userspace_roundtrip, "l1_userspace")
            cpu.work(380, category="l1_userspace")
            cpu.wrmsr(MSR_TSC_DEADLINE, 1)
            result = (None if payload.get("is_write")
                      else self.machine.device_read(payload.get("addr", 0)))
        elif reason is X86ExitReason.MSR_WRITE:
            # L2 sent an IPI: emulate in L1's APIC, then kick the target
            # L1 vcpu — that ICR write exits to L0.
            cpu.work(360, category="l1_apic")
            target = payload.get("value", 0) & 0xFF
            vcpu.vm.vcpus[target % len(vcpu.vm.vcpus)] \
                .l2_pending_virqs.append((payload.get("value", 0) >> 8)
                                         & 0xFF)
            cpu.wrmsr(MSR_ICR, payload.get("value", 0))
        elif reason is X86ExitReason.EXTERNAL_INTERRUPT:
            cpu.work(300, category="l1_irq")
            if vcpu.l2_pending_virqs:
                vcpu.l2_pending_virqs.pop(0)
                self._l1_vmcs_writes(cpu, vcpu, 2)  # inject into vmcs12
        else:
            cpu.work(240, category="l1_kernel")

        self._l1_vmcs_writes(cpu, vcpu, VmcsFields.L1_WRITES_PER_EXIT)
        cpu.vm_exit(X86ExitReason.VMRESUME, {})
        return result

    def _l1_vmcs_reads(self, cpu, vcpu, count):
        if vcpu.vm.shadowing:
            cpu.vmread(count, category="l1_vmcs")
        else:
            for _ in range(count):
                cpu.vm_exit(X86ExitReason.VMREAD, {})

    def _l1_vmcs_writes(self, cpu, vcpu, count):
        if vcpu.vm.shadowing:
            cpu.vmwrite(count, category="l1_vmcs")
        else:
            for _ in range(count):
                cpu.vm_exit(X86ExitReason.VMWRITE, {})

    def _emulate_vmcs_access(self, cpu, vcpu, payload):
        """Non-shadowed VMREAD/VMWRITE from L1: emulate one field."""
        cpu.work(420, category="l0_nested")
        cpu.memcpy_fields(1, category="l0_nested")
        cpu.vm_entry()
        return 0

    def _emulate_vmresume(self, cpu, vcpu, payload):
        """L1 executed VMRESUME: build vmcs02 from vmcs12 and enter L2 —
        the dominant cost of nested VMX (Turtles; Section 8)."""
        self.stats["vmresume_emulations"] += 1
        cpu.work(5200, category="l0_nested")  # entry checks/consistency
        cpu.memcpy_fields(VmcsFields.MERGE_ON_ENTRY, category="l0_nested")
        cpu.vmwrite(VmcsFields.MERGE_ON_ENTRY, category="l0_nested")
        cpu.vmptrld(category="l0_nested")  # switch to vmcs02
        vcpu.nested_active = True
        cpu.vm_entry()
        return None
