"""The VT-x CPU model: root/non-root modes and exit plumbing.

Unlike ARM's extra exception level, "Intel VT provides root vs. non-root
mode, completely orthogonal to the CPU privilege levels" (Section 2).
VM exits save/restore state through the VMCS in one hardware operation,
charged as ``vmexit_hw``/``vmentry_hw`` — the coalescing that NEVE brings
to ARM in software-visible form.
"""

import enum

from repro.metrics.counters import ExitReason, TrapCounter
from repro.metrics.cycles import X86_COSTS, CycleLedger


class X86ExitReason(enum.Enum):
    VMCALL = "vmcall"
    EPT_VIOLATION = "ept"
    IO_INSTRUCTION = "io"
    MSR_WRITE = "msr_write"
    MSR_READ = "msr_read"
    EXTERNAL_INTERRUPT = "extint"
    VMREAD = "vmread"
    VMWRITE = "vmwrite"
    VMRESUME = "vmresume"
    VMPTRLD = "vmptrld"
    APIC_WRITE = "apic"
    HLT = "hlt"


_EXIT_TO_TRAP = {
    X86ExitReason.VMCALL: ExitReason.VMCALL,
    X86ExitReason.EPT_VIOLATION: ExitReason.EPT_VIOLATION,
    X86ExitReason.IO_INSTRUCTION: ExitReason.EPT_VIOLATION,
    X86ExitReason.MSR_WRITE: ExitReason.MSR_ACCESS,
    X86ExitReason.MSR_READ: ExitReason.MSR_ACCESS,
    X86ExitReason.EXTERNAL_INTERRUPT: ExitReason.EXTERNAL_INTERRUPT,
    X86ExitReason.VMREAD: ExitReason.VMREAD,
    X86ExitReason.VMWRITE: ExitReason.VMWRITE,
    X86ExitReason.VMRESUME: ExitReason.VMRESUME,
    X86ExitReason.VMPTRLD: ExitReason.VMRESUME,
    X86ExitReason.APIC_WRITE: ExitReason.APIC_ACCESS,
    X86ExitReason.HLT: ExitReason.WFI,
}


class X86Cpu:
    """One x86 core.  ``in_root`` tracks VMX mode; the exit handler is the
    L0 hypervisor (KVM x86)."""

    def __init__(self, costs=None, ledger=None, traps=None, cpu_id=0):
        self.costs = costs if costs is not None else X86_COSTS
        self.ledger = ledger if ledger is not None else CycleLedger()
        self.traps = traps if traps is not None else TrapCounter()
        self.cpu_id = cpu_id
        self.in_root = True
        self.exit_handler = None
        self._handling_exit = False

    # -- cost helpers ------------------------------------------------------

    def work(self, instructions, category="guest"):
        self.ledger.charge(instructions * self.costs.instr, category)

    def charge(self, cycles, category):
        self.ledger.charge(cycles, category)

    # -- VMCS access (cost side; data goes through Vmcs objects) -----------

    def vmread(self, count=1, category="vmcs"):
        """Non-trapping VMREADs (root mode, or shadowed in non-root)."""
        self.ledger.charge(count * self.costs.vmread, category)

    def vmwrite(self, count=1, category="vmcs"):
        self.ledger.charge(count * self.costs.vmwrite, category)

    def vmptrld(self, category="vmcs"):
        self.ledger.charge(self.costs.vmptrld, category)

    def memcpy_fields(self, count, category="vmcs"):
        """Move *count* VMCS fields to/from ordinary memory."""
        self.ledger.charge(count * (self.costs.mem_load
                                    + self.costs.mem_store), category)

    # -- exits --------------------------------------------------------------

    def vm_exit(self, reason, payload=None):
        """A VM exit from non-root to root mode.

        Charges the hardware state swap and dispatches to the installed
        handler (L0).  Returns whatever the handler produces for the
        exiting instruction (e.g. an MMIO value).
        """
        if self.in_root:
            raise RuntimeError("vm_exit while already in root mode")
        if self._handling_exit:
            raise RuntimeError("recursive VM exit in root mode")
        self.traps.record(_EXIT_TO_TRAP[reason])
        self.ledger.charge(self.costs.vmexit_hw, "vmexit_hw")
        self.in_root = True
        self._handling_exit = True
        try:
            result = self.exit_handler.handle_exit(self, reason,
                                                   payload or {})
        finally:
            self._handling_exit = False
        return result

    def vm_entry(self):
        """Root -> non-root (the handler calls this before returning)."""
        self.ledger.charge(self.costs.vmentry_hw, "vmentry_hw")
        self.in_root = False

    def run_guest_exit(self, reason, payload=None):
        """Convenience for drivers: perform one exiting guest operation."""
        return self.vm_exit(reason, payload)

    # -- guest-visible operations -------------------------------------------

    def vmcall(self, nr=0):
        return self.vm_exit(X86ExitReason.VMCALL, {"nr": nr})

    def mmio_read(self, addr):
        return self.vm_exit(X86ExitReason.EPT_VIOLATION,
                            {"addr": addr, "is_write": False})

    def mmio_write(self, addr, value):
        return self.vm_exit(X86ExitReason.EPT_VIOLATION,
                            {"addr": addr, "is_write": True,
                             "value": value})

    def wrmsr(self, msr, value):
        return self.vm_exit(X86ExitReason.MSR_WRITE,
                            {"msr": msr, "value": value})

    def apic_virtual_eoi(self):
        """APICv: complete an interrupt without exiting (Section 5's
        Virtual EOI row — 316 cycles on the paper's hardware)."""
        self.ledger.charge(self.costs.apic_reg_virt, "apicv")
        self.work(12, category="guest")
