"""The virtual APIC (APICv) model.

The paper's Virtual EOI benchmark relies on "hardware support for
completing interrupts directly in the VM without trapping to the
hypervisor" — APICv on x86 (Section 5).  This module models the virtual
APIC page state (IRR/ISR bitmaps, the PPR rule) so the x86 EOI and
interrupt-injection paths operate on real interrupt state instead of
counters, mirroring what the GIC list registers provide on ARM.
"""

from dataclasses import dataclass, field

SPURIOUS_VECTOR = 0xFF


def _highest(bitmap):
    return bitmap.bit_length() - 1 if bitmap else -1


@dataclass
class VirtualApic:
    """Per-vcpu virtual APIC state (the APICv virtual-APIC page)."""

    apic_id: int = 0
    irr: int = 0  # interrupt request register (256-bit bitmap)
    isr: int = 0  # in-service register
    eoi_count: int = 0

    # -- injection ----------------------------------------------------------

    def post_interrupt(self, vector):
        """Posted-interrupt style delivery: set the IRR bit.

        With APICv the hypervisor (or the posted-interrupt hardware path)
        sets IRR; the CPU evaluates deliverability without an exit.
        """
        if not 0 <= vector <= 255:
            raise ValueError("vector out of range: %r" % vector)
        self.irr |= 1 << vector

    # -- CPU-side evaluation --------------------------------------------------

    @property
    def ppr(self):
        """Processor priority: the in-service vector's priority class."""
        top = _highest(self.isr)
        return (top & 0xF0) if top >= 0 else 0

    def pending_vector(self):
        """Highest deliverable vector, honouring the PPR rule."""
        top = _highest(self.irr)
        if top < 0:
            return None
        if (top & 0xF0) <= self.ppr:
            return None  # masked by the in-service priority class
        return top

    def acknowledge(self):
        """Deliver the highest pending interrupt: IRR -> ISR."""
        vector = self.pending_vector()
        if vector is None:
            return SPURIOUS_VECTOR
        self.irr &= ~(1 << vector)
        self.isr |= 1 << vector
        return vector

    def eoi(self):
        """Virtual EOI: clear the highest in-service bit, no exit."""
        self.eoi_count += 1
        top = _highest(self.isr)
        if top >= 0:
            self.isr &= ~(1 << top)
        return top

    @property
    def in_service(self):
        return _highest(self.isr)

    def reset(self):
        self.irr = 0
        self.isr = 0


@dataclass
class ApicBank:
    """All virtual APICs of one VM, addressable by APIC id."""

    apics: dict = field(default_factory=dict)

    def apic(self, apic_id):
        if apic_id not in self.apics:
            self.apics[apic_id] = VirtualApic(apic_id=apic_id)
        return self.apics[apic_id]

    def send_ipi(self, target_id, vector):
        self.apic(target_id).post_interrupt(vector)
