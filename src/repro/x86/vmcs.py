"""The VM Control Structure (VMCS).

"Transitions between root and non-root mode on Intel are implemented with
a VM Control Structure (VMCS) residing in normal memory, to and from which
hardware state is automatically saved and restored when switching to and
from root mode" (Section 2).  The model keeps the field taxonomy at the
granularity the cost analysis needs: how many fields each operation
touches, and which fields VMCS shadowing lets a guest hypervisor access
without exiting.
"""

from dataclasses import dataclass, field


class VmcsFields:
    """Field-group sizes of a VMCS (counts follow the SDM's orders of
    magnitude; exact identities don't matter to the model)."""

    GUEST_STATE = 84  # guest register/segment/descriptor state
    HOST_STATE = 22
    CONTROL = 44  # pin/proc-based controls, EPT pointer, exception bitmap
    EXIT_INFO = 18  # exit reason, qualification, interruption info...

    #: Fields touched when the hardware performs a VM exit (automatic
    #: save of guest state + load of host state): this is what makes a
    #: single x86 exit heavy but software-cheap.
    HW_EXIT_FIELDS = GUEST_STATE + HOST_STATE

    #: Fields KVM copies from vmcs02 to vmcs12 when reflecting an exit to
    #: the guest hypervisor (exit info + clobbered guest state).
    SYNC_ON_EXIT = EXIT_INFO + GUEST_STATE + 24

    #: Fields KVM merges from vmcs12 (+ vmcs01 host parts) into vmcs02 on
    #: a nested VM entry — the dominant cost of nested VMX (Turtles).
    MERGE_ON_ENTRY = GUEST_STATE + CONTROL + HOST_STATE + 46

    #: Exit-handling fields the L1 hypervisor reads/writes per exit.
    L1_READS_PER_EXIT = 12
    L1_WRITES_PER_EXIT = 8

    #: With VMCS shadowing, reads/writes of most fields are satisfied from
    #: the shadow VMCS without an exit; a handful of fields remain
    #: unshadowable (Intel's shadowing bitmap doesn't cover everything).
    UNSHADOWED_ACCESSES_PER_EXIT = 2


@dataclass
class Vmcs:
    """One VMCS instance (vmcs01, vmcs02 or vmcs12)."""

    name: str
    fields: dict = field(default_factory=dict)
    launched: bool = False

    def read(self, field_name):
        return self.fields.get(field_name, 0)

    def write(self, field_name, value):
        self.fields[field_name] = value

    def clear(self):
        self.fields.clear()
        self.launched = False


@dataclass
class VmcsSet:
    """The Turtles trio for one nested vcpu (Section 8 / Turtles):

    * ``vmcs01`` — L0's VMCS for running L1 directly;
    * ``vmcs12`` — the VMCS the L1 guest hypervisor builds for L2
      (ordinary guest memory, possibly shadowed);
    * ``vmcs02`` — the real VMCS L0 builds from vmcs12 to run L2.
    """

    vmcs01: Vmcs = field(default_factory=lambda: Vmcs("vmcs01"))
    vmcs12: Vmcs = field(default_factory=lambda: Vmcs("vmcs12"))
    vmcs02: Vmcs = field(default_factory=lambda: Vmcs("vmcs02"))
