"""The x86 (Intel VT-x) comparator.

The paper's Sections 2, 5 and 8 contrast ARM's split-EL2 design with
VT-x's root/non-root modes and the VMCS: hardware saves and restores VM
state in a single coalesced operation, so a nested exit on x86 is few
traps but each is individually heavy (the vmcs02 rebuild), while ARM
multiplies traps.  This package models VT-x, KVM x86 and Turtles-style
nested VMX (vmcs01/vmcs02/vmcs12, VMCS shadowing, APICv) to reproduce the
x86 columns of Tables 1, 6 and 7 and the x86 series of Figure 2.
"""

from repro.x86.kvm_x86 import KvmX86, X86Machine, X86Vm
from repro.x86.vmcs import Vmcs, VmcsFields
from repro.x86.vmx import X86Cpu, X86ExitReason

__all__ = [
    "KvmX86",
    "Vmcs",
    "VmcsFields",
    "X86Cpu",
    "X86ExitReason",
    "X86Machine",
    "X86Vm",
]
