"""Nested EPT (multi-dimensional paging) for x86.

Turtles' memory virtualization mirrors the ARM shadow stage-2 of
Section 4: the L1 hypervisor maintains ept12 (L2 GPA -> L1 GPA), L0
maintains ept01 (L1 GPA -> host PA), and L0 collapses the two into the
ept02 table the hardware actually walks while L2 runs.  An EPT violation
from L2 is either a shadow miss L0 fixes itself (when ept12 maps the
address) or a genuine L1-owned fault that must be reflected to the guest
hypervisor — the same routing decision the ARM host makes for stage-2
aborts.
"""

from repro.memory.pagetable import PageTable, Permission, TranslationFault
from repro.memory.shadow import ShadowStage2

#: Guest-physical addresses at or above this are MMIO (device) space.
MMIO_BASE = 0xFEB0_0000


class NestedEpt:
    """The ept01/ept12/ept02 trio for one nested x86 VM."""

    def __init__(self):
        self.ept01 = PageTable(stage=2, name="ept01")  # L1 GPA -> host PA
        self.ept12 = PageTable(stage=2, name="ept12")  # L2 GPA -> L1 GPA
        self.shadow = ShadowStage2(self.ept12, self.ept01, name="ept02")
        self.violations_fixed = 0
        self.violations_reflected = 0

    @property
    def ept02(self):
        return self.shadow.table

    def map_l1_memory(self, l1_gpa, host_pa, size):
        self.ept01.map_range(l1_gpa, host_pa, size)

    def map_l2_memory(self, l2_gpa, l1_gpa, size):
        """What the L1 hypervisor does when building ept12."""
        self.ept12.map_range(l2_gpa, l1_gpa, size)
        # Real hardware requires L0 to shoot down stale shadow entries
        # when ept12 changes (the vmcs12 EPTP invalidation path).
        self.shadow.invalidate_l2_range(l2_gpa, size)

    def is_mmio(self, l2_gpa):
        return l2_gpa >= MMIO_BASE

    def classify_violation(self, l2_gpa):
        """Route an EPT violation: ``"mmio"`` (reflect: the device lives
        in L1's userspace), ``"shadow"`` (L0 fixes the collapsed entry),
        or ``"l1_fault"`` (reflect: ept12 has no mapping, the guest
        hypervisor must handle its own fault)."""
        if self.is_mmio(l2_gpa):
            return "mmio"
        if self.ept12.lookup(l2_gpa) is not None:
            return "shadow"
        return "l1_fault"

    def fix_shadow(self, l2_gpa, perm=Permission.RWX):
        """Populate the ept02 entry by walking ept12 then ept01."""
        try:
            self.shadow.handle_fault(l2_gpa, perm)
        except TranslationFault:
            # ept01 miss: L0 allocates backing on demand.
            l1_gpa = self.ept12.translate(l2_gpa, Permission.NONE)
            self.ept01.map_page(l1_gpa, 0x1_0000_0000 + l1_gpa)
            self.shadow.handle_fault(l2_gpa, perm)
        self.violations_fixed += 1

    def translate(self, l2_gpa):
        """Translate through ept02, faulting the entry in if needed."""
        try:
            return self.ept02.translate(l2_gpa)
        except TranslationFault:
            self.fix_shadow(l2_gpa)
            return self.ept02.translate(l2_gpa)
