"""Real AArch64 system-register encodings.

Every register in the model's registry gets its architectural
``(op0, op1, CRn, CRm, op2)`` encoding from the ARM ARM, so the binary
paravirtualization path (:mod:`repro.core.binary`) can assemble and patch
*genuine* A64 ``MRS``/``MSR`` instructions, and the ``*_EL12``/``*_EL02``
aliases are what they really are: the same registers reached through the
``op1 = 5`` encoding space VHE added.
"""

from repro.arch.cpu import Encoding
from repro.arch.registers import iter_registers

#: name -> (op0, op1, CRn, CRm, op2), from the ARM ARM system register
#: descriptions.
SYSREG_ENCODINGS = {
    # --- EL1 / EL0 state ---
    "SCTLR_EL1": (3, 0, 1, 0, 0),
    "CPACR_EL1": (3, 0, 1, 0, 2),
    "TTBR0_EL1": (3, 0, 2, 0, 0),
    "TTBR1_EL1": (3, 0, 2, 0, 1),
    "TCR_EL1": (3, 0, 2, 0, 2),
    "SPSR_EL1": (3, 0, 4, 0, 0),
    "ELR_EL1": (3, 0, 4, 0, 1),
    "SP_EL0": (3, 0, 4, 1, 0),
    "AFSR0_EL1": (3, 0, 5, 1, 0),
    "AFSR1_EL1": (3, 0, 5, 1, 1),
    "ESR_EL1": (3, 0, 5, 2, 0),
    "FAR_EL1": (3, 0, 6, 0, 0),
    "PAR_EL1": (3, 0, 7, 4, 0),
    "MAIR_EL1": (3, 0, 10, 2, 0),
    "AMAIR_EL1": (3, 0, 10, 3, 0),
    "VBAR_EL1": (3, 0, 12, 0, 0),
    "CONTEXTIDR_EL1": (3, 0, 13, 0, 1),
    "TPIDR_EL1": (3, 0, 13, 0, 4),
    "CNTKCTL_EL1": (3, 0, 14, 1, 0),
    "CSSELR_EL1": (3, 2, 0, 0, 0),
    "TPIDR_EL0": (3, 3, 13, 0, 2),
    "TPIDRRO_EL0": (3, 3, 13, 0, 3),
    "MDSCR_EL1": (2, 0, 0, 2, 2),
    "SP_EL1": (3, 4, 4, 1, 0),  # accessible from EL2
    "PMUSERENR_EL0": (3, 3, 9, 14, 0),
    "PMSELR_EL0": (3, 3, 9, 12, 5),
    # --- EL0 timers ---
    "CNTVCT_EL0": (3, 3, 14, 0, 2),
    "CNTP_CTL_EL0": (3, 3, 14, 2, 1),
    "CNTP_CVAL_EL0": (3, 3, 14, 2, 2),
    "CNTV_CTL_EL0": (3, 3, 14, 3, 1),
    "CNTV_CVAL_EL0": (3, 3, 14, 3, 2),
    # --- EL2 state ---
    "VPIDR_EL2": (3, 4, 0, 0, 0),
    "VMPIDR_EL2": (3, 4, 0, 0, 5),
    "SCTLR_EL2": (3, 4, 1, 0, 0),
    "HCR_EL2": (3, 4, 1, 1, 0),
    "MDCR_EL2": (3, 4, 1, 1, 1),
    "CPTR_EL2": (3, 4, 1, 1, 2),
    "HSTR_EL2": (3, 4, 1, 1, 3),
    "HACR_EL2": (3, 4, 1, 1, 7),
    "TTBR0_EL2": (3, 4, 2, 0, 0),
    "TTBR1_EL2": (3, 4, 2, 0, 1),
    "TCR_EL2": (3, 4, 2, 0, 2),
    "VTTBR_EL2": (3, 4, 2, 1, 0),
    "VTCR_EL2": (3, 4, 2, 1, 2),
    "VNCR_EL2": (3, 4, 2, 2, 0),
    "SPSR_EL2": (3, 4, 4, 0, 0),
    "ELR_EL2": (3, 4, 4, 0, 1),
    "AFSR0_EL2": (3, 4, 5, 1, 0),
    "AFSR1_EL2": (3, 4, 5, 1, 1),
    "ESR_EL2": (3, 4, 5, 2, 0),
    "FAR_EL2": (3, 4, 6, 0, 0),
    "HPFAR_EL2": (3, 4, 6, 0, 4),
    "MAIR_EL2": (3, 4, 10, 2, 0),
    "AMAIR_EL2": (3, 4, 10, 3, 0),
    "VBAR_EL2": (3, 4, 12, 0, 0),
    "CONTEXTIDR_EL2": (3, 4, 13, 0, 1),
    "TPIDR_EL2": (3, 4, 13, 0, 2),
    "CNTVOFF_EL2": (3, 4, 14, 0, 3),
    "CNTHCTL_EL2": (3, 4, 14, 1, 0),
    "CNTHP_CTL_EL2": (3, 4, 14, 2, 1),
    "CNTHP_CVAL_EL2": (3, 4, 14, 2, 2),
    "CNTHV_CTL_EL2": (3, 4, 14, 3, 1),
    "CNTHV_CVAL_EL2": (3, 4, 14, 3, 2),
    # --- GIC hypervisor interface ---
    "ICH_HCR_EL2": (3, 4, 12, 11, 0),
    "ICH_VTR_EL2": (3, 4, 12, 11, 1),
    "ICH_MISR_EL2": (3, 4, 12, 11, 2),
    "ICH_EISR_EL2": (3, 4, 12, 11, 3),
    "ICH_ELRSR_EL2": (3, 4, 12, 11, 5),
    "ICH_VMCR_EL2": (3, 4, 12, 11, 7),
    # --- GIC CPU interface ---
    "ICC_PMR_EL1": (3, 0, 4, 6, 0),
    "ICC_DIR_EL1": (3, 0, 12, 11, 1),
    "ICC_SGI1R_EL1": (3, 0, 12, 11, 5),
    "ICC_IAR1_EL1": (3, 0, 12, 12, 0),
    "ICC_EOIR1_EL1": (3, 0, 12, 12, 1),
    "ICC_BPR1_EL1": (3, 0, 12, 12, 3),
    "ICC_IGRPEN1_EL1": (3, 0, 12, 12, 7),
    # --- special ---
    "CURRENTEL": (3, 0, 4, 2, 2),
}

# Active-priority and list registers, generated per the ARM ARM patterns.
for _n in range(4):
    SYSREG_ENCODINGS["ICH_AP0R%d_EL2" % _n] = (3, 4, 12, 8, _n)
    SYSREG_ENCODINGS["ICH_AP1R%d_EL2" % _n] = (3, 4, 12, 9, _n)
for _n in range(16):
    SYSREG_ENCODINGS["ICH_LR%d_EL2" % _n] = (3, 4, 12, 12 + (_n >> 3),
                                             _n & 7)

#: Aliased encodings use a different op1 on the *EL1 register's* CRn/CRm:
#: op1 = 5 for *_EL12/_EL02 (FEAT_VHE).
ALIAS_OP1 = {Encoding.EL12: 5, Encoding.EL02: 5}


def encoding_of(name, enc=Encoding.NORMAL):
    """The (op0, op1, CRn, CRm, op2) tuple for an access to *name*
    through encoding space *enc*."""
    op0, op1, crn, crm, op2 = SYSREG_ENCODINGS[name]
    if enc in (Encoding.EL12, Encoding.EL02):
        return (op0, ALIAS_OP1[enc], crn, crm, op2)
    return (op0, op1, crn, crm, op2)


def _build_reverse():
    """Derive the inverse encoding tables from ``SYSREG_ENCODINGS``.

    Pure function of the constant forward table, built eagerly at
    import time — no lazily-rebound module state, so two machines in
    one process can never observe a half-built map.
    """
    reverse = {}
    reverse_alias = {}
    for name, fields in SYSREG_ENCODINGS.items():
        reverse[fields] = name
        op0, op1, crn, crm, op2 = fields
        if name.endswith("_EL1") or name.endswith("_EL0"):
            if op1 in (0, 3):  # EL1/EL0 registers with VHE aliases
                alias = Encoding.EL02 if name.endswith("_EL0") \
                    else Encoding.EL12
                reverse_alias[(op0, 5, crn, crm, op2)] = (name, alias)
    return reverse, reverse_alias


_REVERSE, _REVERSE_ALIAS = _build_reverse()


def lookup_encoding(fields):
    """Inverse mapping: ``(op0,op1,CRn,CRm,op2)`` -> ``(name, Encoding)``.

    Raises KeyError for encodings outside the modelled set.
    """
    if fields in _REVERSE:
        return _REVERSE[fields], Encoding.NORMAL
    if fields in _REVERSE_ALIAS:
        return _REVERSE_ALIAS[fields]
    raise KeyError("unknown system register encoding %r" % (fields,))


def verify_registry_coverage():
    """Every register in the registry must have an encoding (called from
    the tests so the two tables cannot drift)."""
    missing = [reg.name for reg in iter_registers()
               if reg.name not in SYSREG_ENCODINGS]
    return missing
