"""Precompiled system-register dispatch tables (the trap-dispatch fast
path).

The redundancy observatory (:mod:`repro.profile.redundancy`) measured
that for a fixed (config, register, context, encoding, op) key the
classification ladder in :mod:`repro.arch.cpu` re-derives the same
verdict on essentially every access — projecting >99% table-hit rates
on the NEVE configurations.  This module is the consumer of that
projection: it compiles the ladder's decisions into a flat
``(context, neve, register, encoding, op) -> action`` table that the
hot loop answers with one dictionary lookup.

Resolution is **partial evaluation of the real ladder**, not a
re-implementation: a probe CPU subclass intercepts the four access
mechanisms (hardware register file, deferred-access page, sysreg trap,
GIC CPU interface) and runs the genuine ``_access_at_*`` ladder code
with the context flags pinned.  The captured action therefore equals
the slow path's decision *by construction*; the ``san-fastpath-parity``
check additionally proves the executed effects are byte-identical on
full scenarios.

Tables are owned per machine — no module-level mutable state, so the
statecheck shardability gate stays clean — and filled lazily: each
distinct key is resolved once, on first use, and served from the flat
table afterwards.  Lazy filling matters for the test suite, where most
machines touch a handful of registers; a machine that touches every
register simply converges on the full table.

Action vocabulary (defined in :mod:`repro.arch.cpu`, so the dependency
points one way):

========================  ================================================
``OP_HW``                 hardware register-file access (bank, name, kind)
``OP_DEFER``              deferred-access-page load/store (target SysReg)
``OP_TRAP``               trap to the host hypervisor
``OP_GIC``                GIC CPU interface (SGI-trap decided at runtime)
``OP_UNDEF``              UndefinedInstruction *after* the ledger charge
``OP_UNDEF_NOCHARGE``     UndefinedInstruction *before* the charge
========================  ================================================
"""

from repro.arch.cpu import (
    CTX_EL2,
    CTX_EL2_E2H,
    CTX_GUEST,
    CTX_VEL2,
    CTX_VEL2_VHE,
    OP_DEFER,
    OP_GIC,
    OP_HW,
    OP_TRAP,
    OP_UNDEF,
    OP_UNDEF_NOCHARGE,
    Cpu,
)
from repro.arch.exceptions import ExceptionLevel, UndefinedInstruction
from repro.arch.features import ArchConfig

#: Every resolution context a dispatch table distinguishes.
CONTEXTS = (CTX_EL2, CTX_EL2_E2H, CTX_VEL2, CTX_VEL2_VHE, CTX_GUEST)

#: Bank selector carried in ``OP_HW`` actions.
BANK_EL1 = False
BANK_EL2 = True


class _Captured(Exception):
    """Carries a captured action out of the probe ladder."""

    def __init__(self, action):
        super().__init__(action)
        self.action = action


class _ProbeCpu(Cpu):
    """A CPU whose access mechanisms capture instead of execute.

    The ladder methods themselves are pure decision code — they charge
    nothing and mutate nothing; every side effect lives behind the four
    mechanisms intercepted here.  Running the ladder on a probe with
    pinned context flags therefore yields the decision and only the
    decision.  ``neve_enabled`` is overridden (rather than programming
    the probe's VNCR_EL2 through ``msr``) so probing never charges the
    probe's own ledger either.
    """

    def __init__(self, arch, neve):
        super().__init__(arch=arch)
        self._probe_neve = bool(neve and arch.has_neve)

    @property
    def neve_enabled(self):
        return self._probe_neve

    # -- intercepted mechanisms -----------------------------------------

    def _hw_access(self, regfile, name, is_write, value, kind):
        bank = BANK_EL2 if regfile is self.el2_regs else BANK_EL1
        raise _Captured((OP_HW, bank, name, kind))

    def _deferred_access(self, reg, is_write, value):
        raise _Captured((OP_DEFER, reg))

    def _sysreg_trap(self, reg, is_write, value, enc):
        raise _Captured((OP_TRAP,))

    def _gic_cpu_access(self, reg, is_write, value):
        raise _Captured((OP_GIC,))


def _configure(probe, ctx):
    """Pin *probe*'s context flags to resolution context *ctx*."""
    if ctx == CTX_EL2 or ctx == CTX_EL2_E2H:
        probe.enter_host_context()
        probe.host_e2h = ctx == CTX_EL2_E2H
    elif ctx == CTX_VEL2 or ctx == CTX_VEL2_VHE:
        probe.enter_guest_context(ExceptionLevel.EL1, nv=True,
                                  virtual_e2h=(ctx == CTX_VEL2_VHE))
    elif ctx == CTX_GUEST:
        probe.enter_guest_context(ExceptionLevel.EL1)
    else:
        raise ValueError("unknown dispatch context: %r" % (ctx,))
    return probe


class DispatchTable:
    """The per-machine precompiled dispatch table.

    One instance is built per :class:`~repro.hypervisor.kvm.Machine`
    (at machine build time) and shared by all of its CPUs; each CPU
    layers a NEVE-blind verdict cache on top (see
    ``Cpu._fast_sysreg_access``).  ``resolutions`` counts distinct keys
    resolved so far — tests and telemetry use it to prove the fast path
    actually ran.
    """

    def __init__(self, arch=None):
        self.arch = arch if arch is not None else ArchConfig()
        self._actions = {}
        self._probes = {}
        self.resolutions = 0

    def resolve(self, ctx, neve, reg, enc, is_write):
        """The action for one (context, neve, register, encoding, op)
        key; resolved through the probe ladder on first use."""
        key = (ctx, neve, reg.name, enc, is_write)
        action = self._actions.get(key)
        if action is None:
            action = self._derive(ctx, neve, reg, enc, is_write)
            self._actions[key] = action
            self.resolutions += 1
        return action

    # -- derivation ------------------------------------------------------

    def _probe_for(self, ctx, neve):
        probe = self._probes.get((ctx, neve))
        if probe is None:
            probe = _configure(_ProbeCpu(self.arch, neve), ctx)
            self._probes[(ctx, neve)] = probe
        return probe

    def _derive(self, ctx, neve, reg, enc, is_write):
        # The two pre-charge UNDEF conditions come first, exactly as in
        # the slow path: they raise before the access is charged.
        if reg.vhe_only and not self.arch.has_vhe:
            return (OP_UNDEF_NOCHARGE,)
        if is_write and reg.read_only:
            return (OP_UNDEF_NOCHARGE,)
        probe = self._probe_for(ctx, neve)
        try:
            if ctx == CTX_EL2 or ctx == CTX_EL2_E2H:
                probe._access_at_el2(reg, is_write, None, enc)
            elif ctx == CTX_VEL2 or ctx == CTX_VEL2_VHE:
                probe._access_at_virtual_el2(reg, is_write, None, enc)
            else:
                probe._access_at_guest_el1(reg, is_write, None, enc)
        except _Captured as captured:
            return captured.action
        except UndefinedInstruction:
            return (OP_UNDEF,)
        raise RuntimeError(
            "classification ladder resolved %s (ctx=%r neve=%r enc=%r "
            "write=%r) without reaching a mechanism" %
            (reg.name, ctx, neve, enc, is_write))
