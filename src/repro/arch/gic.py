"""The Generic Interrupt Controller (GIC) model.

Implements the two halves the paper's evaluation exercises:

* the **virtual CPU interface** (``ICC_*``/``ICV_*`` registers) that a VM
  uses to acknowledge and complete interrupts *without trapping* — this is
  what makes the Virtual EOI microbenchmark cost ~71 cycles at every
  nesting level (Tables 1 and 6);
* the **hypervisor control interface** (``ICH_*_EL2``, Table 5) — list
  registers and status registers that a hypervisor programs to inject
  virtual interrupts, and that NEVE turns into cached copies.

List-register values are stored in the owning CPU's EL2 register bank as
64-bit encoded words, so hypervisor flows access them through the ordinary
system-register path (and therefore trap, defer, or go direct exactly per
the architecture rules).
"""

import enum
from dataclasses import dataclass

SPURIOUS_INTID = 1023

#: Software Generated Interrupts (IPIs) occupy INTIDs 0-15.
SGI_RANGE = range(0, 16)
#: Private Peripheral Interrupts (timers) occupy 16-31.
PPI_RANGE = range(16, 32)


class LrState(enum.IntEnum):
    INVALID = 0
    PENDING = 1
    ACTIVE = 2
    PENDING_ACTIVE = 3


@dataclass(frozen=True)
class ListRegister:
    """Decoded ICH_LR<n>_EL2 contents."""

    vintid: int = 0
    state: LrState = LrState.INVALID
    priority: int = 0
    group: int = 1
    hw: bool = False
    pintid: int = 0

    def encode(self):
        if self.state is LrState.INVALID and not self.vintid:
            return 0  # an empty slot encodes as all-zero
        return (
            (int(self.state) << 62)
            | (int(self.hw) << 61)
            | ((self.group & 1) << 60)
            | ((self.priority & 0xFF) << 48)
            | ((self.pintid & 0x3FF) << 32)
            | (self.vintid & 0xFFFFFFFF)
        )

    @classmethod
    def decode(cls, value):
        return cls(
            vintid=value & 0xFFFFFFFF,
            state=LrState((value >> 62) & 3),
            priority=(value >> 48) & 0xFF,
            group=(value >> 60) & 1,
            hw=bool((value >> 61) & 1),
            pintid=(value >> 32) & 0x3FF,
        )


def lr_name(index):
    return "ICH_LR%d_EL2" % index


# ---------------------------------------------------------------------------
# GICv2 memory-mapped hypervisor control interface (GICH)
#
# "The hypervisor control interface is memory mapped with GICv2 and
# therefore trivially traps to EL2 when not mapped in the Stage-2 page
# tables, but GICv3 uses system registers and must use paravirtualization"
# (Section 4).  Offsets follow the GICv2 architecture specification; each
# maps onto the equivalent ICH_* register of the GICv3 model, because
# "the programming interfaces for both GIC versions are almost identical"
# (Section 7).
# ---------------------------------------------------------------------------

GICH_FRAME_SIZE = 0x200

_GICH_FIXED_OFFSETS = {
    0x000: "ICH_HCR_EL2",  # GICH_HCR
    0x004: "ICH_VTR_EL2",  # GICH_VTR
    0x008: "ICH_VMCR_EL2",  # GICH_VMCR
    0x010: "ICH_MISR_EL2",  # GICH_MISR
    0x020: "ICH_EISR_EL2",  # GICH_EISR0
    0x030: "ICH_ELRSR_EL2",  # GICH_ELRSR0
    0x0F0: "ICH_AP0R0_EL2",  # GICH_APR
}


def gich_offset_to_reg(offset):
    """Map a GICH frame offset to the equivalent ICH_* register name."""
    if offset in _GICH_FIXED_OFFSETS:
        return _GICH_FIXED_OFFSETS[offset]
    if 0x100 <= offset < 0x100 + 16 * 4 and offset % 4 == 0:
        return lr_name((offset - 0x100) // 4)
    raise KeyError("no GICH register at offset %#x" % offset)


def gich_reg_to_offset(name):
    for offset, reg in _GICH_FIXED_OFFSETS.items():
        if reg == name:
            return offset
    if name.startswith("ICH_LR"):
        index = int(name[len("ICH_LR"):-len("_EL2")])
        return 0x100 + 4 * index
    raise KeyError("%s has no GICH frame offset" % name)


class Gic:
    """One GIC instance shared by all CPUs of a machine."""

    def __init__(self, version=3, num_lrs=4):
        if num_lrs < 1 or num_lrs > 16:
            raise ValueError("GIC implementations have 1..16 list registers")
        self.version = version
        self.num_lrs = num_lrs
        self._cpus = {}
        self._icc_state = {}  # cpu_id -> {reg: value}
        self.pending_physical = {}  # cpu_id -> [intid, ...]
        self.maintenance_requests = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_cpu(self, cpu):
        self._cpus[cpu.cpu_id] = cpu
        cpu.gic = self
        self._icc_state[cpu.cpu_id] = {}
        self.pending_physical.setdefault(cpu.cpu_id, [])
        # Advertise the implementation: ICH_VTR_EL2.ListRegs = num_lrs - 1.
        cpu.el2_regs.write("ICH_VTR_EL2", self.num_lrs - 1)  # lint: allow(sim-sysreg-bypass)
        self.sync_status(cpu)

    def cpu(self, cpu_id):
        return self._cpus[cpu_id]

    # ------------------------------------------------------------------
    # List registers (hypervisor side)
    # ------------------------------------------------------------------

    def read_lr(self, cpu, index):
        return ListRegister.decode(cpu.el2_regs.read(lr_name(index)))

    def write_lr(self, cpu, index, lr):
        cpu.el2_regs.write(lr_name(index), lr.encode())  # lint: allow(sim-sysreg-bypass)
        self.sync_status(cpu)

    def find_free_lr(self, cpu):
        for index in range(self.num_lrs):
            if self.read_lr(cpu, index).state is LrState.INVALID:
                return index
        return None

    def inject_virtual_interrupt(self, cpu, vintid, priority=0xA0):
        """Place a pending virtual interrupt in a free list register.

        Returns the LR index used, or None if all LRs are in use (a real
        hypervisor then uses the maintenance interrupt; callers model
        that).
        """
        index = self.find_free_lr(cpu)
        if index is None:
            return None
        self.write_lr(cpu, index, ListRegister(
            vintid=vintid, state=LrState.PENDING, priority=priority))
        return index

    def used_lr_count(self, cpu):
        return sum(1 for i in range(self.num_lrs)
                   if self.read_lr(cpu, i).state is not LrState.INVALID)

    # ------------------------------------------------------------------
    # Status registers (computed by hardware)
    # ------------------------------------------------------------------

    def sync_status(self, cpu):
        """Recompute ICH_ELRSR/ICH_EISR/ICH_MISR from the list registers."""
        elrsr = 0
        eisr = 0
        for index in range(self.num_lrs):
            lr = self.read_lr(cpu, index)
            if lr.state is LrState.INVALID:
                elrsr |= 1 << index
                if lr.vintid and not lr.hw:
                    # EOI'd software interrupt with EOI maintenance set;
                    # simplified: flag only when requested via ICH_HCR.
                    eisr |= 1 << index
        cpu.el2_regs.write("ICH_ELRSR_EL2", elrsr)  # lint: allow(sim-sysreg-bypass)
        cpu.el2_regs.write("ICH_EISR_EL2", eisr)  # lint: allow(sim-sysreg-bypass)
        underflow = int(self.used_lr_count(cpu) == 0)
        hcr = cpu.el2_regs.read("ICH_HCR_EL2")
        misr = underflow if (hcr & 0x2) else 0  # UIE -> MISR.U
        cpu.el2_regs.write("ICH_MISR_EL2", misr)  # lint: allow(sim-sysreg-bypass)

    # ------------------------------------------------------------------
    # Virtual CPU interface (VM side; never traps)
    # ------------------------------------------------------------------

    def cpu_interface_access(self, cpu, name, is_write, value):
        """Handle an ICC_* access from a running guest.

        Called from the CPU's system-register path; charges the extra
        interface work on top of the base MSR/MRS cost already charged.
        """
        cpu.ledger.charge(cpu.costs.gic_icc_virt, "gic")
        if name == "ICC_IAR1_EL1":
            return self._acknowledge(cpu)
        if name == "ICC_EOIR1_EL1":
            self._end_of_interrupt(cpu, value)
            return None
        if name == "ICC_DIR_EL1":
            self._deactivate(cpu, value)
            return None
        state = self._icc_state[cpu.cpu_id]
        if is_write:
            state[name] = value
            return None
        return state.get(name, 0)

    def _best_pending_lr(self, cpu):
        """Highest priority wins; ties break to the lowest INTID (the
        GICv3 prioritization rule)."""
        best_index = None
        best_key = (0x100, 1 << 32)
        for index in range(self.num_lrs):
            lr = self.read_lr(cpu, index)
            if lr.state is LrState.PENDING:
                key = (lr.priority, lr.vintid)
                if key < best_key:
                    best_key = key
                    best_index = index
        return best_index

    def _acknowledge(self, cpu):
        index = self._best_pending_lr(cpu)
        if index is None:
            return SPURIOUS_INTID
        lr = self.read_lr(cpu, index)
        self.write_lr(cpu, index, ListRegister(
            vintid=lr.vintid, state=LrState.ACTIVE, priority=lr.priority,
            group=lr.group, hw=lr.hw, pintid=lr.pintid))
        return lr.vintid

    def _end_of_interrupt(self, cpu, vintid):
        """Priority drop + deactivate (EOImode == 0): completes the
        interrupt entirely in hardware — the Virtual EOI path."""
        for index in range(self.num_lrs):
            lr = self.read_lr(cpu, index)
            if lr.vintid == vintid and lr.state in (LrState.ACTIVE,
                                                    LrState.PENDING_ACTIVE):
                next_state = (LrState.PENDING
                              if lr.state is LrState.PENDING_ACTIVE
                              else LrState.INVALID)
                self.write_lr(cpu, index, ListRegister(
                    vintid=lr.vintid if next_state else 0,
                    state=next_state, priority=lr.priority, group=lr.group,
                    hw=lr.hw, pintid=lr.pintid))
                return
        # EOI with no matching active interrupt is architecturally ignored.

    def _deactivate(self, cpu, vintid):
        self._end_of_interrupt(cpu, vintid)

    # ------------------------------------------------------------------
    # Physical interrupt plumbing (distributor)
    # ------------------------------------------------------------------

    def raise_physical(self, cpu_id, intid):
        """Mark a physical interrupt pending for *cpu_id*.

        The machine/hypervisor layer decides when to deliver it (guests
        exit with an IRQ; the host handles it directly).
        """
        self.pending_physical.setdefault(cpu_id, []).append(intid)

    def take_physical(self, cpu_id):
        pending = self.pending_physical.get(cpu_id, [])
        if pending:
            return pending.pop(0)
        return None

    def send_sgi(self, target_cpu_id, intid):
        """Generate a physical SGI (IPI) to another CPU."""
        if intid not in SGI_RANGE:
            raise ValueError("SGIs use INTIDs 0-15, got %d" % intid)
        self.raise_physical(target_cpu_id, intid)
