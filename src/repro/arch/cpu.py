"""The simulated ARM CPU: register access resolution and trap semantics.

This module is the heart of the reproduction.  The paper's entire
evaluation reduces to one question per register access: *given who is
running (EL2 host hypervisor, virtual-EL2 guest hypervisor, plain EL1
guest) and which architecture revision is modelled, does this access go
through, get rewritten, or trap to the host hypervisor?*

The resolution rules implemented here follow Sections 2, 4 and 6:

========================  =========================================================
Running context           Behaviour
========================  =========================================================
EL2 (host hypervisor)     All accesses direct.  With ``HCR_EL2.E2H`` (VHE host),
                          EL1-encoded accesses are redirected to EL2 registers and
                          ``*_EL12``/``*_EL02`` encodings reach the real EL1/EL0
                          registers.
virtual EL2, pre-v8.3     EL2-encoded accesses are UNDEFINED at EL1: exception to
                          EL1, "likely leading to a software crash" (Section 2).
virtual EL2, ARMv8.3      EL2-encoded accesses trap to EL2.  EL1-encoded accesses
                          trap for a non-VHE guest hypervisor (they would clobber
                          its own EL1 state) but go straight to the hardware EL1
                          registers for a VHE guest hypervisor, because the host
                          keeps those loaded with the guest hypervisor's state.
                          ``*_EL12``/``*_EL02`` encodings trap.  ``eret`` traps.
                          ``CurrentEL`` reads are disguised to report EL2.
virtual EL2, NEVE         Per the register classification (Tables 3-5): VM
                          registers become loads/stores on the deferred access
                          page, redirect-class hypervisor control registers become
                          EL1 accesses, cached-copy registers read from the page
                          and trap only on writes, EL2 timers and ``*_EL02``
                          encodings still trap, ``eret`` still traps.
plain EL1 (a guest OS)    EL1/EL0 accesses direct; EL2 accesses undefined;
                          ``hvc``/SGI/MMIO trap to EL2 as configured.
========================  =========================================================
"""

import enum
from contextlib import contextmanager

from repro.arch.exceptions import (
    ExceptionClass,
    ExceptionLevel,
    Syndrome,
    TrapToEl2,
    UndefinedInstruction,
)
from repro.arch.features import ArchConfig
from repro.arch.registers import (
    NeveBehavior,
    RegClass,
    RegisterFile,
    dispatch_row,
    e2h_counterpart,
    lookup_register,
)
from repro.metrics.counters import ExitReason, TrapCounter
from repro.metrics.cycles import ARM_COSTS, CycleLedger


class Encoding(enum.Enum):
    """Instruction encoding space of a system-register access."""

    NORMAL = "normal"  # the register's own encoding (X_EL0/X_EL1/X_EL2)
    EL12 = "el12"  # VHE alias reaching the real EL1 register from EL2
    EL02 = "el02"  # VHE alias reaching the real EL0 register from EL2


class AccessKind(enum.Enum):
    """How an access was ultimately satisfied (for tests and analysis)."""

    DIRECT_EL1 = "direct_el1"
    DIRECT_EL2 = "direct_el2"
    REDIRECTED_EL1 = "redirected_el1"  # NEVE EL2->EL1 register redirection
    DEFERRED_MEMORY = "deferred"  # NEVE deferred access page
    TRAPPED = "trapped"
    UNDEFINED = "undefined"


# --------------------------------------------------------------------------
# Trap-dispatch fast path vocabulary.
#
# The resolution context and action opcodes are shared between the fast
# path below and the precompiled table builder
# (:mod:`repro.arch.dispatch`).  They live here — not in the dispatch
# module — so the dependency points one way only (dispatch imports cpu,
# never the reverse).
# --------------------------------------------------------------------------

#: Resolution contexts: everything the classification ladder branches on
#: besides the register/encoding/op, collapsed to one small code.  The
#: virtual-EL2 codes are deliberately **NEVE-blind** — whether VNCR_EL2
#: is enabled is carried separately (it changes at runtime, and the
#: per-CPU verdict cache is invalidated when it does).
CTX_EL2 = 0  # host hypervisor at EL2, E2H clear
CTX_EL2_E2H = 1  # VHE host hypervisor at EL2, E2H set
CTX_VEL2 = 2  # guest hypervisor at virtual EL2, non-VHE
CTX_VEL2_VHE = 3  # VHE guest hypervisor at virtual EL2
CTX_GUEST = 4  # an ordinary guest at EL0/EL1

#: Action opcodes a dispatch-table row resolves to.  ``OP_UNDEF`` and
#: ``OP_UNDEF_NOCHARGE`` are distinct on purpose: the ``vhe_only`` /
#: ``read_only`` UNDEFs raise *before* the access is charged, ladder
#: UNDEFs raise *after* — collapsing them would shift the ledger.
OP_HW = 0  # (OP_HW, bank_is_el2, target_name, AccessKind)
OP_DEFER = 1  # (OP_DEFER, target SysReg): deferred-access-page traffic
OP_TRAP = 2  # (OP_TRAP,): trap to the host hypervisor
OP_GIC = 3  # (OP_GIC,): GIC CPU interface (SGI-trap decided inside)
OP_UNDEF = 4  # (OP_UNDEF,): UndefinedInstruction after the charge
OP_UNDEF_NOCHARGE = 5  # (OP_UNDEF_NOCHARGE,): UNDEF before the charge


class Cpu:
    """One simulated CPU (a physical core).

    The CPU owns the *hardware* register state (one EL1/EL0 bank, one EL2
    bank), the cycle ledger and the trap counter.  Hypervisors install
    themselves as ``trap_handler`` and manipulate the guest-context flags
    via :meth:`enter_guest_context` when switching worlds.
    """

    def __init__(self, arch=None, costs=None, ledger=None, traps=None,
                 memory=None, cpu_id=0, dispatch=None):
        self.arch = arch if arch is not None else ArchConfig()
        self.costs = costs if costs is not None else ARM_COSTS
        self.ledger = ledger if ledger is not None else CycleLedger()
        self.traps = traps if traps is not None else TrapCounter()
        self.memory = memory
        self.cpu_id = cpu_id

        self.el1_regs = RegisterFile()  # hardware EL0/EL1 bank
        self.el2_regs = RegisterFile()  # hardware EL2 bank

        self.current_el = ExceptionLevel.EL2
        self.host_e2h = False  # VHE host hypervisor running with E2H=1

        # Guest-context flags, configured by the host hypervisor before
        # entering a guest (Section 4 / 6.1 workflow).
        self.nv_enabled = False  # vcpu is in *virtual* EL2
        self.virtual_e2h = False  # the guest hypervisor is a VHE hypervisor
        self.trap_wfi = True
        self.fp_trap = True  # CPTR_EL2 traps FP/SIMD (lazy switching)

        self.trap_handler = None  # host hypervisor (L0)
        self.gic = None  # GIC attached by the machine model
        self._in_host_handler = False

        # Optional fault injector (repro.faults.points.FaultInjector).
        # When attached, register accesses and deferred-page traffic are
        # filtered through it so seeded campaigns can flip bits, tear
        # writes and raise spurious SErrors at named points.
        self.fault_hook = None

        # Optional cross-CPU recovery-ordering guard
        # (repro.faults.recovery.RecoveryCoordinator).  When attached,
        # every deferred-page access is checked against the machine-wide
        # quarantine: a CPU must not observe another vCPU's
        # half-repaired VNCR page while its recovery is in flight.
        # Observe-only, same contract as the tracer.
        self.recovery_guard = None

        # Optional span tracer (repro.trace.spans.Tracer).  When
        # attached, every trap opens a span whose children are the traps
        # the host hypervisor's emulation causes in turn, so one nested
        # exit renders as a causal tree (the exit-multiplication factor
        # of Section 5 / Table 7).  The tracer only observes — it never
        # charges the ledger — so the disabled path is a single
        # attribute check.
        self.tracer = None

        # Optional telemetry facade (repro.metrics.instrument
        # .MachineMetrics).  Same contract as the tracer: observe-only,
        # never charges the ledger, disabled path is one attribute check
        # (enforced by san-metrics-ledger).
        self.metrics = None

        # Precompiled dispatch table (repro.arch.dispatch.DispatchTable),
        # shared by every CPU of a machine.  When armed, sysreg_access
        # delegates to _fast_sysreg_access: one verdict-cache lookup
        # replaces the classification ladder.  None (the default for
        # bare Cpu instances) keeps the reference ladder below.
        self.dispatch = dispatch
        # Per-CPU verdict cache over the table, keyed
        # (context, name, encoding, is_write) — the same shape as the
        # redundancy observatory's classification keys.  The context
        # codes are NEVE-blind, so the cache MUST be invalidated
        # whenever the hardware VNCR_EL2 enable state may have changed
        # (see invalidate_verdict_cache).
        self._verdicts = {}
        self._neve_verdict_state = None  # cached neve_enabled, or None

        # Optional dispatch-redundancy observatory binding
        # (repro.profile.redundancy.MachineRedundancy).  Counts how
        # often the classification ladder and the trap path re-derive
        # the same decision so the host profiler can project what a
        # precompiled dispatch table would save.  Observe-only, never
        # charges the ledger, disabled path is one attribute check
        # (enforced by san-profile-zero-cycles).
        self.redundancy = None

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------

    def enter_guest_context(self, el, nv=False, virtual_e2h=False):
        """Configure the CPU to run a guest (called by L0 on VM entry)."""
        if el not in (ExceptionLevel.EL0, ExceptionLevel.EL1):
            raise ValueError("guests run at EL0 or EL1, not %r" % (el,))
        self.current_el = el
        self.nv_enabled = nv
        self.virtual_e2h = virtual_e2h

    def enter_host_context(self):
        """Return the CPU to host-hypervisor (EL2) execution."""
        self.current_el = ExceptionLevel.EL2
        self.nv_enabled = False
        self.virtual_e2h = False

    @contextmanager
    def host_mode(self):
        """Temporarily run at EL2 (used while servicing a trap)."""
        saved = (self.current_el, self.nv_enabled, self.virtual_e2h,
                 self._in_host_handler)
        self.enter_host_context()
        self._in_host_handler = True
        try:
            yield self
        finally:
            (self.current_el, self.nv_enabled, self.virtual_e2h,
             self._in_host_handler) = saved

    @contextmanager
    def guest_call(self, nv, virtual_e2h):
        """Run guest code synchronously from within a trap handler.

        The host hypervisor uses this when it *forwards* an exception into
        a guest hypervisor: the guest flow runs at (virtual) EL1 and its
        accesses may trap recursively.  On exit the CPU returns to
        host-handler mode so the enclosing handler can finish.
        """
        saved = (self.current_el, self.nv_enabled, self.virtual_e2h,
                 self._in_host_handler)
        self.enter_guest_context(ExceptionLevel.EL1, nv=nv,
                                 virtual_e2h=virtual_e2h)
        self._in_host_handler = False
        try:
            yield self
        finally:
            (self.current_el, self.nv_enabled, self.virtual_e2h,
             self._in_host_handler) = saved

    @property
    def at_virtual_el2(self):
        return self.current_el == ExceptionLevel.EL1 and self.nv_enabled

    @property
    def neve_enabled(self):
        """NEVE is active: hardware supports it and VNCR_EL2.Enable is set."""
        return bool(self.arch.has_neve and (self.el2_regs.read("VNCR_EL2") & 1))

    @property
    def vncr_baddr(self):
        """Deferred-access-page base address from VNCR_EL2 (Table 2)."""
        return self.el2_regs.read("VNCR_EL2") & ~0xFFF

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def work(self, instructions, category="guest"):
        """Charge *instructions* plain-instruction cycles."""
        self.ledger.charge(instructions * self.costs.instr, category)

    def gpr_block(self, count, category="world_switch"):
        """Charge the cost of saving-or-restoring *count* GPRs."""
        self.ledger.charge(count * self.costs.gpr_save_restore, category)

    def barrier(self, category="world_switch"):
        self.ledger.charge(self.costs.dsb_isb, category)

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(self, addr, category="mem"):
        self.ledger.charge(self.costs.mem_load, category)
        if self.memory is None:
            return 0
        return self.memory.read_word(addr)

    def store(self, addr, value, category="mem"):
        self.ledger.charge(self.costs.mem_store, category)
        if self.memory is not None:
            self.memory.write_word(addr, value)

    def mmio_read(self, addr):
        """Guest access to unmapped/MMIO IPA: stage-2 abort to EL2."""
        syndrome = Syndrome(ec=ExceptionClass.DABT_LOWER, fault_ipa=addr,
                            is_write=False)
        return self._trap(syndrome, ExitReason.MEM_ABORT)

    def mmio_write(self, addr, value):
        syndrome = Syndrome(ec=ExceptionClass.DABT_LOWER, fault_ipa=addr,
                            is_write=True, value=value)
        return self._trap(syndrome, ExitReason.MEM_ABORT)

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------

    def hvc(self, imm=0):
        """Hypervisor call.  From any guest context this traps to EL2."""
        if self.current_el == ExceptionLevel.EL2:
            raise RuntimeError("hvc at EL2 is a self-call; not modelled")
        syndrome = Syndrome(ec=ExceptionClass.HVC, imm=imm)
        return self._trap(syndrome, ExitReason.HVC)

    def eret(self):
        """Exception return.

        At real EL2 this is the host hypervisor entering a guest (the
        caller handles the actual context switch); at virtual EL2 it traps
        to the host hypervisor (Section 4: "the eret instruction is
        paravirtualized to trap to EL2"), NEVE included (Section 6.1).
        """
        if self.current_el == ExceptionLevel.EL2:
            self.ledger.charge(self.costs.trap_return, "trap")
            return None
        if self.at_virtual_el2:
            if not self.arch.has_nv:
                raise UndefinedInstruction("ERET-to-EL1-from-vEL2", False)
            syndrome = Syndrome(ec=ExceptionClass.ERET)
            return self._trap(syndrome, ExitReason.ERET_TRAP)
        # eret inside a guest (kernel returning to userspace): local cost.
        self.ledger.charge(self.costs.trap_return, "guest")
        return None

    def wfi(self):
        if self.current_el == ExceptionLevel.EL2:
            self.ledger.charge(self.costs.instr, "host")
            return None
        if self.trap_wfi:
            syndrome = Syndrome(ec=ExceptionClass.WFI)
            return self._trap(syndrome, ExitReason.WFI)
        self.ledger.charge(self.costs.instr, "guest")
        return None

    def fp_op(self, instructions=1):
        """Execute FP/SIMD work.

        KVM switches FP state lazily: ``CPTR_EL2`` traps the first FP use
        after a world switch so the hypervisor can load the guest's FP
        context; afterwards FP runs at native speed until the next
        switch.
        """
        if self.current_el != ExceptionLevel.EL2 and self.fp_trap:
            syndrome = Syndrome(ec=ExceptionClass.FP_ACCESS)
            self._trap(syndrome, ExitReason.FP_TRAP)
        self.ledger.charge(instructions * self.costs.instr, "fp")
        return None

    def smc(self, function_id=0, args=()):
        """Secure monitor call — the PSCI conduit on the paper's testbed.

        Carries the PSCI function id and arguments in the syndrome
        detail for the hypervisor's PSCI emulation.
        """
        syndrome = Syndrome(ec=ExceptionClass.SMC, imm=0,
                            detail={"function": function_id,
                                    "args": tuple(args)})
        return self._trap(syndrome, ExitReason.SMC)

    def tlbi(self, scope="vmalls12e1", address=None):
        """TLB maintenance.

        At EL2 and inside ordinary guests this is a local operation; at
        virtual EL2 it must trap — under ARMv8.3 *and* NEVE — because the
        host hypervisor has to mirror the invalidation onto the shadow
        stage-2 tables it built for the nested VM (Section 4).  NEVE
        explicitly does not defer TLB maintenance: it has an immediate
        effect on translation.
        """
        if self.current_el == ExceptionLevel.EL2:
            self.ledger.charge(self.costs.tlb_maintenance, "tlbi")
            return None
        if self.at_virtual_el2:
            syndrome = Syndrome(ec=ExceptionClass.TLBI,
                                detail={"scope": scope,
                                        "address": address})
            return self._trap(syndrome, ExitReason.TLBI_TRAP)
        # A guest's own TLBI is handled by hardware (VMID-scoped).
        self.ledger.charge(self.costs.tlb_maintenance // 4, "guest")
        return None

    def at_translate(self, va):
        """AT S1E1R-style address translation, result into PAR_EL1.

        Traps from virtual EL2 so the host can run the walk against the
        virtual translation state.
        """
        if self.at_virtual_el2:
            syndrome = Syndrome(ec=ExceptionClass.AT,
                                detail={"va": va})
            return self._trap(syndrome, ExitReason.SYSREG_TRAP)
        self.ledger.charge(20 * self.costs.instr, "mmu")
        return None

    def read_currentel(self):
        """Read the CurrentEL special register.

        ARMv8.3 "disguises the deprivileged execution by telling the guest
        hypervisor that it runs in EL2" (Section 2); this never traps.
        """
        self.ledger.charge(self.costs.sysreg_read, "sysreg")
        if self.current_el == ExceptionLevel.EL2 or self.at_virtual_el2:
            return ExceptionLevel.EL2
        return self.current_el

    # ------------------------------------------------------------------
    # System register access
    # ------------------------------------------------------------------

    def mrs(self, name, enc=Encoding.NORMAL):
        """Read system register *name* using encoding space *enc*."""
        value, _kind = self.sysreg_access(name, is_write=False, enc=enc)
        return value

    def msr(self, name, value, enc=Encoding.NORMAL):
        """Write system register *name* using encoding space *enc*."""
        _value, _kind = self.sysreg_access(name, is_write=True, value=value,
                                           enc=enc)
        return None

    def sysreg_access(self, name, is_write, value=None, enc=Encoding.NORMAL):
        """Perform a system register access; returns ``(value, AccessKind)``.

        This is the single resolution point for the semantics table in the
        module docstring.  With a precompiled dispatch table armed, the
        resolution is served from the verdict cache instead of walking
        the classification ladder; the two paths are byte-identical in
        every observable effect (``san-fastpath-parity``).
        """
        if self.dispatch is not None:
            return self._fast_sysreg_access(name, is_write, value, enc)
        reg = lookup_register(name)
        if reg.vhe_only and not self.arch.has_vhe:
            raise UndefinedInstruction(name, is_write)
        if is_write and reg.read_only:
            raise UndefinedInstruction(name, is_write)

        cost = self.costs.sysreg_write if is_write else self.costs.sysreg_read
        self.ledger.charge(cost, "sysreg")

        hook = self.fault_hook
        if hook is not None and is_write:
            # A planned bit-flip corrupts the value in flight, before the
            # access resolves (so the corruption lands wherever the
            # access does — hardware register or deferred page).
            value = hook.filter_sysreg_write(self, reg, value)

        # The redundancy observatory needs the resolution context as it
        # was *before* the access: a trapping access world-switches
        # underneath us while the handler runs.
        redundancy = self.redundancy
        context = (redundancy.context_key(self)
                   if redundancy is not None else None)

        if self.current_el == ExceptionLevel.EL2:
            result = self._access_at_el2(reg, is_write, value, enc)
        elif self.at_virtual_el2:
            result = self._access_at_virtual_el2(reg, is_write, value, enc)
        else:
            result = self._access_at_guest_el1(reg, is_write, value, enc)

        if redundancy is not None:
            redundancy.note_classification(context, reg.name, enc,
                                           is_write, result[1])

        if hook is not None:
            if not is_write:
                read_value, kind = result
                result = (hook.filter_sysreg_read(self, reg, read_value),
                          kind)
            if hook.serror_pending(self):
                self.deliver_serror()
        return result

    # -- the precompiled fast path --------------------------------------

    def _fast_sysreg_access(self, name, is_write, value, enc):
        """Table-driven twin of the slow path above.

        Effect ordering is identical by construction: pre-charge UNDEF
        -> ledger charge -> fault-hook write filter -> redundancy
        context snapshot -> mechanism (which may raise a post-charge
        UNDEF) -> redundancy note -> fault-hook read filter / SError.
        Only the *decision* is precompiled; every mechanism runs the
        same code the ladder would have called.
        """
        if self.current_el == ExceptionLevel.EL2:
            ctx = CTX_EL2_E2H if self.host_e2h else CTX_EL2
        elif self.nv_enabled and self.current_el == ExceptionLevel.EL1:
            ctx = CTX_VEL2_VHE if self.virtual_e2h else CTX_VEL2
        else:
            ctx = CTX_GUEST
        key = (ctx, name, enc, is_write)
        entry = self._verdicts.get(key)
        if entry is None:
            entry = self._resolve_verdict(ctx, key, name, enc, is_write)
        reg, action = entry
        op = action[0]
        if op == OP_UNDEF_NOCHARGE:
            raise UndefinedInstruction(name, is_write)

        cost = self.costs.sysreg_write if is_write else self.costs.sysreg_read
        self.ledger.charge(cost, "sysreg")

        hook = self.fault_hook
        if hook is not None and is_write:
            value = hook.filter_sysreg_write(self, reg, value)

        redundancy = self.redundancy
        context = (redundancy.context_key(self)
                   if redundancy is not None else None)

        if op == OP_HW:
            _op, bank_is_el2, target, kind = action
            regfile = self.el2_regs if bank_is_el2 else self.el1_regs
            result = self._hw_access(regfile, target, is_write, value,
                                     kind)
            if is_write and bank_is_el2 and target == "VNCR_EL2":
                # The hardware NEVE enable state may just have flipped;
                # the NEVE-blind verdict cache is stale.
                self.invalidate_verdict_cache()
        elif op == OP_DEFER:
            result = self._deferred_access(action[1], is_write, value)
        elif op == OP_TRAP:
            result = self._sysreg_trap(reg, is_write, value, enc)
        elif op == OP_GIC:
            result = self._gic_cpu_access(reg, is_write, value)
        else:  # OP_UNDEF: a ladder-level UNDEF, after the charge.
            raise UndefinedInstruction(reg.name, is_write)

        if redundancy is not None:
            redundancy.note_classification(context, reg.name, enc,
                                           is_write, result[1])

        if hook is not None:
            if not is_write:
                read_value, kind = result
                result = (hook.filter_sysreg_read(self, reg, read_value),
                          kind)
            if hook.serror_pending(self):
                self.deliver_serror()
        return result

    def _resolve_verdict(self, ctx, key, name, enc, is_write):
        """Verdict-cache miss: consult the machine's dispatch table
        (which itself resolves each distinct key once, by partial
        evaluation of the ladder) and memoize the action per CPU."""
        row = dispatch_row(name)
        neve = False
        if ctx == CTX_VEL2 or ctx == CTX_VEL2_VHE:
            neve = self._neve_verdict_state
            if neve is None:
                neve = self.neve_enabled
                self._neve_verdict_state = neve
        action = self.dispatch.resolve(ctx, neve, row.reg, enc, is_write)
        entry = (row.reg, action)
        self._verdicts[key] = entry
        return entry

    def invalidate_verdict_cache(self):
        """Drop every cached dispatch verdict and the cached NEVE state.

        The verdict keys are deliberately NEVE-blind (the enable bit is
        runtime state, not context), so every transition that can change
        ``VNCR_EL2.Enable`` must invalidate: the host enabling/disabling
        the runner, page relocation, and the recovery layer's
        degrade/re-promote transitions.  Harmless (and cheap) on a CPU
        running the reference ladder.
        """
        self._verdicts.clear()
        self._neve_verdict_state = None

    # -- resolution per context -----------------------------------------

    def _access_at_el2(self, reg, is_write, value, enc):
        if enc is Encoding.EL12 or enc is Encoding.EL02:
            if not (self.arch.has_vhe and self.host_e2h):
                raise UndefinedInstruction(reg.name, is_write)
            return self._hw_access(self.el1_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL1)
        if reg.el == 2:
            return self._hw_access(self.el2_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL2)
        # EL1-encoded access at EL2.
        if self.host_e2h and reg.e2h_redirect is not None:
            return self._hw_access(self.el2_regs, reg.e2h_redirect,
                                   is_write, value, AccessKind.DIRECT_EL2)
        return self._hw_access(self.el1_regs, reg.name, is_write, value,
                               AccessKind.DIRECT_EL1)

    def _access_at_virtual_el2(self, reg, is_write, value, enc):
        if not self.arch.has_nv:
            # Pre-v8.3: hypervisor instructions at EL1 do not trap to EL2;
            # EL2 accesses and VHE aliases are undefined (Section 2).
            if reg.el == 2 or enc in (Encoding.EL12, Encoding.EL02):
                raise UndefinedInstruction(reg.name, is_write)
            return self._hw_access(self.el1_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL1)

        if enc is Encoding.EL02:
            # Always trap, NEVE or not (Section 6.1 / 7.1 discussion of the
            # VHE guest hypervisor's EL2 virtual timer).
            return self._sysreg_trap(reg, is_write, value, enc)

        if enc is Encoding.EL12:
            if self.neve_enabled and reg.neve is NeveBehavior.DEFER:
                return self._deferred_access(reg, is_write, value)
            if (self.neve_enabled and reg.neve is NeveBehavior.CACHED_COPY
                    and not is_write):
                # e.g. MDSCR_EL1: "reads ... can be redirected to a cached
                # copy so that only writes must trap" (Section 6.1).
                return self._deferred_access(reg, is_write, value)
            return self._sysreg_trap(reg, is_write, value, enc)

        if reg.el == 2:
            return self._virtual_el2_reg_access(reg, is_write, value, enc)

        # EL1/EL0-encoded access from virtual EL2.
        if reg.reg_class is RegClass.GIC_CPU:
            # The GIC virtual CPU interface serves the guest hypervisor's
            # own interrupt handling without traps (except SGIs).
            return self._gic_cpu_access(reg, is_write, value)
        if self.virtual_e2h:
            # VHE guest hypervisor: the E2H-redirected access targets an
            # EL2 register.  If NEVE keeps that register in the deferred
            # access page (DEFER or cached copy), the transformation to a
            # memory access applies to *this encoding too* — otherwise
            # the cached copy could go stale through the alias.  All
            # other accesses go straight to the hardware EL1 registers,
            # which the host keeps loaded with the guest hypervisor's
            # state (Section 5).
            if self.neve_enabled:
                counterpart_name = reg.e2h_redirect
                if counterpart_name is not None:
                    counterpart = lookup_register(counterpart_name)
                    redirected = (counterpart.reg_class
                                  is RegClass.HYP_REDIRECT_OR_TRAP)
                    if counterpart.vncr_offset is not None \
                            and not redirected:
                        # Under VHE the "redirect or trap" rows behave as
                        # redirects (Table 4), so their aliases stay on
                        # the hardware register; everything VNCR-backed
                        # defers through this encoding too.
                        return self._deferred_access(counterpart,
                                                     is_write, value)
            return self._hw_access(self.el1_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL1)
        if reg.neve is NeveBehavior.NONE:
            # e.g. CNTVCT_EL0: reads the hardware counter directly.
            return self._hw_access(self.el1_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL1)
        if reg.el == 0:
            # EL0 register state is not protected by the NV mechanisms:
            # accesses from virtual EL2 reach the hardware registers
            # directly (the guest hypervisor multiplexes EL0 state itself;
            # only the VHE *_EL02 aliases trap, handled above).
            return self._hw_access(self.el1_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL1)
        if self.neve_enabled:
            if reg.neve is NeveBehavior.DEFER:
                return self._deferred_access(reg, is_write, value)
            if reg.neve is NeveBehavior.CACHED_COPY:
                if is_write:
                    return self._sysreg_trap(reg, is_write, value, enc)
                return self._deferred_access(reg, is_write, value)
            if reg.neve is NeveBehavior.TRAP:
                return self._sysreg_trap(reg, is_write, value, enc)
        # ARMv8.3: non-VHE guest hypervisor EL1 accesses trap so the host
        # can emulate them on the *nested VM's* virtual EL1 state
        # (Section 4, second instruction category).
        return self._sysreg_trap(reg, is_write, value, enc)

    def _virtual_el2_reg_access(self, reg, is_write, value, enc):
        """EL2-encoded access from virtual EL2 (ARMv8.3+ semantics)."""
        if not self.neve_enabled:
            return self._sysreg_trap(reg, is_write, value, enc)

        behavior = reg.neve
        if (reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP
                and self.virtual_e2h):
            # TCR_EL2/TTBR0_EL2: VHE format matches EL1, so redirect
            # (Table 4, "Redirect or trap").
            behavior = NeveBehavior.REDIRECT

        if behavior is NeveBehavior.DEFER:
            return self._deferred_access(reg, is_write, value)
        if behavior is NeveBehavior.REDIRECT:
            target = reg.el1_counterpart
            if target is None:
                raise RuntimeError("%s marked REDIRECT without counterpart"
                                   % reg.name)
            return self._hw_access(self.el1_regs, target, is_write, value,
                                   AccessKind.REDIRECTED_EL1)
        if behavior is NeveBehavior.CACHED_COPY:
            if is_write:
                return self._sysreg_trap(reg, is_write, value, enc)
            return self._deferred_access(reg, is_write, value)
        # TRAP (EL2 timers) and NONE fall through to a trap.
        return self._sysreg_trap(reg, is_write, value, enc)

    def _access_at_guest_el1(self, reg, is_write, value, enc):
        if reg.el == 2 or enc in (Encoding.EL12, Encoding.EL02):
            raise UndefinedInstruction(reg.name, is_write)
        if reg.reg_class is RegClass.GIC_CPU:
            return self._gic_cpu_access(reg, is_write, value)
        return self._hw_access(self.el1_regs, reg.name, is_write, value,
                               AccessKind.DIRECT_EL1)

    # -- access mechanisms ------------------------------------------------

    def _hw_access(self, regfile, name, is_write, value, kind):
        if is_write:
            regfile.write(name, value)
            return value, kind
        return regfile.read(name), kind

    def _deferred_access(self, reg, is_write, value):
        """NEVE: rewrite the access into a load/store on the deferred
        access page (Section 6.1)."""
        if reg.vncr_offset is None:
            raise RuntimeError("%s has no deferred-access slot" % reg.name)
        addr = self.vncr_baddr + reg.vncr_offset
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("defer:%s" % reg.name, kind="vncr", cpu=self,
                           detail={"register": reg.name,
                                   "is_write": is_write,
                                   "offset": reg.vncr_offset})
        metrics = self.metrics
        if metrics is not None:
            metrics.count_deferred(reg.name, is_write)
        guard = self.recovery_guard
        if guard is not None:
            guard.on_deferred_access(self, addr)
        hook = self.fault_hook
        if hook is not None:
            hook.on_deferred_access(self, reg, is_write)
        if is_write:
            if hook is not None:
                # A torn write: the store is interrupted mid-way and only
                # part of the doubleword reaches the page.
                value = hook.filter_deferred_store(self, reg, addr, value)
            self.store(addr, value, category="neve_deferred")
            return value, AccessKind.DEFERRED_MEMORY
        return (self.load(addr, category="neve_deferred"),
                AccessKind.DEFERRED_MEMORY)

    def _gic_cpu_access(self, reg, is_write, value):
        """VM-side GIC CPU interface access (never traps except SGI)."""
        if reg.neve is NeveBehavior.TRAP:
            # ICC_SGI1R_EL1: SGIs trap so the hypervisor can route them.
            syndrome = Syndrome(ec=ExceptionClass.SYSREG, register=reg.name,
                                is_write=is_write, value=value)
            result = self._trap(syndrome, ExitReason.GIC_TRAP)
            return result, AccessKind.TRAPPED
        if self.gic is None:
            return self._hw_access(self.el1_regs, reg.name, is_write, value,
                                   AccessKind.DIRECT_EL1)
        result = self.gic.cpu_interface_access(self, reg.name, is_write,
                                               value)
        return result, AccessKind.DIRECT_EL1

    def _sysreg_trap(self, reg, is_write, value, enc):
        syndrome = Syndrome(ec=ExceptionClass.SYSREG, register=reg.name,
                            is_write=is_write, value=value, encoding=enc)
        result = self._trap(syndrome, ExitReason.SYSREG_TRAP)
        return result, AccessKind.TRAPPED

    # ------------------------------------------------------------------
    # Trap plumbing
    # ------------------------------------------------------------------

    def _trap(self, syndrome, reason):
        """Deliver a trap to the host hypervisor and resume."""
        if self._in_host_handler:
            raise RuntimeError(
                "recursive trap while handling a trap at EL2: %s"
                % syndrome.describe())
        self.traps.record(reason)
        redundancy = self.redundancy
        if redundancy is not None:
            redundancy.note_trap(self, reason)
        # One trap span per TrapCounter.record: traps the handler causes
        # while emulating this one nest through the call stack, so the
        # span tree's trap count is the exit-multiplication factor.
        tracer = self.tracer
        span = (tracer.begin_trap(self, syndrome, reason)
                if tracer is not None else None)
        # The histogram covers the whole round trip (entry + emulation +
        # return), labelled with the exception level the trap
        # interrupted — captured now, before the handler switches worlds.
        metrics = self.metrics
        trap_timer = (metrics.trap_span(self, reason)
                      if metrics is not None else None)
        if trap_timer is not None:
            trap_timer.__enter__()
        try:
            self.ledger.charge(self.costs.trap_entry, "trap")
            if self.trap_handler is None:
                raise TrapToEl2(syndrome)
            with self.host_mode():
                result = self.trap_handler.handle_trap(self, syndrome)
            # The handler may have switched worlds (entered a nested VM,
            # emulated a virtual exception-level transition...).  Resume
            # in whatever context the host hypervisor's bookkeeping says
            # is now running; handlers without the hook keep the trapped
            # context.
            resume = getattr(self.trap_handler, "resume_context", None)
            if resume is not None:
                ctx = resume(self)
                if ctx is None:
                    self.enter_host_context()
                else:
                    self.enter_guest_context(
                        ctx.get("el", ExceptionLevel.EL1),
                        nv=ctx.get("nv", False),
                        virtual_e2h=ctx.get("virtual_e2h", False))
            self.ledger.charge(self.costs.trap_return, "trap")
            return result
        finally:
            if trap_timer is not None:
                trap_timer.__exit__(None, None, None)
            if span is not None:
                tracer.end(span)

    def deliver_interrupt(self):
        """A physical interrupt arrives while a guest runs: exit to EL2."""
        syndrome = Syndrome(ec=ExceptionClass.IRQ)
        self.ledger.charge(self.costs.irq_delivery_wire, "irq")
        return self._trap(syndrome, ExitReason.IRQ)

    def deliver_serror(self):
        """An SError (asynchronous external abort) becomes pending while a
        guest runs.  HCR_EL2.AMO routes it to EL2, so it is taken to the
        host hypervisor like any other exit — with an unknown syndrome,
        which is what makes recovery policy (not decode) the hard part."""
        syndrome = Syndrome(ec=ExceptionClass.SERROR)
        self.ledger.charge(self.costs.irq_delivery_wire, "irq")
        return self._trap(syndrome, ExitReason.SERROR)


class CpuOps:
    """Hypervisor-eye view of the CPU, mirroring KVM/ARM's accessors.

    KVM/ARM is compiled either for non-VHE (EL2-encoded accesses to
    hypervisor state, EL1-encoded accesses to VM state) or for VHE
    (EL1-encoded accesses to hypervisor state — redirected by E2H — and
    ``*_EL12``/``*_EL02`` accesses to VM state).  The *same* hypervisor
    flow code runs in both modes through this adapter, exactly as the same
    KVM/ARM source builds both ways (Section 6.4).
    """

    def __init__(self, cpu, vhe):
        self.cpu = cpu
        self.vhe = vhe

    # -- hypervisor's own (EL2) state -------------------------------------

    def read_hyp(self, el2_name):
        """Read hypervisor state: ``read_sysreg_el2()`` in KVM."""
        name, enc = self._hyp_alias(el2_name)
        return self.cpu.mrs(name, enc)

    def write_hyp(self, el2_name, value):
        name, enc = self._hyp_alias(el2_name)
        return self.cpu.msr(name, value, enc)

    def _hyp_alias(self, el2_name):
        if self.vhe:
            reg = lookup_register(el2_name)
            counterpart = _e2h_reverse(el2_name)
            if counterpart is not None:
                return counterpart, Encoding.NORMAL
            # No EL1 alias exists (HCR_EL2, VTTBR_EL2, ICH_*...): even a
            # VHE hypervisor must use the EL2 encoding.
            assert reg.el == 2
        return el2_name, Encoding.NORMAL

    # -- the VM's EL1/EL0 state -------------------------------------------

    def read_vm(self, el1_name):
        """Read VM context state: ``read_sysreg_el1()`` in KVM."""
        enc = Encoding.EL12 if self.vhe else Encoding.NORMAL
        return self.cpu.mrs(el1_name, enc)

    def write_vm(self, el1_name, value):
        enc = Encoding.EL12 if self.vhe else Encoding.NORMAL
        return self.cpu.msr(el1_name, value, enc)

    def read_vm_el0(self, el0_name):
        """Access the VM's EL0 state (timers): EL02 encodings under VHE."""
        enc = Encoding.EL02 if self.vhe else Encoding.NORMAL
        return self.cpu.mrs(el0_name, enc)

    def write_vm_el0(self, el0_name, value):
        enc = Encoding.EL02 if self.vhe else Encoding.NORMAL
        return self.cpu.msr(el0_name, value, enc)


def _e2h_reverse(el2_name):
    """EL1 encoding that E2H redirects to *el2_name*, or None.

    Thin wrapper over the registry's ``e2h_redirect`` rows (the VHE
    redirect knowledge lives in :mod:`repro.arch.registers` so the spec
    checker validates one source of truth)."""
    return e2h_counterpart(el2_name)
