"""Architecture revisions and feature configuration.

The paper's story spans four architecture points (Figure 1 and Section 2):

* **ARMv8.0** — virtualization extensions (EL2) only.  KVM/ARM runs split
  across EL1/EL2 ("non-VHE").  This is the hardware the paper measured on.
* **ARMv8.1 (VHE)** — Virtualization Host Extensions: EL2 becomes
  functionally equivalent to EL1, EL1 register access instructions executed
  at EL2 are redirected to EL2 registers (``HCR_EL2.E2H``), and new
  ``*_EL12``/``*_EL02`` access instructions reach the real EL1/EL0 registers.
* **ARMv8.3 (NV)** — nested virtualization: hypervisor instructions executed
  at EL1 trap to EL2, ``CurrentEL`` reads are disguised to report EL2, and
  EL1 can use the EL2 page-table format.
* **ARMv8.4 (NEVE / NV2)** — the paper's proposal: ``VNCR_EL2`` plus
  transparent rewriting of system register accesses into memory accesses
  (deferred access page), EL2→EL1 register redirection, and cached copies
  with trap-on-write.
"""

import enum
from dataclasses import dataclass


class ArchVersion(enum.IntEnum):
    """ARM architecture revision, ordered so comparisons work."""

    V8_0 = 80
    V8_1 = 81
    V8_3 = 83
    V8_4 = 84


class GicVersion(enum.IntEnum):
    """Generic Interrupt Controller version.

    GICv2 exposes the hypervisor control interface as memory-mapped
    registers (traps via stage-2), GICv3 as ``ICH_*_EL2`` system registers
    (traps via the NV mechanism).  The paper's hardware had GICv2 but
    Tables 5 and the NEVE specification are expressed for GICv3; the
    programming interfaces are almost identical (Section 7).
    """

    V2 = 2
    V3 = 3


@dataclass(frozen=True)
class ArchConfig:
    """Features available on a simulated ARM CPU."""

    version: ArchVersion = ArchVersion.V8_4
    gic: GicVersion = GicVersion.V3

    @property
    def has_vhe(self):
        """FEAT_VHE: Virtualization Host Extensions (ARMv8.1)."""
        return self.version >= ArchVersion.V8_1

    @property
    def has_nv(self):
        """FEAT_NV: nested virtualization trap support (ARMv8.3)."""
        return self.version >= ArchVersion.V8_3

    @property
    def has_neve(self):
        """NEVE (FEAT_NV2-style deferral/redirection, ARMv8.4)."""
        return self.version >= ArchVersion.V8_4


#: The paper's physical testbed: ARMv8.0 with GICv2.
ARMV8_0 = ArchConfig(version=ArchVersion.V8_0, gic=GicVersion.V2)

#: ARMv8.1 with VHE.
ARMV8_1 = ArchConfig(version=ArchVersion.V8_1, gic=GicVersion.V3)

#: ARMv8.3: nested virtualization, trap-and-emulate only.
ARMV8_3 = ArchConfig(version=ArchVersion.V8_3, gic=GicVersion.V3)

#: ARMv8.4: ARMv8.3 plus NEVE.
ARMV8_4 = ArchConfig(version=ArchVersion.V8_4, gic=GicVersion.V3)
