"""ARM architecture model.

This package models the slice of the ARMv8 architecture that the paper's
evaluation depends on: exception levels and exception entry, the system
register file with per-register trap semantics across architecture
revisions (v8.0 baseline, v8.1 VHE, v8.3 nested virtualization, v8.4 NEVE),
the GIC hypervisor control interface, and the generic timers.
"""

from repro.arch.cpu import AccessKind, Cpu, CpuOps, Encoding
from repro.arch.exceptions import (
    ExceptionClass,
    ExceptionLevel,
    Syndrome,
    TrapToEl2,
    UndefinedInstruction,
)
from repro.arch.features import ArchConfig, ArchVersion, GicVersion
from repro.arch.registers import (
    NeveBehavior,
    RegClass,
    RegisterFile,
    SysReg,
    iter_registers,
    lookup_register,
)

__all__ = [
    "AccessKind",
    "ArchConfig",
    "ArchVersion",
    "Cpu",
    "CpuOps",
    "Encoding",
    "ExceptionClass",
    "ExceptionLevel",
    "GicVersion",
    "NeveBehavior",
    "RegClass",
    "RegisterFile",
    "Syndrome",
    "SysReg",
    "TrapToEl2",
    "UndefinedInstruction",
    "iter_registers",
    "lookup_register",
]
