"""Exception vectors and exception routing.

Models the ARMv8 exception routing rules the paper's design discussion
turns on (Section 2):

* physical IRQ/FIQ route to EL2 when ``HCR_EL2.IMO``/``FMO`` are set (how
  the hypervisor regains control while a VM runs);
* *virtual* interrupts can be delivered to EL1 through the GIC virtual
  interface — but **not to EL0**, which is the first reason running a
  deprivileged guest hypervisor in EL0 "has to be fully emulated in
  software";
* ``HCR_EL2.TGE`` routes all EL0 exceptions to EL2 and, as a side effect,
  disables the EL1&0 stage-1 translation — the second reason, forcing
  shadow page tables for an EL0 guest hypervisor.

The vector table layout (four groups of four entries at 0x80 strides from
``VBAR_ELx``) is modelled so exception-entry emulation picks real offsets.
"""

import enum
from dataclasses import dataclass

from repro.arch.exceptions import ExceptionLevel


class VectorKind(enum.Enum):
    SYNCHRONOUS = "sync"
    IRQ = "irq"
    FIQ = "fiq"
    SERROR = "serror"


class VectorGroup(enum.Enum):
    """Which quadrant of the vector table an exception uses."""

    CURRENT_SP0 = 0x000
    CURRENT_SPX = 0x200
    LOWER_A64 = 0x400
    LOWER_A32 = 0x600


_KIND_OFFSET = {
    VectorKind.SYNCHRONOUS: 0x000,
    VectorKind.IRQ: 0x080,
    VectorKind.FIQ: 0x100,
    VectorKind.SERROR: 0x180,
}


def vector_offset(group, kind):
    """Byte offset of one vector from VBAR_ELx."""
    return group.value + _KIND_OFFSET[kind]


def vector_address(vbar, from_el, to_el, kind, aarch32=False):
    """The PC an exception entry lands on."""
    if from_el == to_el:
        group = VectorGroup.CURRENT_SPX
    elif aarch32:
        group = VectorGroup.LOWER_A32
    else:
        group = VectorGroup.LOWER_A64
    return vbar + vector_offset(group, kind)


@dataclass(frozen=True)
class RoutingConfig:
    """The HCR_EL2 bits that steer exception routing."""

    imo: bool = True  # physical IRQ -> EL2
    fmo: bool = True  # physical FIQ -> EL2
    amo: bool = True  # SError -> EL2
    tge: bool = False  # trap general exceptions (EL0 -> EL2)


def route_physical_interrupt(kind, current_el, config):
    """Where a physical interrupt taken at *current_el* is delivered."""
    steer = {VectorKind.IRQ: config.imo, VectorKind.FIQ: config.fmo,
             VectorKind.SERROR: config.amo}.get(kind)
    if steer is None:
        raise ValueError("synchronous exceptions are not interrupts")
    if current_el is ExceptionLevel.EL2:
        return ExceptionLevel.EL2
    if steer:
        return ExceptionLevel.EL2
    return ExceptionLevel.EL1


def route_sync_exception(from_el, config):
    """Where a synchronous EL0/EL1 exception is delivered."""
    if from_el is ExceptionLevel.EL0 and config.tge:
        return ExceptionLevel.EL2
    if from_el is ExceptionLevel.EL2:
        return ExceptionLevel.EL2
    return ExceptionLevel.EL1


def virtual_interrupt_deliverable_to(el):
    """Can the GIC virtual CPU interface deliver a virtual interrupt to
    this exception level?

    "delivering interrupts to the guest hypervisor has to be fully
    emulated in software ... because the architecture does not support
    delivering virtual interrupts to EL0" (Section 2).
    """
    return el is ExceptionLevel.EL1


def stage1_translation_enabled(el, config):
    """TGE's "unfortunate side effect of disabling the Stage-1 virtual
    address translations" for EL0 (Section 2)."""
    if el is ExceptionLevel.EL0 and config.tge:
        return False
    return True
