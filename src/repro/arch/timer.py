"""ARM generic timers.

The evaluation's concern with timers is narrow but important: a VHE
hypervisor has an *extra* EL2 virtual timer (``CNTHV_*``), and when it runs
as a guest hypervisor it programs its EL1 virtual timer through the
VHE-specific ``*_EL02`` encodings "which always trap to the host
hypervisor, resulting in traps for a VHE guest hypervisor that do not
occur for a non-VHE guest hypervisor" (Section 7.1).  That asymmetry is
why non-VHE and VHE NEVE guests take the same 15 traps on Hypercall but
spend different cycle counts.

This module provides the counter/compare machinery plus the register
lists that the world-switch flows save and restore.
"""

from dataclasses import dataclass, field

#: EL1 virtual timer state the hypervisor context-switches per VM.
EL1_TIMER_SAVE_LIST = ("CNTV_CTL_EL0", "CNTV_CVAL_EL0")

#: PPI interrupt IDs of the timers (standard GIC assignment).
VTIMER_PPI = 27
HVTIMER_PPI = 28
PTIMER_PPI = 30

CTL_ENABLE = 1 << 0
CTL_IMASK = 1 << 1
CTL_ISTATUS = 1 << 2


@dataclass
class GenericTimer:
    """A single timer comparator against the shared system counter."""

    name: str
    ppi: int
    ctl: int = 0
    cval: int = 0

    def condition_met(self, count):
        return bool(self.ctl & CTL_ENABLE) and count >= self.cval

    def should_fire(self, count):
        return self.condition_met(count) and not (self.ctl & CTL_IMASK)


@dataclass
class TimerBank:
    """All comparators for one CPU: EL1 virtual/physical plus the EL2
    hypervisor timers (the EL2 *virtual* timer exists only with VHE)."""

    has_vhe: bool = True
    vtimer: GenericTimer = field(
        default_factory=lambda: GenericTimer("cntv", VTIMER_PPI))
    ptimer: GenericTimer = field(
        default_factory=lambda: GenericTimer("cntp", PTIMER_PPI))
    hptimer: GenericTimer = field(
        default_factory=lambda: GenericTimer("cnthp", PTIMER_PPI))
    hvtimer: GenericTimer = field(
        default_factory=lambda: GenericTimer("cnthv", HVTIMER_PPI))

    def firing(self, count):
        timers = [self.vtimer, self.ptimer, self.hptimer]
        if self.has_vhe:
            timers.append(self.hvtimer)
        return [t for t in timers if t.should_fire(count)]


class SystemCounter:
    """The shared, monotonic system counter (CNTPCT).

    In this simulation virtual time *is* the cycle ledger, so the counter
    reads the total cycles charged so far; ``CNTVOFF_EL2`` subtraction
    gives the virtual count a VM sees.
    """

    def __init__(self, ledger):
        self._ledger = ledger

    def physical_count(self):
        return self._ledger.total

    def virtual_count(self, cntvoff):
        return max(0, self._ledger.total - cntvoff)
