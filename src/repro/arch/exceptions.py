"""Exception levels, exception classes and syndrome encoding.

Models the ARMv8 exception model to the depth the paper's evaluation needs:
exceptions taken to EL2 (traps to the host hypervisor) carry a syndrome
(``ESR_EL2``-style exception class plus instruction-specific information),
and exceptions taken to EL1 model both a VM's normal operation and the
"would crash an unmodified hypervisor at EL1" behaviour described in
Section 2 for pre-v8.3 hardware.
"""

import enum
from dataclasses import dataclass, field


class ExceptionLevel(enum.IntEnum):
    EL0 = 0
    EL1 = 1
    EL2 = 2


class ExceptionClass(enum.Enum):
    """ESR_ELx.EC values relevant to the model (names, not encodings)."""

    UNKNOWN = "unknown"
    WFI = "wfi"
    HVC = "hvc"
    SMC = "smc"
    SYSREG = "sysreg"  # trapped MSR/MRS/system instruction
    ERET = "eret"  # trapped eret (FEAT_NV)
    IABT_LOWER = "iabt"
    DABT_LOWER = "dabt"  # data abort from lower EL (stage-2 fault)
    TLBI = "tlbi"  # trapped TLB maintenance (FEAT_NV)
    AT = "at"  # trapped address-translation instruction
    IRQ = "irq"  # asynchronous interrupt (pseudo-EC)
    SERROR = "serror"  # system error (asynchronous external abort)
    FP_ACCESS = "fp"
    SVC = "svc"


@dataclass
class Syndrome:
    """Decoded exception syndrome, the model's ESR.

    ``register``/``is_write``/``value`` are populated for SYSREG traps,
    ``imm`` for HVC, ``fault_ipa`` for stage-2 data aborts.
    """

    ec: ExceptionClass
    register: str = None
    is_write: bool = False
    value: int = None
    imm: int = 0
    fault_ipa: int = None
    encoding: object = None  # arch.cpu.Encoding of the trapped access
    detail: dict = field(default_factory=dict)

    def describe(self):
        if self.ec is ExceptionClass.SYSREG:
            direction = "write" if self.is_write else "read"
            return "sysreg %s of %s" % (direction, self.register)
        if self.ec is ExceptionClass.HVC:
            return "hvc #%d" % self.imm
        if self.ec is ExceptionClass.DABT_LOWER:
            return "stage-2 data abort at IPA %#x" % (self.fault_ipa or 0)
        return self.ec.value


class TrapToEl2(Exception):
    """An operation trapped to EL2.

    Raised by the CPU layer when an access from a guest context must be
    handled by the host hypervisor.  The host hypervisor's run loop and
    the synchronous trap handler both consume these.
    """

    def __init__(self, syndrome):
        super().__init__(syndrome.describe())
        self.syndrome = syndrome


class ExceptionToEl1(Exception):
    """An exception delivered to EL1 (e.g. an undefined instruction).

    On ARMv8.0 hardware, hypervisor instructions executed at EL1 do *not*
    trap to EL2 — they raise an exception at EL1, "likely leading to a
    software crash" (Section 2).  Modelling this faithfully lets tests
    demonstrate why unmodified guest hypervisors cannot run before v8.3.
    """

    def __init__(self, syndrome):
        super().__init__(syndrome.describe())
        self.syndrome = syndrome


class UndefinedInstruction(ExceptionToEl1):
    """Undefined-instruction exception at EL1 (pre-v8.3 guest hypervisor
    touching EL2 state, or VHE instructions on non-VHE hardware)."""

    def __init__(self, register, is_write):
        syndrome = Syndrome(
            ec=ExceptionClass.UNKNOWN,
            register=register,
            is_write=is_write,
        )
        super().__init__(syndrome)


class GuestCrash(Exception):
    """The modelled guest software could not continue (e.g. an unmodified
    hypervisor took an unexpected EL1 exception, Section 2)."""
