"""ID registers and feature discovery.

Real software does not get an ``ArchConfig`` object: it reads the ID
registers.  ARMv8.3's nested virtualization support and NEVE are
advertised in ``ID_AA64MMFR2_EL1.NV`` (0b0001 = FEAT_NV, 0b0010 =
FEAT_NV2, i.e. NEVE), and VHE in ``ID_AA64MMFR1_EL1.VH``.  This module
populates the ID registers from an :class:`~repro.arch.features.ArchConfig`
and implements the discovery logic a hypervisor runs at boot — which the
machine model uses so that, like Linux, it never relies on out-of-band
knowledge of the hardware.
"""

from dataclasses import dataclass

from repro.arch.features import ArchConfig

# Field positions within the (modelled) ID registers.
MMFR1_VH_SHIFT = 8  # ID_AA64MMFR1_EL1.VH
MMFR2_NV_SHIFT = 24  # ID_AA64MMFR2_EL1.NV

NV_NONE = 0b0000
NV_V1 = 0b0001  # FEAT_NV  (ARMv8.3 trap-based nested virtualization)
NV_V2 = 0b0010  # FEAT_NV2 (NEVE: deferred access page + redirection)

#: Main ID register: implementer/part for the paper's X-Gene testbed.
MIDR_APM_XGENE = 0x500F_0000


def id_register_values(arch):
    """The ID register image for an architecture configuration."""
    if not isinstance(arch, ArchConfig):
        raise TypeError("arch must be an ArchConfig")
    mmfr1 = (1 << MMFR1_VH_SHIFT) if arch.has_vhe else 0
    if arch.has_neve:
        nv = NV_V2
    elif arch.has_nv:
        nv = NV_V1
    else:
        nv = NV_NONE
    mmfr2 = nv << MMFR2_NV_SHIFT
    return {
        "MIDR_EL1": MIDR_APM_XGENE,
        "ID_AA64MMFR1_EL1": mmfr1,
        "ID_AA64MMFR2_EL1": mmfr2,
    }


@dataclass(frozen=True)
class DiscoveredFeatures:
    """What a hypervisor learns from the ID registers at boot."""

    has_vhe: bool
    has_nv: bool
    has_neve: bool

    @property
    def nested_mode(self):
        """The best nested-virtualization mode the hardware supports."""
        if self.has_neve:
            return "neve"
        if self.has_nv:
            return "nv"
        return "none"


def discover(id_values):
    """Parse an ID register image (dict of name -> value)."""
    mmfr1 = id_values.get("ID_AA64MMFR1_EL1", 0)
    mmfr2 = id_values.get("ID_AA64MMFR2_EL1", 0)
    nv = (mmfr2 >> MMFR2_NV_SHIFT) & 0xF
    return DiscoveredFeatures(
        has_vhe=bool((mmfr1 >> MMFR1_VH_SHIFT) & 0xF),
        has_nv=nv >= NV_V1,
        has_neve=nv >= NV_V2,
    )


def discover_from_arch(arch):
    """Discovery round trip used by the machine model."""
    return discover(id_register_values(arch))
