"""The ARM system-register registry, encoding the paper's Tables 2-5.

Every system register the modelled hypervisors touch is described by a
:class:`SysReg` carrying its classification from the paper:

* **VM system registers** (Table 3): 27 registers that "do not affect
  execution of the hypervisor directly" — with NEVE their accesses are
  rewritten into loads/stores on the deferred access page.
* **Hypervisor control registers** (Table 4): 18 enumerated registers that
  do affect the (guest) hypervisor's execution — handled with register
  redirection to the EL1 counterpart, or with cached copies that trap on
  write.  (The table's caption says 17; the rows enumerate 18 — we encode
  the rows, see DESIGN.md.)
* **GIC hypervisor control interface registers** (Table 5): all handled as
  cached copies, trap on write.
* Performance-monitor, debug and timer registers per the end of Section 6.1:
  ``PMUSERENR_EL0``/``PMSELR_EL0`` deferred, ``MDSCR_EL1`` cached copy,
  EL2 hypervisor timers always trap.

The paper omits the classification of the remaining EL0/EL1 context
registers "due to space constraints"; following the shipped ARMv8.4 NV2
design we classify those (``PAR_EL1``, ``TPIDR*``, ``CNTKCTL_EL1``, ...) as
deferred VM registers as well, and note the extension in DESIGN.md.
"""

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Functional classification, following the paper's tables."""

    VM_TRAP_CONTROL = "vm_trap_control"  # Table 3, first group
    VM_EXECUTION_CONTROL = "vm_execution_control"  # Table 3, second group
    THREAD_ID = "thread_id"  # Table 3, third group
    HYP_REDIRECT = "hyp_redirect"  # Table 4: redirect to *_EL1
    HYP_REDIRECT_VHE = "hyp_redirect_vhe"  # Table 4: redirect (VHE regs)
    HYP_TRAP_ON_WRITE = "hyp_trap_on_write"  # Table 4: cached copy
    HYP_REDIRECT_OR_TRAP = "hyp_redirect_or_trap"  # Table 4: TCR/TTBR0_EL2
    GIC_HYP = "gic_hyp"  # Table 5: ICH_* hypervisor interface
    GIC_CPU = "gic_cpu"  # ICC_*/ICV_* VM-side CPU interface
    TIMER_EL2 = "timer_el2"  # hypervisor timers: always trap
    TIMER_GUEST = "timer_guest"  # EL0/EL1 timers owned by the guest
    PMU = "pmu"
    DEBUG = "debug"
    EL1_CONTEXT = "el1_context"  # extra EL1/EL0 context (deferred)
    SPECIAL = "special"  # CurrentEL and friends


class NeveBehavior(enum.Enum):
    """What NEVE does with an access from virtual EL2 (Section 6.1)."""

    DEFER = "defer"  # rewrite to deferred-access-page memory access
    REDIRECT = "redirect"  # rewrite to the EL1 counterpart register
    CACHED_COPY = "cached_copy"  # reads from page, writes trap
    TRAP = "trap"  # always trap (EL2 timers)
    NONE = "none"  # NEVE does not change this register


@dataclass(frozen=True)
class SysReg:
    """One system register and its nested-virtualization semantics."""

    name: str
    el: int  # exception level owning the register (0, 1 or 2)
    reg_class: RegClass
    neve: NeveBehavior
    description: str = ""
    el1_counterpart: str = None  # for REDIRECT: the *_EL1 register
    vhe_only: bool = False  # register only exists with FEAT_VHE
    read_only: bool = False
    vncr_offset: int = None  # byte offset in the deferred access page
    #: EL2 register the VHE ``HCR_EL2.E2H`` bit redirects this EL1/EL0
    #: encoding to when executing at EL2 (ARM ARM D5.x).  Models a VHE
    #: *host* hypervisor; the spec checker validates these pairs against
    #: the same registry rows that carry ``el1_counterpart``.
    e2h_redirect: str = None

    @property
    def is_vm_register(self):
        """True for the paper's Table 3 set (plus the space-constrained
        EL1-context extension): no immediate effect on hypervisor
        execution."""
        return self.reg_class in (
            RegClass.VM_TRAP_CONTROL,
            RegClass.VM_EXECUTION_CONTROL,
            RegClass.THREAD_ID,
            RegClass.EL1_CONTEXT,
        )

    @property
    def is_hyp_control(self):
        """True for the paper's Table 4/5 hypervisor-control sets."""
        return self.reg_class in (
            RegClass.HYP_REDIRECT,
            RegClass.HYP_REDIRECT_VHE,
            RegClass.HYP_TRAP_ON_WRITE,
            RegClass.HYP_REDIRECT_OR_TRAP,
            RegClass.GIC_HYP,
        )


#: One deferred-access-page slot per register NEVE stores in memory.
VNCR_SLOT_BYTES = 8


@dataclass(frozen=True)
class DispatchRow:
    """Precomputed static dispatch facts for one register.

    Built once, when the registry freezes: everything here is a pure
    function of the (immutable) registry rows, so the trap-dispatch fast
    path (:mod:`repro.arch.dispatch`) can read one row instead of
    re-deriving classification facts per access.  ``undef_without_vhe``
    and ``undef_on_write`` are the two *pre-charge* UNDEF conditions —
    they must raise before the access is charged, unlike ladder-level
    UNDEFs, so the fast path needs them split out.  ``vhe_alias_defer``
    resolves the VHE-guest-hypervisor alias rule up front: the EL2
    counterpart a VNCR-backed EL1 encoding defers through at virtual EL2
    with E2H set (None when the alias stays on the hardware register).
    """

    reg: "SysReg"
    undef_without_vhe: bool
    undef_on_write: bool
    vhe_alias_defer: "SysReg" = None
    gic_sgi_trap: bool = False


class RegistryFrozenError(RuntimeError):
    """Raised when a frozen :class:`RegistryBuilder` is asked to define
    another register — registering into a registry machines have already
    snapshotted would silently shift the deferred-page layout."""


class RegistryBuilder:
    """Builder-scoped registry construction and VNCR slot allocation.

    Offsets are a pure function of definition order: the *n*-th register
    that owns a page slot gets byte offset ``n * VNCR_SLOT_BYTES``.  The
    builder validates the layout (unique, aligned, contiguous offsets)
    and then freezes; any later :meth:`define` raises loudly instead of
    mutating a layout other code may have captured.  Tests that need a
    scratch registry build their own instance — the module-level one is
    only ever mutated while this module imports.
    """

    def __init__(self):
        self.registry = {}
        self._next_offset = 0
        self._frozen = False
        #: name -> :class:`DispatchRow`, built by :meth:`freeze` — empty
        #: (and unusable by the fast path) until the layout is sealed.
        self.dispatch_rows = {}

    @property
    def frozen(self):
        return self._frozen

    @property
    def page_bytes(self):
        """Bytes of deferred-access page the layout uses so far."""
        return self._next_offset

    def define(self, name, el, reg_class, neve, description="",
               el1_counterpart=None, vhe_only=False, read_only=False,
               e2h_redirect=None):
        """Register *name*, assigning a deferred-access page offset to
        every register NEVE stores in memory."""
        if self._frozen:
            raise RegistryFrozenError(
                "registry is frozen: cannot define %s after the layout "
                "was published (build a fresh RegistryBuilder instead)"
                % name)
        if name in self.registry:
            raise ValueError("duplicate register definition: %s" % name)
        vncr_offset = None
        if neve in (NeveBehavior.DEFER, NeveBehavior.CACHED_COPY):
            vncr_offset = self._next_offset
            self._next_offset += VNCR_SLOT_BYTES
        reg = SysReg(
            name=name,
            el=el,
            reg_class=reg_class,
            neve=neve,
            description=description,
            el1_counterpart=el1_counterpart,
            vhe_only=vhe_only,
            read_only=read_only,
            vncr_offset=vncr_offset,
            e2h_redirect=e2h_redirect,
        )
        self.registry[name] = reg
        return reg

    def snapshot(self):
        """Immutable view of the layout: ((name, vncr_offset), ...) in
        definition order, plus the allocation high-water mark."""
        return (tuple((reg.name, reg.vncr_offset)
                      for reg in self.registry.values()),
                self._next_offset)

    def restore(self, snap):
        """Roll an *unfrozen* builder back to a previous :meth:`snapshot`
        (drops registers defined since, releases their slots)."""
        if self._frozen:
            raise RegistryFrozenError(
                "registry is frozen: cannot restore a snapshot")
        layout, next_offset = snap
        keep = {name for name, _offset in layout}
        current = dict(self.registry)
        if not keep <= set(current):
            raise ValueError("snapshot does not match this builder")
        self.registry.clear()
        self.registry.update(
            (name, current[name]) for name in current if name in keep)
        self._next_offset = next_offset

    def validate(self):
        """Check the layout invariants; returns the offset map."""
        offsets = {}
        expected = 0
        for reg in self.registry.values():
            if reg.vncr_offset is None:
                continue
            if reg.vncr_offset % VNCR_SLOT_BYTES:
                raise ValueError("%s: misaligned VNCR offset %#x"
                                 % (reg.name, reg.vncr_offset))
            if reg.vncr_offset in offsets:
                raise ValueError(
                    "VNCR offset %#x assigned to both %s and %s"
                    % (reg.vncr_offset, offsets[reg.vncr_offset],
                       reg.name))
            if reg.vncr_offset != expected:
                raise ValueError(
                    "%s: non-contiguous VNCR offset %#x (expected %#x)"
                    % (reg.name, reg.vncr_offset, expected))
            offsets[reg.vncr_offset] = reg.name
            expected += VNCR_SLOT_BYTES
        if expected != self._next_offset:
            raise ValueError("allocator high-water mark %#x disagrees "
                             "with the layout (%#x)"
                             % (self._next_offset, expected))
        return offsets

    def freeze(self):
        """Validate, seal the builder, build the per-register dispatch
        rows, and return the registry dict.

        The dispatch rows are the *static* half of the trap-dispatch
        fast path: once the layout is sealed nothing a row depends on
        can change, so they are computed exactly once here rather than
        re-derived per access by the classification ladder.
        """
        self.validate()
        self._frozen = True
        self.dispatch_rows = self._build_dispatch_rows()
        return self.registry

    def _build_dispatch_rows(self):
        rows = {}
        for reg in self.registry.values():
            vhe_alias_defer = None
            if reg.e2h_redirect is not None:
                counterpart = self.registry.get(reg.e2h_redirect)
                if (counterpart is not None
                        and counterpart.vncr_offset is not None
                        and counterpart.reg_class
                        is not RegClass.HYP_REDIRECT_OR_TRAP):
                    # Under VHE the "redirect or trap" rows behave as
                    # redirects (Table 4), so their aliases stay on the
                    # hardware register; everything VNCR-backed defers
                    # through the alias encoding too.
                    vhe_alias_defer = counterpart
            rows[reg.name] = DispatchRow(
                reg=reg,
                undef_without_vhe=reg.vhe_only,
                undef_on_write=reg.read_only,
                vhe_alias_defer=vhe_alias_defer,
                gic_sgi_trap=(reg.reg_class is RegClass.GIC_CPU
                              and reg.neve is NeveBehavior.TRAP))
        return rows


_BUILDER = RegistryBuilder()
_define = _BUILDER.define


# --------------------------------------------------------------------------
# Table 3: VM system registers (27) — NEVE defers them to memory.
# --------------------------------------------------------------------------
_define("HACR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Hypervisor Auxiliary Control")
_define("HCR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Hypervisor Configuration")
_define("HPFAR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Hypervisor IPA Fault Address")
_define("HSTR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Hypervisor System Trap")
_define("VMPIDR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Virtualization Multiprocessor ID")
_define("VNCR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Virtual Nested Control (recursively deferred, Section 6.2)")
_define("VPIDR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Virtualization Processor ID")
_define("VTCR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Virtualization Translation Control")
_define("VTTBR_EL2", 2, RegClass.VM_TRAP_CONTROL, NeveBehavior.DEFER,
        "Virtualization Translation Table Base")

_define("AFSR0_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Auxiliary Fault Status 0",
        e2h_redirect="AFSR0_EL2")
_define("AFSR1_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Auxiliary Fault Status 1",
        e2h_redirect="AFSR1_EL2")
_define("AMAIR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Auxiliary Memory Attribute Indirection",
        e2h_redirect="AMAIR_EL2")
_define("CONTEXTIDR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Context ID",
        e2h_redirect="CONTEXTIDR_EL2")
_define("CPACR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Architectural Feature Access Control",
        e2h_redirect="CPTR_EL2")
_define("ELR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Exception Link",
        e2h_redirect="ELR_EL2")
_define("ESR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Exception Syndrome",
        e2h_redirect="ESR_EL2")
_define("FAR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Fault Address",
        e2h_redirect="FAR_EL2")
_define("MAIR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Memory Attribute Indirection",
        e2h_redirect="MAIR_EL2")
_define("SCTLR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "System Control",
        e2h_redirect="SCTLR_EL2")
_define("SP_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Stack Pointer")
_define("SPSR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Saved Program Status",
        e2h_redirect="SPSR_EL2")
_define("TCR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Translation Control",
        e2h_redirect="TCR_EL2")
_define("TTBR0_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Translation Table Base 0",
        e2h_redirect="TTBR0_EL2")
_define("TTBR1_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Translation Table Base 1",
        e2h_redirect="TTBR1_EL2")
_define("VBAR_EL1", 1, RegClass.VM_EXECUTION_CONTROL, NeveBehavior.DEFER,
        "Vector Base Address",
        e2h_redirect="VBAR_EL2")

_define("TPIDR_EL2", 2, RegClass.THREAD_ID, NeveBehavior.DEFER,
        "EL2 Software Thread ID")

# --------------------------------------------------------------------------
# Table 4: hypervisor control registers.
# --------------------------------------------------------------------------
_define("AFSR0_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Auxiliary Fault Status 0", el1_counterpart="AFSR0_EL1")
_define("AFSR1_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Auxiliary Fault Status 1", el1_counterpart="AFSR1_EL1")
_define("AMAIR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Auxiliary Memory Attribute Indirection",
        el1_counterpart="AMAIR_EL1")
_define("ELR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Exception Link", el1_counterpart="ELR_EL1")
_define("ESR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Exception Syndrome", el1_counterpart="ESR_EL1")
_define("FAR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Fault Address", el1_counterpart="FAR_EL1")
_define("SPSR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Saved Program Status", el1_counterpart="SPSR_EL1")
_define("MAIR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Memory Attribute Indirection", el1_counterpart="MAIR_EL1")
_define("SCTLR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "System Control", el1_counterpart="SCTLR_EL1")
_define("VBAR_EL2", 2, RegClass.HYP_REDIRECT, NeveBehavior.REDIRECT,
        "Vector Base Address", el1_counterpart="VBAR_EL1")

_define("CONTEXTIDR_EL2", 2, RegClass.HYP_REDIRECT_VHE, NeveBehavior.REDIRECT,
        "Context ID", el1_counterpart="CONTEXTIDR_EL1", vhe_only=True)
_define("TTBR1_EL2", 2, RegClass.HYP_REDIRECT_VHE, NeveBehavior.REDIRECT,
        "Translation Table Base 1", el1_counterpart="TTBR1_EL1",
        vhe_only=True)

_define("CNTHCTL_EL2", 2, RegClass.HYP_TRAP_ON_WRITE, NeveBehavior.CACHED_COPY,
        "Counter-timer Hypervisor Control")
_define("CNTVOFF_EL2", 2, RegClass.HYP_TRAP_ON_WRITE, NeveBehavior.CACHED_COPY,
        "Counter-timer Virtual Offset")
_define("CPTR_EL2", 2, RegClass.HYP_TRAP_ON_WRITE, NeveBehavior.CACHED_COPY,
        "Architectural Feature Trap")
_define("MDCR_EL2", 2, RegClass.HYP_TRAP_ON_WRITE, NeveBehavior.CACHED_COPY,
        "Monitor Debug Configuration")

# "Redirect or trap": format is EL1-compatible only under VHE, so these
# redirect for VHE guest hypervisors and fall back to cached copies (trap on
# write) for non-VHE guest hypervisors.  The CPU model makes the choice at
# access time based on the virtual E2H setting.
_define("TCR_EL2", 2, RegClass.HYP_REDIRECT_OR_TRAP, NeveBehavior.CACHED_COPY,
        "Translation Control", el1_counterpart="TCR_EL1")
_define("TTBR0_EL2", 2, RegClass.HYP_REDIRECT_OR_TRAP, NeveBehavior.CACHED_COPY,
        "Translation Table Base 0", el1_counterpart="TTBR0_EL1")

# --------------------------------------------------------------------------
# Table 5: GIC hypervisor control interface — cached copies, trap on write.
# --------------------------------------------------------------------------
_define("ICH_HCR_EL2", 2, RegClass.GIC_HYP, NeveBehavior.CACHED_COPY,
        "GIC Hypervisor Control")
_define("ICH_VTR_EL2", 2, RegClass.GIC_HYP, NeveBehavior.CACHED_COPY,
        "VGIC Type", read_only=True)
_define("ICH_VMCR_EL2", 2, RegClass.GIC_HYP, NeveBehavior.CACHED_COPY,
        "Virtual Machine Control")
_define("ICH_MISR_EL2", 2, RegClass.GIC_HYP, NeveBehavior.CACHED_COPY,
        "Maintenance Interrupt Status", read_only=True)
_define("ICH_EISR_EL2", 2, RegClass.GIC_HYP, NeveBehavior.CACHED_COPY,
        "End of Interrupt Status", read_only=True)
_define("ICH_ELRSR_EL2", 2, RegClass.GIC_HYP, NeveBehavior.CACHED_COPY,
        "Empty List Register Status", read_only=True)
for _n in range(4):
    _define("ICH_AP0R%d_EL2" % _n, 2, RegClass.GIC_HYP,
            NeveBehavior.CACHED_COPY, "Active Priorities Group 0 #%d" % _n)
for _n in range(4):
    _define("ICH_AP1R%d_EL2" % _n, 2, RegClass.GIC_HYP,
            NeveBehavior.CACHED_COPY, "Active Priorities Group 1 #%d" % _n)
for _n in range(16):
    _define("ICH_LR%d_EL2" % _n, 2, RegClass.GIC_HYP,
            NeveBehavior.CACHED_COPY, "List Register #%d" % _n)

# --------------------------------------------------------------------------
# Section 6.1, final paragraph: PMU, debug and timer registers.
# --------------------------------------------------------------------------
_define("PMUSERENR_EL0", 0, RegClass.PMU, NeveBehavior.DEFER,
        "Performance Monitors User Enable")
_define("PMSELR_EL0", 0, RegClass.PMU, NeveBehavior.DEFER,
        "Performance Monitors Event Counter Selection")
_define("MDSCR_EL1", 1, RegClass.DEBUG, NeveBehavior.CACHED_COPY,
        "Monitor Debug System Control")

# EL2 hypervisor timers: "all accesses ... trap as reads must access the
# registers directly to obtain correct values updated by hardware".
_define("CNTHP_CTL_EL2", 2, RegClass.TIMER_EL2, NeveBehavior.TRAP,
        "EL2 Physical Timer Control")
_define("CNTHP_CVAL_EL2", 2, RegClass.TIMER_EL2, NeveBehavior.TRAP,
        "EL2 Physical Timer CompareValue")
_define("CNTHV_CTL_EL2", 2, RegClass.TIMER_EL2, NeveBehavior.TRAP,
        "EL2 Virtual Timer Control", vhe_only=True)
_define("CNTHV_CVAL_EL2", 2, RegClass.TIMER_EL2, NeveBehavior.TRAP,
        "EL2 Virtual Timer CompareValue", vhe_only=True)

# Guest-owned timers (EL0-accessible): deferred like VM registers when the
# guest hypervisor manipulates the *nested VM's* copies.
_define("CNTV_CTL_EL0", 0, RegClass.TIMER_GUEST, NeveBehavior.DEFER,
        "EL1 Virtual Timer Control",
        e2h_redirect="CNTHV_CTL_EL2")
_define("CNTV_CVAL_EL0", 0, RegClass.TIMER_GUEST, NeveBehavior.DEFER,
        "EL1 Virtual Timer CompareValue",
        e2h_redirect="CNTHV_CVAL_EL2")
_define("CNTP_CTL_EL0", 0, RegClass.TIMER_GUEST, NeveBehavior.DEFER,
        "EL1 Physical Timer Control")
_define("CNTP_CVAL_EL0", 0, RegClass.TIMER_GUEST, NeveBehavior.DEFER,
        "EL1 Physical Timer CompareValue")
_define("CNTKCTL_EL1", 1, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "Kernel Counter-timer Control",
        e2h_redirect="CNTHCTL_EL2")
_define("CNTVCT_EL0", 0, RegClass.TIMER_GUEST, NeveBehavior.NONE,
        "Virtual Count (reads hardware counter)", read_only=True)

# --------------------------------------------------------------------------
# Remaining EL0/EL1 context registers ("details omitted" in the paper;
# classified as deferred VM state, matching the shipped NV2 design).
# --------------------------------------------------------------------------
_define("PAR_EL1", 1, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "Physical Address (AT instruction result)")
_define("TPIDR_EL1", 1, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "EL1 Software Thread ID")
_define("TPIDR_EL0", 0, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "EL0 Software Thread ID")
_define("TPIDRRO_EL0", 0, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "EL0 Read-Only Software Thread ID")
_define("SP_EL0", 0, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "EL0 Stack Pointer")
_define("CSSELR_EL1", 1, RegClass.EL1_CONTEXT, NeveBehavior.DEFER,
        "Cache Size Selection")

# --------------------------------------------------------------------------
# GIC CPU interface (VM side).  ICC_* accesses from a VM operate on the
# virtual interface backed by the list registers; SGI generation always
# traps to the hypervisor so it can route the IPI.
# --------------------------------------------------------------------------
_define("ICC_IAR1_EL1", 1, RegClass.GIC_CPU, NeveBehavior.NONE,
        "Interrupt Acknowledge (group 1)", read_only=True)
_define("ICC_EOIR1_EL1", 1, RegClass.GIC_CPU, NeveBehavior.NONE,
        "End Of Interrupt (group 1)")
_define("ICC_DIR_EL1", 1, RegClass.GIC_CPU, NeveBehavior.NONE,
        "Deactivate Interrupt")
_define("ICC_PMR_EL1", 1, RegClass.GIC_CPU, NeveBehavior.NONE,
        "Priority Mask")
_define("ICC_BPR1_EL1", 1, RegClass.GIC_CPU, NeveBehavior.NONE,
        "Binary Point (group 1)")
_define("ICC_IGRPEN1_EL1", 1, RegClass.GIC_CPU, NeveBehavior.NONE,
        "Group 1 Enable")
_define("ICC_SGI1R_EL1", 1, RegClass.GIC_CPU, NeveBehavior.TRAP,
        "Software Generated Interrupt (group 1) — always traps")

# --------------------------------------------------------------------------
# Special registers.
# --------------------------------------------------------------------------
_define("CURRENTEL", None, RegClass.SPECIAL, NeveBehavior.NONE,
        "Current exception level (disguised at virtual EL2)", read_only=True)

#: The published registry: validated and frozen at import time.  From
#: here on every definition attempt raises ``RegistryFrozenError``, so
#: the deferred-page layout machines capture at build time cannot drift.
_REGISTRY = _BUILDER.freeze()


def lookup_register(name):
    """Return the :class:`SysReg` for *name*; raise KeyError if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown system register: %s" % name)


def dispatch_row(name):
    """Return the precomputed :class:`DispatchRow` for *name* (built
    when the module registry froze); raise KeyError if unknown."""
    try:
        return _BUILDER.dispatch_rows[name]
    except KeyError:
        raise KeyError("unknown system register: %s" % name)


def iter_registers(reg_class=None, neve=None):
    """Iterate registered :class:`SysReg` objects, optionally filtered."""
    for reg in _REGISTRY.values():
        if reg_class is not None and reg.reg_class is not reg_class:
            continue
        if neve is not None and reg.neve is not neve:
            continue
        yield reg


def vm_register_names():
    """The paper's Table 3 set (exactly 27 registers)."""
    table3_classes = (
        RegClass.VM_TRAP_CONTROL,
        RegClass.VM_EXECUTION_CONTROL,
        RegClass.THREAD_ID,
    )
    return [r.name for r in _REGISTRY.values() if r.reg_class in table3_classes]


def deferred_page_size():
    """Bytes of deferred-access page the registry currently uses."""
    return _BUILDER.page_bytes


def e2h_redirects():
    """The VHE ``HCR_EL2.E2H`` redirection map, derived from the
    registry rows: EL1/EL0-encoded name -> EL2 register reached when
    executing at EL2 with E2H set."""
    return {reg.name: reg.e2h_redirect for reg in _REGISTRY.values()
            if reg.e2h_redirect is not None}


_E2H_REVERSE = {reg.e2h_redirect: reg.name for reg in _REGISTRY.values()
                if reg.e2h_redirect is not None}


def e2h_counterpart(el2_name):
    """EL1/EL0 encoding that E2H redirects to *el2_name*, or None."""
    return _E2H_REVERSE.get(el2_name)


class RegisterFile:
    """A bank of system-register values (one per context).

    Values default to zero, as architectural reset state is irrelevant to
    the evaluation; unknown register names are rejected so typos in
    hypervisor flows fail fast.
    """

    def __init__(self, initial=None):
        self._values = {}
        if initial:
            for name, value in initial.items():
                self.write(name, value)

    def read(self, name):
        lookup_register(name)  # validate
        return self._values.get(name, 0)

    def write(self, name, value):
        reg = lookup_register(name)
        if reg.read_only and name in self._values:
            # Read-only registers may still be *initialized* (hardware
            # state), but guests cannot rewrite them; the CPU layer
            # enforces the guest-facing rule.  Here we simply allow it.
            pass
        self._values[name] = value & 0xFFFFFFFFFFFFFFFF

    def copy_from(self, other, names):
        """Bulk copy *names* from another RegisterFile (no cycle cost;
        callers charge costs through the CPU layer)."""
        for name in names:
            self.write(name, other.read(name))

    def as_dict(self):
        return dict(self._values)

    def __repr__(self):
        populated = {k: v for k, v in self._values.items() if v}
        return "RegisterFile(%r)" % (populated,)
