"""Pass 4: shared-state & determinism analysis (the shardability gate).

The fleet-scale campaign engine (ROADMAP) shards hundreds of simulated
machines across worker processes and merges their metric registries
deterministically.  That only works if machine construction is decoupled
from module-level singletons: no cross-machine shared mutable state, no
iteration-order nondeterminism.  This pass *proves* the property
statically, the way the spec checker proves register semantics.

It is a whole-program, cross-module AST analysis over ``src/repro``:

1. **Inventory** — every module-level mutable binding (dict/list/set
   displays and constructors, class instantiations) plus any binding
   that is mutated from anywhere in the package.
2. **Classification** — by tracking which functions read vs. mutate each
   object across module boundaries, and whether each mutating function
   is only ever called from its own module's top level (import time):

   * ``constant`` — mutated only while its module imports (e.g. the
     register registry populated by an import-time-only ``_define``
     helper); safe to share read-only between machines.
   * ``cache`` — runtime-mutated, but every mutator is a guarded
     get-or-compute memoizer or a public reset hook; deterministic
     per-key content, so sharing is benign (``sc-cache-no-reset`` fires
     if no reset hook exists).
   * ``singleton`` — machine-coupled: mutated at runtime with no
     memoization discipline.  Two machines in one process would observe
     each other through it; fails the gate (``sc-singleton``).

3. **Hazards** — iteration over shared ``set`` state
   (``sc-set-iteration``, hash-order dependent) and mutation of a
   module-level object from *another* module's top level
   (``sc-import-order-hook``, ordering depends on import order).

Findings diff against a committed baseline (``STATECHECK_BASELINE.json``
at the repo root) so new violations fail CI while existing ones are
burned down.  ``python -m repro lint --statecheck`` renders the
shardability report (human and, with ``--statecheck-json``, machine
readable).

The dynamic counterpart, :func:`run_shared_state_check`
(``san-shared-state``), snapshots the static inventory's live values,
constructs and runs two machines in one process, and fails on any
cross-machine mutation or on diverging metric exports — a race detector
for the simulated world.
"""

import ast
import importlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import Finding, apply_pragmas, pragma_allowances

SCHEMA = "repro-statecheck/1"
BASELINE_SCHEMA = "repro-statecheck-baseline/1"
BASELINE_NAME = "STATECHECK_BASELINE.json"

#: Container-method calls that mutate the receiver.
MUTATOR_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "remove", "reverse",
    "setdefault", "sort", "update",
}
#: Mutator methods that implement a guarded get-or-compute on their own.
_MEMO_METHODS = {"setdefault"}
#: Mutator methods that empty the object (public reset hooks).
_RESET_METHODS = {"clear"}
#: Constructor calls producing mutable containers.
MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
}
#: Constructor calls producing immutable values (never inventoried).
IMMUTABLE_CONSTRUCTORS = {"frozenset", "tuple", "MappingProxyType"}


def _attr_chain(node):
    """Dotted parts of an attribute/name chain, outermost first."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _binding_kind(value):
    """Classify a module-level RHS expression: what does the name hold?"""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        chain = _attr_chain(value.func)
        name = chain[-1] if chain else ""
        if name in ("dict", "defaultdict", "OrderedDict", "Counter"):
            return "dict"
        if name in ("list", "deque"):
            return "list"
        if name == "set":
            return "set"
        if name == "bytearray":
            return "list"
        if name in IMMUTABLE_CONSTRUCTORS:
            return "immutable"
        if name[:1].isupper():
            return "instance"
        return "derived"
    return "immutable"


@dataclass
class _Event:
    """One access to a module-level binding, seen from some module."""

    target: tuple  # (module, name)
    action: str  # "read" | "mutate" | "iterate" | "guard" | "reset"
    module: str  # module the access appears in
    function: str  # enclosing function qualname, or "" for top level
    line: int
    detail: str = ""


@dataclass
class _ModuleScan:
    module: str
    path: str
    bindings: dict = field(default_factory=dict)  # name -> (kind, line)
    functions: set = field(default_factory=set)  # module-level func names
    events: list = field(default_factory=list)
    calls: list = field(default_factory=list)  # ((mod, fn), in_function)
    escapes: set = field(default_factory=set)  # (mod, fn) referenced


class _Scanner(ast.NodeVisitor):
    """Single-module scan; resolution of imports makes it cross-module."""

    def __init__(self, scan, package):
        self.scan = scan
        self.package = package
        self._import_modules = {}  # alias -> dotted module
        self._import_names = {}  # alias -> (module, name)
        self._stack = []  # enclosing function/class names
        self._locals = []  # per-function set of local names
        self._globals = []  # per-function names declared global

    # -- context helpers -------------------------------------------------

    @property
    def _at_top(self):
        return not self._stack

    @property
    def _function(self):
        return ".".join(self._stack)

    def _collect_locals(self, node):
        args = node.args
        names = {a.arg for a in args.posonlyargs + args.args
                 + args.kwonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)) and sub is not node:
                names.add(sub.name)
        return names

    def _resolve(self, node):
        """(module, name) the expression refers to, or None."""
        chain = _attr_chain(node)
        if not chain:
            return None
        head = chain[0]
        if len(chain) == 1:
            if self._locals and head in self._locals[-1] \
                    and not (self._globals and head in self._globals[-1]):
                return None
            if head in self._import_names:
                return self._import_names[head]
            return (self.scan.module, head)
        if len(chain) == 2 and head in self._import_modules:
            return (self._import_modules[head], chain[1])
        return None

    def _event(self, node, target, action, detail=""):
        if target is None:
            return
        self.scan.events.append(_Event(
            target=target, action=action, module=self.scan.module,
            function=self._function, line=node.lineno, detail=detail))

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node):
        for alias in node.names:
            if alias.name.startswith(self.package + ".") \
                    or alias.name == self.package:
                self._import_modules[alias.asname
                                     or alias.name.split(".")[0]] = \
                    alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module and (node.module.startswith(self.package + ".")
                            or node.module == self.package):
            for alias in node.names:
                local = alias.asname or alias.name
                # ``from pkg import module`` vs ``from module import name``
                # is undecidable syntactically; record both views — the
                # name view only matters if the target module actually
                # binds it, the module view if such a module exists.
                self._import_names[local] = (node.module, alias.name)
                self._import_modules[local] = \
                    "%s.%s" % (node.module, alias.name)
        self.generic_visit(node)

    # -- definitions -----------------------------------------------------

    def _visit_scoped(self, node, is_function):
        if self._at_top and is_function:
            self.scan.functions.add(node.name)
        self._stack.append(node.name)
        if is_function:
            self._locals.append(self._collect_locals(node))
            self._globals.append({
                name for sub in ast.walk(node)
                if isinstance(sub, ast.Global) for name in sub.names})
        self.generic_visit(node)
        if is_function:
            self._locals.pop()
            self._globals.pop()
        self._stack.pop()

    def visit_FunctionDef(self, node):
        self._visit_scoped(node, is_function=True)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node):
        self._visit_scoped(node, is_function=False)

    # -- stores ----------------------------------------------------------

    def _check_store(self, target, node, aug=False):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, node)
            return
        if isinstance(target, ast.Subscript):
            self._event(node, self._resolve(target.value), "mutate",
                        detail="subscript-store")
            return
        if isinstance(target, ast.Attribute):
            self._event(node, self._resolve(target.value), "mutate",
                        detail="attribute-store")
            return
        if isinstance(target, ast.Name):
            if self._at_top:
                kind = _binding_kind(node.value) \
                    if not aug and hasattr(node, "value") else "derived"
                self.scan.bindings.setdefault(target.id,
                                              (kind, node.lineno))
            elif self._globals and target.id in self._globals[-1]:
                action = "reset" if not aug else "mutate"
                self._event(node, (self.scan.module, target.id), action,
                            detail="global-rebind")

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        if isinstance(node.target, ast.Name) and self._at_top:
            self._event(node, (self.scan.module, node.target.id),
                        "mutate", detail="augmented-assign")
        else:
            self._check_store(node.target, node, aug=True)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._event(node, self._resolve(target.value), "mutate",
                            detail="del-item")
        self.generic_visit(node)

    # -- calls, reads, loops ---------------------------------------------

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in MUTATOR_METHODS:
            target = self._resolve(func.value)
            if func.attr in _RESET_METHODS and not node.args:
                self._event(node, target, "reset", detail=func.attr)
            elif func.attr in _MEMO_METHODS:
                self._event(node, target, "guard", detail=func.attr)
                self._event(node, target, "mutate", detail=func.attr)
            else:
                self._event(node, target, "mutate", detail=func.attr)
        resolved = self._resolve(func)
        if resolved is not None:
            self.scan.calls.append((resolved, self._function))
        # Visit arguments (and the receiver) but not the callee name
        # itself, so plain calls don't count as escaping references.
        if isinstance(func, ast.Attribute):
            self.visit(func.value)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Load):
            target = self._resolve(node)
            if target is not None:
                self._event(node, target, "read")
                self.scan.escapes.add(target)
        self.generic_visit(node)

    def visit_Attribute(self, node):
        if isinstance(node.ctx, ast.Load):
            target = self._resolve(node)
            if target is not None:
                self._event(node, target, "read")
                self.scan.escapes.add(target)
                return  # the Name underneath is part of this chain
        self.generic_visit(node)

    def visit_Compare(self, node):
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)):
                self._event(node, self._resolve(comparator), "guard",
                            detail="membership-test")
        self.generic_visit(node)

    def _check_iteration(self, node, iter_node):
        self._event(node, self._resolve(iter_node), "iterate")

    def visit_For(self, node):
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        for gen in node.generators:
            self._check_iteration(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def scan_module(source, module, path, package="repro"):
    """Scan one module's source; returns a :class:`_ModuleScan`."""
    scan = _ModuleScan(module=module, path=str(path))
    tree = ast.parse(source, filename=str(path))
    _Scanner(scan, package).visit(tree)
    return scan


# ---------------------------------------------------------------------------
# Package-level synthesis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StateObject:
    """One inventoried module-level binding and its classification."""

    module: str
    name: str
    kind: str  # dict | list | set | instance | derived | scalar
    line: int
    path: str
    classification: str  # constant | cache | singleton
    readers: tuple  # "module:function" sites that read it
    mutators: tuple  # "module:function" sites that mutate it
    has_reset: bool = False

    @property
    def key(self):
        return "%s.%s" % (self.module, self.name)


@dataclass(frozen=True)
class StateFinding:
    """One shardability violation, with a line-independent baseline key."""

    rule: str
    key: str  # "<rule>:<module>.<name>" — stable across edits
    message: str
    path: str
    line: int
    baselined: bool = False

    def to_finding(self):
        return Finding(self.rule, self.message, path=self.path,
                       line=self.line)


@dataclass
class ShardabilityReport:
    """The statecheck verdict: inventory + violations vs. baseline."""

    objects: list = field(default_factory=list)
    findings: list = field(default_factory=list)  # StateFinding

    @property
    def new_findings(self):
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined_findings(self):
        return [f for f in self.findings if f.baselined]

    def by_classification(self, classification):
        return [o for o in self.objects
                if o.classification == classification]

    def summary(self):
        return {
            "objects": len(self.objects),
            "constant": len(self.by_classification("constant")),
            "cache": len(self.by_classification("cache")),
            "singleton": len(self.by_classification("singleton")),
            "violations": len(self.findings),
            "new_violations": len(self.new_findings),
            "baselined": len(self.baselined_findings),
        }

    def to_json(self, indent=2):
        document = {
            "schema": SCHEMA,
            "summary": self.summary(),
            "objects": [{
                "module": o.module, "name": o.name, "kind": o.kind,
                "line": o.line, "path": o.path,
                "classification": o.classification,
                "readers": list(o.readers), "mutators": list(o.mutators),
                "has_reset": o.has_reset,
            } for o in self.objects],
            "violations": [{
                "rule": f.rule, "key": f.key, "message": f.message,
                "path": f.path, "line": f.line, "baselined": f.baselined,
            } for f in self.findings],
        }
        return json.dumps(document, sort_keys=True, indent=indent) + "\n"

    def render(self):
        """Human shardability report."""
        lines = ["shardability report (%s)" % SCHEMA]
        summary = self.summary()
        lines.append("  %(objects)d shared object(s): %(constant)d "
                     "constant, %(cache)d cache, %(singleton)d "
                     "machine-coupled singleton(s)" % summary)
        for classification in ("singleton", "cache", "constant"):
            group = self.by_classification(classification)
            if not group:
                continue
            lines.append("  [%s]" % classification)
            for obj in group:
                extras = []
                if obj.mutators:
                    extras.append("mutated by %s"
                                  % ", ".join(obj.mutators))
                if obj.has_reset:
                    extras.append("public reset")
                lines.append("    %s (%s, %s:%d)%s"
                             % (obj.key, obj.kind, obj.path, obj.line,
                                " — " + "; ".join(extras)
                                if extras else ""))
        if self.findings:
            lines.append("  violations (%d new, %d baselined):"
                         % (len(self.new_findings),
                            len(self.baselined_findings)))
            for finding in self.findings:
                marker = "baselined" if finding.baselined else "NEW"
                lines.append("    [%s] %s" % (marker,
                                              finding.to_finding().format()))
        else:
            lines.append("  no violations — the tree is fleet-shardable")
        return "\n".join(lines)


def _site(event):
    return "%s:%s" % (event.module, event.function or "<module>")


class _PackageAnalysis:
    def __init__(self, scans):
        self.scans = scans
        self.modules = {scan.module: scan for scan in scans}
        self._calls = [call for scan in scans for call in scan.calls]
        self._escapes = set()
        for scan in scans:
            self._escapes |= scan.escapes

    def _call_sites(self, module, function):
        """Call sites of a module-level function, as (caller_module,
        caller_function) pairs."""
        sites = []
        for scan in self.scans:
            for target, caller in scan.calls:
                if target == (module, function):
                    sites.append((scan.module, caller))
        return sites

    def _runs_at_import_only(self, module, function):
        if function == "":
            return True
        scan = self.modules.get(module)
        if scan is None or function not in scan.functions:
            return False  # a method or nested function: assume runtime
        if (module, function) in self._escapes:
            return False
        sites = self._call_sites(module, function)
        if not sites:
            return False
        return all(caller_module == module and caller == ""
                   for caller_module, caller in sites)

    def analyze(self):
        objects = {}  # (module, name) -> accumulated events
        for scan in self.scans:
            for event in scan.events:
                module, name = event.target
                target_scan = self.modules.get(module)
                if target_scan is None \
                        or name not in target_scan.bindings:
                    continue
                objects.setdefault((module, name), []).append(event)
        inventory = []
        findings = []
        for scan in self.scans:
            for name, (kind, line) in sorted(scan.bindings.items(),
                                             key=lambda kv: kv[1][1]):
                # Immutable bindings only matter when rebound at
                # runtime (``global`` rebinding makes them shared
                # state too); _classify drops the untouched ones.
                if kind == "immutable":
                    kind = "scalar"
                events = objects.get((scan.module, name), [])
                obj, obj_findings = self._classify(
                    scan, name, kind, line, events)
                if obj is None:
                    continue
                inventory.append(obj)
                findings.extend(obj_findings)
        return inventory, findings

    def _classify(self, scan, name, kind, line, events):
        readers = sorted({_site(e) for e in events if e.action == "read"
                          and (e.module, e.function) != (scan.module, "")})
        mutations = [e for e in events if e.action == "mutate"]
        resets = [e for e in events if e.action == "reset"]
        guards = {(e.module, e.function) for e in events
                  if e.action == "guard"}
        iterations = [e for e in events if e.action == "iterate"]

        runtime_mutators = []
        foreign_import_mutators = []
        for event in mutations + resets:
            if event.function == "" and event.module == scan.module:
                continue  # own-module import time: constant construction
            if event.function == "" and event.module != scan.module:
                foreign_import_mutators.append(event)
            elif not self._runs_at_import_only(event.module,
                                               event.function):
                runtime_mutators.append(event)

        if kind not in ("dict", "list", "set", "instance", "derived") \
                and not runtime_mutators and not foreign_import_mutators:
            return None, []  # scalar/immutable binding, never mutated

        mutators = sorted({_site(e) for e in runtime_mutators
                           + foreign_import_mutators})
        findings = []
        runtime_real = [e for e in runtime_mutators
                        if e.action == "mutate"]
        runtime_resets = [e for e in runtime_mutators + resets
                          if e.action == "reset"]
        if not runtime_mutators and not runtime_resets:
            classification = "constant"
        else:
            memoized = all(
                (e.module, e.function) in guards or e.detail in _MEMO_METHODS
                for e in runtime_real)
            if runtime_real and memoized:
                classification = "cache"
                if not runtime_resets and not resets:
                    findings.append(self._finding(
                        "sc-cache-no-reset", scan, name, line,
                        "memoization cache %s.%s has no public reset "
                        "hook; a long-lived process can never shed it"
                        % (scan.module, name)))
            elif not runtime_real and runtime_resets:
                classification = "cache"  # reset-only: a resettable pool
            else:
                classification = "singleton"
                sites = ", ".join(sorted({_site(e)
                                          for e in runtime_real})) \
                    or "unknown sites"
                findings.append(self._finding(
                    "sc-singleton", scan, name, line,
                    "machine-coupled singleton: %s.%s is mutated at "
                    "runtime (by %s) with no memoization discipline — "
                    "thread it through machine construction instead"
                    % (scan.module, name, sites)))

        if foreign_import_mutators:
            sites = ", ".join(sorted({_site(e)
                                      for e in foreign_import_mutators}))
            findings.append(self._finding(
                "sc-import-order-hook", scan, name, line,
                "%s.%s is mutated from another module's top level (%s); "
                "its contents depend on import order"
                % (scan.module, name, sites)))

        if kind == "set" and iterations:
            where = ", ".join(sorted({_site(e) for e in iterations}))
            findings.append(self._finding(
                "sc-set-iteration", scan, name, line,
                "shared set %s.%s is iterated (%s); iteration order is "
                "hash-dependent and breaks deterministic shard-merge"
                % (scan.module, name, where)))

        obj = StateObject(
            module=scan.module, name=name, kind=kind, line=line,
            path=scan.path, classification=classification,
            readers=tuple(readers), mutators=tuple(mutators),
            has_reset=bool(resets))
        return obj, findings

    @staticmethod
    def _finding(rule, scan, name, line, message):
        return StateFinding(
            rule=rule, key="%s:%s.%s" % (rule, scan.module, name),
            message=message, path=scan.path, line=line)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def _package_root():
    import repro
    return Path(repro.__file__).parent


def _repo_root():
    return _package_root().parent.parent


def default_baseline_path():
    return _repo_root() / BASELINE_NAME


def iter_package_sources(root=None, package=None):
    """Yield (module_name, path) for every source file under *root*."""
    root = Path(root) if root is not None else _package_root()
    package = package if package is not None else root.name
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relative = path.relative_to(root)
        parts = (package,) + relative.parts[:-1]
        stem = relative.stem
        module = ".".join(parts if stem == "__init__"
                          else parts + (stem,))
        yield module, path


def analyze_paths(sources, package="repro"):
    """Run the whole-program analysis over ``(module, path)`` pairs."""
    scans = []
    pragmas = {}
    for module, path in sources:
        source = Path(path).read_text(encoding="utf-8")
        scans.append(scan_module(source, module, path, package=package))
        pragmas[str(path)] = pragma_allowances(source)
    inventory, findings = _PackageAnalysis(scans).analyze()
    kept = []
    for state_finding in findings:
        allowed = pragmas.get(state_finding.path, {})
        if apply_pragmas([state_finding.to_finding()],
                         allowed):
            kept.append(state_finding)
    return inventory, kept


def load_baseline(path=None):
    """The committed suppression keys; empty set if no baseline file."""
    path = Path(path) if path is not None else default_baseline_path()
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError("%s: unknown baseline schema %r"
                         % (path, document.get("schema")))
    return set(document.get("suppressions", ()))


def write_baseline(findings, path=None):
    """Write every current violation key as the new baseline."""
    path = Path(path) if path is not None else default_baseline_path()
    document = {
        "schema": BASELINE_SCHEMA,
        "comment": "Known shardability violations being burned down; "
                   "python -m repro lint --statecheck "
                   "--update-statecheck-baseline regenerates this file.",
        "suppressions": sorted({f.key for f in findings}),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


def check_shardability(root=None, package=None, baseline=None):
    """The statecheck gate: analysis + baseline diff.

    Returns a :class:`ShardabilityReport` whose ``new_findings`` are the
    violations CI fails on.
    """
    sources = list(iter_package_sources(root, package))
    package_name = package if package is not None \
        else (Path(root).name if root is not None else "repro")
    inventory, findings = analyze_paths(sources, package=package_name)
    if baseline is None:
        baseline = load_baseline()
    findings = [
        StateFinding(rule=f.rule, key=f.key, message=f.message,
                     path=f.path, line=f.line,
                     baselined=f.key in baseline)
        for f in findings]
    return ShardabilityReport(objects=inventory, findings=findings)


# ---------------------------------------------------------------------------
# Dynamic counterpart: the san-shared-state race detector
# ---------------------------------------------------------------------------

def _state_repr(value, depth=0):
    """Stable, order-sensitive textual snapshot of a live object."""
    if depth > 4:
        return "<deep>"
    if isinstance(value, dict):
        return "{%s}" % ", ".join(
            "%r: %s" % (key, _state_repr(item, depth + 1))
            for key, item in value.items())
    if isinstance(value, (list, tuple)):
        brackets = "[%s]" if isinstance(value, list) else "(%s)"
        return brackets % ", ".join(_state_repr(item, depth + 1)
                                    for item in value)
    if isinstance(value, (set, frozenset)):
        return "{set: %s}" % ", ".join(
            sorted(_state_repr(item, depth + 1) for item in value))
    if hasattr(value, "__dict__") and not callable(value):
        return "%s(%s)" % (type(value).__name__,
                           _state_repr(vars(value), depth + 1))
    return repr(value)


def snapshot_shared_state(objects):
    """Live snapshot {module.name: stable-repr} of the inventory."""
    snapshot = {}
    for obj in objects:
        try:
            module = importlib.import_module(obj.module)
        except ImportError:
            continue
        if hasattr(module, obj.name):
            snapshot[obj.key] = _state_repr(getattr(module, obj.name))
    return snapshot


def run_shared_state_check(report=None, mode="neve", hypercalls=2,
                           objects=None):
    """``san-shared-state``: a race detector for the simulated world.

    Snapshots every inventoried module-level object, constructs and runs
    two identical machines in one process (metrics attached), and fails
    if (a) the second machine's run mutated any shared state the first
    could observe, (b) any *constant*-classified object moved at all, or
    (c) the two machines' metric exports are not byte-identical.
    """
    from repro.analysis.sanitizer import SanitizerReport, \
        _metrics_scenario

    if report is None:
        report = SanitizerReport()
    if objects is None:
        objects = check_shardability().objects

    before = snapshot_shared_state(objects)
    machine_a, metrics_a = _metrics_scenario(mode, hypercalls,
                                             attach_metrics=True)
    export_a = metrics_a.registry.json_snapshot()
    after_first = snapshot_shared_state(objects)
    machine_b, metrics_b = _metrics_scenario(mode, hypercalls,
                                             attach_metrics=True)
    export_b = metrics_b.registry.json_snapshot()
    after_second = snapshot_shared_state(objects)

    report.record(
        export_a == export_b, "san-shared-state",
        "two identical machines in one process produced diverging "
        "metric exports (%d vs %d bytes) — cross-machine coupling"
        % (len(export_a), len(export_b)))
    report.record(
        machine_a.ledger.total == machine_b.ledger.total,
        "san-shared-state",
        "two identical machines disagree on simulated time: %d vs %d "
        "cycles" % (machine_a.ledger.total, machine_b.ledger.total))
    classifications = {obj.key: obj.classification for obj in objects}
    for key in sorted(before):
        report.record(
            after_first.get(key) == after_second.get(key),
            "san-shared-state",
            "%s mutated while the second machine was constructed/run — "
            "machines can observe each other through it" % key)
        if classifications.get(key) == "constant":
            report.record(
                before[key] == after_first.get(key),
                "san-shared-state",
                "constant-classified %s mutated after machine "
                "construction" % key)
    return report
