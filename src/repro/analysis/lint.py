"""Pass 2: AST lint enforcing the simulator's structural invariants.

The discrete-event core only produces meaningful cycle and trap numbers
if three invariants hold everywhere in ``src/repro``:

``sim-sysreg-bypass``
    Simulated system-register state is only mutated through
    ``cpu.mrs``/``cpu.msr`` (or the CPU's own access-resolution
    machinery), so every access pays its cost and can trap.  Writing
    ``cpu.el1_regs``/``cpu.el2_regs`` directly, or reaching into a
    ``RegisterFile``'s ``_values``, bypasses trap accounting.  Device
    models updating their own hardware state (the GIC computing status
    registers) and host-EL2 context-switch code annotate the exempt
    sites with ``# lint: allow(sim-sysreg-bypass)``.

``sim-nondeterminism``
    The simulator must be bit-for-bit reproducible: same configuration,
    same numbers.  Wall-clock reads (``time.time()`` and friends),
    module-level ``random.*`` calls (the unseeded global generator —
    seeded ``random.Random(seed)`` instances are fine) and iteration
    over set displays/constructors (hash-order dependent) are flagged.

``sim-ledger-bypass``
    Cycle accounting flows through :meth:`CycleLedger.charge` only.
    Assigning or augmenting ``<...>.ledger.total`` or
    ``<...>.ledger.by_category[...]`` invents or destroys cycles
    without a category trail.

The lint is purely syntactic (no imports are executed), so it can run
over fixture files with deliberately broken code.
"""

import ast
from pathlib import Path

from repro.analysis.base import Finding, apply_pragmas, pragma_allowances

#: Files whose whole purpose is to implement the guarded machinery.
EXEMPT_SUFFIXES = (
    "repro/arch/registers.py",  # RegisterFile owns its _values store
    "repro/riscv/csrs.py",  # CsrFile is the RISC-V RegisterFile analogue
)

_TIME_FUNCS = {"time", "time_ns", "monotonic", "monotonic_ns",
               "perf_counter", "perf_counter_ns", "process_time",
               "process_time_ns", "clock"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
_DICT_MUTATORS = {"clear", "pop", "popitem", "update", "setdefault"}
#: random-module attributes that do NOT touch the global generator.
_RANDOM_SAFE = {"Random", "SystemRandom"}
_REGFILE_ATTRS = {"el1_regs", "el2_regs"}


def _attr_chain(node):
    """The dotted parts of an attribute/name chain, outermost first;
    e.g. ``self.cpu.ledger.total`` -> ("self", "cpu", "ledger", "total").
    Unresolvable bases (calls, subscripts) contribute nothing."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


class _InvariantVisitor(ast.NodeVisitor):
    def __init__(self, path):
        self.path = path
        self.findings = []
        # Names imported from time/random that alias nondeterminism.
        self._tainted_names = {}
        # Local names currently bound to a set display/constructor, so
        # ``s = {a, b} ... for x in s`` is flagged like the inline form.
        self._set_vars = {}

    def _flag(self, rule, node, message):
        self.findings.append(Finding(rule, message, path=str(self.path),
                                     line=node.lineno))

    # -- imports ---------------------------------------------------------

    def visit_ImportFrom(self, node):
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self._tainted_names[alias.asname or alias.name] = \
                        "time.%s" % alias.name
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_SAFE:
                    self._tainted_names[alias.asname or alias.name] = \
                        "random.%s" % alias.name
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node):
        func = node.func
        chain = _attr_chain(func)
        if chain[-1:] == ("write",) and len(chain) >= 2 \
                and chain[-2] in _REGFILE_ATTRS:
            self._flag("sim-sysreg-bypass", node,
                       "direct %s.write() bypasses cpu.msr trap "
                       "accounting" % chain[-2])
        elif len(chain) == 2 and chain[0] == "time" \
                and chain[1] in _TIME_FUNCS:
            self._flag("sim-nondeterminism", node,
                       "time.%s() makes simulation results depend on "
                       "wall-clock time" % chain[1])
        elif len(chain) == 2 and chain[0] == "random" \
                and chain[1] not in _RANDOM_SAFE:
            self._flag("sim-nondeterminism", node,
                       "random.%s() uses the unseeded global generator; "
                       "use a seeded random.Random instance" % chain[1])
        elif len(chain) == 2 and chain[0] in ("datetime", "date") \
                and chain[1] in _DATETIME_FUNCS:
            self._flag("sim-nondeterminism", node,
                       "%s.%s() reads the wall clock"
                       % (chain[0], chain[1]))
        elif chain == ("os", "urandom") or chain == ("uuid", "uuid4"):
            self._flag("sim-nondeterminism", node,
                       "%s() is a nondeterminism source"
                       % ".".join(chain))
        elif len(chain) == 1 and chain[0] in self._tainted_names:
            self._flag("sim-nondeterminism", node,
                       "%s() (imported as %s) is a nondeterminism source"
                       % (self._tainted_names[chain[0]], chain[0]))
        elif len(chain) >= 3 and chain[-1] in _DICT_MUTATORS \
                and chain[-2] == "by_category" and "ledger" in chain[:-2]:
            self._flag("sim-ledger-bypass", node,
                       "mutating ledger.by_category directly skips "
                       "CycleLedger.charge()")
        self.generic_visit(node)

    # -- assignments -----------------------------------------------------

    def _check_store_target(self, target, node):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, node)
            return
        if isinstance(target, ast.Subscript):
            chain = _attr_chain(target.value)
            if chain[-1:] == ("_values",):
                self._flag("sim-sysreg-bypass", node,
                           "writing RegisterFile._values directly "
                           "bypasses register validation and trap "
                           "accounting")
            if chain[-1:] == ("by_category",) and "ledger" in chain:
                self._flag("sim-ledger-bypass", node,
                           "assigning ledger.by_category[...] skips "
                           "CycleLedger.charge()")
            return
        if isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            if chain[-1] == "_values":
                self._flag("sim-sysreg-bypass", node,
                           "replacing RegisterFile._values wholesale "
                           "bypasses register validation")
            if chain[-1] in ("total", "by_category") \
                    and "ledger" in chain[:-1]:
                self._flag("sim-ledger-bypass", node,
                           "assigning ledger.%s directly skips "
                           "CycleLedger.charge()" % chain[-1])

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_store_target(target, node)
        self._track_set_binding(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_store_target(node.target, node)
        if isinstance(node.target, ast.Name):
            self._set_vars.pop(node.target.id, None)
        self.generic_visit(node)

    # -- set-variable tracking -------------------------------------------

    def _track_set_binding(self, node):
        """Track simple local bindings to set values: ``s = {…}`` makes
        ``s`` a known set until something else is assigned to it (a
        later ``for x in s`` is just as hash-order dependent as the
        inline form).  Aliases of known sets propagate; any other value
        clears the name."""
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if self._is_set_value(value):
                self._set_vars[target.id] = node.lineno
            elif isinstance(value, ast.Name) and value.id in self._set_vars:
                self._set_vars[target.id] = self._set_vars[value.id]
            else:
                self._set_vars.pop(target.id, None)

    def _scoped_names(self, node):
        """Names a function's own scope (re)binds: its parameters."""
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args
                 + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def _visit_function(self, node):
        saved = self._set_vars
        self._set_vars = {name: line for name, line in saved.items()
                          if name not in self._scoped_names(node)}
        self.generic_visit(node)
        self._set_vars = saved

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- loops -----------------------------------------------------------

    def _is_set_value(self, expr):
        """Is *expr* syntactically a set (display, comprehension, or
        ``set()``/``frozenset()`` constructor)?"""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            chain = _attr_chain(expr.func)
            return chain in (("set",), ("frozenset",))
        return False

    def _iter_is_set(self, expr):
        if self._is_set_value(expr):
            return True
        return (isinstance(expr, ast.Name)
                and expr.id in self._set_vars)

    def visit_For(self, node):
        if self._iter_is_set(node.iter):
            self._flag("sim-nondeterminism", node,
                       "iterating a set makes ordering (and thus traces "
                       "and float accumulation) hash-order dependent; "
                       "sort it or use a list/dict")
        if isinstance(node.target, ast.Name):
            # The loop variable shadows any tracked set binding.
            self._set_vars.pop(node.target.id, None)
        self.generic_visit(node)


def lint_source(source, path="<string>"):
    """Lint one module's source text; returns a list of findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding("sim-syntax-error", str(exc), path=str(path),
                        line=exc.lineno or 1)]
    visitor = _InvariantVisitor(path)
    visitor.visit(tree)
    return apply_pragmas(visitor.findings, pragma_allowances(source))


def lint_file(path):
    path = Path(path)
    if path.as_posix().endswith(EXEMPT_SUFFIXES):
        return []
    return lint_source(path.read_text(encoding="utf-8"), path)


def iter_python_files(paths):
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" in sub.parts:
                    continue
                yield sub
        else:
            yield path


def lint_paths(paths):
    """Lint every ``*.py`` file under *paths* (files or directories)."""
    findings = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return findings
