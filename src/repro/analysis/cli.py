"""``python -m repro lint``: run the analysis passes and report.

Default run (no arguments) executes every pass against the live tree:
the spec-conformance checker, the AST lint over the ``repro`` package
sources, the sanitized exit-multiplication smoke scenario, the
telemetry-registry checks (``san-metrics-reconcile``,
``san-metrics-ledger``), the fleet merge-determinism check
(``san-fleet-merge``), the host-profiler invisibility check
(``san-profile-zero-cycles``), the dispatch fast-path parity check
(``san-fastpath-parity``), and the doc lint (``doc-link``,
``doc-subcommand``) over ``README.md`` and ``docs/``.  Any finding
fails the run (exit status 1), which is what CI keys on.

The default run also includes the shared-state passes: the static
shardability gate (``statecheck``, diffed against the committed
``STATECHECK_BASELINE.json``) and its dynamic ``san-shared-state``
counterpart.  ``--statecheck`` switches to report mode: run *only* those
two passes and render the full shardability report (``--statecheck-json``
additionally writes the machine-readable document).

Usage::

    python -m repro lint                  # full clean-tree check
    python -m repro lint path/to/file.py  # lint specific files/dirs
    python -m repro lint --no-sanitize    # skip the runtime scenario
    python -m repro lint --no-metrics     # skip the registry checks
    python -m repro lint --no-docs        # skip the doc lint
    python -m repro lint --no-fleet       # skip the san-fleet-merge check
    python -m repro lint --no-profile     # skip san-profile-zero-cycles
    python -m repro lint --no-fastpath    # skip san-fastpath-parity
    python -m repro lint --no-statecheck  # skip the shared-state passes
    python -m repro lint --statecheck     # shardability report only
    python -m repro lint --statecheck --statecheck-json report.json
    python -m repro lint --statecheck --update-statecheck-baseline
"""

import argparse
import sys
from pathlib import Path


def _default_lint_paths():
    """The installed ``repro`` package sources."""
    import repro
    return [Path(repro.__file__).parent]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Spec-conformance checker, simulator-invariant lint "
                    "and runtime-sanitizer smoke run.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: the "
                             "repro package sources)")
    parser.add_argument("--no-spec", action="store_true",
                        help="skip the register-classification "
                             "spec checks")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the AST lint")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="skip the sanitized exit-multiplication "
                             "scenario")
    parser.add_argument("--no-metrics", action="store_true",
                        help="skip the telemetry-registry checks "
                             "(san-metrics-reconcile, san-metrics-ledger)")
    parser.add_argument("--no-docs", action="store_true",
                        help="skip the doc lint (markdown link and "
                             "subcommand checks over README.md and docs/)")
    parser.add_argument("--no-fleet", action="store_true",
                        help="skip the fleet merge-determinism check "
                             "(san-fleet-merge)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the host-profiler invisibility check "
                             "(san-profile-zero-cycles)")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="skip the dispatch fast-path parity check "
                             "(san-fastpath-parity)")
    parser.add_argument("--no-statecheck", action="store_true",
                        help="skip the shared-state passes (static "
                             "shardability gate + san-shared-state)")
    parser.add_argument("--statecheck", action="store_true",
                        help="run only the shared-state passes and "
                             "render the full shardability report")
    parser.add_argument("--statecheck-json", type=Path, metavar="PATH",
                        help="write the machine-readable shardability "
                             "report (repro-statecheck/1 JSON) to PATH")
    parser.add_argument("--update-statecheck-baseline",
                        action="store_true",
                        help="rewrite STATECHECK_BASELINE.json with "
                             "every current statecheck violation")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print findings only, no summary")
    return parser


def _run_statecheck(args, findings, passes):
    """The shared-state passes; returns the ShardabilityReport."""
    from repro.analysis.statecheck import (
        check_shardability,
        run_shared_state_check,
        write_baseline,
    )
    report = check_shardability()
    if args.update_statecheck_baseline:
        path = write_baseline(report.findings)
        print("statecheck: baseline rewritten with %d suppression(s): %s"
              % (len(report.findings), path))
        report = check_shardability()
    if args.statecheck_json is not None:
        args.statecheck_json.write_text(report.to_json(),
                                        encoding="utf-8")
    findings.extend(f.to_finding() for f in report.new_findings)
    passes.append(("statecheck[%d objects, %d baselined]"
                   % (len(report.objects),
                      len(report.baselined_findings)),
                   len(report.new_findings)))
    shared = run_shared_state_check(objects=report.objects)
    findings.extend(shared.violations)
    passes.append(("shared-state[%d checks]" % shared.checks,
                   len(shared.violations)))
    return report


def main(argv=None):
    args = build_parser().parse_args(argv)
    missing = [path for path in args.paths if not path.exists()]
    if missing:
        for path in missing:
            print("error: no such file or directory: %s" % path,
                  file=sys.stderr)
        return 2

    findings = []
    passes = []

    if args.statecheck:
        # Report mode: only the shared-state passes, full rendering.
        report = _run_statecheck(args, findings, passes)
        print(report.render())
        for finding in findings:
            print(finding.format())
        if not args.quiet:
            detail = ", ".join("%s: %d" % item for item in passes)
            verdict = "clean" if not findings else \
                "%d finding(s)" % len(findings)
            print("repro lint: %s (%s)" % (verdict, detail))
        return 1 if findings else 0

    if not args.no_spec:
        from repro.analysis.spec import check_spec
        spec_findings = check_spec()
        findings.extend(spec_findings)
        passes.append(("spec", len(spec_findings)))

    if not args.no_lint:
        from repro.analysis.lint import lint_paths
        paths = args.paths or _default_lint_paths()
        lint_findings = lint_paths(paths)
        findings.extend(lint_findings)
        passes.append(("lint", len(lint_findings)))

    if not args.no_sanitize:
        from repro.analysis.sanitizer import run_sanitized_scenario
        report = run_sanitized_scenario()
        findings.extend(report.violations)
        passes.append(("sanitizer[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_metrics:
        from repro.analysis.sanitizer import run_metrics_checks
        report = run_metrics_checks()
        findings.extend(report.violations)
        passes.append(("metrics[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_docs:
        from repro.analysis.doclint import check_docs
        doc_findings = check_docs()
        findings.extend(doc_findings)
        passes.append(("docs", len(doc_findings)))

    if not args.no_fleet:
        from repro.analysis.sanitizer import check_fleet_merge
        report = check_fleet_merge()
        findings.extend(report.violations)
        passes.append(("fleet-merge[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_profile:
        from repro.analysis.sanitizer import check_profile_zero_cycles
        report = check_profile_zero_cycles()
        findings.extend(report.violations)
        passes.append(("profile-zero-cycles[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_fastpath:
        from repro.analysis.sanitizer import check_fastpath_parity
        report = check_fastpath_parity()
        findings.extend(report.violations)
        passes.append(("fastpath-parity[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_statecheck:
        _run_statecheck(args, findings, passes)

    for finding in findings:
        print(finding.format())
    if not args.quiet:
        detail = ", ".join("%s: %d" % item for item in passes)
        verdict = "clean" if not findings else \
            "%d finding(s)" % len(findings)
        print("repro lint: %s (%s)" % (verdict, detail))
    return 1 if findings else 0
