"""``python -m repro lint``: run the analysis passes and report.

Default run (no arguments) executes every pass against the live tree:
the spec-conformance checker, the AST lint over the ``repro`` package
sources, the sanitized exit-multiplication smoke scenario, the
telemetry-registry checks (``san-metrics-reconcile``,
``san-metrics-ledger``), and the doc lint (``doc-link``,
``doc-subcommand``) over ``README.md`` and ``docs/``.  Any finding
fails the run (exit status 1), which is what CI keys on.

Usage::

    python -m repro lint                  # full clean-tree check
    python -m repro lint path/to/file.py  # lint specific files/dirs
    python -m repro lint --no-sanitize    # skip the runtime scenario
    python -m repro lint --no-metrics     # skip the registry checks
    python -m repro lint --no-docs        # skip the doc lint
"""

import argparse
import sys
from pathlib import Path


def _default_lint_paths():
    """The installed ``repro`` package sources."""
    import repro
    return [Path(repro.__file__).parent]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Spec-conformance checker, simulator-invariant lint "
                    "and runtime-sanitizer smoke run.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: the "
                             "repro package sources)")
    parser.add_argument("--no-spec", action="store_true",
                        help="skip the register-classification "
                             "spec checks")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the AST lint")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="skip the sanitized exit-multiplication "
                             "scenario")
    parser.add_argument("--no-metrics", action="store_true",
                        help="skip the telemetry-registry checks "
                             "(san-metrics-reconcile, san-metrics-ledger)")
    parser.add_argument("--no-docs", action="store_true",
                        help="skip the doc lint (markdown link and "
                             "subcommand checks over README.md and docs/)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print findings only, no summary")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    missing = [path for path in args.paths if not path.exists()]
    if missing:
        for path in missing:
            print("error: no such file or directory: %s" % path,
                  file=sys.stderr)
        return 2

    findings = []
    passes = []

    if not args.no_spec:
        from repro.analysis.spec import check_spec
        spec_findings = check_spec()
        findings.extend(spec_findings)
        passes.append(("spec", len(spec_findings)))

    if not args.no_lint:
        from repro.analysis.lint import lint_paths
        paths = args.paths or _default_lint_paths()
        lint_findings = lint_paths(paths)
        findings.extend(lint_findings)
        passes.append(("lint", len(lint_findings)))

    if not args.no_sanitize:
        from repro.analysis.sanitizer import run_sanitized_scenario
        report = run_sanitized_scenario()
        findings.extend(report.violations)
        passes.append(("sanitizer[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_metrics:
        from repro.analysis.sanitizer import run_metrics_checks
        report = run_metrics_checks()
        findings.extend(report.violations)
        passes.append(("metrics[%d checks]" % report.checks,
                       len(report.violations)))

    if not args.no_docs:
        from repro.analysis.doclint import check_docs
        doc_findings = check_docs()
        findings.extend(doc_findings)
        passes.append(("docs", len(doc_findings)))

    for finding in findings:
        print(finding.format())
    if not args.quiet:
        detail = ", ".join("%s: %d" % item for item in passes)
        verdict = "clean" if not findings else \
            "%d finding(s)" % len(findings)
        print("repro lint: %s (%s)" % (verdict, detail))
    return 1 if findings else 0
