"""Machine-checked conformance for the reproduction (``repro.analysis``).

Three cooperating passes keep the register classification and the
discrete-event core honest:

1. :mod:`repro.analysis.spec` — static cross-validation of the register
   registry against the paper's Tables 2-5 (counts, uniqueness,
   encodings, redirect targets, deferred-page layout).
2. :mod:`repro.analysis.lint` — AST lint over the simulator sources for
   invariant violations: register-state mutation that bypasses
   ``cpu.mrs``/``cpu.msr``, nondeterminism sources, and cycle-ledger
   bypasses.
3. :mod:`repro.analysis.sanitizer` — opt-in runtime sanitizer that
   checks every virtual-EL2 access of a live simulation against the
   specification oracle.

``python -m repro lint`` (see :mod:`repro.analysis.cli`) runs all three.
"""

from repro.analysis.base import Finding
from repro.analysis.lint import lint_file, lint_paths, lint_source
from repro.analysis.sanitizer import (
    CpuSanitizer,
    RunnerSanitizer,
    SanitizerError,
    SanitizerReport,
    run_sanitized_scenario,
    sanitized,
)
from repro.analysis.spec import SpecSnapshot, check_spec

__all__ = [
    "CpuSanitizer",
    "Finding",
    "RunnerSanitizer",
    "SanitizerError",
    "SanitizerReport",
    "SpecSnapshot",
    "check_spec",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_sanitized_scenario",
    "sanitized",
]
