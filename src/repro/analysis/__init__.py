"""Machine-checked conformance for the reproduction (``repro.analysis``).

Three cooperating passes keep the register classification and the
discrete-event core honest:

1. :mod:`repro.analysis.spec` — static cross-validation of the register
   registry against the paper's Tables 2-5 (counts, uniqueness,
   encodings, redirect targets, deferred-page layout).
2. :mod:`repro.analysis.lint` — AST lint over the simulator sources for
   invariant violations: register-state mutation that bypasses
   ``cpu.mrs``/``cpu.msr``, nondeterminism sources, and cycle-ledger
   bypasses.
3. :mod:`repro.analysis.sanitizer` — opt-in runtime sanitizer that
   checks every virtual-EL2 access of a live simulation against the
   specification oracle.
4. :mod:`repro.analysis.statecheck` — whole-program shared-state &
   determinism analysis (the fleet-shardability gate): inventories
   module-level mutable state, classifies constant tables vs. caches
   vs. machine-coupled singletons, diffs against a committed baseline,
   and pairs with the ``san-shared-state`` two-machine race detector.

``python -m repro lint`` (see :mod:`repro.analysis.cli`) runs all four.
"""

from repro.analysis.base import Finding
from repro.analysis.lint import lint_file, lint_paths, lint_source
from repro.analysis.sanitizer import (
    CpuSanitizer,
    RunnerSanitizer,
    SanitizerError,
    SanitizerReport,
    run_sanitized_scenario,
    sanitized,
)
from repro.analysis.spec import SpecSnapshot, check_spec
from repro.analysis.statecheck import (
    ShardabilityReport,
    StateFinding,
    StateObject,
    check_shardability,
    run_shared_state_check,
)

__all__ = [
    "CpuSanitizer",
    "Finding",
    "RunnerSanitizer",
    "SanitizerError",
    "SanitizerReport",
    "ShardabilityReport",
    "SpecSnapshot",
    "StateFinding",
    "StateObject",
    "check_shardability",
    "check_spec",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_sanitized_scenario",
    "run_shared_state_check",
    "sanitized",
]
