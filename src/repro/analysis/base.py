"""Shared plumbing for the analysis passes: findings and lint pragmas.

All three passes (:mod:`repro.analysis.spec`, :mod:`repro.analysis.lint`,
:mod:`repro.analysis.sanitizer`) report problems as :class:`Finding`
objects so the CLI and the tests can treat them uniformly.
"""

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One problem reported by an analysis pass.

    ``rule`` is a stable kebab-case identifier (``spec-*`` for the
    conformance checker, ``sim-*`` for the AST lint, ``san-*`` for the
    runtime sanitizer) so pragmas and tests can key on it.
    """

    rule: str
    message: str
    path: str = None
    line: int = None

    def format(self):
        if self.path is not None:
            location = self.path
            if self.line is not None:
                location += ":%d" % self.line
            return "%s: %s: %s" % (location, self.rule, self.message)
        return "%s: %s" % (self.rule, self.message)


#: ``# lint: allow(rule-a, rule-b)`` on the first physical line of a
#: statement suppresses those rules for that statement.  The pragma is an
#: assertion by the author that the flagged construct is intentional —
#: e.g. a device model mutating its own hardware register state, which is
#: not a simulated instruction and so owes the ledger nothing.
PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(([a-z0-9, -]+)\)")


def pragma_allowances(source):
    """Map line number -> set of rule names allowed on that line."""
    allowances = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(line)
        if match:
            rules = {rule.strip() for rule in match.group(1).split(",")}
            allowances[lineno] = rules
    return allowances


def apply_pragmas(findings, allowances):
    """Drop findings whose rule is allowed on their line."""
    kept = []
    for finding in findings:
        allowed = allowances.get(finding.line, ())
        if finding.rule in allowed:
            continue
        kept.append(finding)
    return kept
