"""Pass 1: spec-conformance checker for the register classification.

The reproduction encodes the paper's Tables 2-5 three times over: as the
register registry (:mod:`repro.arch.registers`), as the classification
table views (:mod:`repro.core.classification`) and as real AArch64
encodings (:mod:`repro.arch.encodings`), with the CPU trap paths
consuming all three.  A register that drifts between them — classified
twice, missing an encoding, redirected to a counterpart that does not
exist — silently corrupts every exit-multiplication result downstream.

This pass cross-validates the three as *data*:

* every register is classified exactly once, and every
  :class:`RegClass` maps to exactly one table (3, 4, 5 or the prose
  extensions of Section 6.1);
* every :class:`RegClass` has a defined set of legal NEVE behaviours,
  and every register's behaviour is in its class's set;
* the table row counts match the paper's stated 27 / 18 / 30 (with the
  Table 4 caption-vs-rows discrepancy pinned to
  :data:`repro.core.classification.TABLE4_ROW_COUNT`);
* encodings are present, unique and free of orphans;
* redirection targets (``el1_counterpart`` and the registry's
  ``e2h_redirect`` rows) name registers that exist at the right
  exception level, and the E2H map is injective;
* the deferred-access-page layout is consistent: a VNCR slot exists iff
  the behaviour stores the register in memory, offsets are unique,
  8-byte aligned and fit one page.

Checks run against a :class:`SpecSnapshot` so tests can corrupt a copy
of the live data and assert the checker notices.
"""

from dataclasses import dataclass, replace

from repro.analysis.base import Finding
from repro.arch.registers import NeveBehavior, RegClass

#: Legal NEVE behaviours per register class.  A class missing from this
#: map, or a register whose behaviour is outside its class's set, is a
#: conformance finding ("every RegClass has a defined NEVE behaviour").
CLASS_BEHAVIOR = {
    RegClass.VM_TRAP_CONTROL: frozenset({NeveBehavior.DEFER}),
    RegClass.VM_EXECUTION_CONTROL: frozenset({NeveBehavior.DEFER}),
    RegClass.THREAD_ID: frozenset({NeveBehavior.DEFER}),
    RegClass.HYP_REDIRECT: frozenset({NeveBehavior.REDIRECT}),
    RegClass.HYP_REDIRECT_VHE: frozenset({NeveBehavior.REDIRECT}),
    RegClass.HYP_TRAP_ON_WRITE: frozenset({NeveBehavior.CACHED_COPY}),
    # Redirect-or-trap rows carry CACHED_COPY as the non-VHE fallback;
    # the CPU upgrades them to REDIRECT at access time under VHE.
    RegClass.HYP_REDIRECT_OR_TRAP: frozenset({NeveBehavior.CACHED_COPY}),
    RegClass.GIC_HYP: frozenset({NeveBehavior.CACHED_COPY}),
    RegClass.GIC_CPU: frozenset({NeveBehavior.NONE, NeveBehavior.TRAP}),
    RegClass.TIMER_EL2: frozenset({NeveBehavior.TRAP}),
    RegClass.TIMER_GUEST: frozenset({NeveBehavior.DEFER,
                                     NeveBehavior.NONE}),
    RegClass.PMU: frozenset({NeveBehavior.DEFER}),
    RegClass.DEBUG: frozenset({NeveBehavior.CACHED_COPY}),
    RegClass.EL1_CONTEXT: frozenset({NeveBehavior.DEFER}),
    RegClass.SPECIAL: frozenset({NeveBehavior.NONE}),
}

#: Which classification table owns each register class.  Totality of
#: this map is what "classified exactly once" means at the class level.
TABLE_OF_CLASS = {
    RegClass.VM_TRAP_CONTROL: "table3",
    RegClass.VM_EXECUTION_CONTROL: "table3",
    RegClass.THREAD_ID: "table3",
    RegClass.HYP_REDIRECT: "table4",
    RegClass.HYP_REDIRECT_VHE: "table4",
    RegClass.HYP_TRAP_ON_WRITE: "table4",
    RegClass.HYP_REDIRECT_OR_TRAP: "table4",
    RegClass.GIC_HYP: "table5",
    RegClass.GIC_CPU: "prose",
    RegClass.TIMER_EL2: "prose",
    RegClass.TIMER_GUEST: "prose",
    RegClass.PMU: "prose",
    RegClass.DEBUG: "prose",
    RegClass.EL1_CONTEXT: "prose",
    RegClass.SPECIAL: "prose",
}


@dataclass
class SpecSnapshot:
    """All the classification data the checker validates, as plain
    values, so tests can corrupt a copy without touching the live
    registry."""

    registers: tuple  # SysReg instances
    encodings: dict  # name -> (op0, op1, CRn, CRm, op2)
    e2h_redirects: dict  # EL1-encoded name -> EL2 register name
    table_rows: dict  # table name -> row count of the rendered view
    page_size: int

    @classmethod
    def live(cls):
        from repro.arch.encodings import SYSREG_ENCODINGS
        from repro.arch.registers import e2h_redirects, iter_registers
        from repro.core.classification import (
            table3_vm_registers,
            table4_hyp_control_registers,
            table5_gic_registers,
        )
        from repro.memory.phys import PAGE_SIZE

        return cls(
            registers=tuple(iter_registers()),
            encodings=dict(SYSREG_ENCODINGS),
            e2h_redirects=e2h_redirects(),
            table_rows={
                "table3": len(table3_vm_registers()),
                "table4": len(table4_hyp_control_registers()),
                "table5": len(table5_gic_registers()),
            },
            page_size=PAGE_SIZE,
        )

    def corrupt(self, name, **changes):
        """A copy of the snapshot with one register's fields replaced
        (test helper for seeding violations)."""
        registers = tuple(
            replace(reg, **changes) if reg.name == name else reg
            for reg in self.registers)
        return replace(self, registers=registers)


def _check_unique_names(snapshot):
    seen = {}
    for reg in snapshot.registers:
        if reg.name in seen:
            yield Finding("spec-duplicate-register",
                          "%s is defined more than once" % reg.name)
        seen[reg.name] = reg


def _check_class_coverage(snapshot):
    for reg_class in RegClass:
        if reg_class not in CLASS_BEHAVIOR:
            yield Finding("spec-class-behavior",
                          "RegClass.%s has no defined NEVE behaviour set"
                          % reg_class.name)
        if reg_class not in TABLE_OF_CLASS:
            yield Finding("spec-class-table",
                          "RegClass.%s is not assigned to any "
                          "classification table" % reg_class.name)
    for reg in snapshot.registers:
        allowed = CLASS_BEHAVIOR.get(reg.reg_class)
        if allowed is not None and reg.neve not in allowed:
            yield Finding(
                "spec-misclassified",
                "%s: behaviour %s is illegal for class %s (allowed: %s)"
                % (reg.name, reg.neve.value, reg.reg_class.value,
                   ", ".join(sorted(b.value for b in allowed))))


def _check_table_counts(snapshot):
    from repro.core.classification import (
        TABLE3_ROW_COUNT,
        TABLE4_CAPTION_COUNT,
        TABLE4_REDIRECT_COUNT,
        TABLE4_ROW_COUNT,
        TABLE5_ROW_COUNT,
    )

    if TABLE4_ROW_COUNT != TABLE4_CAPTION_COUNT + 1:
        yield Finding("spec-count",
                      "Table 4 caption/rows discrepancy constant drifted: "
                      "rows %d, caption %d (must differ by exactly the "
                      "one documented row)"
                      % (TABLE4_ROW_COUNT, TABLE4_CAPTION_COUNT))

    expected = {"table3": TABLE3_ROW_COUNT, "table4": TABLE4_ROW_COUNT,
                "table5": TABLE5_ROW_COUNT}
    for table, want in expected.items():
        got = snapshot.table_rows.get(table)
        if got != want:
            yield Finding("spec-count",
                          "%s renders %s rows, paper states %d"
                          % (table, got, want))

    # Re-count from the registry itself so the rendered views cannot
    # paper over a registry drift (Table 3 prints TPIDR_EL2 twice, hence
    # the +1).
    by_table = {"table3": 0, "table4": 0, "table5": 0}
    redirects = 0
    for reg in snapshot.registers:
        table = TABLE_OF_CLASS.get(reg.reg_class)
        if table in by_table:
            by_table[table] += 1
        if reg.neve is NeveBehavior.REDIRECT:
            redirects += 1
    registry_rows = {"table3": by_table["table3"] + 1,
                     "table4": by_table["table4"],
                     "table5": by_table["table5"]}
    for table, want in expected.items():
        if registry_rows[table] != want:
            yield Finding("spec-count",
                          "registry holds %d %s registers, paper states %d"
                          % (registry_rows[table], table, want))
    if redirects != TABLE4_REDIRECT_COUNT:
        yield Finding("spec-count",
                      "%d registers marked REDIRECT, Table 4 enumerates %d"
                      % (redirects, TABLE4_REDIRECT_COUNT))


def _check_encodings(snapshot):
    names = {reg.name for reg in snapshot.registers}
    by_encoding = {}
    for name, fields in snapshot.encodings.items():
        if name not in names:
            yield Finding("spec-encoding-orphan",
                          "encoding defined for %s, which is not in the "
                          "registry" % name)
        if fields in by_encoding:
            yield Finding("spec-encoding-duplicate",
                          "%s and %s share encoding %r"
                          % (by_encoding[fields], name, fields))
        by_encoding[fields] = name
    for reg in snapshot.registers:
        if reg.name not in snapshot.encodings:
            yield Finding("spec-encoding-missing",
                          "%s has no AArch64 encoding" % reg.name)


def _check_redirects(snapshot):
    by_name = {reg.name: reg for reg in snapshot.registers}
    for reg in snapshot.registers:
        needs_counterpart = (
            reg.neve is NeveBehavior.REDIRECT
            or reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP)
        if not needs_counterpart:
            continue
        target = reg.el1_counterpart
        if target is None:
            yield Finding("spec-redirect",
                          "%s redirects but names no EL1 counterpart"
                          % reg.name)
            continue
        counterpart = by_name.get(target)
        if counterpart is None:
            yield Finding("spec-redirect",
                          "%s redirects to %s, which is not in the "
                          "registry" % (reg.name, target))
        elif counterpart.el == 2:
            yield Finding("spec-redirect",
                          "%s redirects to %s, which is itself an EL2 "
                          "register" % (reg.name, target))
    seen_targets = {}
    for source, target in sorted(snapshot.e2h_redirects.items()):
        unknown = False
        for name in (source, target):
            if name not in by_name:
                yield Finding("spec-redirect",
                              "E2H redirect names unknown register %s "
                              "(%s -> %s)" % (name, source, target))
                unknown = True
        if unknown:
            continue
        if by_name[source].el == 2:
            yield Finding("spec-redirect",
                          "E2H redirect source %s is itself an EL2 "
                          "register" % source)
        if by_name[target].el != 2:
            yield Finding("spec-redirect",
                          "E2H redirect %s -> %s targets a non-EL2 "
                          "register" % (source, target))
        if target in seen_targets:
            yield Finding("spec-redirect",
                          "E2H redirects %s and %s share target %s "
                          "(map must be injective)"
                          % (seen_targets[target], source, target))
        seen_targets[target] = source


def _check_vncr_layout(snapshot):
    in_memory = (NeveBehavior.DEFER, NeveBehavior.CACHED_COPY)
    by_offset = {}
    for reg in snapshot.registers:
        if reg.neve in in_memory:
            if reg.vncr_offset is None:
                yield Finding("spec-vncr-layout",
                              "%s is %s but has no deferred-access-page "
                              "slot" % (reg.name, reg.neve.value))
                continue
            if reg.vncr_offset % 8:
                yield Finding("spec-vncr-layout",
                              "%s slot %#x is not 8-byte aligned"
                              % (reg.name, reg.vncr_offset))
            if reg.vncr_offset + 8 > snapshot.page_size:
                yield Finding("spec-vncr-layout",
                              "%s slot %#x falls outside the deferred "
                              "access page" % (reg.name, reg.vncr_offset))
            if reg.vncr_offset in by_offset:
                yield Finding("spec-vncr-layout",
                              "%s and %s share page offset %#x"
                              % (by_offset[reg.vncr_offset], reg.name,
                                 reg.vncr_offset))
            by_offset[reg.vncr_offset] = reg.name
        elif reg.vncr_offset is not None:
            yield Finding("spec-vncr-layout",
                          "%s is %s yet owns page offset %#x"
                          % (reg.name, reg.neve.value, reg.vncr_offset))


_CHECKS = (
    _check_unique_names,
    _check_class_coverage,
    _check_table_counts,
    _check_encodings,
    _check_redirects,
    _check_vncr_layout,
)


def check_spec(snapshot=None):
    """Run every spec-conformance check; returns a list of findings
    (empty when the classification data is consistent)."""
    if snapshot is None:
        snapshot = SpecSnapshot.live()
    findings = []
    for check in _CHECKS:
        findings.extend(check(snapshot))
    return findings
