"""Pass 3: runtime invariant sanitizer (opt-in, ASan-style).

Where the conformance matrix (:mod:`repro.core.conformance`) probes the
CPU model with a synthetic trap handler, the sanitizer rides along a
*real* simulation — full hypervisor stack, GIC, timers — and checks
every access as it happens:

* every system-register access from virtual EL2 resolves to exactly the
  behaviour Tables 3-5 specify (trap, redirect, defer, or permitted
  direct access) — no silent fallthrough into the wrong mechanism;
* deferred-access-page traffic only happens while ``VNCR_EL2.Enable``
  is set (Section 6.1: the host clears Enable while the nested VM runs
  so the VM reaches its real EL1 registers);
* :class:`~repro.core.neve.NeveRunner` bookkeeping stays in sync with
  the hardware ``VNCR_EL2`` value, enable/disable only happen at EL2,
  and cached-copy refreshes only target registers that actually own a
  page slot.

Violations are collected in a :class:`SanitizerReport` (or raised
immediately with ``strict=True``).  Attach with::

    with sanitized(cpus=machine.cpus, runners=[vcpu.neve]) as report:
        ... run the scenario ...
    report.assert_clean()
"""

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.base import Finding
from repro.arch.cpu import AccessKind, Encoding
from repro.arch.exceptions import ExceptionLevel
from repro.arch.registers import RegClass, lookup_register
from repro.core.conformance import expected_access_kind


class SanitizerError(AssertionError):
    """Raised on the first violation when running in strict mode."""


@dataclass
class SanitizerReport:
    """Accumulated sanitizer verdict for one simulation run."""

    checks: int = 0
    violations: list = field(default_factory=list)
    strict: bool = False

    @property
    def passed(self):
        return not self.violations

    def record(self, ok, rule, message):
        self.checks += 1
        if ok:
            return
        finding = Finding(rule, message)
        self.violations.append(finding)
        if self.strict:
            raise SanitizerError(finding.format())

    def assert_clean(self):
        if self.violations:
            raise SanitizerError(
                "%d invariant violation(s) in %d checks:\n%s"
                % (len(self.violations), self.checks,
                   "\n".join(f.format() for f in self.violations)))

    def summary(self):
        return ("sanitizer: %d checks, %d violations"
                % (self.checks, len(self.violations)))


class CpuSanitizer:
    """Wraps one :class:`~repro.arch.cpu.Cpu`'s access resolution."""

    def __init__(self, cpu, report):
        self.cpu = cpu
        self.report = report
        self._orig_sysreg_access = None
        self._orig_deferred_access = None

    def install(self):
        if self._orig_sysreg_access is not None:
            raise RuntimeError("sanitizer already installed on cpu %d"
                               % self.cpu.cpu_id)
        self._orig_sysreg_access = self.cpu.sysreg_access
        self._orig_deferred_access = self.cpu._deferred_access
        self.cpu.sysreg_access = self._checked_sysreg_access
        self.cpu._deferred_access = self._checked_deferred_access

    def uninstall(self):
        if self._orig_sysreg_access is None:
            return
        # The originals are bound methods; deleting the instance
        # attributes re-exposes them.
        del self.cpu.sysreg_access
        del self.cpu._deferred_access
        self._orig_sysreg_access = None
        self._orig_deferred_access = None

    def _checked_sysreg_access(self, name, is_write, value=None,
                               enc=Encoding.NORMAL):
        cpu = self.cpu
        # Snapshot the resolution inputs before the access runs: the
        # trap handler may world-switch and change them underneath us.
        at_vel2 = cpu.at_virtual_el2
        at_el2 = cpu.current_el is ExceptionLevel.EL2
        neve = cpu.neve_enabled
        vhe = cpu.virtual_e2h
        result, kind = self._orig_sysreg_access(name, is_write,
                                                value=value, enc=enc)
        if at_vel2 and cpu.arch.has_nv:
            reg = lookup_register(name)
            if reg.reg_class is not RegClass.SPECIAL:
                expected = expected_access_kind(reg, is_write, neve, vhe,
                                                enc=enc)
                self.report.record(
                    kind is expected, "san-access-kind",
                    "virtual-EL2 %s of %s (enc=%s) resolved to %s, "
                    "Tables 3-5 specify %s (neve=%s vhe=%s)"
                    % ("write" if is_write else "read", name,
                       enc.name.lower(), kind.value, expected.value,
                       neve, vhe))
        elif at_el2 and enc is not Encoding.NORMAL:
            # A VHE host's *_EL12/*_EL02 alias at real EL2 reaches the
            # hardware EL1 registers holding the VM's state — never a
            # trap, never the page (the NV transformations apply only
            # below EL2).
            self.report.record(
                kind is AccessKind.DIRECT_EL1, "san-host-alias",
                "EL2 %s of %s via %s resolved to %s, expected a direct "
                "EL1 access"
                % ("write" if is_write else "read", name,
                   enc.name.lower(), kind.value))
        return result, kind

    def _checked_deferred_access(self, reg, is_write, value):
        self.report.record(
            self.cpu.neve_enabled, "san-vncr-disabled",
            "deferred-access-page %s of %s while VNCR_EL2.Enable is "
            "clear" % ("write" if is_write else "read", reg.name))
        self.report.record(
            reg.vncr_offset is not None, "san-vncr-slot",
            "deferred access to %s, which owns no page slot" % reg.name)
        return self._orig_deferred_access(reg, is_write, value)


class RunnerSanitizer:
    """Wraps one :class:`~repro.core.neve.NeveRunner`."""

    def __init__(self, runner, report):
        self.runner = runner
        self.report = report
        self._originals = {}

    def install(self):
        if self._originals:
            raise RuntimeError("sanitizer already installed on runner")
        for method in ("enable", "disable", "write_cached_copy"):
            self._originals[method] = getattr(self.runner, method)
        self.runner.enable = self._checked_enable
        self.runner.disable = self._checked_disable
        self.runner.write_cached_copy = self._checked_write_cached_copy

    def uninstall(self):
        for method in self._originals:
            delattr(self.runner, method)
        self._originals = {}

    def _check_sync(self, what):
        cpu = self.runner.cpu
        self.report.record(
            cpu.current_el is ExceptionLevel.EL2, "san-runner-el",
            "NeveRunner.%s called while the CPU runs at %s; VNCR_EL2 is "
            "host-hypervisor state" % (what, cpu.current_el))
        hw = cpu.el2_regs.read("VNCR_EL2")
        self.report.record(
            hw == self.runner.vncr.value, "san-runner-drift",
            "after NeveRunner.%s the hardware VNCR_EL2 (%#x) disagrees "
            "with the runner's view (%#x)"
            % (what, hw, self.runner.vncr.value))

    def _checked_enable(self):
        result = self._originals["enable"]()
        self._check_sync("enable")
        return result

    def _checked_disable(self):
        result = self._originals["disable"]()
        self._check_sync("disable")
        return result

    def _checked_write_cached_copy(self, reg_name, value):
        reg = lookup_register(reg_name)
        self.report.record(
            reg.vncr_offset is not None, "san-vncr-slot",
            "cached-copy refresh of %s, which owns no page slot"
            % reg_name)
        return self._originals["write_cached_copy"](reg_name, value)


@contextmanager
def sanitized(cpus=(), runners=(), strict=False, report=None):
    """Attach sanitizers to *cpus* and *runners* for the dynamic extent
    of the block; yields the shared :class:`SanitizerReport`."""
    if report is None:
        report = SanitizerReport(strict=strict)
    wrappers = [CpuSanitizer(cpu, report) for cpu in cpus]
    wrappers += [RunnerSanitizer(runner, report) for runner in runners
                 if runner is not None]
    for wrapper in wrappers:
        wrapper.install()
    try:
        yield report
    finally:
        for wrapper in wrappers:
            wrapper.uninstall()


def check_trace_reconciliation(tracer, report=None):
    """Sanitizer check for the causal tracer (:mod:`repro.trace`):
    every cycle the ledger charged must be attributed to exactly one
    span (or explicitly accounted as dropped/open/unattributed), so
    ``sum(span.cycles) == ledger.total`` over the traced window.

    Records one ``san-trace-reconcile`` check into *report* and returns
    the report.
    """
    if report is None:
        report = SanitizerReport()
    rec = tracer.reconcile()
    report.record(
        rec.exact, "san-trace-reconcile",
        "span cycle attribution does not reconcile against the ledger: "
        + rec.describe())
    return report


def run_sanitized_scenario(modes=("nv", "neve"), hypercalls=2):
    """Run the exit-multiplication scenario (examples/
    exit_multiplication.py) under the sanitizer: boot a nested VM on the
    ARMv8.3 and NEVE models and drive L2 hypercalls end to end.

    Returns the combined :class:`SanitizerReport`; a clean report means
    every register access the full hypervisor stack performed resolved
    exactly as the specification tables demand.
    """
    from repro.harness.configs import ALL_CONFIGS, arm_arch_for
    from repro.hypervisor.kvm import Machine
    from repro.metrics.cycles import ARM_COSTS

    report = SanitizerReport()
    for mode in modes:
        config = ALL_CONFIGS["arm-nested" if mode == "nv"
                             else "neve-nested"]
        machine = Machine(arch=arm_arch_for(config), costs=ARM_COSTS)
        vm = machine.kvm.create_vm(num_vcpus=1, nested=mode)
        runners = [vcpu.neve for vcpu in vm.vcpus]
        with sanitized(cpus=machine.cpus, runners=runners,
                       report=report):
            machine.kvm.boot_nested(vm.vcpus[0])
            for _ in range(hypercalls):
                vm.vcpus[0].cpu.hvc(0)
    return report


def _metrics_scenario(mode, hypercalls, attach_metrics):
    """One nested boot + hypercall scenario, optionally under metrics.

    Returns ``(machine, metrics_or_None)``; the outcome tuple the
    metrics checks compare is read off the machine's legacy counters.
    """
    from repro.harness.configs import ALL_CONFIGS, arm_arch_for
    from repro.hypervisor.kvm import Machine
    from repro.metrics.cycles import ARM_COSTS
    from repro.metrics.instrument import MachineMetrics

    config = ALL_CONFIGS["arm-nested" if mode == "nv" else "neve-nested"]
    machine = Machine(arch=arm_arch_for(config), costs=ARM_COSTS)
    metrics = None
    if attach_metrics:
        metrics = MachineMetrics(config=config.name)
        metrics.attach_machine(machine)
        metrics.registry.clock = lambda: machine.ledger.total
    vm = machine.kvm.create_vm(num_vcpus=1, nested=mode)
    machine.kvm.boot_nested(vm.vcpus[0])
    for _ in range(hypercalls):
        vm.vcpus[0].cpu.hvc(0)
    return machine, metrics


def check_metrics_reconcile(machine, metrics, report=None):
    """``san-metrics-reconcile``: the registry mirrors must agree with
    the legacy counters they were migrated from — ``TrapCounter.total``
    equals the trap counter family's sum (and per reason), and
    ``CycleLedger.total`` equals the cycle counter family's sum (and per
    category).  Only meaningful when *metrics* was attached before the
    machine did any work.
    """
    if report is None:
        report = SanitizerReport()
    registry = metrics.registry
    traps = registry.get("repro_traps_total")
    report.record(
        traps is not None and traps.total() == machine.traps.total,
        "san-metrics-reconcile",
        "trap mirror diverged: TrapCounter.total=%d, registry sum=%s"
        % (machine.traps.total,
           traps.total() if traps is not None else None))
    for reason, count in sorted(machine.traps.by_reason.items(),
                                key=lambda item: item[0].value):
        mirrored = traps.labels(metrics.config, reason).value
        report.record(
            mirrored == count, "san-metrics-reconcile",
            "trap mirror diverged for %s: counter=%d, registry=%d"
            % (reason.value, count, mirrored))
    cycles = registry.get("repro_cycles_total")
    report.record(
        cycles is not None and cycles.total() == machine.ledger.total,
        "san-metrics-reconcile",
        "cycle mirror diverged: ledger.total=%d, registry sum=%s"
        % (machine.ledger.total,
           cycles.total() if cycles is not None else None))
    for category, count in sorted(machine.ledger.by_category.items()):
        mirrored = cycles.labels(metrics.config, category).value
        report.record(
            mirrored == count, "san-metrics-reconcile",
            "cycle mirror diverged for %s: ledger=%d, registry=%d"
            % (category, count, mirrored))
    return report


def check_metrics_ledger(report=None, mode="neve", hypercalls=2):
    """``san-metrics-ledger``: telemetry must be free in simulated time.

    Runs the same seeded scenario twice — metrics attached and detached
    — and demands identical ledger totals and trap counts (the disabled
    path adds zero cycles, the enabled path never charges); then exports
    both formats and demands the ledger did not move.
    """
    if report is None:
        report = SanitizerReport()
    bare_machine, _ = _metrics_scenario(mode, hypercalls,
                                        attach_metrics=False)
    machine, metrics = _metrics_scenario(mode, hypercalls,
                                         attach_metrics=True)
    report.record(
        machine.ledger.total == bare_machine.ledger.total,
        "san-metrics-ledger",
        "metrics changed simulated time: ledger %d with metrics, "
        "%d without" % (machine.ledger.total, bare_machine.ledger.total))
    report.record(
        machine.traps.total == bare_machine.traps.total,
        "san-metrics-ledger",
        "metrics changed trap behaviour: %d traps with metrics, "
        "%d without" % (machine.traps.total, bare_machine.traps.total))
    mark = machine.ledger.snapshot()
    metrics.registry.prometheus_text()
    metrics.registry.json_snapshot()
    report.record(
        machine.ledger.since(mark) == 0, "san-metrics-ledger",
        "exporting metrics charged the ledger: +%d cycles"
        % machine.ledger.since(mark))
    return report


def _profile_scenario(mode, hypercalls, attach_profiler):
    """The ``san-profile-zero-cycles`` scenario: the metrics scenario
    with a tracer attached too, optionally run under the host profiler.

    Returns ``(machine, metrics, trace_json, profiler_or_None)`` —
    *trace_json* is the canonical serialization of the tracer's ring
    buffer, so the check can demand the traced spans themselves are
    byte-identical with and without profiling.
    """
    import json as _json

    from repro.harness.configs import ALL_CONFIGS, arm_arch_for
    from repro.hypervisor.kvm import Machine
    from repro.metrics.cycles import ARM_COSTS
    from repro.metrics.instrument import MachineMetrics
    from repro.trace.export import tracer_payload
    from repro.trace.spans import Tracer

    config = ALL_CONFIGS["arm-nested" if mode == "nv" else "neve-nested"]
    machine = Machine(arch=arm_arch_for(config), costs=ARM_COSTS)
    metrics = MachineMetrics(config=config.name)
    metrics.attach_machine(machine)
    metrics.registry.clock = lambda: machine.ledger.total
    tracer = Tracer()
    tracer.attach_machine(machine)
    profiler = None
    if attach_profiler:
        from repro.profile.profiler import HostProfiler
        profiler = HostProfiler()
        profiler.attach_machine(machine, config=config.name)
        profiler.start()
    try:
        vm = machine.kvm.create_vm(num_vcpus=1, nested=mode)
        machine.kvm.boot_nested(vm.vcpus[0])
        for _ in range(hypercalls):
            vm.vcpus[0].cpu.hvc(0)
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.detach_machine()
    tracer.stop()
    trace_json = _json.dumps(tracer_payload(tracer), sort_keys=True,
                             separators=(",", ":"))
    return machine, metrics, trace_json, profiler


def check_profile_zero_cycles(report=None, mode="neve", hypercalls=2):
    """``san-profile-zero-cycles``: host profiling must be invisible to
    the simulation.

    Runs the same seeded scenario twice — host profiler attached and
    absent — and demands identical ledger totals, trap counts, and
    byte-identical metrics and trace exports (profiling measures host
    time and dispatch redundancy; it never charges a virtual cycle or
    perturbs an outcome).  Then builds the profile document itself and
    demands *that* charged nothing either.
    """
    if report is None:
        report = SanitizerReport()
    bare_machine, bare_metrics, bare_trace, _ = _profile_scenario(
        mode, hypercalls, attach_profiler=False)
    machine, metrics, trace_json, profiler = _profile_scenario(
        mode, hypercalls, attach_profiler=True)
    report.record(
        machine.ledger.total == bare_machine.ledger.total,
        "san-profile-zero-cycles",
        "profiling changed simulated time: ledger %d with profiler, "
        "%d without" % (machine.ledger.total, bare_machine.ledger.total))
    report.record(
        machine.traps.total == bare_machine.traps.total,
        "san-profile-zero-cycles",
        "profiling changed trap behaviour: %d traps with profiler, "
        "%d without" % (machine.traps.total, bare_machine.traps.total))
    report.record(
        metrics.registry.json_snapshot()
        == bare_metrics.registry.json_snapshot(),
        "san-profile-zero-cycles",
        "profiling changed the metrics JSON export")
    report.record(
        metrics.registry.prometheus_text()
        == bare_metrics.registry.prometheus_text(),
        "san-profile-zero-cycles",
        "profiling changed the Prometheus export")
    report.record(
        trace_json == bare_trace,
        "san-profile-zero-cycles",
        "profiling changed the traced spans")
    from repro.profile.export import profile_document, validate_profile
    mark = machine.ledger.snapshot()
    document = profile_document(profiler, scenario="san-profile")
    problems = validate_profile(document)
    report.record(
        not problems, "san-profile-zero-cycles",
        "profile document fails its own schema: %s" % "; ".join(problems))
    report.record(
        machine.ledger.since(mark) == 0, "san-profile-zero-cycles",
        "exporting the profile charged the ledger: +%d cycles"
        % machine.ledger.since(mark))
    return report


def check_fleet_merge(report=None, machines=3, seed=0):
    """``san-fleet-merge``: the fleet merge must be order-blind.

    Runs a small fleet's shards in-process once, then folds the same
    payloads in shard order, reversed and rotated — every fold must
    export byte-identical Prometheus text, JSON snapshots and fleet
    digests, and all must equal the sequential reference
    (:func:`repro.fleet.merge.reference_merge`).  This is the invariant
    that lets the supervisor retry and reschedule shards freely without
    the merged export ever depending on scheduling history.
    """
    from repro.fleet.merge import merge_payloads, reference_merge
    from repro.fleet.plan import FleetPlan
    from repro.fleet.worker import run_shard
    from repro.trace.export import verify_machine_trace

    if report is None:
        report = SanitizerReport()
    plan = FleetPlan.generate(seed, machines, shard_size=1)
    payloads = []
    for shard in plan.shards:
        records, metrics_document, traces, _ = run_shard(shard,
                                                         trace=True)
        payloads.append((shard.shard_id, records, metrics_document,
                         traces))

    orders = [payloads, list(reversed(payloads)),
              payloads[1:] + payloads[:1]]
    merges = [merge_payloads(order) for order in orders]
    baseline = merges[0]
    for index, merge in enumerate(merges[1:], start=1):
        report.record(
            merge.prometheus_text() == baseline.prometheus_text(),
            "san-fleet-merge",
            "prometheus export depends on shard arrival order "
            "(permutation %d differs)" % index)
        report.record(
            merge.json_snapshot() == baseline.json_snapshot(),
            "san-fleet-merge",
            "json export depends on shard arrival order "
            "(permutation %d differs)" % index)
        report.record(
            merge.digest == baseline.digest,
            "san-fleet-merge",
            "fleet digest depends on shard arrival order "
            "(permutation %d differs)" % index)
        report.record(
            merge.chrome_trace_json() == baseline.chrome_trace_json(),
            "san-fleet-merge",
            "stitched fleet trace depends on shard arrival order "
            "(permutation %d differs)" % index)
    reference = reference_merge(plan, trace=True)
    report.record(
        reference.prometheus_text() == baseline.prometheus_text()
        and reference.json_snapshot() == baseline.json_snapshot()
        and reference.digest == baseline.digest
        and reference.chrome_trace_json() == baseline.chrome_trace_json(),
        "san-fleet-merge",
        "shuffled merge diverged from the sequential reference run")
    # The per-machine reconciliation invariant must still hold *after*
    # the merge — each stitched machine lane balances its own books.
    for machine_index in sorted(baseline.traces):
        problems = verify_machine_trace(baseline.traces[machine_index])
        report.record(
            not problems, "san-trace-reconcile",
            "machine %d trace payload fails after fleet merge: %s"
            % (machine_index, "; ".join(problems)))
    return report


def _fastpath_scenario(mode, hypercalls, fastpath, guest_vhe=False):
    """One nested boot + hypercall scenario with the dispatch fast path
    forced on or off, instrumented like :func:`_profile_scenario`.

    Returns ``(machine, metrics, trace_json)``.
    """
    import json as _json

    from repro.harness.configs import ALL_CONFIGS, arm_arch_for
    from repro.hypervisor.kvm import Machine
    from repro.metrics.cycles import ARM_COSTS
    from repro.metrics.instrument import MachineMetrics
    from repro.trace.export import tracer_payload
    from repro.trace.spans import Tracer

    config = ALL_CONFIGS["arm-nested" if mode == "nv" else "neve-nested"]
    machine = Machine(arch=arm_arch_for(config), costs=ARM_COSTS,
                      fastpath=fastpath)
    metrics = MachineMetrics(config=config.name)
    metrics.attach_machine(machine)
    metrics.registry.clock = lambda: machine.ledger.total
    tracer = Tracer()
    tracer.attach_machine(machine)
    vm = machine.kvm.create_vm(num_vcpus=1, nested=mode,
                               guest_vhe=guest_vhe)
    machine.kvm.boot_nested(vm.vcpus[0])
    for _ in range(hypercalls):
        vm.vcpus[0].cpu.hvc(0)
    tracer.stop()
    trace_json = _json.dumps(tracer_payload(tracer), sort_keys=True,
                             separators=(",", ":"))
    return machine, metrics, trace_json


def check_fastpath_parity(report=None, modes=("nv", "neve"),
                          hypercalls=2):
    """``san-fastpath-parity``: the precompiled dispatch table must be a
    pure speedup.

    Runs the same seeded scenario twice per mode and VHE flavour — fast
    path disabled (the classification ladder re-derives every verdict)
    and enabled (one table lookup per access) — and demands every
    emergent observable is byte-identical: ledger total and per-category
    breakdown, trap total and per-reason counts, the metrics registry's
    JSON and Prometheus exports, and the canonical trace serialization.
    Also asserts the fast machine actually resolved table entries, so a
    wiring regression cannot silently compare slow against slow.
    """
    if report is None:
        report = SanitizerReport()
    for mode in modes:
        for guest_vhe in (False, True):
            label = "%s%s" % (mode, "+vhe" if guest_vhe else "")
            slow_machine, slow_metrics, slow_trace = _fastpath_scenario(
                mode, hypercalls, fastpath=False, guest_vhe=guest_vhe)
            fast_machine, fast_metrics, fast_trace = _fastpath_scenario(
                mode, hypercalls, fastpath=True, guest_vhe=guest_vhe)
            report.record(
                fast_machine.dispatch is not None
                and fast_machine.dispatch.resolutions > 0,
                "san-fastpath-parity",
                "[%s] the fast path never resolved a dispatch entry — "
                "parity would compare slow against slow" % label)
            report.record(
                fast_machine.ledger.total == slow_machine.ledger.total,
                "san-fastpath-parity",
                "[%s] fast path changed simulated time: ledger %d fast, "
                "%d slow" % (label, fast_machine.ledger.total,
                             slow_machine.ledger.total))
            report.record(
                fast_machine.ledger.by_category
                == slow_machine.ledger.by_category,
                "san-fastpath-parity",
                "[%s] fast path changed the cycle breakdown" % label)
            report.record(
                fast_machine.traps.total == slow_machine.traps.total,
                "san-fastpath-parity",
                "[%s] fast path changed trap behaviour: %d traps fast, "
                "%d slow" % (label, fast_machine.traps.total,
                             slow_machine.traps.total))
            report.record(
                fast_machine.traps.by_reason
                == slow_machine.traps.by_reason,
                "san-fastpath-parity",
                "[%s] fast path changed the per-reason trap counts"
                % label)
            report.record(
                fast_metrics.registry.json_snapshot()
                == slow_metrics.registry.json_snapshot(),
                "san-fastpath-parity",
                "[%s] fast path changed the metrics JSON export" % label)
            report.record(
                fast_metrics.registry.prometheus_text()
                == slow_metrics.registry.prometheus_text(),
                "san-fastpath-parity",
                "[%s] fast path changed the Prometheus export" % label)
            report.record(
                fast_trace == slow_trace,
                "san-fastpath-parity",
                "[%s] fast path changed the traced spans" % label)
    return report


def run_metrics_checks(modes=("nv", "neve"), hypercalls=2):
    """Run both metrics sanitizer checks over the standard scenario;
    returns the combined report (wired into ``python -m repro lint``)."""
    report = SanitizerReport()
    for mode in modes:
        machine, metrics = _metrics_scenario(mode, hypercalls,
                                             attach_metrics=True)
        check_metrics_reconcile(machine, metrics, report=report)
    check_metrics_ledger(report=report, hypercalls=hypercalls)
    return report
