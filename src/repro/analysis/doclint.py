"""Doc lint (``doc-*`` rules): keep the operator docs honest.

Two checks over the repository's markdown (``README.md`` plus
``docs/``), run as part of ``python -m repro lint``:

* **doc-link** — every relative ``[text](target)`` link must resolve to
  an existing file or directory.  External links (``http``/``https``/
  ``mailto``) and pure in-page anchors (``#...``) are skipped; a
  ``file.md#anchor`` target is checked for the file part only.
* **doc-subcommand** — every ``python -m repro <subcommand>`` a doc
  names must exist in the ``repro.__main__`` routing table, so the docs
  cannot drift ahead of (or behind) the CLI.

The pass takes no options: it always runs over the repo the installed
``repro`` package belongs to (tests point it at a temp tree via the
``root`` argument).
"""

import re
from pathlib import Path

from repro.analysis.base import Finding

#: ``[text](target)`` — inline markdown links, optional "title" ignored.
_LINK = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")

#: ``python -m repro <word>`` — the first token after the module, when
#: it looks like a subcommand name (flags and bare invocations don't).
_SUBCOMMAND = re.compile(r"python\s+-m\s+repro\s+([a-z][a-z0-9_-]*)")

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _repo_root():
    """The repository the installed ``repro`` package lives in
    (``src/repro`` -> two levels up)."""
    import repro
    return Path(repro.__file__).parent.parent.parent


def _doc_files(root):
    docs = []
    readme = root / "README.md"
    if readme.exists():
        docs.append(readme)
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        docs.extend(sorted(docs_dir.rglob("*.md")))
    return docs


def _known_subcommands():
    from repro.__main__ import SUBCOMMANDS
    return {name for name, _module, _description in SUBCOMMANDS}


def check_docs(root=None):
    """Run both doc checks; returns a list of :class:`Finding`."""
    root = Path(root) if root is not None else _repo_root()
    known = _known_subcommands()
    findings = []
    for doc in _doc_files(root):
        rel = doc.relative_to(root)
        for line_number, line in enumerate(
                doc.read_text().splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = (doc.parent / file_part)
                if not resolved.exists():
                    findings.append(Finding(
                        rule="doc-link",
                        message="broken relative link: %s" % target,
                        path=str(rel), line=line_number))
            for match in _SUBCOMMAND.finditer(line):
                name = match.group(1)
                if name not in known:
                    findings.append(Finding(
                        rule="doc-subcommand",
                        message="doc names 'python -m repro %s' but the "
                                "routing table has no such subcommand "
                                "(known: %s)"
                                % (name, ", ".join(sorted(known))),
                        path=str(rel), line=line_number))
    return findings
