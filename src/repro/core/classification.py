"""The NEVE register classification — the paper's Tables 2 through 5.

These functions return the specification tables as data, so tests can
assert the counts the paper states (27 VM system registers, the Table 4
hypervisor control rows, 30 GIC hypervisor interface registers) and the
report harness can print them (experiment E7 in DESIGN.md).

The classification is also what makes the trap-dispatch fast path
(:mod:`repro.arch.dispatch`) sound: every behaviour here is a pure
function of (register, EL context, encoding, access direction, NEVE
enable), so verdicts precompile into flat tables and cache per access
key — the hot loop never needs to consult these tables at access time.
"""

from repro.arch.registers import NeveBehavior, RegClass, iter_registers

#: Row count of Table 3 as printed: 27, because the paper lists
#: ``TPIDR_EL2`` in both the VM Trap Control and Thread ID groups
#: (26 unique registers).
TABLE3_ROW_COUNT = 27

#: What Table 4's caption claims ("17 hypervisor control registers").
TABLE4_CAPTION_COUNT = 17

#: What Table 4's rows actually enumerate.  The caption and the rows
#: disagree by one; we encode the rows (see DESIGN.md fidelity notes).
#: This is the single authoritative constant — tests and the spec
#: conformance checker must not re-derive it.
TABLE4_ROW_COUNT = TABLE4_CAPTION_COUNT + 1

#: Table 4 rows handled by register redirection (both redirect groups).
TABLE4_REDIRECT_COUNT = 12

#: GIC hypervisor control interface registers (Table 5).
TABLE5_ROW_COUNT = 30


def table2_fields():
    """VNCR_EL2 register fields (Table 2)."""
    return [
        {"bits": "52:12", "field": "BADDR",
         "description": "Deferred Access Page Base Address"},
        {"bits": "11:1", "field": "Reserved", "description": "Reserved"},
        {"bits": "0", "field": "Enable", "description": "Enable"},
    ]


def table3_vm_registers():
    """The VM system registers (Table 3), grouped as in the paper.

    The paper counts "27 VM system registers" because its Table 3 lists
    ``TPIDR_EL2`` in *both* the VM Trap Control group and the Thread ID
    group; we reproduce the 27 rows faithfully (26 unique registers).
    """
    groups = (
        ("VM Trap Control", RegClass.VM_TRAP_CONTROL),
        ("VM Execution Control", RegClass.VM_EXECUTION_CONTROL),
        ("Thread ID", RegClass.THREAD_ID),
    )
    table = []
    for label, reg_class in groups:
        for reg in iter_registers(reg_class=reg_class):
            table.append({"category": label, "register": reg.name,
                          "description": reg.description})
        if label == "VM Trap Control":
            table.append({"category": label, "register": "TPIDR_EL2",
                          "description": "EL2 Software Thread ID "
                                         "(duplicated row, as in the "
                                         "paper's Table 3)"})
    return table


def table4_hyp_control_registers():
    """Hypervisor control registers and their NEVE technique (Table 4)."""
    groups = (
        ("Redirect to *_EL1", RegClass.HYP_REDIRECT),
        ("Redirect to *_EL1 (VHE)", RegClass.HYP_REDIRECT_VHE),
        ("Trap on write", RegClass.HYP_TRAP_ON_WRITE),
        ("Redirect or trap", RegClass.HYP_REDIRECT_OR_TRAP),
    )
    table = []
    for label, reg_class in groups:
        for reg in iter_registers(reg_class=reg_class):
            table.append({"technique": label, "register": reg.name,
                          "description": reg.description,
                          "el1_counterpart": reg.el1_counterpart})
    return table


def table5_gic_registers():
    """GIC hypervisor control interface registers (Table 5): all cached
    copies, trap on write."""
    return [{"technique": "Trap on write", "register": reg.name,
             "description": reg.description}
            for reg in iter_registers(reg_class=RegClass.GIC_HYP)]


def extension_registers():
    """Registers the paper classifies only in prose (Section 6.1 last
    paragraph) or omits for space; see DESIGN.md fidelity notes."""
    extra_classes = (RegClass.PMU, RegClass.DEBUG, RegClass.TIMER_EL2,
                     RegClass.TIMER_GUEST, RegClass.EL1_CONTEXT)
    table = []
    for reg_class in extra_classes:
        for reg in iter_registers(reg_class=reg_class):
            table.append({"category": reg.reg_class.value,
                          "register": reg.name,
                          "neve": reg.neve.value,
                          "description": reg.description})
    return table


def classification_summary():
    """Counts per NEVE behaviour, used by the spec report and tests."""
    summary = {}
    for behavior in NeveBehavior:
        summary[behavior.value] = sum(
            1 for _ in iter_registers(neve=behavior))
    return summary
