"""VNCR_EL2 and the deferred access page (Section 6.1, Table 2).

``VNCR_EL2`` is the one new register NEVE adds.  Its fields:

======  =============================================
bits    field
======  =============================================
52:12   BADDR — deferred access page base address
11:1    reserved
0       Enable
======  =============================================

Section 6.3 mandates that software programs a *page-aligned* physical
address into BADDR "to avoid the need to perform alignment checks or
handle address translation faults" in hardware; :class:`VncrEl2` enforces
that at write time, as real hardware would by construction of the field.

The deferred access page layout "can be arbitrarily defined as long as
each VM system register is stored at a well-defined offset from BADDR";
our architecturally-defined layout is the registry order in
:mod:`repro.arch.registers` (8 bytes per register).
"""

from repro.arch.registers import (
    NeveBehavior,
    iter_registers,
    lookup_register,
)
from repro.memory.phys import PAGE_SIZE, is_page_aligned

ENABLE_BIT = 1
BADDR_MASK = ((1 << 53) - 1) & ~0xFFF


class VncrEl2:
    """Typed view over a VNCR_EL2 value."""

    def __init__(self, value=0):
        self.value = value & 0xFFFFFFFFFFFFFFFF

    @classmethod
    def make(cls, baddr, enable=True):
        if not is_page_aligned(baddr):
            raise ValueError(
                "VNCR_EL2.BADDR must be page aligned (Section 6.3), "
                "got %#x" % baddr)
        if baddr & ~BADDR_MASK:
            raise ValueError("BADDR %#x exceeds the 52:12 field" % baddr)
        return cls((baddr & BADDR_MASK) | (ENABLE_BIT if enable else 0))

    @property
    def baddr(self):
        return self.value & BADDR_MASK

    @property
    def enabled(self):
        return bool(self.value & ENABLE_BIT)

    def with_enable(self, enable):
        if enable:
            return VncrEl2(self.value | ENABLE_BIT)
        return VncrEl2(self.value & ~ENABLE_BIT)

    def __repr__(self):
        return "VncrEl2(baddr=%#x, enabled=%r)" % (self.baddr, self.enabled)


def deferred_offset(reg_name):
    """Byte offset of *reg_name* within the deferred access page."""
    reg = lookup_register(reg_name)
    if reg.vncr_offset is None:
        raise KeyError("%s has no deferred access page slot" % reg_name)
    return reg.vncr_offset


def deferred_registers():
    """Every register with a slot in the page, in layout order."""
    regs = [r for r in iter_registers()
            if r.neve in (NeveBehavior.DEFER, NeveBehavior.CACHED_COPY)]
    return sorted(regs, key=lambda r: r.vncr_offset)


class DeferredAccessPage:
    """Host-hypervisor view of one guest hypervisor's deferred page.

    The *hardware* reaches the page through the CPU's deferred-access
    rewriting (:meth:`repro.arch.cpu.Cpu._deferred_access`); this class is
    the software view the host hypervisor uses to populate and read back
    values (the "typical workflow" of Section 6.1).  Both views address
    the same physical memory, which is the point of the design.
    """

    def __init__(self, memory, baddr):
        if not is_page_aligned(baddr):
            raise ValueError("deferred access page must be page aligned")
        from repro.arch.registers import deferred_page_size
        if deferred_page_size() > PAGE_SIZE:
            raise AssertionError(
                "register registry no longer fits one page; layout needs "
                "a second page")
        self.memory = memory
        self.baddr = baddr
        # Optional tracer (repro.trace); when attached, every software
        # access to the page becomes an instant event in the causal trace.
        self.tracer = None

    def read_reg(self, reg_name):
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("page.read:%s" % reg_name, kind="vncr",
                           detail={"register": reg_name,
                                   "baddr": self.baddr})
        return self.memory.read_word(self.baddr + deferred_offset(reg_name))

    def write_reg(self, reg_name, value):
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("page.write:%s" % reg_name, kind="vncr",
                           detail={"register": reg_name,
                                   "baddr": self.baddr})
        self.memory.write_word(self.baddr + deferred_offset(reg_name), value)

    def populate_from(self, regfile, names=None):
        """Copy register values into the page (host entering the guest
        hypervisor: "populates the deferred access page with initial
        values")."""
        if names is None:
            names = [r.name for r in deferred_registers()]
        for name in names:
            self.write_reg(name, regfile.read(name))

    def writeback_to(self, regfile, names=None):
        """Copy page values back into a register file (host consuming the
        guest hypervisor's deferred writes, e.g. on an eret trap)."""
        if names is None:
            names = [r.name for r in deferred_registers()]
        for name in names:
            regfile.write(name, self.read_reg(name))

    def as_dict(self):
        return {r.name: self.read_reg(r.name) for r in deferred_registers()}
