"""Host-hypervisor-side NEVE mechanism (Section 6.1 workflow).

"In a typical workflow, the host hypervisor populates the deferred access
page with initial values of the registers and enables NEVE before running
the guest hypervisor.  During guest hypervisor execution, all accesses to
VM system registers are redirected to the deferred access page.  When the
host hypervisor needs to use the VM register values, it simply accesses
the deferred access page."

A detail that matters for performance (and that the shipped ARMv8.4/NV2
KVM support also relies on): the page is the *permanent* backing store of
the guest hypervisor's deferred state.  The host populates it once when
the virtual-EL2 context is created and afterwards only touches individual
entries — on trapped writes to cached-copy registers, and when it needs VM
register values to enter the nested VM.  Re-writing the whole page on
every entry would reintroduce the very cost NEVE removes.
"""

from repro.core.vncr import DeferredAccessPage, VncrEl2, deferred_registers


class NeveRunner:
    """Manages NEVE for one guest-hypervisor virtual CPU.

    All memory traffic is charged to the CPU's ledger because the host
    hypervisor performs it at EL2; the guest hypervisor's own deferred
    accesses are charged by the CPU layer when it rewrites them.
    """

    def __init__(self, cpu, memory, baddr):
        self.cpu = cpu
        self.memory = memory
        self.page = DeferredAccessPage(memory, baddr)
        self.vncr = VncrEl2.make(baddr, enable=False)
        # Optional fault injector: may swallow cached-copy refreshes to
        # model a stale deferred page (repro.faults).
        self.fault_hook = None

    # -- enable / disable --------------------------------------------------

    def enable(self):
        """Program VNCR_EL2 with Enable set (host runs at EL2)."""
        self.vncr = self.vncr.with_enable(True)
        self.cpu.msr("VNCR_EL2", self.vncr.value)
        # Flipping Enable changes every virtual-EL2 verdict; the msr
        # above already invalidates on the fast path, this keeps the
        # contract explicit for callers that bank the register directly.
        self.cpu.invalidate_verdict_cache()

    def disable(self):
        """Clear Enable "while running the nested VM so the VM can access
        its EL1 registers" (Section 6.1)."""
        self.vncr = self.vncr.with_enable(False)
        self.cpu.msr("VNCR_EL2", self.vncr.value)
        self.cpu.invalidate_verdict_cache()

    @property
    def enabled(self):
        return self.vncr.enabled

    # -- page traffic -------------------------------------------------------

    def init_page(self, vel2_regs):
        """One-time population at virtual-EL2 context creation."""
        for reg in deferred_registers():
            self.cpu.store(self.page.baddr + reg.vncr_offset,
                           vel2_regs.read(reg.name), category="neve_host")

    def write_cached_copy(self, reg_name, value):
        """Refresh one cached-copy entry after emulating a trapped write,
        so subsequent guest reads are served from memory."""
        hook = self.fault_hook
        if hook is not None and hook.drop_cached_copy(self, reg_name,
                                                      value):
            return  # injected fault: the refresh never reaches the page
        self.cpu.store(self.page.baddr
                       + _offset(reg_name), value, category="neve_host")

    def read_deferred(self, reg_name):
        """Host reads one deferred value (e.g. VM state on an eret trap)."""
        return self.cpu.load(self.page.baddr + _offset(reg_name),
                             category="neve_host")

    def read_many(self, reg_names):
        return {name: self.read_deferred(name) for name in reg_names}

    def write_deferred(self, reg_name, value):
        """Host updates one deferred value (e.g. saving nested VM state
        into the page before re-entering the guest hypervisor)."""
        self.cpu.store(self.page.baddr + _offset(reg_name), value,
                       category="neve_host")

    # -- migration ----------------------------------------------------------

    def relocate(self, new_baddr):
        """Move the deferred access page to *new_baddr* (VM migration:
        the destination host allocated a fresh page).

        The host copies every slot, then reprograms the hardware
        ``VNCR_EL2`` BADDR — preserving the current Enable bit — so the
        guest hypervisor's next deferred access lands on the new page.
        Must run at EL2.
        """
        old_baddr = self.page.baddr
        for reg in deferred_registers():
            value = self.cpu.load(old_baddr + reg.vncr_offset,
                                  category="neve_host")
            self.cpu.store(new_baddr + reg.vncr_offset, value,
                           category="neve_host")
        self.page = DeferredAccessPage(self.memory, new_baddr)
        self.vncr = VncrEl2.make(new_baddr, enable=self.vncr.enabled)
        self.cpu.msr("VNCR_EL2", self.vncr.value)
        self.cpu.invalidate_verdict_cache()
        return old_baddr


def _offset(reg_name):
    from repro.core.vncr import deferred_offset
    return deferred_offset(reg_name)
