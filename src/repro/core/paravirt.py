"""Paravirtualization for architecture evaluation (Section 3).

The paper's methodological contribution: use paravirtualization not to
simplify a hypervisor, but to *mimic architecture features that do not
exist yet* on current hardware, at native speed.  Concretely (Section 4):

* To mimic **ARMv8.3** on ARMv8.0, every guest-hypervisor instruction that
  v8.3 would trap to EL2 — EL2 register accesses, VM-interfering EL1
  accesses by a non-VHE hypervisor, ``eret``, the VHE ``*_EL12``/``*_EL02``
  aliases — is replaced by an ``hvc`` whose 16-bit immediate encodes the
  original instruction, and ``CurrentEL`` reads are rewritten to return
  EL2.
* To mimic **NEVE** (Section 6.4), accesses to VM registers are replaced
  with ordinary loads/stores on a page shared with the host hypervisor,
  and accesses to redirect-class hypervisor control registers are replaced
  with accesses to the corresponding EL1 registers.  Cached-copy registers
  keep a load for reads and an ``hvc`` for writes; EL2 timers and the
  ``*_EL02`` aliases keep their traps.

This module implements the rewriter over a small instruction IR plus an
interpreter, so the methodology itself can be tested: executing a
guest-hypervisor program natively on a simulated v8.3/v8.4 CPU must
produce the same trap count and the same virtual-EL2 state as executing
the rewritten program on a simulated v8.0 CPU (see
``tests/core/test_paravirt.py``).

The key validity assumption — that different kinds of traps cost the same
— is the paper's Section 5 measurement ("trapping from EL1 to EL2 was
between 68 to 76 cycles ... difference less than 10%"); the
:class:`TrapCostValidation` experiment reproduces it.
"""

import enum
from dataclasses import dataclass, replace

from repro.arch.cpu import Encoding
from repro.arch.exceptions import ExceptionClass, ExceptionLevel
from repro.arch.registers import NeveBehavior, RegClass, lookup_register


class InstrKind(enum.Enum):
    SYSREG_READ = "mrs"
    SYSREG_WRITE = "msr"
    ERET = "eret"
    HVC = "hvc"
    READ_CURRENTEL = "currentel"
    LOAD = "ldr"
    STORE = "str"
    NOP = "nop"


@dataclass(frozen=True)
class Instr:
    """One instruction of a modelled guest-hypervisor code sequence."""

    kind: InstrKind
    reg: str = None
    enc: Encoding = Encoding.NORMAL
    value: int = None
    imm: int = 0
    addr: int = 0

    def describe(self):
        if self.kind in (InstrKind.SYSREG_READ, InstrKind.SYSREG_WRITE):
            suffix = "" if self.enc is Encoding.NORMAL else "[%s]" % self.enc.value
            return "%s %s%s" % (self.kind.value, self.reg, suffix)
        if self.kind is InstrKind.HVC:
            return "hvc #%d" % self.imm
        return self.kind.value


class HvcEncodingTable:
    """Bidirectional mapping between replaced instructions and ``hvc``
    immediates (Section 4: "We encode the hypervisor instructions using
    the 16-bit operand")."""

    ERET_IMM = 0xFFFF

    def __init__(self):
        self._by_imm = {}
        self._by_key = {}
        self._next = 1  # imm 0 stays a plain hypercall

    def encode(self, instr):
        if instr.kind is InstrKind.ERET:
            return self.ERET_IMM
        key = (instr.kind, instr.reg, instr.enc)
        imm = self._by_key.get(key)
        if imm is None:
            imm = self._next
            self._next += 1
            if imm >= 0xFFF0:
                raise OverflowError("hvc immediate space exhausted")
            self._by_key[key] = imm
            self._by_imm[imm] = key
        return imm

    def decode(self, imm):
        """Return ``(kind, reg, enc)`` for *imm*, or None for imm 0 /
        unknown immediates (plain hypercalls)."""
        if imm == self.ERET_IMM:
            return (InstrKind.ERET, None, Encoding.NORMAL)
        return self._by_imm.get(imm)


def would_trap_at_virtual_el2(instr, virtual_e2h, neve, arch):
    """Would ARMv8.3 (or NEVE when *neve*) trap this instruction executed
    at virtual EL2?

    This is the rewriter's oracle; ``tests/core/test_paravirt.py`` checks
    it against the CPU model's actual behaviour for the whole registry so
    the two cannot drift apart.
    """
    if instr.kind is InstrKind.ERET:
        return True
    if instr.kind in (InstrKind.HVC,):
        return True
    if instr.kind not in (InstrKind.SYSREG_READ, InstrKind.SYSREG_WRITE):
        return False

    reg = lookup_register(instr.reg)
    is_write = instr.kind is InstrKind.SYSREG_WRITE

    if instr.enc is Encoding.EL02:
        return True
    if instr.enc is Encoding.EL12:
        if neve and reg.neve is NeveBehavior.DEFER:
            return False
        if neve and reg.neve is NeveBehavior.CACHED_COPY and not is_write:
            return False
        return True

    if reg.reg_class is RegClass.GIC_CPU:
        return reg.neve is NeveBehavior.TRAP  # only SGI generation traps
    if reg.el == 0 and reg.neve is not NeveBehavior.TRAP:
        return False  # EL0 state is not protected by the NV mechanisms

    if reg.el == 2:
        if not neve:
            return True
        behavior = reg.neve
        if reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP and virtual_e2h:
            behavior = NeveBehavior.REDIRECT
        if behavior is NeveBehavior.DEFER:
            return False
        if behavior is NeveBehavior.REDIRECT:
            return False
        if behavior is NeveBehavior.CACHED_COPY:
            return is_write
        return True  # TRAP / unclassified

    # EL1/EL0 encodings.
    if virtual_e2h:
        return False  # hardware E2H redirection, no trap (Section 5)
    if reg.neve is NeveBehavior.NONE:
        return False  # e.g. CNTVCT_EL0
    if neve:
        if reg.neve is NeveBehavior.DEFER:
            return False
        if reg.neve is NeveBehavior.CACHED_COPY:
            return is_write
        return reg.neve is NeveBehavior.TRAP
    return True  # ARMv8.3: non-VHE guest hypervisor EL1 accesses trap


def neve_rewrite_action(instr, virtual_e2h):
    """How the NEVE paravirtualization (Section 6.4) rewrites *instr*.

    Returns one of ``"defer"`` (load/store on the shared page),
    ``"redirect"`` (EL1 register access), ``"trap"`` (hvc), ``"keep"``.
    """
    if instr.kind is InstrKind.ERET:
        return "trap"
    if instr.kind not in (InstrKind.SYSREG_READ, InstrKind.SYSREG_WRITE):
        return "keep"
    if would_trap_at_virtual_el2(instr, virtual_e2h, neve=True,
                                 arch=None):
        return "trap"
    reg = lookup_register(instr.reg)
    is_write = instr.kind is InstrKind.SYSREG_WRITE
    if instr.enc is Encoding.EL12 and reg.neve in (
            NeveBehavior.DEFER, NeveBehavior.CACHED_COPY):
        return "defer"
    if reg.el == 0 and instr.enc is Encoding.NORMAL:
        return "keep"  # EL0 accesses never trapped in the first place
    if reg.el == 2:
        behavior = reg.neve
        if reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP and virtual_e2h:
            behavior = NeveBehavior.REDIRECT
        if behavior is NeveBehavior.DEFER:
            return "defer"
        if behavior is NeveBehavior.REDIRECT:
            return "redirect"
        if behavior is NeveBehavior.CACHED_COPY and not is_write:
            return "defer"
        return "keep"
    if not virtual_e2h and reg.neve is NeveBehavior.DEFER:
        return "defer"
    if (not virtual_e2h and reg.neve is NeveBehavior.CACHED_COPY
            and not is_write):
        return "defer"
    return "keep"


def paravirtualize(program, mode, hvc_table, virtual_e2h=False,
                   page_base=0x0):
    """Rewrite *program* (a list of :class:`Instr`) for ARMv8.0 hardware.

    ``mode`` is ``"nv"`` (mimic ARMv8.3 trap behaviour) or ``"neve"``
    (mimic NEVE behaviour); ``page_base`` locates the shared memory region
    standing in for the deferred access page in ``"neve"`` mode.

    The transformation mirrors the paper's source-level wrappers: the
    instruction sequence's *structure* is preserved, only individual
    instructions are substituted ("we did not change any of the logic or
    instruction flow of the original KVM/ARM code base").
    """
    if mode not in ("nv", "neve"):
        raise ValueError("mode must be 'nv' or 'neve'")
    rewritten = []
    for instr in program:
        if instr.kind is InstrKind.READ_CURRENTEL:
            # Mimic the v8.3 disguise: return EL2 without any access.
            rewritten.append(replace(instr, kind=InstrKind.NOP))
            continue
        if mode == "nv":
            traps = would_trap_at_virtual_el2(instr, virtual_e2h,
                                              neve=False, arch=None)
            if instr.kind is InstrKind.HVC:
                rewritten.append(instr)
            elif traps:
                rewritten.append(Instr(kind=InstrKind.HVC,
                                       imm=hvc_table.encode(instr)))
            else:
                rewritten.append(instr)
            continue
        # mode == "neve"
        action = ("keep" if instr.kind is InstrKind.HVC
                  else neve_rewrite_action(instr, virtual_e2h))
        if action == "keep":
            if instr.kind is not InstrKind.HVC and would_trap_at_virtual_el2(
                    instr, virtual_e2h, neve=True, arch=None):
                rewritten.append(Instr(kind=InstrKind.HVC,
                                       imm=hvc_table.encode(instr)))
            else:
                rewritten.append(instr)
        elif action == "trap":
            rewritten.append(Instr(kind=InstrKind.HVC,
                                   imm=hvc_table.encode(instr)))
        elif action == "defer":
            reg = lookup_register(instr.reg)
            addr = page_base + reg.vncr_offset
            kind = (InstrKind.STORE
                    if instr.kind is InstrKind.SYSREG_WRITE
                    else InstrKind.LOAD)
            rewritten.append(Instr(kind=kind, addr=addr, value=instr.value))
        elif action == "redirect":
            reg = lookup_register(instr.reg)
            rewritten.append(replace(instr, reg=reg.el1_counterpart,
                                     enc=Encoding.NORMAL))
    return rewritten


def execute_program(cpu, program):
    """Run *program* on *cpu*; returns the list of per-instruction results.

    Works at any exception level; trapping instructions invoke the CPU's
    installed trap handler exactly like hand-written hypervisor flows.
    """
    results = []
    for instr in program:
        if instr.kind is InstrKind.SYSREG_READ:
            results.append(cpu.mrs(instr.reg, instr.enc))
        elif instr.kind is InstrKind.SYSREG_WRITE:
            results.append(cpu.msr(instr.reg,
                                   instr.value if instr.value is not None
                                   else 0, instr.enc))
        elif instr.kind is InstrKind.ERET:
            results.append(cpu.eret())
        elif instr.kind is InstrKind.HVC:
            results.append(cpu.hvc(instr.imm))
        elif instr.kind is InstrKind.READ_CURRENTEL:
            results.append(cpu.read_currentel())
        elif instr.kind is InstrKind.LOAD:
            results.append(cpu.load(instr.addr))
        elif instr.kind is InstrKind.STORE:
            results.append(cpu.store(instr.addr,
                                     instr.value if instr.value is not None
                                     else 0))
        elif instr.kind is InstrKind.NOP:
            cpu.work(1)
            results.append(ExceptionLevel.EL2)  # rewritten CurrentEL read
        else:
            raise ValueError("unknown instruction kind %r" % instr.kind)
    return results


class PvHostEmulator:
    """A minimal host-hypervisor trap handler for paravirtualized programs.

    Decodes ``hvc`` immediates back to the original instruction and
    emulates it against a virtual EL2 register file, mirroring "on the
    trap to EL2, the host hypervisor is informed of the original guest
    hypervisor instruction that was replaced by an hvc and can emulate the
    behavior of that instruction" (Section 4).  Also emulates directly
    trapped accesses (the v8.3/v8.4 native case) so the same handler
    serves both sides of the equivalence tests.
    """

    def __init__(self, hvc_table, vel2_regs, handling_cost=0):
        self.hvc_table = hvc_table
        self.vel2_regs = vel2_regs
        self.handling_cost = handling_cost
        self.handled = []

    def handle_trap(self, cpu, syndrome):
        if self.handling_cost:
            cpu.work(self.handling_cost, category="emulation")
        self.handled.append(syndrome)
        if syndrome.ec is ExceptionClass.HVC:
            decoded = self.hvc_table.decode(syndrome.imm)
            if decoded is None:
                return 0  # plain hypercall
            kind, reg, _enc = decoded
            if kind is InstrKind.ERET:
                return None
            if kind is InstrKind.SYSREG_READ:
                return self.vel2_regs.read(reg)
            return None  # writes carry no payload in this minimal model
        if syndrome.ec is ExceptionClass.SYSREG:
            if syndrome.is_write:
                self.vel2_regs.write(syndrome.register, syndrome.value or 0)
                return None
            return self.vel2_regs.read(syndrome.register)
        return None


class TrapCostValidation:
    """Reproduces the Section 5 trap-cost interchangeability measurement.

    Measures the round-trip cost of several trap vehicles — ``hvc``, a
    trapped EL2 system register access, a trapped EL1 access, a trapped
    ``eret`` — and reports the spread.  The paper found 68-76 cycles in
    and 65 cycles out with <10% variation; the cost model encodes exactly
    that, and this experiment demonstrates the property holds end-to-end
    through the simulator (it is an assumption check, not a prediction).
    """

    VEHICLES = (
        ("hvc", Instr(kind=InstrKind.HVC, imm=0)),
        ("sysreg_el2_read", Instr(kind=InstrKind.SYSREG_READ,
                                  reg="VTTBR_EL2")),
        ("sysreg_el2_write", Instr(kind=InstrKind.SYSREG_WRITE,
                                   reg="VTTBR_EL2", value=1)),
        ("sysreg_el1_write", Instr(kind=InstrKind.SYSREG_WRITE,
                                   reg="SCTLR_EL1", value=1)),
        ("eret", Instr(kind=InstrKind.ERET)),
    )

    def __init__(self, cpu_factory):
        self._cpu_factory = cpu_factory

    def run(self, iterations=100):
        """Return {vehicle: average round-trip cycles}."""
        results = {}
        for name, instr in self.VEHICLES:
            cpu = self._cpu_factory()
            from repro.arch.registers import RegisterFile
            handler = PvHostEmulator(HvcEncodingTable(), RegisterFile())
            cpu.trap_handler = handler
            cpu.enter_guest_context(ExceptionLevel.EL1, nv=True,
                                    virtual_e2h=False)
            start = cpu.ledger.total
            for _ in range(iterations):
                execute_program(cpu, [instr])
            total = cpu.ledger.total - start
            results[name] = total / iterations
        return results

    @staticmethod
    def spread(results):
        """Max relative difference across vehicles (paper: < 10%)."""
        values = list(results.values())
        return (max(values) - min(values)) / max(values)
