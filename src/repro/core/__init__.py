"""NEVE — the paper's primary contribution.

* :mod:`repro.core.vncr` — the ``VNCR_EL2`` register (Table 2) and the
  deferred access page with its architecturally defined layout.
* :mod:`repro.core.classification` — the register classification driving
  NEVE's behaviour (Tables 3, 4 and 5).
* :mod:`repro.core.redirection` — EL2 -> EL1 register redirection rules.
* :mod:`repro.core.neve` — the host-hypervisor-side workflow: populate the
  page, enable NEVE, run the guest hypervisor, sync values back when they
  are actually needed (Section 6.1).
* :mod:`repro.core.paravirt` — the Section 3 technique: rewriting a guest
  hypervisor's instructions so that future-architecture behaviour can be
  mimicked and measured on current hardware.
"""

from repro.core.classification import (
    table2_fields,
    table3_vm_registers,
    table4_hyp_control_registers,
    table5_gic_registers,
)
from repro.core.neve import NeveRunner
from repro.core.paravirt import (
    HvcEncodingTable,
    Instr,
    InstrKind,
    execute_program,
    paravirtualize,
)
from repro.core.vncr import DeferredAccessPage, VncrEl2

__all__ = [
    "DeferredAccessPage",
    "HvcEncodingTable",
    "Instr",
    "InstrKind",
    "NeveRunner",
    "VncrEl2",
    "execute_program",
    "paravirtualize",
    "table2_fields",
    "table3_vm_registers",
    "table4_hyp_control_registers",
    "table5_gic_registers",
]
