"""NEVE architecture conformance suite.

ARM validates implementations against the architecture with a compliance
suite; this is the equivalent for the model: it exhaustively exercises
every system register in every access direction, at virtual EL2, for both
guest-hypervisor flavours, on ARMv8.3 and NEVE — and checks the observed
behaviour (trap, defer, redirect, direct) against what Tables 3-5 and
Section 6.1 specify.  The report harness exposes it as
``python -m repro.harness.report conformance``.
"""

from dataclasses import dataclass, field

from repro.arch.cpu import AccessKind, Cpu, Encoding
from repro.arch.exceptions import ExceptionLevel
from repro.arch.features import ARMV8_3, ARMV8_4
from repro.arch.registers import (
    NeveBehavior,
    RegClass,
    RegisterFile,
    iter_registers,
)
from repro.core.vncr import VncrEl2
from repro.memory.phys import PhysicalMemory


@dataclass
class ConformanceResult:
    checks: int = 0
    violations: list = field(default_factory=list)

    @property
    def passed(self):
        return not self.violations

    def record(self, ok, description):
        self.checks += 1
        if not ok:
            self.violations.append(description)


def expected_access_kind(reg, is_write, neve, vhe, enc=Encoding.NORMAL):
    """The specified behaviour for one access (the oracle, derived
    directly from the paper's tables rather than from the CPU code).

    Shared with the runtime sanitizer
    (:mod:`repro.analysis.sanitizer`), which checks live simulations
    against the same oracle the conformance matrix uses.

    *enc* selects the encoding space: ``NORMAL`` for plain encodings,
    ``EL12``/``EL02`` for the VHE alias encodings a VHE guest
    hypervisor uses to reach its VM's state.  The alias rules at
    virtual EL2 (Section 6.1): ``*_EL02`` always traps (the EL2
    virtual timer discussion of Section 7.1); ``*_EL12`` is
    transformed to a deferred memory access exactly when the target
    register's value lives in the page — DEFER rows, and CACHED_COPY
    rows for reads only — and traps otherwise.
    """
    if enc is Encoding.EL02:
        return AccessKind.TRAPPED
    if enc is Encoding.EL12:
        if neve and reg.neve is NeveBehavior.DEFER:
            return AccessKind.DEFERRED_MEMORY
        if neve and reg.neve is NeveBehavior.CACHED_COPY and not is_write:
            return AccessKind.DEFERRED_MEMORY
        return AccessKind.TRAPPED
    if reg.reg_class is RegClass.GIC_CPU:
        return (AccessKind.TRAPPED if reg.neve is NeveBehavior.TRAP
                else AccessKind.DIRECT_EL1)
    if reg.el == 0:
        return AccessKind.DIRECT_EL1  # EL0 state is unprotected
    if reg.el == 1:
        if vhe:
            if neve:
                # E2H aliases of VNCR-backed EL2 registers (CPACR->CPTR,
                # CNTKCTL->CNTHCTL) are transformed to memory accesses
                # like any other encoding of those registers; the
                # redirect-or-trap rows stay on hardware under VHE.
                from repro.arch.registers import lookup_register
                counterpart_name = reg.e2h_redirect
                if counterpart_name is not None:
                    counterpart = lookup_register(counterpart_name)
                    if (counterpart.vncr_offset is not None
                            and counterpart.reg_class
                            is not RegClass.HYP_REDIRECT_OR_TRAP):
                        return AccessKind.DEFERRED_MEMORY
            return AccessKind.DIRECT_EL1  # E2H: own state, live in hw
        if not neve:
            return AccessKind.TRAPPED  # v8.3: VM-interfering EL1 access
        if reg.neve is NeveBehavior.DEFER:
            return AccessKind.DEFERRED_MEMORY
        if reg.neve is NeveBehavior.CACHED_COPY:
            return (AccessKind.TRAPPED if is_write
                    else AccessKind.DEFERRED_MEMORY)
        return AccessKind.TRAPPED
    # EL2 registers.
    if not neve:
        return AccessKind.TRAPPED
    behavior = reg.neve
    if reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP and vhe:
        behavior = NeveBehavior.REDIRECT
    if behavior is NeveBehavior.DEFER:
        return AccessKind.DEFERRED_MEMORY
    if behavior is NeveBehavior.REDIRECT:
        return AccessKind.REDIRECTED_EL1
    if behavior is NeveBehavior.CACHED_COPY:
        return (AccessKind.TRAPPED if is_write
                else AccessKind.DEFERRED_MEMORY)
    return AccessKind.TRAPPED


class _NullHandler:
    def __init__(self):
        self.vregs = RegisterFile()

    def handle_trap(self, cpu, syndrome):
        if syndrome.register is not None:
            if syndrome.is_write:
                self.vregs.write(syndrome.register, syndrome.value or 0)
                return None
            return self.vregs.read(syndrome.register)
        return 0


def _make_cpu(neve):
    cpu = Cpu(arch=ARMV8_4 if neve else ARMV8_3,
              memory=PhysicalMemory())
    cpu.trap_handler = _NullHandler()
    if neve:
        cpu.el2_regs.write("VNCR_EL2", VncrEl2.make(0x7000_0000).value)  # lint: allow(sim-sysreg-bypass)
    return cpu


def run_conformance():
    """Run the full access matrix; returns a :class:`ConformanceResult`."""
    result = ConformanceResult()
    for neve in (False, True):
        for vhe in (False, True):
            cpu = _make_cpu(neve)
            cpu.enter_guest_context(ExceptionLevel.EL1, nv=True,
                                    virtual_e2h=vhe)
            for reg in iter_registers():
                if reg.reg_class is RegClass.SPECIAL:
                    continue
                if reg.vhe_only and not vhe:
                    continue
                for is_write in (False, True):
                    if is_write and reg.read_only:
                        continue
                    _value, kind = cpu.sysreg_access(
                        reg.name, is_write=is_write,
                        value=1 if is_write else None)
                    expected = expected_access_kind(reg, is_write, neve,
                                                    vhe)
                    result.record(
                        kind is expected,
                        "%s %s (neve=%s vhe=%s): expected %s, got %s"
                        % (reg.name, "write" if is_write else "read",
                           neve, vhe, expected.value, kind.value))
    return result


def render_conformance():
    result = run_conformance()
    lines = ["NEVE architecture conformance: %d checks, %d violations"
             % (result.checks, len(result.violations))]
    for violation in result.violations[:40]:
        lines.append("  VIOLATION: %s" % violation)
    if result.passed:
        lines.append("  The CPU model conforms to Tables 3-5 and "
                     "Section 6.1 across the full access matrix.")
    return "\n".join(lines)
