"""Binary patching of guest hypervisor images (Section 4) — real A64.

"Our paravirtualization technique can be implemented in multiple ways.
We added wrappers around all candidate instructions at the source code
level ...  It is also possible to paravirtualize the guest hypervisor
using a fully automated approach, for example by binary patching a guest
hypervisor image."

This module implements that automated approach over genuine AArch64
machine code: images are sequences of real 32-bit A64 words —
``MRS``/``MSR`` with the architectural system-register encodings from
:mod:`repro.arch.encodings`, ``HVC #imm16``, ``ERET``, and
``LDR``/``STR`` (unsigned scaled offset) for the NEVE rewrite.
:func:`patch_image` scans an image, decodes each instruction, asks the
source-level rewriter what it should become, and re-assembles — verified
instruction-for-instruction equivalent to the source-level wrappers in
the tests.

Encodings used (ARM ARM C6.2):

=============  ==========================================================
instruction    encoding
=============  ==========================================================
``MRS Xt, S``  ``0xD5300000 | (op0-2)<<19 | op1<<16 | CRn<<12 | CRm<<8
               | op2<<5 | Rt``
``MSR S, Xt``  ``0xD5100000 | (same system-register fields) | Rt``
``HVC #imm``   ``0xD4000002 | imm16<<5``
``ERET``       ``0xD69F03E0``
``LDR Xt,
[Xn,#off]``    ``0xF9400000 | (off/8)<<10 | Rn<<5 | Rt``
``STR Xt,
[Xn,#off]``    ``0xF9000000 | (off/8)<<10 | Rn<<5 | Rt``
``MOVZ Xd,#v`` ``0xD2800000 | v<<5 | Rd`` (materializes CurrentEL == EL2)
=============  ==========================================================
"""

from repro.arch.cpu import Encoding
from repro.arch.encodings import encoding_of, lookup_encoding
from repro.core.paravirt import (
    HvcEncodingTable,
    Instr,
    InstrKind,
    paravirtualize,
)

ERET_WORD = 0xD69F03E0
NOP_WORD = 0xD503201F
HVC_BASE = 0xD4000002
MRS_BASE = 0xD5300000
MSR_BASE = 0xD5100000
LDR_BASE = 0xF9400000
STR_BASE = 0xF9000000
MOVZ_BASE = 0xD2800000

#: Register conventions of the emitted code: results in X0, the deferred
#: access page base in X28 (a callee-saved register the host pins).
RESULT_REG = 0
PAGE_BASE_REG = 28

#: CurrentEL's value for EL2 (bits [3:2] = 2).
CURRENTEL_EL2_VALUE = 0x8


class EncodingError(ValueError):
    """The word or instruction cannot be (de)coded."""


def _sysreg_fields(name, enc):
    op0, op1, crn, crm, op2 = encoding_of(name, enc)
    return ((op0 - 2) << 19) | (op1 << 16) | (crn << 12) | (crm << 8) \
        | (op2 << 5)


def assemble(instr):
    """Encode one :class:`~repro.core.paravirt.Instr` as a real A64
    word."""
    if instr.kind is InstrKind.SYSREG_READ:
        return MRS_BASE | _sysreg_fields(instr.reg, instr.enc) | RESULT_REG
    if instr.kind is InstrKind.SYSREG_WRITE:
        return MSR_BASE | _sysreg_fields(instr.reg, instr.enc) | RESULT_REG
    if instr.kind is InstrKind.READ_CURRENTEL:
        return MRS_BASE | _sysreg_fields("CURRENTEL",
                                         Encoding.NORMAL) | RESULT_REG
    if instr.kind is InstrKind.HVC:
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError("hvc immediate out of range")
        return HVC_BASE | (instr.imm << 5)
    if instr.kind is InstrKind.ERET:
        return ERET_WORD
    if instr.kind in (InstrKind.LOAD, InstrKind.STORE):
        offset = instr.addr & 0xFFF
        if offset % 8:
            raise EncodingError("unaligned page offset %#x" % offset)
        base = LDR_BASE if instr.kind is InstrKind.LOAD else STR_BASE
        return base | ((offset // 8) << 10) | (PAGE_BASE_REG << 5) \
            | RESULT_REG
    if instr.kind is InstrKind.NOP:
        # The CurrentEL rewrite: materialize the disguised value (EL2)
        # instead of reading the register — MOVZ X0, #0x8.
        return MOVZ_BASE | (CURRENTEL_EL2_VALUE << 5) | RESULT_REG
    raise EncodingError("cannot assemble %r" % (instr.kind,))


def disassemble(word, page_base=0):
    """Decode a real A64 word back into an :class:`Instr`."""
    if word == ERET_WORD:
        return Instr(InstrKind.ERET)
    if word == NOP_WORD:
        return Instr(InstrKind.NOP)
    if (word & 0xFFE0001F) == HVC_BASE:
        return Instr(InstrKind.HVC, imm=(word >> 5) & 0xFFFF)
    if (word & 0xFFE00000) == MOVZ_BASE:
        return Instr(InstrKind.NOP)  # materialized constant
    if (word & 0xFFD00000) == MSR_BASE & 0xFFD00000:
        fields = (((word >> 19) & 1) + 2, (word >> 16) & 7,
                  (word >> 12) & 0xF, (word >> 8) & 0xF, (word >> 5) & 7)
        try:
            name, enc = lookup_encoding(fields)
        except KeyError:
            raise EncodingError("unknown sysreg encoding in %#010x" % word)
        is_read = bool((word >> 21) & 1)
        if name == "CURRENTEL":
            return Instr(InstrKind.READ_CURRENTEL)
        kind = InstrKind.SYSREG_READ if is_read else InstrKind.SYSREG_WRITE
        return Instr(kind, reg=name, enc=enc,
                     value=0 if kind is InstrKind.SYSREG_WRITE else None)
    if (word & 0xFFC00000) in (LDR_BASE, STR_BASE):
        offset = ((word >> 10) & 0xFFF) * 8
        kind = (InstrKind.LOAD if (word & 0xFFC00000) == LDR_BASE
                else InstrKind.STORE)
        value = 0 if kind is InstrKind.STORE else None
        return Instr(kind, addr=page_base + offset, value=value)
    raise EncodingError("unrecognized A64 word %#010x" % word)


def assemble_image(program):
    return [assemble(instr) for instr in program]


def disassemble_image(words, page_base=0):
    return [disassemble(word, page_base) for word in words]


class PatchReport:
    """What the binary patcher did to an image."""

    def __init__(self):
        self.scanned = 0
        self.patched = 0
        self.by_action = {}

    def record(self, action):
        self.patched += 1
        self.by_action[action] = self.by_action.get(action, 0) + 1


def patch_image(words, mode, hvc_table=None, virtual_e2h=False,
                page_base=0):
    """Patch a binary guest-hypervisor image in the Section 4 style.

    Scans every word, decodes it, asks the source-level rewriter what the
    instruction should become under *mode* (``"nv"`` or ``"neve"``), and
    re-assembles.  Returns ``(patched_words, hvc_table, PatchReport)`` —
    the table is needed by the host hypervisor to decode the hvc
    immediates back to the original instructions.
    """
    if hvc_table is None:
        hvc_table = HvcEncodingTable()
    report = PatchReport()
    patched = []
    for word in words:
        report.scanned += 1
        instr = disassemble(word, page_base)
        rewritten = paravirtualize([instr], mode, hvc_table,
                                   virtual_e2h=virtual_e2h,
                                   page_base=page_base)[0]
        new_word = assemble(rewritten)
        if new_word != word:
            report.record("%s->%s" % (instr.kind.value,
                                      rewritten.kind.value))
        patched.append(new_word)
    return patched, hvc_table, report
