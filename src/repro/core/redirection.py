"""Register redirection rules (Section 6.1).

"Register redirection transparently redirects accesses from an EL2
register to its corresponding EL1 register if it exists and has the same
format as the EL2 register."  The CPU layer applies these rules inline;
this module exposes them as pure functions so the host hypervisor (which
must know which hardware EL1 registers now carry virtual EL2 state and
context-switch them accordingly) and the tests share a single source of
truth with the hardware model.
"""

from repro.arch.registers import NeveBehavior, RegClass, iter_registers, lookup_register


def redirect_target(reg_name, virtual_e2h):
    """The EL1 register an EL2 access is redirected to, or None.

    ``virtual_e2h`` selects the VHE interpretation of the "redirect or
    trap" rows (Table 4): TCR_EL2/TTBR0_EL2 only share the EL1 format when
    the guest hypervisor runs with E2H set.
    """
    reg = lookup_register(reg_name)
    if reg.neve is NeveBehavior.REDIRECT:
        return reg.el1_counterpart
    if reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP and virtual_e2h:
        return reg.el1_counterpart
    return None


def redirected_el1_registers(virtual_e2h):
    """All hardware EL1 registers that carry virtual EL2 state under NEVE.

    The host hypervisor must context-switch exactly this set between the
    guest hypervisor's virtual EL2 state and the EL1 state of whatever
    runs next (Section 6.1's workflow; also the VHE-guest case in
    Section 5 where the host "configures the EL1 hardware registers with
    the guest hypervisor's state").
    """
    names = []
    for reg in iter_registers():
        if reg.el != 2:
            continue
        target = redirect_target(reg.name, virtual_e2h)
        if target is not None:
            names.append(target)
    return names


def traps_on_write(reg_name, virtual_e2h=False):
    """Whether a guest-hypervisor *write* to this register still traps
    under NEVE (cached-copy registers and EL2 timers)."""
    reg = lookup_register(reg_name)
    if reg.neve is NeveBehavior.TRAP:
        return True
    if reg.neve is not NeveBehavior.CACHED_COPY:
        return False
    if reg.reg_class is RegClass.HYP_REDIRECT_OR_TRAP and virtual_e2h:
        return False  # redirected instead
    return True
