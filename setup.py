"""Legacy setup shim so editable installs work on older pip/setuptools
without network access (pyproject.toml carries the real metadata)."""

from setuptools import setup

setup()
