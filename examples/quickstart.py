#!/usr/bin/env python3
"""Quickstart: measure nested virtualization cost across configurations.

Runs the paper's Hypercall microbenchmark (the canonical VM <-> hypervisor
round trip) in every configuration of the evaluation and prints cycles and
traps-to-the-host-hypervisor per iteration — the essence of Tables 1, 6
and 7 in one screen.
"""

from repro import ALL_CONFIGS, make_microbench


def main():
    print("Hypercall microbenchmark across the paper's configurations")
    print("%-18s %14s %10s %12s" % ("configuration", "cycles", "traps",
                                    "vs own VM"))
    vm_baseline = {}
    for name, config in ALL_CONFIGS.items():
        suite = make_microbench(name)
        result = suite.run("hypercall", iterations=10)
        if not config.is_nested:
            vm_baseline[config.platform] = result.cycles
        baseline = vm_baseline.get(config.platform)
        ratio = ("%10.1fx" % (result.cycles / baseline)
                 if baseline else "       1.0x")
        print("%-18s %14.0f %10.1f %12s"
              % (name, result.cycles, result.traps, ratio))

    print()
    print("The ARMv8.3 rows show the exit multiplication problem: one")
    print("nested hypercall costs the guest hypervisor ~126 traps to the")
    print("host.  NEVE coalesces and defers those traps to ~15.")


if __name__ == "__main__":
    main()
