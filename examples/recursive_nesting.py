#!/usr/bin/env python3
"""Recursive virtualization (Section 6.2): three levels, two schemes.

An L2 *hypervisor* runs deprivileged at EL1.  Under ARMv8.3 its hypervisor
instructions trap to L0, which forwards each one to the L1 guest
hypervisor — whose emulation path runs at virtual EL2 and therefore traps
back into L0 itself: exit multiplication compounds across levels.

With NEVE, L0 reads the VNCR_EL2 value the L1 guest hypervisor wrote
(itself a deferred VM register), translates the page address through the
L1 VM's stage-2 table, and programs the *hardware* VNCR_EL2 — so the L2
hypervisor's register traffic becomes plain stores into memory the L1
guest hypervisor owns and can read directly.
"""

from repro.hypervisor.recursive import compare_recursion


def main():
    v83, neve = compare_recursion()
    print("A representative L2-hypervisor world-switch fragment")
    print("(7 VM-register writes, 3 reads, 1 trap-on-write control "
          "register):")
    print()
    print("%-10s %18s %22s %8s" % ("scheme", "L2-hyp traps",
                                   "L1-emulation traps", "total"))
    print("%-10s %18d %22d %8d" % ("ARMv8.3", v83.l2hyp_traps,
                                   v83.l1_emulation_traps, v83.total))
    print("%-10s %18d %22d %8d" % ("NEVE", neve.l2hyp_traps,
                                   neve.l1_emulation_traps, neve.total))
    print()
    print("Functional equivalence — the L1 guest hypervisor observes the")
    print("same L2-hypervisor state either way:")
    for name in v83.values_seen_by_l1:
        print("  %-12s v8.3=%#x  neve=%#x"
              % (name, v83.values_seen_by_l1[name],
                 neve.values_seen_by_l1[name]))
    assert v83.values_seen_by_l1 == neve.values_seen_by_l1
    print()
    print('"In this scenario, NEVE avoids the same amount of traps')
    print('between the L2 and L1 guest hypervisors as in the normal')
    print('nested case." — Section 6.2')


if __name__ == "__main__":
    main()
