#!/usr/bin/env python3
"""Validate the paravirtualization methodology's key assumption (Section 5).

The paper's technique substitutes hvc instructions for system-register
accesses that would trap on future hardware.  That is only sound if
"certain types of traps are interchangeable in terms of performance"; the
paper measured trap round trips for several instruction classes and found
68-76 cycles in, 65 cycles out, with less than 10% spread.

This script reruns that measurement against the simulated CPU, end to end
through the trap machinery, for each trap vehicle the rewriter uses.
"""

from repro.arch.cpu import Cpu
from repro.arch.features import ARMV8_3
from repro.core.paravirt import TrapCostValidation


def main():
    validation = TrapCostValidation(lambda: Cpu(arch=ARMV8_3))
    results = validation.run(iterations=200)
    print("Trap round-trip cost per vehicle (cycles, avg of 200):")
    for vehicle, cycles in sorted(results.items(), key=lambda kv: kv[1]):
        print("  %-20s %8.1f" % (vehicle, cycles))
    spread = TrapCostValidation.spread(results)
    print()
    print("max relative spread: %.1f%%  (paper: < 10%%)" % (spread * 100))
    if spread < 0.10:
        print("=> hvc is a sound stand-in for trapping system register "
              "accesses")
    else:
        print("=> WARNING: spread exceeds the paper's bound")


if __name__ == "__main__":
    main()
