#!/usr/bin/env python3
"""Trace the exit multiplication problem (Section 5) trap by trap.

Boots a nested VM on the ARMv8.3 model and on the NEVE model, then runs a
single hypercall from the L2 guest while recording every trap the host
hypervisor services.  The ARMv8.3 trace shows the guest hypervisor's world
switch trapping on every system register access; the NEVE trace shows only
the irreducible transitions and trap-on-write registers.

A third act demonstrates the recovery layer's degradation *lifecycle*:
the same vcpu at 16 traps under NEVE, at 126 after a graceful
degradation (the page evacuated, every vEL2 access trapping again),
and back at 16 after the cooling-off window elapses and the
re-promotion path re-arms a fresh deferred access page — degradation
is an operating mode to recover from, not a one-way door.

Pass ``--sanitize`` to run the whole scenario under the runtime
invariant sanitizer (``repro.analysis.sanitizer``) and print its
verdict alongside the traces.
"""

import argparse
from collections import Counter
from contextlib import ExitStack

from repro.analysis.sanitizer import SanitizerReport, sanitized
from repro.harness.configs import ALL_CONFIGS, arm_arch_for
from repro.hypervisor.kvm import Machine
from repro.metrics.cycles import ARM_COSTS


class TracingHandler:
    """Wraps the host hypervisor's trap handler to record a trace."""

    def __init__(self, kvm):
        self.kvm = kvm
        self.trace = []

    def handle_trap(self, cpu, syndrome):
        self.trace.append(syndrome.describe())
        return self.kvm.handle_trap(cpu, syndrome)

    def resume_context(self, cpu):
        return self.kvm.resume_context(cpu)


def trace_hypercall(nested_mode, report=None):
    config = ALL_CONFIGS["arm-nested" if nested_mode == "nv"
                         else "neve-nested"]
    machine = Machine(arch=arm_arch_for(config), costs=ARM_COSTS)
    vm = machine.kvm.create_vm(num_vcpus=1, nested=nested_mode)

    with ExitStack() as stack:
        if report is not None:
            runners = [vcpu.neve for vcpu in vm.vcpus]
            stack.enter_context(sanitized(cpus=machine.cpus,
                                          runners=runners, report=report))
        machine.kvm.boot_nested(vm.vcpus[0])

        tracer = TracingHandler(machine.kvm)
        for cpu in machine.cpus:
            cpu.trap_handler = tracer

        vm.vcpus[0].cpu.hvc(0)  # warm up
        tracer.trace.clear()
        vm.vcpus[0].cpu.hvc(0)
    return tracer.trace


def degradation_lifecycle():
    """NEVE -> degraded -> re-promoted, with the trap count of one L2
    hypercall measured in each state (16 / 126 / 16)."""
    from repro.faults.plan import FaultPlan
    from repro.faults.points import FaultInjector
    from repro.faults.recovery import IntegrityMonitor, RecoveryManager

    config = ALL_CONFIGS["neve-nested"]
    machine = Machine(arch=arm_arch_for(config), costs=ARM_COSTS)
    vm = machine.kvm.create_vm(num_vcpus=1, nested="neve")
    vcpu = vm.vcpus[0]
    machine.kvm.boot_nested(vcpu)

    monitor = IntegrityMonitor(machine.memory,
                               vcpu.neve.page.baddr).install()
    recovery = RecoveryManager(machine, vcpu,
                               monitor, FaultInjector(FaultPlan(0, [])))

    def probe():
        before = machine.traps.total
        vcpu.cpu.hvc(0)
        return machine.traps.total - before

    vcpu.cpu.hvc(0)  # warm up
    stages = [("NEVE armed", probe())]
    recovery.degrade(vcpu.cpu, "demo: simulated fault burst")
    stages.append(("degraded (trap-and-emulate)", probe()))
    # Serve the cooling-off window in virtual time, then re-promote.
    machine.ledger.charge(recovery.cooling_off_required(), "idle")
    assert recovery.maybe_repromote(vcpu.cpu)
    stages.append(("re-promoted (page re-armed)", probe()))
    return stages


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the runtime invariant sanitizer")
    opts = parser.parse_args(argv)

    report = SanitizerReport() if opts.sanitize else None
    for mode, label in (("nv", "ARMv8.3 trap-and-emulate"),
                        ("neve", "NEVE")):
        trace = trace_hypercall(mode, report=report)
        print("=" * 70)
        print("%s: one L2 hypercall -> %d traps to the host hypervisor"
              % (label, len(trace)))
        print("-" * 70)
        summary = Counter(trace)
        for description, count in summary.most_common():
            print("  %3dx  %s" % (count, description))
    print()
    print("Every line is work the ARMv8.3 host hypervisor must emulate")
    print("with a full world switch; NEVE's deferred access page absorbs")
    print("the register traffic in ordinary loads and stores.")
    print()
    print("=" * 70)
    print("Degradation lifecycle: one vcpu, one hypercall per stage")
    print("-" * 70)
    for label, traps in degradation_lifecycle():
        print("  %-32s %4d traps" % (label, traps))
    print()
    print("The recovery layer's degradation is a mode, not a one-way")
    print("door: after the cooling-off window, re-promotion re-arms a")
    print("fresh deferred access page and the 16-trap profile returns")
    print("(see docs/faults.md).")
    if report is not None:
        print()
        print(report.summary())
        for finding in report.violations:
            print("  " + finding.format())
        return 1 if report.violations else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
