#!/usr/bin/env python3
"""The paper's central comparison: why ARM nesting loses to x86, and how
NEVE changes the answer.

Walks through the three-act structure of the paper with live numbers:

1. Single-level virtualization — ARM and x86 are comparable.
2. Nested on ARMv8.3 — trap-and-emulate multiplies exits; x86's VMCS
   coalesces state transfer in hardware, ARM's flexible-but-software
   approach pays per register.
3. NEVE — coalescing in memory instead of microcode: ARM's relative
   overhead returns to x86's range, and on workloads where x86's faster
   hardware provokes more I/O exits, NEVE wins outright.
"""

from repro.harness.configs import make_microbench
from repro.workloads.appbench import AppBenchmark


def act(title):
    print()
    print("=" * 64)
    print(title)
    print("-" * 64)


def main():
    suites = {name: make_microbench(name)
              for name in ("arm-vm", "x86-vm", "arm-nested",
                           "neve-nested", "x86-nested")}
    hypercall = {name: suite.run("hypercall", iterations=8)
                 for name, suite in suites.items()}

    act("Act 1: single-level virtualization is fine on both")
    for name in ("arm-vm", "x86-vm"):
        print("  %-12s hypercall: %6.0f cycles, %d trap"
              % (name, hypercall[name].cycles, hypercall[name].traps))

    act("Act 2: ARMv8.3 nesting collapses; x86 nesting holds up")
    arm = hypercall["arm-nested"]
    x86 = hypercall["x86-nested"]
    print("  ARMv8.3 nested: %8.0f cycles, %3.0f traps (%3.0fx its VM)"
          % (arm.cycles, arm.traps,
             arm.cycles / hypercall["arm-vm"].cycles))
    print("  x86 nested:     %8.0f cycles, %3.0f traps (%3.0fx its VM)"
          % (x86.cycles, x86.traps,
             x86.cycles / hypercall["x86-vm"].cycles))
    print()
    print("  Same trap-and-emulate design, %.0fx the traps: the VMCS"
          % (arm.traps / x86.traps))
    print("  saves/restores VM state in one hardware operation, while")
    print("  ARM software touches each register — and each touch traps.")

    act("Act 3: NEVE coalesces in memory; relative overhead matches x86")
    neve = hypercall["neve-nested"]
    print("  NEVE nested:    %8.0f cycles, %3.0f traps (%3.0fx its VM)"
          % (neve.cycles, neve.traps,
             neve.cycles / hypercall["arm-vm"].cycles))
    print()
    app = AppBenchmark(iterations=6)
    print("  Application overheads (normalized to native):")
    print("  %-20s %10s %10s %10s" % ("workload", "v8.3", "NEVE",
                                      "x86"))
    for workload in ("memcached", "netperf_tcp_maerts", "nginx",
                     "mysql", "apache"):
        row = app.run_workload(workload, ("arm-nested", "neve-nested",
                                          "x86-nested"))
        marker = (" <- NEVE wins"
                  if row["neve-nested"].overhead
                  < row["x86-nested"].overhead else "")
        print("  %-20s %10.2f %10.2f %10.2f%s"
              % (workload, row["arm-nested"].overhead,
                 row["neve-nested"].overhead,
                 row["x86-nested"].overhead, marker))
    print()
    print("  NEVE beats x86 exactly where the paper says: TCP MAERTS,")
    print("  Nginx, Memcached and MySQL — the workloads where x86's")
    print("  faster backend provokes more virtio notifications.")


if __name__ == "__main__":
    main()
