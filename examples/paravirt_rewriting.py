#!/usr/bin/env python3
"""Demonstrate the Section 3/4/6.4 paravirtualization technique.

Takes a fragment of "guest hypervisor code" (a world-switch-like sequence
of system register accesses plus an eret), rewrites it two ways —

* **ARMv8.3 mimicry**: every instruction that v8.3 would trap becomes an
  ``hvc`` with the original instruction encoded in the 16-bit immediate;
* **NEVE mimicry**: VM-register accesses become loads/stores on a page
  shared with the host, redirect-class accesses become EL1 accesses, and
  only trap-on-write registers and ``eret`` keep their ``hvc``;

— then executes the original on a simulated ARMv8.3/ARMv8.4 CPU and the
rewritten versions on a simulated ARMv8.0 CPU, showing that trap counts
match: the rewritten guest behaves like the future hardware, which is the
whole point of the methodology.
"""

from repro.arch.cpu import Cpu, Encoding
from repro.arch.exceptions import ExceptionLevel
from repro.arch.features import ARMV8_0, ARMV8_3, ARMV8_4
from repro.arch.registers import RegisterFile
from repro.core.paravirt import (
    HvcEncodingTable,
    Instr,
    InstrKind,
    PvHostEmulator,
    execute_program,
    paravirtualize,
)
from repro.core.vncr import VncrEl2

GUEST_HYP_FRAGMENT = [
    Instr(InstrKind.READ_CURRENTEL),
    Instr(InstrKind.SYSREG_READ, reg="ESR_EL2"),
    Instr(InstrKind.SYSREG_READ, reg="ELR_EL2"),
    Instr(InstrKind.SYSREG_READ, reg="SCTLR_EL1"),  # save VM state
    Instr(InstrKind.SYSREG_READ, reg="TTBR0_EL1"),
    Instr(InstrKind.SYSREG_WRITE, reg="HCR_EL2", value=0x80000001),
    Instr(InstrKind.SYSREG_WRITE, reg="VTTBR_EL2", value=0x1000),
    Instr(InstrKind.SYSREG_WRITE, reg="CNTHCTL_EL2", value=3),
    Instr(InstrKind.SYSREG_WRITE, reg="SCTLR_EL1", value=0x30D0198),
    Instr(InstrKind.SYSREG_WRITE, reg="ELR_EL2", value=0x2000),
    Instr(InstrKind.ERET),
]


def run_at_virtual_el2(arch, program, enable_neve=False):
    cpu = Cpu(arch=arch)
    if enable_neve:
        from repro.memory.phys import PhysicalMemory
        cpu.memory = PhysicalMemory()
        cpu.el2_regs.write("VNCR_EL2", VncrEl2.make(0x7000_0000).value)
    handler = PvHostEmulator(HvcEncodingTable(), RegisterFile())
    cpu.trap_handler = handler
    cpu.enter_guest_context(ExceptionLevel.EL1, nv=True, virtual_e2h=False)
    execute_program(cpu, program)
    return cpu.traps.total


def run_paravirtualized(mode):
    table = HvcEncodingTable()
    rewritten = paravirtualize(GUEST_HYP_FRAGMENT, mode, table,
                               page_base=0x7000_0000)
    cpu = Cpu(arch=ARMV8_0)
    from repro.memory.phys import PhysicalMemory
    cpu.memory = PhysicalMemory()
    handler = PvHostEmulator(table, RegisterFile())
    cpu.trap_handler = handler
    # On v8.0 the "guest hypervisor" just runs at EL1 with no NV magic.
    cpu.enter_guest_context(ExceptionLevel.EL1, nv=False)
    execute_program(cpu, rewritten)
    return rewritten, cpu.traps.total


def describe(program):
    return ["    " + instr.describe() for instr in program]


def main():
    print("Original guest hypervisor fragment (%d instructions):"
          % len(GUEST_HYP_FRAGMENT))
    print("\n".join(describe(GUEST_HYP_FRAGMENT)))

    native_v83 = run_at_virtual_el2(ARMV8_3, GUEST_HYP_FRAGMENT)
    rewritten_nv, pv_nv = run_paravirtualized("nv")
    print()
    print("ARMv8.3 mimicry on ARMv8.0 hardware:")
    print("\n".join(describe(rewritten_nv)))
    print("  traps: native ARMv8.3 = %d, paravirtualized ARMv8.0 = %d"
          % (native_v83, pv_nv))

    native_neve = run_at_virtual_el2(ARMV8_4, GUEST_HYP_FRAGMENT,
                                     enable_neve=True)
    rewritten_neve, pv_neve = run_paravirtualized("neve")
    print()
    print("NEVE mimicry on ARMv8.0 hardware:")
    print("\n".join(describe(rewritten_neve)))
    print("  traps: native NEVE = %d, paravirtualized ARMv8.0 = %d"
          % (native_neve, pv_neve))

    assert native_v83 == pv_nv, "v8.3 mimicry diverged"
    assert native_neve == pv_neve, "NEVE mimicry diverged"
    print()
    print("Both rewrites reproduce the future architecture's trap "
          "behaviour exactly.")


if __name__ == "__main__":
    main()
