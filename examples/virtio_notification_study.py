#!/usr/bin/env python3
"""Reproduce the Section 7.2 Memcached anomaly (experiment E6).

The paper found that nested Memcached on x86 — despite per-exit costs
similar to NEVE — showed 8x overhead against NEVE's 2.5x, because the
3x-faster x86 backend drains virtio queues quickly, re-enables
notifications, and therefore takes ~4x more I/O exits.  Adding a busy-wait
delay to the x86 backend brought its overhead close to NEVE's.

This script sweeps backend speed over the virtio queue model and shows the
same feedback loop: the faster the backend, the more the frontend has to
notify — and each notification is a (multiplied, when nested) VM exit.
"""

from repro.hypervisor.virtio import VirtioQueue

ARRIVAL_INTERVAL = 8_000  # cycles between packet sends from the frontend
BASE_SERVICE = 9_000  # backend per-packet work at 1.0x speed
WAKEUP = 4_000  # backend thread wakeup latency
PACKETS = 5_000


def sweep():
    print("Backend speed sweep (interval=%d cycles, %d packets)"
          % (ARRIVAL_INTERVAL, PACKETS))
    print("%16s %12s %10s %14s" % ("backend speed", "kick ratio",
                                   "kicks", "suppressed"))
    times = [i * ARRIVAL_INTERVAL for i in range(PACKETS)]
    for speedup in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0):
        queue = VirtioQueue(
            backend_service_cycles=max(int(BASE_SERVICE / speedup), 1),
            wakeup_latency_cycles=WAKEUP)
        stats = queue.simulate(times)
        print("%15.2fx %12.3f %10d %14d"
              % (speedup, stats.kick_ratio, stats.kicks, stats.suppressed))


def busy_wait_experiment():
    print()
    print("The paper's busy-wait experiment: slow the fast backend down")
    print("and the notification storm disappears.")
    times = [i * ARRIVAL_INTERVAL for i in range(PACKETS)]
    fast = VirtioQueue(backend_service_cycles=BASE_SERVICE // 3,
                       wakeup_latency_cycles=WAKEUP)
    slowed = VirtioQueue(backend_service_cycles=BASE_SERVICE // 3 + 4_000,
                         wakeup_latency_cycles=WAKEUP)
    fast_stats = fast.simulate(times)
    slow_stats = slowed.simulate(times)
    print("  x86-like fast backend:        %.3f kicks/packet"
          % fast_stats.kick_ratio)
    print("  same backend + busy-wait:     %.3f kicks/packet"
          % slow_stats.kick_ratio)
    if slow_stats.kick_ratio > 0:
        print("  notification reduction:       %.1fx"
              % (fast_stats.kick_ratio / slow_stats.kick_ratio))
    print()
    print('"This leads to an interesting performance anomaly that having')
    print('faster hardware can result in more virtualization overhead."')


if __name__ == "__main__":
    sweep()
    busy_wait_experiment()
