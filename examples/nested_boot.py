#!/usr/bin/env python3
"""Boot a nested VM end to end and account for every phase.

Walks a realistic L2 bring-up on the ARMv8.3 and NEVE models — virtio
device probing over MMIO, PSCI secondary-CPU bring-up, timer programming
and a first idle period, then a burst of "application" activity
(hypercalls, I/O, cross-CPU IPIs) — printing cycles and traps per phase.
This is the closest thing to watching the paper's testbed boot a guest,
and it shows where each configuration spends its time.
"""

from repro.harness.configs import ALL_CONFIGS, arm_arch_for
from repro.hypervisor import psci
from repro.hypervisor.kvm import L1_VIRTIO_BASE, Machine
from repro.hypervisor.nested import GUEST_IPI_SGI


class PhaseMeter:
    def __init__(self, machine):
        self.machine = machine
        self.rows = []

    def run(self, label, fn):
        cycles = self.machine.ledger.total
        traps = self.machine.traps.total
        fn()
        self.rows.append((label, self.machine.ledger.total - cycles,
                          self.machine.traps.total - traps))

    def report(self):
        print("%-34s %12s %8s" % ("phase", "cycles", "traps"))
        for label, cycles, traps in self.rows:
            print("%-34s %12d %8d" % (label, cycles, traps))
        idle = self.machine.ledger.by_category.get("idle", 0)
        print("%-34s %12d %8d" % ("TOTAL (incl. %dk idle)"
                                  % (idle // 1000),
                                  self.machine.ledger.total,
                                  self.machine.traps.total))


def boot(config_name):
    config = ALL_CONFIGS[config_name]
    machine = Machine(arch=arm_arch_for(config))
    vm = machine.kvm.create_vm(num_vcpus=2, nested=config.nested,
                               guest_vhe=config.guest_vhe)
    meter = PhaseMeter(machine)
    boot_cpu = vm.vcpus[0].cpu
    secondary = vm.vcpus[1].cpu

    meter.run("launch nested VM (both vcpus)", lambda: [
        machine.kvm.boot_nested(vcpu) for vcpu in vm.vcpus])

    def probe_devices():
        for offset in range(0, 0x40, 8):  # virtio config space scan
            boot_cpu.mmio_read(L1_VIRTIO_BASE + offset)

    meter.run("probe virtio devices (8 MMIO reads)", probe_devices)

    meter.run("PSCI: query version + CPU state", lambda: [
        boot_cpu.smc(psci.PSCI_VERSION),
        boot_cpu.smc(psci.PSCI_AFFINITY_INFO, args=(1,))])

    meter.run("PSCI: bring CPU 1 online", lambda:
              boot_cpu.smc(psci.PSCI_CPU_ON, args=(1, 0x8000_0000)))

    def first_idle():
        boot_cpu.msr("CNTV_CVAL_EL0", machine.ledger.total + 200_000)
        boot_cpu.msr("CNTV_CTL_EL0", 1)
        boot_cpu.wfi()
        intid = boot_cpu.mrs("ICC_IAR1_EL1")
        boot_cpu.msr("ICC_EOIR1_EL1", intid)

    # Idle only makes sense for the non-nested timer path here; nested
    # WFI forwards to the guest hypervisor.
    if config.nested == "none":
        meter.run("program timer, idle until tick", first_idle)

    def workload_burst():
        for _ in range(3):
            boot_cpu.hvc(0)
            boot_cpu.mmio_read(L1_VIRTIO_BASE + 0x100)
            boot_cpu.msr("ICC_SGI1R_EL1", (GUEST_IPI_SGI << 24) | 1)
            secondary.deliver_interrupt()
            intid = secondary.mrs("ICC_IAR1_EL1")
            secondary.msr("ICC_EOIR1_EL1", intid)

    meter.run("workload burst (3x call+I/O+IPI)", workload_burst)
    return meter


def main():
    for config_name in ("arm-nested", "neve-nested"):
        print("=" * 60)
        print("Booting an L2 guest:", ALL_CONFIGS[config_name].label)
        print("-" * 60)
        boot(config_name).report()
        print()
    print("Every phase is an order of magnitude cheaper under NEVE —")
    print("the deferred access page absorbs the guest hypervisor's")
    print("world-switch register traffic on every single transition.")


if __name__ == "__main__":
    main()
