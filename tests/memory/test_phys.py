"""Physical memory and region tests."""

import pytest

from repro.memory.phys import (
    PAGE_SIZE,
    FrameAllocator,
    MemoryRegion,
    PhysicalMemory,
    is_page_aligned,
    page_align,
)


def test_page_align():
    assert page_align(0x1234) == 0x1000
    assert page_align(0x1000) == 0x1000
    assert is_page_aligned(0x2000)
    assert not is_page_aligned(0x2008)


def test_word_round_trip():
    mem = PhysicalMemory()
    mem.write_word(0x1000, 0xDEAD)
    assert mem.read_word(0x1000) == 0xDEAD


def test_unwritten_memory_reads_zero():
    assert PhysicalMemory().read_word(0x4_0000_0000) == 0


def test_values_truncate_to_64_bits():
    mem = PhysicalMemory()
    mem.write_word(0x0, (1 << 65) | 7)
    assert mem.read_word(0x0) == 7


def test_unaligned_access_rejected():
    mem = PhysicalMemory()
    with pytest.raises(ValueError):
        mem.read_word(0x1001)
    with pytest.raises(ValueError):
        mem.write_word(0x1004, 1)


def test_memory_is_sparse():
    mem = PhysicalMemory()
    mem.write_word(0x10_0000_0000, 1)  # 64 GB address
    assert mem.footprint_words == 1


def test_regions_classify_addresses():
    mem = PhysicalMemory()
    mem.add_region(MemoryRegion("ram", 0x8000_0000, 0x1000_0000))
    mem.add_region(MemoryRegion("dev", 0x0900_0000, 0x1_0000,
                                is_mmio=True))
    assert mem.region_at(0x8000_1000).name == "ram"
    assert mem.is_mmio(0x0900_0050)
    assert not mem.is_mmio(0x8000_0000)
    assert mem.region_at(0x100) is None


def test_overlapping_regions_rejected():
    mem = PhysicalMemory()
    mem.add_region(MemoryRegion("a", 0x1000, 0x1000))
    with pytest.raises(ValueError):
        mem.add_region(MemoryRegion("b", 0x1800, 0x1000))


def test_adjacent_regions_allowed():
    mem = PhysicalMemory()
    mem.add_region(MemoryRegion("a", 0x1000, 0x1000))
    mem.add_region(MemoryRegion("b", 0x2000, 0x1000))


def test_region_validation():
    with pytest.raises(ValueError):
        MemoryRegion("bad", 0x1000, 0)
    with pytest.raises(ValueError):
        MemoryRegion("bad", -4096, 0x1000)


def test_strict_mode_rejects_unmapped_access():
    mem = PhysicalMemory(strict=True)
    mem.add_region(MemoryRegion("ram", 0x1000, 0x1000))
    mem.write_word(0x1008, 5)
    with pytest.raises(ValueError):
        mem.write_word(0x9000, 5)


def test_zero_page():
    mem = PhysicalMemory()
    mem.write_word(0x2000, 1)
    mem.write_word(0x2008, 2)
    mem.zero_page(0x2000)
    assert mem.read_word(0x2000) == 0
    assert mem.footprint_words == 0


def test_read_page_returns_all_words():
    mem = PhysicalMemory()
    mem.write_word(0x3000, 0xAA)
    page = mem.read_page(0x3000)
    assert len(page) == PAGE_SIZE // 8
    assert page[0] == 0xAA


def test_page_ops_require_alignment():
    mem = PhysicalMemory()
    with pytest.raises(ValueError):
        mem.read_page(0x3008)
    with pytest.raises(ValueError):
        mem.zero_page(0x3008)


def test_frame_allocator_hands_out_aligned_frames():
    alloc = FrameAllocator(0x10000, 4 * PAGE_SIZE)
    first = alloc.alloc()
    second = alloc.alloc(pages=2)
    assert first == 0x10000
    assert second == 0x11000
    assert alloc.allocated_bytes == 3 * PAGE_SIZE


def test_frame_allocator_exhaustion():
    alloc = FrameAllocator(0x0, PAGE_SIZE)
    alloc.alloc()
    with pytest.raises(MemoryError):
        alloc.alloc()


def test_frame_allocator_requires_alignment():
    with pytest.raises(ValueError):
        FrameAllocator(0x100, PAGE_SIZE)
