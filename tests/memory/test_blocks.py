"""Block (2 MB) mapping tests, including shadow-table splitting."""

import pytest

from repro.memory.pagetable import (
    BLOCK_SIZE,
    PageTable,
    Permission,
    block_align,
)
from repro.memory.phys import PAGE_SIZE
from repro.memory.shadow import ShadowStage2


def test_block_align():
    assert block_align(BLOCK_SIZE + 123) == BLOCK_SIZE
    assert block_align(BLOCK_SIZE - 1) == 0


def test_block_mapping_translates_any_offset():
    table = PageTable()
    table.map_block(0, 0x4000_0000)
    assert table.translate(0x12_3456) == 0x4012_3456
    assert table.translate(BLOCK_SIZE - 8) == 0x4000_0000 + BLOCK_SIZE - 8


def test_block_requires_alignment():
    with pytest.raises(ValueError):
        PageTable().map_block(0x1000, 0x4000_0000)
    with pytest.raises(ValueError):
        PageTable().map_block(0, 0x4000_1000)


def test_page_entry_overrides_covering_block():
    """The split case: a page remap inside a block wins."""
    table = PageTable()
    table.map_block(0, 0x4000_0000)
    table.map_page(0x3000, 0x9000_0000)
    assert table.translate(0x3008) == 0x9000_0008
    assert table.translate(0x4008) == 0x4000_4008  # rest of the block


def test_unmap_block():
    table = PageTable()
    table.map_block(0, 0x4000_0000)
    table.unmap_block(0x1234)
    assert table.lookup(0x0) is None


def test_block_permissions_respected():
    table = PageTable()
    table.map_block(0, 0x4000_0000, perm=Permission.R)
    from repro.memory.pagetable import TranslationFault
    with pytest.raises(TranslationFault):
        table.translate(0x100, Permission.W)


def test_contains_sees_blocks():
    table = PageTable()
    table.map_block(BLOCK_SIZE, 0x4000_0000)
    assert BLOCK_SIZE + 0x5000 in table
    assert 0x5000 not in table


def test_block_count():
    table = PageTable()
    table.map_block(0, 0x4000_0000)
    table.map_block(BLOCK_SIZE, 0x4020_0000)
    assert table.block_count == 2


def test_shadow_splits_guest_blocks_to_pages():
    """When the guest stage-2 uses a 2 MB block but the host stage-2 only
    offers 4 KB pages, the collapsed shadow must degrade to page
    granularity — each distinct page faults separately."""
    guest = PageTable(stage=2)
    host = PageTable(stage=2)
    guest.map_block(0, 0x40_0000)  # one block entry
    host.map_range(0x40_0000, 0x8000_0000, BLOCK_SIZE)  # 512 page entries
    shadow = ShadowStage2(guest, host)
    assert shadow.translate(0x1234) == 0x8000_1234
    assert shadow.translate(0x5678) == 0x8000_5678
    assert shadow.faults_handled == 2  # split: one fault per page
    assert shadow.table.block_count == 0
    assert len(shadow.table) == 2


def test_shadow_block_chain_matches_full_walk():
    guest = PageTable(stage=2)
    host = PageTable(stage=2)
    guest.map_block(BLOCK_SIZE, 0x40_0000)
    host.map_range(0x40_0000, 0x9000_0000, BLOCK_SIZE)
    shadow = ShadowStage2(guest, host)
    addr = BLOCK_SIZE + 7 * PAGE_SIZE + 16
    assert shadow.translate(addr) == host.translate(guest.translate(addr))
