"""Shadow stage-2 table tests (Section 4's memory virtualization)."""

import pytest

from repro.memory.pagetable import PageTable, Permission, TranslationFault
from repro.memory.shadow import ShadowStage2


def make_shadow():
    guest = PageTable(stage=2, name="l1-s2")  # L2 PA -> L1 PA
    host = PageTable(stage=2, name="l0-s2")  # L1 PA -> L0 PA
    guest.map_range(0x0, 0x10_0000, 8 * 4096)
    host.map_range(0x10_0000, 0x8000_0000, 8 * 4096)
    return ShadowStage2(guest, host)


def test_shadow_collapses_two_stages():
    shadow = make_shadow()
    assert shadow.translate(0x1234) == 0x8000_1234


def test_shadow_entry_faulted_in_lazily():
    shadow = make_shadow()
    assert len(shadow.table) == 0
    shadow.translate(0x0)
    assert len(shadow.table) == 1
    assert shadow.faults_handled == 1


def test_second_access_hits_cached_entry():
    shadow = make_shadow()
    shadow.translate(0x2000)
    shadow.translate(0x2008)
    assert shadow.faults_handled == 1


def test_guest_fault_propagates_for_forwarding():
    """A miss in the guest hypervisor's stage-2 must be forwarded to the
    guest hypervisor, so it surfaces as a stage-2 fault on its table."""
    shadow = make_shadow()
    with pytest.raises(TranslationFault) as excinfo:
        shadow.translate(0x10_0000)  # unmapped in guest stage-2
    assert excinfo.value.address == 0x10_0000


def test_permissions_are_intersected():
    guest = PageTable(stage=2)
    host = PageTable(stage=2)
    guest.map_page(0x0, 0x1000, perm=Permission.RW)
    host.map_page(0x1000, 0x2000, perm=Permission.RX)
    shadow = ShadowStage2(guest, host)
    shadow.translate(0x0, Permission.R)
    assert shadow.table.lookup(0x0).perm == Permission.R


def test_device_attribute_propagates():
    guest = PageTable(stage=2)
    host = PageTable(stage=2)
    guest.map_page(0x0, 0x1000)
    host.map_page(0x1000, 0x0900_0000, is_device=True)
    shadow = ShadowStage2(guest, host)
    shadow.translate(0x0)
    assert shadow.table.lookup(0x0).is_device


def test_invalidate_l2_range():
    shadow = make_shadow()
    shadow.translate(0x0)
    shadow.translate(0x1000)
    shadow.invalidate_l2_range(0x0, 4096)
    assert shadow.table.lookup(0x0) is None
    assert shadow.table.lookup(0x1000) is not None


def test_invalidate_for_l1_page():
    """When L0 changes a mapping for an L1 page, every shadow entry
    passing through it must be dropped."""
    shadow = make_shadow()
    shadow.translate(0x0)  # via L1 PA 0x10_0000
    shadow.translate(0x1000)  # via L1 PA 0x10_1000
    shadow.invalidate_for_l1_page(0x10_0000)
    assert shadow.table.lookup(0x0) is None
    assert shadow.table.lookup(0x1000) is not None


def test_invalidate_all():
    shadow = make_shadow()
    shadow.translate(0x0)
    shadow.invalidate_all()
    assert len(shadow.table) == 0


def test_verify_against_chain():
    shadow = make_shadow()
    for addr in (0x0, 0x1000, 0x3000):
        shadow.translate(addr)
    assert shadow.verify_against_chain()


def test_verify_detects_stale_entries():
    shadow = make_shadow()
    shadow.translate(0x0)
    # Change the guest stage-2 without invalidating the shadow.
    shadow.guest_stage2.map_page(0x0, 0x10_2000)
    with pytest.raises(AssertionError):
        shadow.verify_against_chain()


def test_shadow_equals_three_stage_walk():
    """Section 4: the shadow's two-stage result must equal the full
    L2VA -> L2PA -> L1PA -> L0PA chain."""
    from repro.memory.translation import translate
    l2_stage1 = PageTable(stage=1, name="l2-s1")
    l2_stage1.map_page(0xFFFF_0000, 0x2000)
    shadow = make_shadow()
    via_chain = translate(0xFFFF_0123,
                          [l2_stage1, shadow.guest_stage2,
                           shadow.host_stage2])
    ipa = l2_stage1.translate(0xFFFF_0123)
    assert shadow.translate(ipa) == via_chain
