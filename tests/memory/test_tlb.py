"""VMID-tagged TLB tests."""

import pytest

from repro.memory.tlb import Tlb


def test_fill_and_lookup():
    tlb = Tlb()
    tlb.fill(1, 0x1000, 0x8000_0000)
    assert tlb.lookup(1, 0x1234) == 0x8000_0000


def test_miss_returns_none():
    tlb = Tlb()
    assert tlb.lookup(1, 0x1000) is None
    assert tlb.misses == 1


def test_vmid_tags_isolate_translations():
    """Different VMs' translations never alias (the property VTTBR's
    VMID field provides)."""
    tlb = Tlb()
    tlb.fill(1, 0x1000, 0xAAAA_0000)
    tlb.fill(2, 0x1000, 0xBBBB_0000)
    assert tlb.lookup(1, 0x1000) == 0xAAAA_0000
    assert tlb.lookup(2, 0x1000) == 0xBBBB_0000


def test_invalidate_vmid_only_affects_that_vm():
    tlb = Tlb()
    tlb.fill(1, 0x1000, 0xA000)
    tlb.fill(2, 0x1000, 0xB000)
    tlb.invalidate_vmid(1)
    assert tlb.lookup(1, 0x1000) is None
    assert tlb.lookup(2, 0x1000) == 0xB000


def test_invalidate_page():
    tlb = Tlb()
    tlb.fill(1, 0x1000, 0xA000)
    tlb.fill(1, 0x2000, 0xC000)
    tlb.invalidate_page(1, 0x1000)
    assert tlb.lookup(1, 0x1000) is None
    assert tlb.lookup(1, 0x2000) == 0xC000


def test_invalidate_all():
    tlb = Tlb()
    tlb.fill(1, 0x1000, 0xA000)
    tlb.invalidate_all()
    assert len(tlb) == 0


def test_lru_eviction():
    tlb = Tlb(capacity=2)
    tlb.fill(1, 0x1000, 0xA000)
    tlb.fill(1, 0x2000, 0xB000)
    tlb.lookup(1, 0x1000)  # refresh
    tlb.fill(1, 0x3000, 0xC000)  # evicts 0x2000
    assert tlb.lookup(1, 0x1000) is not None
    assert tlb.lookup(1, 0x2000) is None


def test_hit_rate():
    tlb = Tlb()
    tlb.fill(1, 0x1000, 0xA000)
    tlb.lookup(1, 0x1000)
    tlb.lookup(1, 0x2000)
    assert tlb.hit_rate == pytest.approx(0.5)


def test_hit_rate_empty():
    assert Tlb().hit_rate == 0.0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tlb(capacity=0)


def test_fill_page_aligns_values():
    tlb = Tlb()
    tlb.fill(1, 0x1234, 0x8000_0567)
    assert tlb.lookup(1, 0x1000) == 0x8000_0000
