"""Translation regime and chain-walk tests."""

import pytest

from repro.memory.pagetable import PageTable, Permission, TranslationFault
from repro.memory.tlb import Tlb
from repro.memory.translation import TranslationRegime, translate


def test_chain_walk_three_stages():
    s1 = PageTable(stage=1)
    g2 = PageTable(stage=2)
    h2 = PageTable(stage=2)
    s1.map_page(0xFFFF_0000, 0x1000)
    g2.map_page(0x1000, 0x20_0000)
    h2.map_page(0x20_0000, 0x8000_0000)
    assert translate(0xFFFF_0ABC, [s1, g2, h2]) == 0x8000_0ABC


def test_chain_walk_skips_none_tables():
    s2 = PageTable(stage=2)
    s2.map_page(0x1000, 0x2000)
    assert translate(0x1008, [None, s2, None]) == 0x2008


def test_chain_fault_identifies_stage():
    s1 = PageTable(stage=1)
    s2 = PageTable(stage=2)
    s1.map_page(0x0, 0x5000)
    with pytest.raises(TranslationFault) as excinfo:
        translate(0x10, [s1, s2])
    assert excinfo.value.stage == 2
    assert excinfo.value.address == 0x5010


def test_regime_stage1_only():
    s1 = PageTable(stage=1)
    s1.map_page(0x4000, 0x9000)
    regime = TranslationRegime(stage1=s1, label="hypervisor")
    assert regime.translate(0x4020) == 0x9020


def test_regime_identity_when_mmu_off():
    regime = TranslationRegime()
    assert regime.translate(0x1234) == 0x1234


def test_regime_two_stages():
    s1 = PageTable(stage=1)
    s2 = PageTable(stage=2)
    s1.map_page(0x0, 0x1000)
    s2.map_page(0x1000, 0x8000_0000)
    regime = TranslationRegime(stage1=s1, stage2=s2, vmid=3)
    assert regime.translate(0x10) == 0x8000_0010


def test_regime_uses_tlb():
    s1 = PageTable(stage=1)
    s1.map_page(0x0, 0x7000)
    tlb = Tlb()
    regime = TranslationRegime(stage1=s1, vmid=1)
    regime.translate(0x8, tlb=tlb)
    assert tlb.misses == 1
    regime.translate(0x10, tlb=tlb)
    assert tlb.hits == 1


def test_tlb_hit_bypasses_stale_table():
    """A TLB hit returns the cached translation even after the table
    changed — which is why TLBI maintenance matters."""
    s1 = PageTable(stage=1)
    s1.map_page(0x0, 0x7000)
    tlb = Tlb()
    regime = TranslationRegime(stage1=s1, vmid=1)
    assert regime.translate(0x8, tlb=tlb) == 0x7008
    s1.map_page(0x0, 0x9000)
    assert regime.translate(0x8, tlb=tlb) == 0x7008  # stale!
    tlb.invalidate_vmid(1)
    assert regime.translate(0x8, tlb=tlb) == 0x9008
