"""Stage-1/stage-2 page table tests."""

import pytest

from repro.memory.pagetable import (
    FaultType,
    PageTable,
    Permission,
    TranslationFault,
)


def test_map_and_translate():
    table = PageTable()
    table.map_page(0x1000, 0x8000_1000)
    assert table.translate(0x1234) == 0x8000_1234


def test_offset_preserved_within_page():
    table = PageTable()
    table.map_page(0x0, 0x9000)
    assert table.translate(0xABC) == 0x9ABC


def test_unmapped_address_faults_with_input_address():
    table = PageTable(stage=2)
    with pytest.raises(TranslationFault) as excinfo:
        table.translate(0x5000)
    fault = excinfo.value
    assert fault.stage == 2
    assert fault.address == 0x5000
    assert fault.fault_type is FaultType.TRANSLATION


def test_permission_fault():
    table = PageTable()
    table.map_page(0x1000, 0x2000, perm=Permission.R)
    assert table.translate(0x1000, Permission.R) == 0x2000
    with pytest.raises(TranslationFault) as excinfo:
        table.translate(0x1000, Permission.W)
    assert excinfo.value.fault_type is FaultType.PERMISSION
    assert excinfo.value.is_write


def test_map_range_covers_every_page():
    table = PageTable()
    table.map_range(0x0, 0x10_0000, 4 * 4096)
    for offset in (0, 0x1000, 0x2000, 0x3FF8):
        assert table.translate(offset) == 0x10_0000 + offset
    with pytest.raises(TranslationFault):
        table.translate(0x4000)


def test_map_range_rejects_bad_size():
    with pytest.raises(ValueError):
        PageTable().map_range(0, 0, 0)


def test_unmap_page():
    table = PageTable()
    table.map_page(0x1000, 0x2000)
    table.unmap_page(0x1000)
    with pytest.raises(TranslationFault):
        table.translate(0x1000)


def test_unmap_all():
    table = PageTable()
    table.map_range(0, 0, 8 * 4096)
    table.unmap_all()
    assert len(table) == 0


def test_remap_overwrites():
    table = PageTable()
    table.map_page(0x1000, 0x2000)
    table.map_page(0x1000, 0x3000)
    assert table.translate(0x1000) == 0x3000


def test_contains_and_len():
    table = PageTable()
    table.map_page(0x1000, 0x2000)
    assert 0x1800 in table
    assert 0x2000 not in table
    assert len(table) == 1


def test_lookup_does_not_fault():
    table = PageTable()
    assert table.lookup(0x1000) is None


def test_mapped_pages_sorted():
    table = PageTable()
    table.map_page(0x3000, 0x1)
    table.map_page(0x1000, 0x2)
    pages = [page for page, _ in table.mapped_pages()]
    assert pages == sorted(pages)


def test_device_mapping_flag():
    table = PageTable()
    table.map_page(0x0900_0000, 0x0900_0000, is_device=True)
    assert table.lookup(0x0900_0000).is_device


def test_el2_format_tag():
    """ARMv8.3 lets a deprivileged hypervisor keep its EL2 page table
    format at EL1 (Section 2); the model tracks the format as metadata."""
    table = PageTable(stage=1, fmt="el2", name="guest-hyp-s1")
    assert table.fmt == "el2"


def test_invalid_constructor_arguments():
    with pytest.raises(ValueError):
        PageTable(stage=3)
    with pytest.raises(ValueError):
        PageTable(fmt="el3")


def test_permission_flags_compose():
    assert Permission.RW == Permission.R | Permission.W
    assert Permission.RWX & Permission.X
    assert not (Permission.R & Permission.W)
