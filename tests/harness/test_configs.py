"""Configuration registry tests."""

import pytest

from repro.harness.configs import (
    ALL_CONFIGS,
    FIGURE2_CONFIGS,
    TABLE1_CONFIGS,
    TABLE6_CONFIGS,
    arm_arch_for,
    make_microbench,
)
from repro.workloads.microbench import ArmMicrobench, X86Microbench


def test_seven_configurations():
    assert len(ALL_CONFIGS) == 7
    assert set(FIGURE2_CONFIGS) == set(ALL_CONFIGS)


def test_table_column_sets():
    assert "neve-nested" not in TABLE1_CONFIGS  # Table 1 is pre-NEVE
    assert "arm-vm" not in TABLE6_CONFIGS  # Table 6 is nested-only
    assert "x86-nested" in TABLE1_CONFIGS and "x86-nested" in TABLE6_CONFIGS


def test_labels_match_figure_legend():
    assert ALL_CONFIGS["arm-nested"].label == "ARMv8.3 Nested"
    assert ALL_CONFIGS["neve-nested-vhe"].label == "NEVE Nested VHE"


def test_arch_selection():
    assert not arm_arch_for(ALL_CONFIGS["arm-nested"]).has_neve
    assert arm_arch_for(ALL_CONFIGS["neve-nested"]).has_neve


def test_make_microbench_dispatches_by_platform():
    assert isinstance(make_microbench("arm-vm"), ArmMicrobench)
    assert isinstance(make_microbench("x86-nested"), X86Microbench)


def test_make_microbench_unknown_config():
    with pytest.raises(KeyError):
        make_microbench("riscv-nested")


def test_nested_flags():
    assert not ALL_CONFIGS["arm-vm"].is_nested
    assert ALL_CONFIGS["arm-nested"].is_nested
    assert ALL_CONFIGS["x86-nested"].is_nested
