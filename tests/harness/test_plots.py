"""ASCII chart renderer tests."""

from repro.harness.plots import _bar, render_figure2_chart, render_trap_chart


def test_bar_scales_linearly():
    assert len(_bar(50, 100, width=40)) == 20
    assert len(_bar(100, 100, width=40)) == 40


def test_bar_never_empty_or_overlong():
    assert len(_bar(0.0001, 100, width=40)) == 1
    assert len(_bar(500, 100, width=40)) == 40


def test_figure2_chart_from_precomputed_data():
    data = {"kernbench": {"arm-vm": 1.0, "arm-nested": 1.4},
            "memcached": {"arm-vm": 1.5, "arm-nested": 36.0}}
    text = render_figure2_chart(data=data)
    assert "memcached" in text
    assert "36.00" in text
    assert "█" in text


def test_figure2_chart_skips_missing_cells():
    data = {"kernbench": {"arm-vm": 1.0}}
    text = render_figure2_chart(data=data)
    assert "ARMv8.3 VM" in text
    assert "NEVE Nested" not in text


def test_trap_chart_shows_exit_multiplication():
    text = render_trap_chart()
    assert "ARMv8.3 Nested" in text
    assert "x86 Nested" in text
    # The v8.3 bar must visibly dominate the x86 bar.
    v83_line = next(l for l in text.splitlines()
                    if l.strip().startswith("ARMv8.3 Nested "))
    x86_line = next(l for l in text.splitlines()
                    if l.strip().startswith("x86 Nested"))
    assert v83_line.count("█") > 10 * x86_line.count("█")
