"""Sensitivity/crossover analysis tests."""

import pytest

from repro.harness.sensitivity import (
    breakeven_rate,
    neve_wins,
    neve_x86_crossover_speedup,
    overhead_at,
    overhead_curve,
    render_sensitivity,
)


def test_overhead_is_one_at_zero_rate():
    assert overhead_at("neve-nested", 0.0) == pytest.approx(1.0)


def test_overhead_linear_in_rate():
    low = overhead_at("arm-nested", 10_000)
    high = overhead_at("arm-nested", 20_000)
    assert (high - 1.0) == pytest.approx(2 * (low - 1.0), rel=1e-6)


def test_curve_is_monotone():
    curve = overhead_curve("neve-nested", [0, 10_000, 50_000, 100_000])
    overheads = [o for _, o in curve]
    assert overheads == sorted(overheads)


def test_breakeven_ordering_matches_per_event_costs():
    """The cheaper the per-event cost, the more events a configuration
    tolerates before 2x native."""
    v83 = breakeven_rate("arm-nested")
    vhe = breakeven_rate("arm-nested-vhe")
    neve = breakeven_rate("neve-nested")
    x86 = breakeven_rate("x86-nested")
    assert v83 < vhe < neve < x86


def test_v83_unusable_at_network_rates():
    """At Figure 2's memcached injection rate (~150k/s) ARMv8.3 is deep
    past the break-even; NEVE is not."""
    assert breakeven_rate("arm-nested") < 10_000
    assert breakeven_rate("neve-nested") > 20_000


def test_crossover_speedup_in_plausible_band():
    s_star = neve_x86_crossover_speedup(1.0, 0.5)
    assert 1.5 <= s_star <= 4.0


def test_memcached_sits_on_neve_side():
    """x86 is 3x faster natively on memcached (Section 7.2) — above the
    crossover, so NEVE wins."""
    assert neve_wins(150_000, 70_000, x86_speedup=3.0,
                     io_multiplier=1.25)


def test_equal_hardware_favours_x86_without_anomaly():
    """With identical native speed and no exit anomaly, x86's cheaper
    per-exit cost wins — which is why Apache goes to x86 in Figure 2."""
    assert not neve_wins(110_000, 55_000, x86_speedup=1.0)


def test_anomaly_moves_the_boundary():
    base = neve_x86_crossover_speedup(1.0, 0.5, io_multiplier=1.0)
    with_anomaly = neve_x86_crossover_speedup(1.0, 0.5,
                                              io_multiplier=2.5)
    assert with_anomaly < base / 2


def test_zero_mix_rejected():
    with pytest.raises(ValueError):
        neve_x86_crossover_speedup(0.0, 0.0)


def test_render():
    text = render_sensitivity()
    assert "S*" in text and "Break-even" in text
