"""Figure/ablation generator tests."""

from repro.harness.figures import (
    figure2,
    hypervisor_design_study,
    notification_study,
    render_figure2,
    render_hypervisor_design_study,
    render_notification_study,
    render_vmcs_shadowing_study,
    vmcs_shadowing_study,
)


def test_figure2_covers_all_bars():
    data = figure2(iterations=3, workloads=("kernbench", "memcached"))
    assert set(data) == {"kernbench", "memcached"}
    assert len(data["kernbench"]) == 7


def test_notification_study_monotone():
    rows = notification_study()
    ratios = [row["kick_ratio"] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]


def test_notification_study_conserves_packets():
    for row in notification_study(packets=1000):
        assert row["kicks"] + row["suppressed"] == 1000


def test_vmcs_shadowing_study_shows_improvement():
    rows = vmcs_shadowing_study(iterations=3)
    for row in rows:
        assert row["improvement"] > 1.0
        assert row["no_shadowing_traps"] > row["shadowing_traps"]


def test_design_study_standalone_traps_less():
    """Section 6.5: a Xen-like standalone hypervisor does not save and
    restore VM EL1 state on every exit, so it traps far less on ARMv8.3 —
    but still benefits from NEVE."""
    rows = {(r["nested"], r["design"]): r
            for r in hypervisor_design_study(iterations=3)}
    assert rows[("nv", "standalone")]["traps"] < \
        rows[("nv", "kvm")]["traps"]
    assert rows[("neve", "standalone")]["traps"] < \
        rows[("nv", "standalone")]["traps"]


def test_renderers_produce_text():
    assert "kick ratio" in render_notification_study()
    assert "shadow" in render_vmcs_shadowing_study(iterations=2)
    assert "standalone" in render_hypervisor_design_study(iterations=2)
    assert "memcached" in render_figure2(iterations=2)


def test_report_cli_smoke():
    from repro.harness.report import main
    assert main(["spec"]) == 0
    assert main(["nope"]) == 2
    assert main([]) == 0
