"""Table generator tests."""

from repro.harness.tables import (
    PAPER_TABLE1,
    PAPER_TABLE6,
    PAPER_TABLE7,
    render_table1,
    render_table6,
    render_table7,
    table1,
    table6,
    table7,
)
from repro.workloads.microbench import MICROBENCHMARKS


def test_table1_rows_and_columns():
    rows = table1(iterations=3)
    assert [row["benchmark"] for row in rows] == list(MICROBENCHMARKS)
    assert "arm-vm" in rows[0]
    assert "arm-vm/paper" in rows[0]


def test_table1_paper_reference_values_embedded():
    rows = table1(iterations=3)
    hypercall = rows[0]
    assert hypercall["arm-vm/paper"] == 2_729
    assert hypercall["x86-nested/paper"] == 36_345


def test_table6_includes_slowdown_ratios():
    rows = table6(iterations=3)
    hypercall = rows[0]
    assert hypercall["neve-nested/slowdown"] > 10
    assert hypercall["arm-nested/slowdown"] > \
        hypercall["neve-nested/slowdown"]


def test_table7_trap_counts():
    rows = table7(iterations=3)
    hypercall = rows[0]
    assert 118 <= hypercall["arm-nested"] <= 134
    assert hypercall["x86-nested"] == 5
    eoi = rows[3]
    assert eoi["arm-nested"] == 0


def test_paper_reference_tables_are_complete():
    for table in (PAPER_TABLE1, PAPER_TABLE6, PAPER_TABLE7):
        assert set(table) == set(MICROBENCHMARKS)


def test_renderers_produce_text():
    for renderer in (render_table1, render_table6, render_table7):
        text = renderer(iterations=2)
        assert "hypercall" in text
        assert "(" in text  # measured(paper) format
