"""Trap-attribution analysis tests."""

import pytest

from repro.arch.exceptions import ExceptionClass, Syndrome
from repro.harness.analysis import (
    BUCKETS,
    attribute_traps,
    bucket_for,
    compare_attributions,
    render_attribution,
)

_CACHE = {}


def attribution(config, benchmark="hypercall"):
    key = (config, benchmark)
    if key not in _CACHE:
        _CACHE[key] = attribute_traps(config, benchmark)
    return _CACHE[key]


# ---------------------------------------------------------------------------
# Bucketing
# ---------------------------------------------------------------------------

def test_bucket_for_sysregs():
    assert bucket_for(Syndrome(ec=ExceptionClass.SYSREG,
                               register="SCTLR_EL1")) == "el1_context"
    assert bucket_for(Syndrome(ec=ExceptionClass.SYSREG,
                               register="HCR_EL2")) == "trap_control"
    assert bucket_for(Syndrome(ec=ExceptionClass.SYSREG,
                               register="ICH_LR0_EL2")) == "vgic"
    assert bucket_for(Syndrome(ec=ExceptionClass.SYSREG,
                               register="CNTHCTL_EL2")) == "timer"
    assert bucket_for(Syndrome(ec=ExceptionClass.SYSREG,
                               register="ESR_EL2")) == "exception_context"


def test_bucket_for_transitions():
    assert bucket_for(Syndrome(ec=ExceptionClass.ERET)) == "transitions"
    assert bucket_for(Syndrome(ec=ExceptionClass.HVC)) == "transitions"


# ---------------------------------------------------------------------------
# Attribution totals and structure
# ---------------------------------------------------------------------------

def test_attribution_total_matches_table7():
    assert abs(attribution("arm-nested").total - 126) <= 6
    assert abs(attribution("neve-nested").total - 15) <= 3


def test_buckets_sum_to_total():
    for config in ("arm-nested", "neve-nested"):
        att = attribution(config)
        assert sum(att.by_bucket.values()) == att.total


def test_el1_context_dominates_v83():
    """The paper's diagnosis: ARM's per-exit EL1 save/restore is the
    main source of exit multiplication."""
    att = attribution("arm-nested")
    assert att.by_bucket["el1_context"] > att.total / 2


def test_neve_removes_el1_context_traffic():
    v83 = attribution("arm-nested")
    neve = attribution("neve-nested")
    assert neve.by_bucket["el1_context"] <= 2
    assert v83.by_bucket["el1_context"] >= 40 * max(
        neve.by_bucket["el1_context"], 1) / 2


def test_vhe_removes_host_context_half():
    """VHE halves the EL1-context traffic (no host EL1 swap)."""
    non_vhe = attribution("arm-nested")
    vhe = attribution("arm-nested-vhe")
    assert vhe.by_bucket["el1_context"] == pytest.approx(
        non_vhe.by_bucket["el1_context"] / 2, abs=4)


def test_transitions_survive_neve():
    """eret/hvc transitions are the irreducible part."""
    assert attribution("neve-nested").by_bucket["transitions"] >= 3


def test_device_io_adds_exception_context():
    hypercall = attribution("arm-nested", "hypercall")
    mmio = attribution("arm-nested", "device_io")
    assert mmio.by_bucket["exception_context"] > \
        hypercall.by_bucket["exception_context"]


def test_top_registers_are_el1_state_on_v83():
    names = [name for name, _ in attribution("arm-nested").top_registers(5)]
    assert "HCR_EL2" in names or any(n.endswith("_EL1") for n in names)


def test_rejects_non_arm_or_non_nested():
    with pytest.raises(ValueError):
        attribute_traps("x86-nested")
    with pytest.raises(ValueError):
        attribute_traps("arm-vm")


def test_render_produces_table():
    text = render_attribution()
    assert "el1_context" in text
    assert "under NEVE" in text


def test_compare_covers_four_configs():
    data = compare_attributions()
    assert set(data) == {"arm-nested", "arm-nested-vhe", "neve-nested",
                         "neve-nested-vhe"}
    assert set(data["arm-nested"].by_bucket) <= set(BUCKETS)
