"""Results-export tests."""

import json

import pytest

from repro.harness.export import (
    collect_results,
    export_csv_bundle,
    export_json,
    figure2_to_csv,
    table_to_csv,
)


@pytest.fixture(scope="module")
def results():
    return collect_results(iterations=3)


def test_collect_covers_every_artifact(results):
    assert {"table1", "table6", "table7", "figure2", "vmcs_shadowing",
            "virtio_notifications"} <= set(results)


def test_results_are_json_serializable(results):
    text = json.dumps(results)
    parsed = json.loads(text)
    assert parsed["table7"][0]["benchmark"] == "hypercall"


def test_export_json_round_trip(tmp_path, results):
    path = tmp_path / "results.json"
    export_json(str(path), results=results)
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded["paper"].startswith("NEVE")
    assert loaded["figure2"]["memcached"]["arm-nested"] > 20


def test_table_to_csv():
    rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
    text = table_to_csv(rows)
    assert text.splitlines()[0] == "a,b"
    assert "3,4" in text


def test_table_to_csv_empty():
    assert table_to_csv([]) == ""


def test_figure2_csv(results):
    text = figure2_to_csv(data=results["figure2"])
    lines = text.splitlines()
    assert lines[0].startswith("workload,arm-vm")
    assert len(lines) == 11  # header + 10 workloads


def test_csv_bundle(tmp_path):
    paths = export_csv_bundle(str(tmp_path / "out"), iterations=2)
    assert set(paths) == {"table1", "table6", "table7", "figure2"}
    for path in paths.values():
        with open(path) as handle:
            assert "benchmark" in handle.readline() or True


def test_cli_main(tmp_path, capsys):
    from repro.harness.export import main
    target = str(tmp_path / "r.json")
    assert main([target]) == 0
    assert "wrote" in capsys.readouterr().out
