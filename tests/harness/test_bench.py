"""The benchmark-trajectory pipeline (``python -m repro bench``)."""

import dataclasses
import json

import pytest

from repro.harness import bench
from repro.harness.configs import ALL_CONFIGS
from repro.harness.regression import GOLDENS
from repro.metrics.cycles import ARM_COSTS
from repro.workloads.microbench import MICROBENCHMARKS

#: A small but cross-platform slice of ALL_CONFIGS, to keep the pipeline
#: tests fast; the committed baseline covers every config.
FAST_CONFIGS = ("arm-vm", "neve-nested", "x86-vm")


@pytest.fixture(scope="module")
def payload():
    return bench.run_bench(iterations=2, configs=FAST_CONFIGS)


class TestRunBench:
    def test_payload_schema_valid(self, payload):
        assert bench.validate_payload(payload) == []

    def test_covers_requested_cells(self, payload):
        assert sorted(payload["results"]) == sorted(FAST_CONFIGS)
        for cells in payload["results"].values():
            assert sorted(cells) == sorted(MICROBENCHMARKS)

    def test_embeds_registry_snapshot(self, payload):
        metrics = payload["metrics"]
        assert metrics["schema"] == "repro-metrics/1"
        assert metrics["virtual_cycles"] > 0
        assert "repro_traps_total" in metrics["metrics"]

    def test_deterministic(self, payload):
        again = bench.run_bench(iterations=2, configs=FAST_CONFIGS)
        assert again == payload

    def test_validate_catches_damage(self, payload):
        broken = json.loads(json.dumps(payload))
        del broken["results"]["arm-vm"]["hypercall"]["cycles"]
        assert any("arm-vm/hypercall" in problem
                   for problem in bench.validate_payload(broken))


class TestTolerances:
    def test_golden_tolerance_reused(self):
        golden = GOLDENS[0]
        assert bench.tolerance_for(golden.config, golden.benchmark,
                                   golden.metric) == golden.rel_tol

    def test_default_tolerance_for_uncovered_cell(self):
        assert bench.tolerance_for("arm-vm", "device_io", "cycles") \
            == bench.DEFAULT_TOLERANCES["cycles"]


class TestDiff:
    def test_self_diff_is_empty(self, payload):
        assert bench.diff_payloads(payload, payload) == []

    def test_perturbed_cost_model_regresses(self, payload):
        bumped = dataclasses.replace(ARM_COSTS, trap_entry=500)
        perturbed = bench.run_bench(iterations=2, configs=FAST_CONFIGS,
                                    arm_costs=bumped)
        regressions = bench.diff_payloads(payload, perturbed)
        assert regressions
        named = {(config, benchmark, metric)
                 for config, benchmark, metric, *_ in regressions}
        assert ("arm-vm", "hypercall", "cycles") in named
        # x86 cells are untouched by an ARM cost perturbation.
        assert not any(config == "x86-vm" for config, *_ in named)

    def test_within_tolerance_is_quiet(self, payload):
        nudged = json.loads(json.dumps(payload))
        cell = nudged["results"]["arm-vm"]["hypercall"]
        cell["cycles"] *= 1.01  # inside the 10% golden tolerance
        assert bench.diff_payloads(payload, nudged) == []


class TestGoldenPayloadCheck:
    def test_clean_payload_passes(self):
        # Goldens demand the calibrated iteration count.
        full = bench.run_bench(iterations=6,
                               configs=("arm-vm", "neve-nested"))
        assert bench.check_golden_payload(full) == []

    def test_regressed_payload_fails(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["results"]["arm-vm"]["hypercall"]["cycles"] *= 2
        failures = bench.check_golden_payload(broken)
        assert any(golden.config == "arm-vm" and golden.metric == "cycles"
                   for golden, _ in failures)


class TestTrajectoryFiles:
    def test_find_trajectory_orders_numerically(self, tmp_path):
        for sequence in (10, 2, 1):
            (tmp_path / ("BENCH_%d.json" % sequence)).write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored
        assert [n for n, _ in bench.find_trajectory(tmp_path)] == [1, 2, 10]

    def test_write_payload_stamps_sequence(self, payload, tmp_path):
        path = bench.write_payload(payload, tmp_path, 3)
        assert path.name == "BENCH_3.json"
        assert json.loads(path.read_text())["sequence"] == 3


class TestMain:
    def _args(self, tmp_path):
        args = ["--dir", str(tmp_path), "--iterations", "2"]
        for name in FAST_CONFIGS:
            args += ["--config", name]
        return args

    def test_first_run_writes_baseline(self, tmp_path, capsys):
        assert bench.main(self._args(tmp_path)) == 0
        document = json.loads((tmp_path / "BENCH_1.json").read_text())
        assert document["sequence"] == 1
        assert "BENCH_1.json" in capsys.readouterr().out

    def test_unchanged_rerun_does_not_extend(self, tmp_path, capsys):
        assert bench.main(self._args(tmp_path)) == 0
        assert bench.main(self._args(tmp_path)) == 0
        assert not (tmp_path / "BENCH_2.json").exists()
        assert "unchanged" in capsys.readouterr().out

    def test_perturbed_cost_model_exits_nonzero(self, tmp_path, capsys):
        assert bench.main(self._args(tmp_path)) == 0
        bumped = dataclasses.replace(ARM_COSTS, trap_entry=500)
        rc = bench.main(self._args(tmp_path), arm_costs=bumped)
        captured = capsys.readouterr()
        assert rc != 0
        # The failure names the regressed metric.
        assert "REGRESSION" in captured.out
        assert "cycles" in captured.out
        # A failing run must not poison the trajectory.
        assert not (tmp_path / "BENCH_2.json").exists()

    def test_unknown_config_rejected(self, tmp_path, capsys):
        assert bench.main(["--dir", str(tmp_path),
                           "--config", "no-such"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_unknown_flag_rejected(self, capsys):
        assert bench.main(["--frobnicate"]) == 2

    def test_help(self, capsys):
        assert bench.main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out


def test_all_configs_known_to_bench():
    """The committed BENCH_1.json baseline covers every config; keep the
    default config list in sync with ALL_CONFIGS."""
    payload_configs = sorted(ALL_CONFIGS)
    assert payload_configs  # sanity
    assert len(payload_configs) == 7


class TestProfileSidecar:
    def _args(self, tmp_path, profile=False):
        args = ["--dir", str(tmp_path), "--iterations", "2"]
        for name in FAST_CONFIGS:
            args += ["--config", name]
        return args + (["--profile"] if profile else [])

    def test_profile_writes_sidecars_next_to_the_trajectory(
            self, tmp_path, capsys):
        assert bench.main(self._args(tmp_path, profile=True)) == 0
        out = capsys.readouterr().out
        assert "profile sidecar" in out
        assert "redundancy observatory" in out
        from repro.profile.export import validate_profile
        document = json.loads((tmp_path / "PROF_1.json").read_text())
        assert validate_profile(document) == []
        assert document["scenario"] == "bench-1"
        assert (tmp_path / "PROF_1.folded").read_text()

    def test_sidecars_never_enter_the_trajectory(self, tmp_path):
        # The PROF_* names deliberately do not match BENCH_PATTERN, so
        # the trajectory scan (and therefore every byte-diff) skips them.
        assert bench.BENCH_PATTERN.match("PROF_1.json") is None
        assert bench.main(self._args(tmp_path, profile=True)) == 0
        assert [n for n, _ in bench.find_trajectory(tmp_path)] == [1]

    def test_bench_payload_is_byte_identical_with_profiling(
            self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        profiled_dir = tmp_path / "profiled"
        plain_dir.mkdir()
        profiled_dir.mkdir()
        assert bench.main(self._args(plain_dir)) == 0
        assert bench.main(self._args(profiled_dir, profile=True)) == 0
        assert (plain_dir / "BENCH_1.json").read_bytes() \
            == (profiled_dir / "BENCH_1.json").read_bytes()
