"""Classification-table tests (experiment E7)."""

from repro.core.classification import (
    TABLE3_ROW_COUNT,
    TABLE4_CAPTION_COUNT,
    TABLE4_REDIRECT_COUNT,
    TABLE4_ROW_COUNT,
    TABLE5_ROW_COUNT,
    classification_summary,
    extension_registers,
    table2_fields,
    table3_vm_registers,
    table4_hyp_control_registers,
    table5_gic_registers,
)


def test_table2_fields_match_paper():
    fields = table2_fields()
    assert [f["field"] for f in fields] == ["BADDR", "Reserved", "Enable"]
    assert fields[0]["bits"] == "52:12"
    assert fields[2]["bits"] == "0"


def test_table3_row_count_is_papers_27():
    assert TABLE3_ROW_COUNT == 27
    assert len(table3_vm_registers()) == TABLE3_ROW_COUNT


def test_table3_groups():
    groups = {row["category"] for row in table3_vm_registers()}
    assert groups == {"VM Trap Control", "VM Execution Control",
                      "Thread ID"}


def test_table4_row_count_is_18():
    """The paper's caption says 17 but the table enumerates 18 rows;
    TABLE4_ROW_COUNT is the single constant pinning that discrepancy
    (see DESIGN.md fidelity notes)."""
    assert TABLE4_CAPTION_COUNT == 17
    assert TABLE4_ROW_COUNT == TABLE4_CAPTION_COUNT + 1
    assert len(table4_hyp_control_registers()) == TABLE4_ROW_COUNT


def test_table4_techniques():
    techniques = {row["technique"] for row in
                  table4_hyp_control_registers()}
    assert techniques == {"Redirect to *_EL1", "Redirect to *_EL1 (VHE)",
                          "Trap on write", "Redirect or trap"}


def test_table4_redirect_rows_name_counterparts():
    for row in table4_hyp_control_registers():
        if row["technique"].startswith("Redirect"):
            assert row["el1_counterpart"] is not None, row["register"]


def test_table5_has_30_registers_all_trap_on_write():
    rows = table5_gic_registers()
    assert len(rows) == TABLE5_ROW_COUNT == 30
    assert all(row["technique"] == "Trap on write" for row in rows)


def test_extension_registers_documented():
    rows = extension_registers()
    names = {row["register"] for row in rows}
    assert "PMUSERENR_EL0" in names
    assert "MDSCR_EL1" in names
    assert "CNTHP_CTL_EL2" in names


def test_summary_counts_are_consistent():
    summary = classification_summary()
    assert summary["redirect"] == TABLE4_REDIRECT_COUNT  # both groups
    assert summary["defer"] >= 26  # Table 3 plus prose extensions
    assert summary["cached_copy"] >= 30 + 4  # Table 5 + trap-on-write rows
    assert sum(summary.values()) > 80


def test_no_register_in_two_tables():
    in3 = {row["register"] for row in table3_vm_registers()}
    in4 = {row["register"] for row in table4_hyp_control_registers()}
    in5 = {row["register"] for row in table5_gic_registers()}
    assert not (in3 & in4)
    assert not (in3 & in5)
    assert not (in4 & in5)
