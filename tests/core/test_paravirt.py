"""Paravirtualization engine tests (Sections 3, 4 and 6.4).

The crown jewel is the registry-wide equivalence check: for every system
register and access direction, executing the access natively at virtual
EL2 on the v8.3/v8.4 model must trap exactly when the rewriter's oracle
says it does — so the methodology demonstration and the CPU model cannot
drift apart.
"""

import pytest

from repro.arch.cpu import Cpu, Encoding
from repro.arch.exceptions import ExceptionLevel
from repro.arch.features import ARMV8_0, ARMV8_3, ARMV8_4
from repro.arch.registers import (
    NeveBehavior,
    RegClass,
    RegisterFile,
    iter_registers,
)
from repro.core.paravirt import (
    HvcEncodingTable,
    Instr,
    InstrKind,
    PvHostEmulator,
    TrapCostValidation,
    execute_program,
    paravirtualize,
    would_trap_at_virtual_el2,
)

from tests.conftest import at_virtual_el2, enable_neve, make_cpu


# ---------------------------------------------------------------------------
# hvc encoding table
# ---------------------------------------------------------------------------

def test_hvc_encoding_is_stable_and_bijective():
    table = HvcEncodingTable()
    instr = Instr(InstrKind.SYSREG_READ, reg="VTTBR_EL2")
    imm = table.encode(instr)
    assert table.encode(instr) == imm  # stable
    assert table.decode(imm) == (InstrKind.SYSREG_READ, "VTTBR_EL2",
                                 Encoding.NORMAL)


def test_distinct_instructions_get_distinct_immediates():
    table = HvcEncodingTable()
    a = table.encode(Instr(InstrKind.SYSREG_READ, reg="VTTBR_EL2"))
    b = table.encode(Instr(InstrKind.SYSREG_WRITE, reg="VTTBR_EL2"))
    c = table.encode(Instr(InstrKind.SYSREG_READ, reg="HCR_EL2"))
    assert len({a, b, c}) == 3


def test_eret_has_reserved_immediate():
    table = HvcEncodingTable()
    assert table.encode(Instr(InstrKind.ERET)) == HvcEncodingTable.ERET_IMM


def test_plain_hypercall_imm_zero_decodes_to_none():
    assert HvcEncodingTable().decode(0) is None


# ---------------------------------------------------------------------------
# rewriting
# ---------------------------------------------------------------------------

def test_nv_rewrite_replaces_el2_access_with_hvc():
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_WRITE, reg="VTTBR_EL2", value=1)]
    rewritten = paravirtualize(program, "nv", table)
    assert rewritten[0].kind is InstrKind.HVC


def test_nv_rewrite_keeps_vhe_guest_el1_accesses():
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_READ, reg="SCTLR_EL1")]
    rewritten = paravirtualize(program, "nv", table, virtual_e2h=True)
    assert rewritten[0].kind is InstrKind.SYSREG_READ


def test_nv_rewrite_traps_non_vhe_el1_accesses():
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_READ, reg="SCTLR_EL1")]
    rewritten = paravirtualize(program, "nv", table, virtual_e2h=False)
    assert rewritten[0].kind is InstrKind.HVC


def test_currentel_read_rewritten_to_constant():
    table = HvcEncodingTable()
    program = [Instr(InstrKind.READ_CURRENTEL)]
    rewritten = paravirtualize(program, "nv", table)
    assert rewritten[0].kind is InstrKind.NOP


def test_neve_rewrite_defers_vm_registers_to_loads_stores():
    """Section 6.4: 'replacing instructions that access VM registers with
    normal load and store instructions'."""
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_WRITE, reg="VTTBR_EL2", value=9),
               Instr(InstrKind.SYSREG_READ, reg="HCR_EL2")]
    rewritten = paravirtualize(program, "neve", table, page_base=0x1000)
    assert rewritten[0].kind is InstrKind.STORE
    assert rewritten[1].kind is InstrKind.LOAD


def test_neve_rewrite_redirects_hyp_control_to_el1():
    """Section 6.4: 'replacing instructions that access EL2 hypervisor
    control registers with instructions that access corresponding EL1
    registers'."""
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_WRITE, reg="VBAR_EL2", value=1)]
    rewritten = paravirtualize(program, "neve", table)
    assert rewritten[0].kind is InstrKind.SYSREG_WRITE
    assert rewritten[0].reg == "VBAR_EL1"


def test_neve_rewrite_keeps_traps_for_cached_copy_writes():
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_WRITE, reg="CNTHCTL_EL2", value=3)]
    rewritten = paravirtualize(program, "neve", table)
    assert rewritten[0].kind is InstrKind.HVC


def test_neve_rewrite_eret_still_traps():
    table = HvcEncodingTable()
    rewritten = paravirtualize([Instr(InstrKind.ERET)], "neve", table)
    assert rewritten[0].kind is InstrKind.HVC
    assert rewritten[0].imm == HvcEncodingTable.ERET_IMM


def test_rewrite_preserves_program_length():
    """The technique substitutes instructions 1:1 — 'we did not change
    any of the logic or instruction flow' (Section 4)."""
    table = HvcEncodingTable()
    program = [Instr(InstrKind.SYSREG_WRITE, reg="HCR_EL2", value=1),
               Instr(InstrKind.SYSREG_READ, reg="SCTLR_EL1"),
               Instr(InstrKind.READ_CURRENTEL),
               Instr(InstrKind.ERET)]
    for mode in ("nv", "neve"):
        assert len(paravirtualize(program, mode, table)) == len(program)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        paravirtualize([], "fancy", HvcEncodingTable())


# ---------------------------------------------------------------------------
# Oracle vs CPU model: registry-wide equivalence
# ---------------------------------------------------------------------------

def _cpu_traps_for(arch, reg, is_write, vhe, neve):
    cpu = make_cpu(arch)
    if neve:
        enable_neve(cpu)
    at_virtual_el2(cpu, vhe=vhe)
    before = cpu.traps.total
    try:
        if is_write:
            cpu.msr(reg.name, 1 if not reg.read_only else 0)
        else:
            cpu.mrs(reg.name)
    except Exception:
        return None  # undefined / rejected accesses are out of scope
    return cpu.traps.total - before > 0


@pytest.mark.parametrize("vhe", [False, True])
@pytest.mark.parametrize("neve", [False, True])
def test_oracle_matches_cpu_model_for_entire_registry(vhe, neve):
    arch = ARMV8_4 if neve else ARMV8_3
    checked = 0
    for reg in iter_registers():
        if reg.reg_class is RegClass.SPECIAL:
            continue
        if reg.vhe_only and not vhe:
            continue
        for is_write in (False, True):
            if is_write and reg.read_only:
                continue
            actual = _cpu_traps_for(arch, reg, is_write, vhe, neve)
            if actual is None:
                continue
            kind = (InstrKind.SYSREG_WRITE if is_write
                    else InstrKind.SYSREG_READ)
            predicted = would_trap_at_virtual_el2(
                Instr(kind, reg=reg.name, value=1), vhe, neve, arch)
            assert predicted == actual, (
                "%s %s vhe=%s neve=%s: oracle=%s cpu=%s"
                % (reg.name, "write" if is_write else "read", vhe, neve,
                   predicted, actual))
            checked += 1
    assert checked > 100


# ---------------------------------------------------------------------------
# End-to-end methodology check
# ---------------------------------------------------------------------------

WORLD_SWITCH_FRAGMENT = [
    Instr(InstrKind.READ_CURRENTEL),
    Instr(InstrKind.SYSREG_READ, reg="ESR_EL2"),
    Instr(InstrKind.SYSREG_READ, reg="SCTLR_EL1"),
    Instr(InstrKind.SYSREG_READ, reg="TTBR0_EL1"),
    Instr(InstrKind.SYSREG_WRITE, reg="HCR_EL2", value=0x80000001),
    Instr(InstrKind.SYSREG_WRITE, reg="VTTBR_EL2", value=0x1000),
    Instr(InstrKind.SYSREG_WRITE, reg="CNTHCTL_EL2", value=3),
    Instr(InstrKind.SYSREG_WRITE, reg="ICH_LR0_EL2", value=27),
    Instr(InstrKind.SYSREG_WRITE, reg="SCTLR_EL1", value=0x30D0198),
    Instr(InstrKind.ERET),
]


def _run_native(arch, neve, vhe=False):
    cpu = make_cpu(arch)
    if neve:
        enable_neve(cpu)
    handler = PvHostEmulator(HvcEncodingTable(), RegisterFile())
    cpu.trap_handler = handler
    at_virtual_el2(cpu, vhe=vhe)
    execute_program(cpu, WORLD_SWITCH_FRAGMENT)
    return cpu.traps.total


def _run_paravirtualized(mode, vhe=False):
    table = HvcEncodingTable()
    rewritten = paravirtualize(WORLD_SWITCH_FRAGMENT, mode, table,
                               virtual_e2h=vhe, page_base=0x7000_0000)
    cpu = make_cpu(ARMV8_0, handler=False)
    cpu.trap_handler = PvHostEmulator(table, RegisterFile())
    cpu.enter_guest_context(ExceptionLevel.EL1, nv=False,
                            virtual_e2h=False)
    execute_program(cpu, rewritten)
    return cpu.traps.total


@pytest.mark.parametrize("vhe", [False, True])
def test_v83_mimicry_matches_native_trap_count(vhe):
    assert _run_native(ARMV8_3, neve=False, vhe=vhe) == \
        _run_paravirtualized("nv", vhe=vhe)


@pytest.mark.parametrize("vhe", [False, True])
def test_neve_mimicry_matches_native_trap_count(vhe):
    assert _run_native(ARMV8_4, neve=True, vhe=vhe) == \
        _run_paravirtualized("neve", vhe=vhe)


def test_neve_strictly_reduces_traps_on_this_fragment():
    assert _run_native(ARMV8_4, neve=True) < _run_native(ARMV8_3,
                                                         neve=False)


# ---------------------------------------------------------------------------
# Trap-cost interchangeability (Section 5)
# ---------------------------------------------------------------------------

def test_trap_cost_spread_below_ten_percent():
    validation = TrapCostValidation(lambda: Cpu(arch=ARMV8_3))
    results = validation.run(iterations=50)
    assert TrapCostValidation.spread(results) < 0.10


def test_trap_costs_in_paper_band():
    """Paper: 68-76 cycles in, 65 out; round trips land near 137-150."""
    validation = TrapCostValidation(lambda: Cpu(arch=ARMV8_3))
    results = validation.run(iterations=50)
    for vehicle, cycles in results.items():
        assert 125 <= cycles <= 160, (vehicle, cycles)
