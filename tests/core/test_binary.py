"""Binary-patching paravirtualization tests (Section 4's automated
alternative to source-level wrappers)."""

import pytest

from repro.arch.cpu import Encoding
from repro.arch.exceptions import ExceptionLevel
from repro.arch.features import ARMV8_0
from repro.arch.registers import RegisterFile
from repro.core.binary import (
    EncodingError,
    assemble,
    assemble_image,
    disassemble,
    disassemble_image,
    patch_image,
)
from repro.core.paravirt import (
    HvcEncodingTable,
    Instr,
    InstrKind,
    PvHostEmulator,
    execute_program,
    paravirtualize,
)

from tests.conftest import make_cpu

FRAGMENT = [
    Instr(InstrKind.READ_CURRENTEL),
    Instr(InstrKind.SYSREG_READ, reg="ESR_EL2"),
    Instr(InstrKind.SYSREG_READ, reg="SCTLR_EL1"),
    Instr(InstrKind.SYSREG_WRITE, reg="HCR_EL2", value=0),
    Instr(InstrKind.SYSREG_WRITE, reg="CNTHCTL_EL2", value=0),
    Instr(InstrKind.SYSREG_WRITE, reg="SCTLR_EL1", value=0),
    Instr(InstrKind.ERET),
]


@pytest.mark.parametrize("instr", FRAGMENT + [
    Instr(InstrKind.HVC, imm=0x1234),
    Instr(InstrKind.SYSREG_READ, reg="TCR_EL1", enc=Encoding.EL12),
    Instr(InstrKind.SYSREG_READ, reg="CNTV_CTL_EL0", enc=Encoding.EL02),
    Instr(InstrKind.NOP),
])
def test_assemble_disassemble_round_trip(instr):
    decoded = disassemble(assemble(instr))
    assert decoded.kind is instr.kind
    assert decoded.reg == instr.reg
    assert decoded.enc is instr.enc
    assert decoded.imm == instr.imm


def test_words_are_32_bit():
    for word in assemble_image(FRAGMENT):
        assert 0 <= word < (1 << 32)


def test_hvc_immediate_range_checked():
    with pytest.raises(EncodingError):
        assemble(Instr(InstrKind.HVC, imm=0x1_0000))


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError):
        disassemble(0xF000_0000)


def test_image_round_trip():
    words = assemble_image(FRAGMENT)
    recovered = disassemble_image(words)
    assert [i.kind for i in recovered] == [i.kind for i in FRAGMENT]


def test_patch_matches_source_level_rewriter():
    """The automated binary patch must produce exactly what the
    source-level wrappers produce."""
    for mode in ("nv", "neve"):
        words = assemble_image(FRAGMENT)
        table_bin = HvcEncodingTable()
        patched, _, _ = patch_image(words, mode, table_bin,
                                    page_base=0x7000_0000)
        table_src = HvcEncodingTable()
        rewritten = paravirtualize(FRAGMENT, mode, table_src,
                                   page_base=0x7000_0000)
        assert patched == assemble_image(rewritten), mode


def test_patched_image_executes_on_v80():
    """A patched binary image runs on the ARMv8.0 model at EL1 without
    ever hitting an undefined instruction."""
    words = assemble_image(FRAGMENT)
    patched, table, _ = patch_image(words, "nv", page_base=0x7000_0000)
    cpu = make_cpu(ARMV8_0, handler=False)
    cpu.trap_handler = PvHostEmulator(table, RegisterFile())
    cpu.enter_guest_context(ExceptionLevel.EL1)
    program = disassemble_image(patched, page_base=0x7000_0000)
    execute_program(cpu, program)  # must not raise
    assert cpu.traps.total > 0


def test_patch_report_counts_rewrites():
    words = assemble_image(FRAGMENT)
    _, _, report = patch_image(words, "neve", page_base=0x7000_0000)
    assert report.scanned == len(FRAGMENT)
    assert report.patched > 0
    assert any("msr->str" in action or "mrs->ldr" in action
               for action in report.by_action)


def test_patch_is_idempotent_for_nv():
    """Patching an already-patched image changes nothing: hvc and plain
    EL1 accesses are fixed points of the rewriter."""
    words = assemble_image(FRAGMENT)
    table = HvcEncodingTable()
    once, _, _ = patch_image(words, "nv", table, page_base=0x7000_0000)
    twice, _, report = patch_image(once, "nv", table,
                                   page_base=0x7000_0000)
    assert once == twice
    assert report.patched == 0
