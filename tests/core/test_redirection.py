"""Register-redirection rule tests (Section 6.1)."""

from repro.core.redirection import (
    redirect_target,
    redirected_el1_registers,
    traps_on_write,
)


def test_redirect_class_targets():
    assert redirect_target("VBAR_EL2", virtual_e2h=False) == "VBAR_EL1"
    assert redirect_target("ESR_EL2", virtual_e2h=False) == "ESR_EL1"


def test_vhe_registers_redirect():
    assert redirect_target("CONTEXTIDR_EL2", False) == "CONTEXTIDR_EL1"
    assert redirect_target("TTBR1_EL2", False) == "TTBR1_EL1"


def test_redirect_or_trap_depends_on_e2h():
    assert redirect_target("TCR_EL2", virtual_e2h=True) == "TCR_EL1"
    assert redirect_target("TCR_EL2", virtual_e2h=False) is None
    assert redirect_target("TTBR0_EL2", virtual_e2h=True) == "TTBR0_EL1"


def test_deferred_registers_never_redirect():
    assert redirect_target("HCR_EL2", False) is None
    assert redirect_target("VTTBR_EL2", True) is None


def test_cached_copy_registers_never_redirect():
    assert redirect_target("CNTHCTL_EL2", False) is None
    assert redirect_target("MDCR_EL2", True) is None


def test_redirected_el1_set_non_vhe():
    targets = set(redirected_el1_registers(virtual_e2h=False))
    assert "VBAR_EL1" in targets
    assert "TCR_EL1" not in targets  # redirect-or-trap without E2H


def test_redirected_el1_set_vhe_adds_translation_registers():
    targets = set(redirected_el1_registers(virtual_e2h=True))
    assert "TCR_EL1" in targets
    assert "TTBR0_EL1" in targets


def test_traps_on_write_cached_copies():
    assert traps_on_write("CNTHCTL_EL2")
    assert traps_on_write("CPTR_EL2")
    assert traps_on_write("ICH_LR0_EL2")
    assert traps_on_write("MDSCR_EL1")


def test_traps_on_write_timers():
    assert traps_on_write("CNTHP_CTL_EL2")


def test_no_trap_on_write_for_deferred_and_redirected():
    assert not traps_on_write("HCR_EL2")
    assert not traps_on_write("VBAR_EL2")
    assert not traps_on_write("SCTLR_EL1")


def test_redirect_or_trap_write_behaviour_follows_e2h():
    assert traps_on_write("TCR_EL2", virtual_e2h=False)
    assert not traps_on_write("TCR_EL2", virtual_e2h=True)
