"""Architecture conformance suite tests."""

from repro.arch.cpu import AccessKind, Encoding
from repro.arch.registers import lookup_register
from repro.core.conformance import (
    ConformanceResult,
    expected_access_kind,
    render_conformance,
    run_conformance,
)


def test_full_matrix_conforms():
    result = run_conformance()
    assert result.passed, result.violations[:5]
    assert result.checks > 700


def test_matrix_covers_all_four_configurations():
    """2 architectures x 2 hypervisor flavours over ~100 registers."""
    result = run_conformance()
    assert result.checks >= 4 * 90


def test_oracle_spot_checks():
    hcr = lookup_register("HCR_EL2")
    assert expected_access_kind(hcr, True, neve=True, vhe=False) \
        is AccessKind.DEFERRED_MEMORY
    assert expected_access_kind(hcr, True, neve=False, vhe=False) \
        is AccessKind.TRAPPED
    vbar = lookup_register("VBAR_EL2")
    assert expected_access_kind(vbar, False, neve=True, vhe=False) \
        is AccessKind.REDIRECTED_EL1
    lr = lookup_register("ICH_LR0_EL2")
    assert expected_access_kind(lr, True, neve=True, vhe=True) \
        is AccessKind.TRAPPED
    assert expected_access_kind(lr, False, neve=True, vhe=True) \
        is AccessKind.DEFERRED_MEMORY
    timer = lookup_register("CNTHP_CTL_EL2")
    assert expected_access_kind(timer, False, neve=True, vhe=False) \
        is AccessKind.TRAPPED


def test_result_accumulation():
    result = ConformanceResult()
    result.record(True, "fine")
    result.record(False, "broken")
    assert result.checks == 2
    assert not result.passed
    assert result.violations == ["broken"]


def test_render():
    assert "0 violations" in render_conformance()


def test_oracle_el02_aliases_always_trap():
    tpidr = lookup_register("TPIDR_EL0")
    for neve in (False, True):
        for vhe in (False, True):
            for is_write in (False, True):
                assert expected_access_kind(
                    tpidr, is_write, neve=neve, vhe=vhe,
                    enc=Encoding.EL02) is AccessKind.TRAPPED


def test_oracle_el12_aliases_follow_page_residency():
    sctlr = lookup_register("SCTLR_EL1")  # DEFER row
    mdscr = lookup_register("MDSCR_EL1")  # CACHED_COPY row
    # A DEFER row's value lives in the page: the alias transforms to a
    # memory access in both directions.
    assert expected_access_kind(sctlr, False, neve=True, vhe=True,
                                enc=Encoding.EL12) \
        is AccessKind.DEFERRED_MEMORY
    assert expected_access_kind(sctlr, True, neve=True, vhe=True,
                                enc=Encoding.EL12) \
        is AccessKind.DEFERRED_MEMORY
    # A cached-copy row only holds reads; alias writes must still trap.
    assert expected_access_kind(mdscr, False, neve=True, vhe=True,
                                enc=Encoding.EL12) \
        is AccessKind.DEFERRED_MEMORY
    assert expected_access_kind(mdscr, True, neve=True, vhe=True,
                                enc=Encoding.EL12) is AccessKind.TRAPPED
    # Without NEVE there is no page: every alias traps.
    assert expected_access_kind(sctlr, False, neve=False, vhe=True,
                                enc=Encoding.EL12) is AccessKind.TRAPPED
