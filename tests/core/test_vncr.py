"""VNCR_EL2 and deferred access page tests (Table 2, Section 6.3)."""

import pytest

from repro.arch.registers import RegisterFile
from repro.core.vncr import (
    DeferredAccessPage,
    VncrEl2,
    deferred_offset,
    deferred_registers,
)
from repro.memory.phys import PhysicalMemory


def test_make_sets_baddr_and_enable():
    vncr = VncrEl2.make(0x7000_0000, enable=True)
    assert vncr.baddr == 0x7000_0000
    assert vncr.enabled


def test_make_disabled():
    vncr = VncrEl2.make(0x7000_0000, enable=False)
    assert not vncr.enabled


def test_unaligned_baddr_rejected():
    """Section 6.3: 'the architecture mandates that the host hypervisor
    software programs a page-aligned physical address'."""
    with pytest.raises(ValueError):
        VncrEl2.make(0x7000_0100)


def test_baddr_field_width_52_12():
    """Table 2: BADDR occupies bits 52:12."""
    with pytest.raises(ValueError):
        VncrEl2.make(1 << 53)
    top = VncrEl2.make((1 << 52) & ~0xFFF)
    assert top.baddr == (1 << 52) & ~0xFFF


def test_with_enable_round_trip():
    vncr = VncrEl2.make(0x1000, enable=False)
    assert vncr.with_enable(True).enabled
    assert not vncr.with_enable(True).with_enable(False).enabled
    # base address preserved across toggles
    assert vncr.with_enable(True).baddr == 0x1000


def test_reserved_bits_do_not_leak_into_baddr():
    vncr = VncrEl2(0x7000_0000 | 0xFFE | 1)
    assert vncr.baddr == 0x7000_0000
    assert vncr.enabled


def test_repr_mentions_fields():
    text = repr(VncrEl2.make(0x2000))
    assert "0x2000" in text and "True" in text


# ---------------------------------------------------------------------------
# Deferred access page
# ---------------------------------------------------------------------------

def test_deferred_offset_known_register():
    assert deferred_offset("HCR_EL2") % 8 == 0


def test_deferred_offset_unknown_register_rejected():
    with pytest.raises(KeyError):
        deferred_offset("ESR_EL2")  # redirect class: no slot


def test_deferred_registers_sorted_by_offset():
    regs = deferred_registers()
    offsets = [r.vncr_offset for r in regs]
    assert offsets == sorted(offsets)


def test_page_requires_alignment():
    with pytest.raises(ValueError):
        DeferredAccessPage(PhysicalMemory(), 0x123)


def test_page_read_write_round_trip():
    page = DeferredAccessPage(PhysicalMemory(), 0x7000_0000)
    page.write_reg("VTTBR_EL2", 0xABCD)
    assert page.read_reg("VTTBR_EL2") == 0xABCD


def test_page_registers_do_not_alias():
    page = DeferredAccessPage(PhysicalMemory(), 0x7000_0000)
    for index, reg in enumerate(deferred_registers()):
        page.write_reg(reg.name, index + 1)
    for index, reg in enumerate(deferred_registers()):
        assert page.read_reg(reg.name) == index + 1, reg.name


def test_populate_and_writeback():
    memory = PhysicalMemory()
    page = DeferredAccessPage(memory, 0x7000_0000)
    src = RegisterFile({"HCR_EL2": 0x11, "SCTLR_EL1": 0x22})
    page.populate_from(src, ["HCR_EL2", "SCTLR_EL1"])
    dst = RegisterFile()
    page.writeback_to(dst, ["HCR_EL2", "SCTLR_EL1"])
    assert dst.read("HCR_EL2") == 0x11
    assert dst.read("SCTLR_EL1") == 0x22


def test_page_and_hardware_view_share_memory():
    """The software view and the CPU's deferred-access rewriting must hit
    the same physical words — that is the entire design."""
    from repro.arch.exceptions import ExceptionLevel
    from tests.conftest import enable_neve, make_cpu
    cpu = make_cpu()
    baddr = enable_neve(cpu)
    page = DeferredAccessPage(cpu.memory, baddr)
    cpu.enter_guest_context(ExceptionLevel.EL1, nv=True)
    cpu.msr("VTTBR_EL2", 0x5555)  # hardware-rewritten store
    assert page.read_reg("VTTBR_EL2") == 0x5555  # software view
    page.write_reg("HCR_EL2", 0x80000001)  # software store
    assert cpu.mrs("HCR_EL2") == 0x80000001  # hardware-rewritten load


def test_as_dict_lists_every_slot():
    page = DeferredAccessPage(PhysicalMemory(), 0x0)
    snapshot = page.as_dict()
    assert len(snapshot) == len(deferred_registers())
    assert all(value == 0 for value in snapshot.values())
