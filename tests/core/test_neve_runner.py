"""NeveRunner (host-side NEVE workflow) tests."""

from repro.arch.registers import RegisterFile
from repro.core.neve import NeveRunner
from repro.core.vncr import deferred_registers

from tests.conftest import make_cpu


def make_runner():
    cpu = make_cpu()
    runner = NeveRunner(cpu, cpu.memory, 0x7000_0000)
    return cpu, runner


def test_enable_programs_hardware_vncr():
    cpu, runner = make_runner()
    runner.enable()
    assert cpu.el2_regs.read("VNCR_EL2") & 1
    assert cpu.neve_enabled


def test_disable_clears_enable_bit_keeps_baddr():
    cpu, runner = make_runner()
    runner.enable()
    runner.disable()
    assert not cpu.neve_enabled
    assert cpu.vncr_baddr == 0x7000_0000


def test_init_page_populates_every_slot():
    cpu, runner = make_runner()
    src = RegisterFile()
    for index, reg in enumerate(deferred_registers()):
        src.write(reg.name, index + 100)
    runner.init_page(src)
    for index, reg in enumerate(deferred_registers()):
        assert runner.page.read_reg(reg.name) == index + 100


def test_write_cached_copy_refreshes_page():
    cpu, runner = make_runner()
    runner.write_cached_copy("CNTHCTL_EL2", 0x3)
    assert runner.page.read_reg("CNTHCTL_EL2") == 0x3


def test_read_deferred_sees_guest_writes():
    """The typical workflow (Section 6.1): the guest's deferred store is
    visible to the host through the page."""
    from repro.arch.exceptions import ExceptionLevel
    cpu, runner = make_runner()
    runner.enable()
    cpu.enter_guest_context(ExceptionLevel.EL1, nv=True)
    cpu.msr("SCTLR_EL1", 0x30D0198)  # deferred by hardware
    cpu.enter_host_context()
    assert runner.read_deferred("SCTLR_EL1") == 0x30D0198


def test_write_deferred_seen_by_guest_reads():
    from repro.arch.exceptions import ExceptionLevel
    cpu, runner = make_runner()
    runner.enable()
    runner.write_deferred("ESR_EL1", 0x96000045)
    cpu.enter_guest_context(ExceptionLevel.EL1, nv=True)
    assert cpu.mrs("ESR_EL1") == 0x96000045


def test_read_many():
    cpu, runner = make_runner()
    runner.write_deferred("TTBR0_EL1", 0x1)
    runner.write_deferred("TTBR1_EL1", 0x2)
    values = runner.read_many(["TTBR0_EL1", "TTBR1_EL1"])
    assert values == {"TTBR0_EL1": 0x1, "TTBR1_EL1": 0x2}


def test_host_page_traffic_charges_memory_costs():
    cpu, runner = make_runner()
    before = cpu.ledger.total
    runner.write_deferred("SCTLR_EL1", 1)
    runner.read_deferred("SCTLR_EL1")
    charged = cpu.ledger.total - before
    assert charged == cpu.costs.mem_store + cpu.costs.mem_load
