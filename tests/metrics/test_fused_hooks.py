"""Fused hook-chain semantics of :class:`CycleLedger`.

The three observe-only slots (observer, metrics_sink, profile_sink)
collapse into one fused callback: ``None`` with no consumers, the
consumer itself with exactly one, and an ordered chain with several.
Every combination must deliver the same calls, in the same order, as
the old three-checks-per-charge dispatch.
"""

import itertools

from repro.metrics.cycles import CycleLedger

SLOTS = ("observer", "metrics_sink", "profile_sink")


def _recorder(log, tag):
    def hook(cycles, category):
        log.append((tag, cycles, category))
    return hook


def test_no_consumers_has_no_fused_callback():
    ledger = CycleLedger()
    assert ledger._fused is None
    ledger.charge(5, "guest")
    assert ledger.total == 5
    assert ledger.by_category == {"guest": 5}


def test_single_consumer_is_fused_to_itself():
    for slot in SLOTS:
        ledger = CycleLedger()
        log = []
        hook = _recorder(log, slot)
        setattr(ledger, slot, hook)
        assert ledger._fused is hook  # no wrapper frame
        ledger.charge(3, "trap")
        assert log == [(slot, 3, "trap")]


def test_every_attachment_combination_matches_unfused_order():
    """0/1/N consumers: the fused chain fires exactly the attached
    hooks, in slot order, once per charge."""
    for attach in itertools.product((False, True), repeat=3):
        ledger = CycleLedger()
        log = []
        expected_tags = []
        for slot, attached in zip(SLOTS, attach):
            if attached:
                setattr(ledger, slot, _recorder(log, slot))
                expected_tags.append(slot)
        ledger.charge(7, "sysreg")
        ledger.charge(2, "idle")
        assert log == ([(tag, 7, "sysreg") for tag in expected_tags]
                       + [(tag, 2, "idle") for tag in expected_tags])
        assert ledger.total == 9


def test_detaching_rebuilds_the_chain():
    ledger = CycleLedger()
    log = []
    ledger.observer = _recorder(log, "observer")
    ledger.metrics_sink = _recorder(log, "metrics_sink")
    ledger.charge(1, "a")
    ledger.observer = None
    ledger.charge(1, "b")
    assert ledger._fused is ledger.metrics_sink
    ledger.metrics_sink = None
    assert ledger._fused is None
    ledger.charge(1, "c")
    assert log == [("observer", 1, "a"), ("metrics_sink", 1, "a"),
                   ("metrics_sink", 1, "b")]
    assert ledger.total == 3


def test_slots_stay_readable_properties():
    ledger = CycleLedger()
    assert ledger.observer is None
    assert ledger.metrics_sink is None
    assert ledger.profile_sink is None
    hook = _recorder([], "x")
    ledger.profile_sink = hook
    assert ledger.profile_sink is hook


def test_value_semantics_ignore_hooks():
    """The old dataclass compared on (total, by_category) with the hook
    slots excluded; the plain class must keep that contract."""
    a = CycleLedger()
    b = CycleLedger()
    a.observer = _recorder([], "a")
    assert a == b
    a.charge(4, "guest")
    assert a != b
    b.charge(4, "guest")
    assert a == b
    assert "total=4" in repr(a)
