"""Trap counter tests."""

import pytest

from repro.metrics.counters import ExitReason, TrapCounter


def test_record_and_count():
    counter = TrapCounter()
    counter.record(ExitReason.HVC)
    counter.record(ExitReason.HVC)
    counter.record(ExitReason.SYSREG_TRAP)
    assert counter.total == 3
    assert counter.count(ExitReason.HVC) == 2
    assert counter.count(ExitReason.ERET_TRAP) == 0


def test_record_rejects_raw_strings():
    with pytest.raises(TypeError):
        TrapCounter().record("hvc")


def test_snapshot_since():
    counter = TrapCounter()
    counter.record(ExitReason.HVC)
    snap = counter.snapshot()
    counter.record(ExitReason.IRQ)
    counter.record(ExitReason.IRQ)
    assert counter.since(snap) == 2


def test_delta_by_reason():
    counter = TrapCounter()
    counter.record(ExitReason.HVC)
    snap = counter.snapshot()
    counter.record(ExitReason.HVC)
    counter.record(ExitReason.SYSREG_TRAP)
    delta = counter.delta_by_reason(snap)
    assert delta == {ExitReason.HVC: 1, ExitReason.SYSREG_TRAP: 1}


def test_reset():
    counter = TrapCounter()
    counter.record(ExitReason.WFI)
    counter.reset()
    assert counter.total == 0
    assert counter.by_reason == {}
