"""Cycle ledger and cost model tests."""

import pytest

from repro.metrics.cycles import (
    ARM_COSTS,
    X86_COSTS,
    CostModel,
    CycleLedger,
    ScopedMeter,
)
from repro.metrics.counters import ExitReason, TrapCounter


def test_ledger_accumulates_by_category():
    ledger = CycleLedger()
    ledger.charge(10, "trap")
    ledger.charge(5, "trap")
    ledger.charge(3, "guest")
    assert ledger.total == 18
    assert ledger.by_category == {"trap": 15, "guest": 3}


def test_ledger_rejects_negative_charges():
    with pytest.raises(ValueError):
        CycleLedger().charge(-1)


def test_snapshot_and_since():
    ledger = CycleLedger()
    ledger.charge(7)
    snap = ledger.snapshot()
    ledger.charge(13)
    assert ledger.since(snap) == 13


def test_reset():
    ledger = CycleLedger()
    ledger.charge(5, "x")
    ledger.reset()
    assert ledger.total == 0
    assert ledger.by_category == {}


def test_trap_entry_cost_matches_paper_measurement():
    """Section 5: 'trapping from EL1 to EL2 was between 68 to 76 cycles,
    and returning ... was 65 cycles'."""
    assert 68 <= ARM_COSTS.trap_entry <= 76
    assert ARM_COSTS.trap_return == 65


def test_cost_model_is_frozen():
    with pytest.raises(Exception):
        ARM_COSTS.trap_entry = 1


def test_x86_model_differs_where_architecture_differs():
    assert X86_COSTS.vmexit_hw == ARM_COSTS.vmexit_hw  # shared constant
    assert X86_COSTS.sysreg_read > ARM_COSTS.sysreg_read  # msr vs mrs


def test_cost_model_replace_derives_variant():
    from dataclasses import replace
    slow = replace(ARM_COSTS, mem_load=100)
    assert slow.mem_load == 100
    assert ARM_COSTS.mem_load != 100


def test_scoped_meter():
    ledger = CycleLedger()
    traps = TrapCounter()
    with ScopedMeter(ledger, traps) as meter:
        ledger.charge(42)
        traps.record(ExitReason.HVC)
    assert meter.cycles == 42
    assert meter.traps == 1


def test_scoped_meter_without_traps():
    ledger = CycleLedger()
    with ScopedMeter(ledger) as meter:
        ledger.charge(10)
    assert meter.cycles == 10
    assert meter.traps == 0
